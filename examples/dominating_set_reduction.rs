//! Theorem 5 live: deciding Dominating Set by scheduling file transfers.
//!
//! The paper proves FOCD NP-hard by reduction from Dominating Set: a
//! graph `G` has a dominating set of size ≤ k iff a derived 2n+2-vertex
//! content-distribution instance can finish in two timesteps. This
//! example builds the reduction for a small graph, runs the exact
//! scheduler both ways across every k, and extracts the dominating set
//! witness from the schedule.
//!
//! Run with: `cargo run --release --example dominating_set_reduction`

use ocd::graph::algo::{dominating_set_exact, is_dominating_set};
use ocd::graph::generate::classic;
use ocd::solver::bnb::{decide_focd, BnbOptions};
use ocd::solver::reduction::{dominating_set_from_schedule, focd_from_dominating_set};

fn main() {
    // A 6-cycle: domination number ⌈6/3⌉ = 2.
    let g = classic::cycle(6, 1, true);
    let exact = dominating_set_exact(&g);
    println!(
        "graph: C6; exact minimum dominating set: {exact:?} (size {})",
        exact.len()
    );

    for k in 1..=3 {
        let (instance, layout) = focd_from_dominating_set(&g, k);
        println!(
            "\nk = {k}: reduced FOCD instance has {} vertices, {} tokens",
            instance.num_vertices(),
            instance.num_tokens()
        );
        match decide_focd(&instance, 2, &BnbOptions::default()).expect("search fits budget") {
            Some(schedule) => {
                let witness = dominating_set_from_schedule(&layout, &instance, &schedule);
                assert!(witness.len() <= k);
                assert!(is_dominating_set(&g, &witness));
                println!(
                    "  2-step schedule found → dominating set of size ≤ {k}: witness {witness:?}"
                );
                println!(
                    "  (schedule: {} moves across 2 steps)",
                    schedule.bandwidth()
                );
            }
            None => {
                assert!(exact.len() > k, "solver must agree with exact DS");
                println!("  no 2-step schedule → γ(C6) > {k} ✓");
            }
        }
    }
}
