//! The same swarm, without the synchrony assumption: the `ocd-net`
//! actor runtime distributes a file over links with real latency,
//! jitter and loss, survives a mid-run crash, and still hands back a
//! certified schedule. The ideal-mode run demonstrates the differential
//! guarantee — it equals the lockstep engine move for move.
//!
//! Run with: `cargo run --release --example async_swarm`

use ocd::net::{run_swarm, FaultPlan, NetConfig, NetPolicy};
use ocd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let topology = ocd::graph::generate::paper_random(40, &mut rng);
    let instance = ocd::core::scenario::single_file(topology, 48, 0);
    println!(
        "swarm: {} peers, {} pieces, seed at peer 0\n",
        instance.num_vertices(),
        instance.num_tokens()
    );

    // 1. Ideal mode reproduces the lockstep engine exactly.
    let mut lock_rng = StdRng::seed_from_u64(1);
    let mut strategy = StrategyKind::Local.build();
    let lock = simulate(
        &instance,
        strategy.as_mut(),
        &SimConfig::default(),
        &mut lock_rng,
    );
    let mut net_rng = StdRng::seed_from_u64(1);
    let ideal = NetConfig {
        policy: NetPolicy::Local,
        ..NetConfig::default()
    };
    let report = run_swarm(&instance, &ideal, &FaultPlan::none(), &mut net_rng);
    assert_eq!(report.schedule, lock.schedule);
    println!(
        "ideal mode: {} ticks, {} transfers — identical to the lockstep run",
        report.ticks,
        report.bandwidth()
    );

    // 2. Degrade the links and crash a peer mid-download.
    println!(
        "\n{:>8}  {:>6}  {:>7}  {:>10}  {:>8}  {:>6}  {:>11}",
        "policy", "loss", "ticks", "transfers", "retrans", "dups", "mean done"
    );
    for policy in [NetPolicy::Random, NetPolicy::Local] {
        for loss in [0.0, 0.1, 0.25] {
            let config = NetConfig {
                policy,
                latency: 3,
                jitter: 2,
                loss,
                control_latency: 1,
                control_loss: loss / 2.0,
                have_refresh: 6,
                ..NetConfig::default()
            };
            let faults = FaultPlan::none().crash_between(instance.graph().node(9), 10, 60);
            let mut run_rng = StdRng::seed_from_u64(1);
            let r = run_swarm(&instance, &config, &faults, &mut run_rng);
            assert!(r.success, "{policy} must recover at {loss} loss");
            assert!(r.accounts_for_every_token());
            // Even the degraded run is a certified legal schedule.
            let replay = ocd::core::validate::replay(&instance, &r.schedule).unwrap();
            assert!(replay.is_successful());
            let done: Vec<u64> = r.completion_ticks.iter().filter_map(|c| *c).collect();
            let mean = done.iter().sum::<u64>() as f64 / done.len() as f64;
            println!(
                "{:>8}  {:>6.2}  {:>7}  {:>10}  {:>8}  {:>6}  {:>11.1}",
                policy.name(),
                loss,
                r.ticks,
                r.bandwidth(),
                r.retransmits,
                r.duplicate_deliveries,
                mean
            );
        }
    }
    println!("\ncompletion degrades gracefully: retransmits rise, the swarm still finishes");
}
