//! A BitTorrent-flavored swarm: one seed, everyone wants the file,
//! every heuristic compared — including how stale swarm metadata
//! (delayed aggregates) degrades the rarest-first Local strategy.
//!
//! Run with: `cargo run --release --example swarm_download`

use ocd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let topology = ocd::graph::generate::paper_random(60, &mut rng);
    let instance = ocd::core::scenario::single_file(topology, 96, 0);
    println!(
        "swarm: {} peers, {} pieces, seed at peer 0",
        instance.num_vertices(),
        instance.num_tokens()
    );
    println!(
        "lower bounds: {} rounds, {} piece-transfers\n",
        ocd::core::bounds::makespan_lower_bound(&instance),
        ocd::core::bounds::bandwidth_lower_bound(&instance)
    );

    println!(
        "{:>18}  {:>7}  {:>10}  {:>10}  {:>10}",
        "strategy", "rounds", "transfers", "pruned", "mean done"
    );
    for kind in StrategyKind::all() {
        let mut strategy = kind.build();
        let mut run_rng = StdRng::seed_from_u64(1);
        let report = simulate(
            &instance,
            strategy.as_mut(),
            &SimConfig::default(),
            &mut run_rng,
        );
        assert!(report.success, "{kind} must complete the swarm");
        let (pruned, _) = ocd::core::prune::prune(&instance, &report.schedule);
        println!(
            "{:>18}  {:>7}  {:>10}  {:>10}  {:>10.1}",
            kind.name(),
            report.steps,
            report.bandwidth,
            pruned.bandwidth(),
            report.mean_completion().unwrap_or(f64::NAN)
        );
    }

    // Rarest-first under increasingly stale swarm metadata.
    println!("\nLocal (rarest-first) with stale aggregates:");
    println!("{:>8}  {:>7}  {:>10}", "delay", "rounds", "transfers");
    for delay in [0usize, 2, 5, 10] {
        let config = SimConfig {
            knowledge_delay: delay,
            ..Default::default()
        };
        let mut strategy = StrategyKind::Local.build();
        let mut run_rng = StdRng::seed_from_u64(1);
        let report = simulate(&instance, strategy.as_mut(), &config, &mut run_rng);
        assert!(report.success);
        println!(
            "{:>8}  {:>7}  {:>10}",
            delay, report.steps, report.bandwidth
        );
    }
}
