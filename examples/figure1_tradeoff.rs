//! Figure 1, interactively: speed and bandwidth cannot always be
//! optimized together.
//!
//! The exact solvers compute the full makespan/bandwidth Pareto frontier
//! of the paper's Figure 1 instance: finishing in the minimum 2 steps
//! costs 6 token-transfers, while the bandwidth optimum of 4 needs 3
//! steps.
//!
//! Run with: `cargo run --release --example figure1_tradeoff`

use ocd::prelude::*;
use ocd::solver::ip::pareto_frontier;

fn main() {
    let instance = ocd::core::scenario::figure_one();
    println!("the Figure 1 instance:\n{:?}", instance.graph());
    for v in instance.graph().nodes() {
        println!(
            "  vertex {v}: have {:?}, want {:?}",
            instance.have(v),
            instance.want(v)
        );
    }

    // Exact minimum makespan by branch and bound.
    let fastest = solve_focd(&instance, &BnbOptions::default()).expect("satisfiable");
    println!(
        "\nminimum makespan = {} timesteps; that schedule:",
        fastest.makespan
    );
    println!("{}", fastest.schedule);

    // The whole Pareto frontier by the §3.4 time-indexed IP.
    let frontier = pareto_frontier(&instance, 1..=5, &Default::default()).expect("mip ok");
    println!("horizon  →  minimum bandwidth");
    for (tau, bw) in &frontier {
        println!("  {tau} steps  →  {bw} transfers");
    }

    let min_bw = min_bandwidth_for_horizon(&instance, 3, &Default::default())
        .expect("mip ok")
        .expect("feasible at 3 steps");
    println!("\nthe bandwidth-optimal schedule (3 steps, 4 transfers):");
    println!("{}", min_bw.schedule);

    assert_eq!(frontier.first(), Some(&(2, 6)));
    assert_eq!(min_bw.bandwidth, 4);
    println!("→ exactly the paper's caption: (2 steps, 6 bw) vs (3 steps, 4 bw).");
}
