//! Quickstart: model a small overlay, distribute a file with one
//! heuristic, validate the resulting schedule, and print the metrics.
//!
//! Run with: `cargo run --example quickstart`

use ocd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. An overlay: 10 participants in a random mesh, the paper's
    //    G(n, 2 ln n / n) regime with link capacities in 3..=15.
    let mut rng = StdRng::seed_from_u64(42);
    let topology = ocd::graph::generate::paper_random(10, &mut rng);
    println!(
        "overlay: {} nodes, {} arcs, total capacity {}",
        topology.node_count(),
        topology.edge_count(),
        topology.total_capacity()
    );

    // 2. A content-distribution instance: node 0 seeds a 24-token file
    //    that every node wants.
    let instance = ocd::core::scenario::single_file(topology, 24, 0);
    println!(
        "instance: {} tokens to deliver ({} receivers)",
        instance.total_deficiency(),
        instance.stats().receivers
    );

    // 3. Distribute with the rarest-first Local heuristic.
    let mut strategy = StrategyKind::Local.build();
    let report = simulate(
        &instance,
        strategy.as_mut(),
        &SimConfig::default(),
        &mut rng,
    );
    assert!(
        report.success,
        "local heuristic always completes on connected overlays"
    );
    println!(
        "local heuristic: {} timesteps, {} token-transfers",
        report.steps, report.bandwidth
    );

    // 4. Validate the schedule independently (the engine already
    //    enforces the rules; this is what you'd do with an external one).
    let replay = ocd::core::validate::replay(&instance, &report.schedule)
        .expect("engine-produced schedules are valid");
    assert!(replay.is_successful());

    // 5. Prune the §5.1 way and compare against the lower bounds.
    let (pruned, removed) = ocd::core::prune::prune(&instance, &report.schedule);
    println!(
        "pruned bandwidth: {} ({} wasted moves removed)",
        pruned.bandwidth(),
        removed.total_removed()
    );
    println!(
        "bounds: ≥ {} timesteps, ≥ {} token-transfers",
        ocd::core::bounds::makespan_lower_bound(&instance),
        ocd::core::bounds::bandwidth_lower_bound(&instance)
    );
}
