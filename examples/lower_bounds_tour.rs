//! A tour of the paper's §5.1 lower-bound machinery on a crafted
//! instance where each bound mechanism dominates in turn: distance,
//! in-capacity, their combination (the radius bound `M_i(v)`), and the
//! one-step lookahead — plus the §3.3 Steiner bandwidth sandwich,
//! checked against the exact optimum.
//!
//! Run with: `cargo run --release --example lower_bounds_tour`

use ocd::core::bounds::{bandwidth_lower_bound, makespan_lower_bound};
use ocd::prelude::*;
use ocd::solver::steiner::serial_steiner_schedule;

fn main() {
    // A funnel: fat source fan-out, thin last hop.
    //
    //   s ──8──> r1 ──2──> sink      (6 tokens, all wanted by sink)
    //     └─8──> r2 ──2──┘
    let mut g = DiGraph::with_nodes(4);
    let (s, r1, r2, sink) = (g.node(0), g.node(1), g.node(2), g.node(3));
    g.add_edge(s, r1, 8).unwrap();
    g.add_edge(s, r2, 8).unwrap();
    g.add_edge(r1, sink, 2).unwrap();
    g.add_edge(r2, sink, 2).unwrap();
    let instance = Instance::builder(g, 6)
        .have_set(0, TokenSet::full(6))
        .want_set(3, TokenSet::full(6))
        .build()
        .unwrap();

    println!("instance: 6 tokens, s → (r1|r2) → sink, thin 2+2 last hop\n");

    // Distance alone says ≥ 2 (sink is two hops from the source).
    // Capacity alone (radius 0) says ≥ ⌈6/4⌉ = 2.
    // The combined radius bound says ≥ 1 + ⌈6/4⌉ = 3: tokens start two
    // hops away AND must squeeze through 4 units/step of in-capacity.
    let lb = makespan_lower_bound(&instance);
    println!("makespan lower bound (radius bound M_i): {lb}");
    assert_eq!(lb, 3);

    // The exact solver confirms the bound is tight here.
    let exact = solve_focd(&instance, &BnbOptions::default()).unwrap();
    println!(
        "exact minimum makespan:                  {}",
        exact.makespan
    );
    assert_eq!(exact.makespan, 3);

    // Bandwidth: 6 deliveries to the sink is the floor, but every token
    // must also hop through r1 or r2 — the Steiner construction counts
    // that honestly.
    let bw_lb = bandwidth_lower_bound(&instance);
    let steiner = serial_steiner_schedule(&instance).unwrap();
    println!("\nbandwidth lower bound (deficiency):      {bw_lb}");
    println!(
        "Steiner schedule bandwidth (upper):      {}",
        steiner.bandwidth
    );
    let exact_bw = min_bandwidth_for_horizon(&instance, 7, &Default::default())
        .unwrap()
        .expect("feasible")
        .bandwidth;
    println!("exact minimum bandwidth:                 {exact_bw}");
    assert!(bw_lb as u64 <= exact_bw && exact_bw <= steiner.bandwidth);
    println!(
        "\nsandwich: {} ≤ {} ≤ {} — the exact optimum is pinned between the\n\
         §5.1 lower bound and the §3.3 Steiner construction.",
        bw_lb, exact_bw, steiner.bandwidth
    );
}
