//! A CDN-style push over an Internet-like transit-stub topology:
//! regional vertex groups each want a different content bundle, sourced
//! at random origin servers (the paper's §5.3 multi-sender scenario).
//! Compares cautious bandwidth-aware distribution against flooding, and
//! reports per-region completion.
//!
//! Run with: `cargo run --release --example cdn_push`

use ocd::core::scenario::{multi_sender, vertex_partition};
use ocd::graph::generate::{transit_stub, TransitStubConfig};
use ocd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FILES: usize = 8;
const TOKENS: usize = 128;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let config = TransitStubConfig::paper_sized(100);
    let topology = transit_stub(&config, &mut rng);
    let n = topology.node_count();
    println!(
        "transit-stub topology: {} nodes ({} backbone), {} arcs",
        n,
        config.transit_domains * config.transit_nodes,
        topology.edge_count()
    );

    let instance = multi_sender(topology, TOKENS, FILES, &mut rng);
    println!(
        "{FILES} bundles × {} tokens each; {} deliveries required\n",
        TOKENS / FILES,
        instance.total_deficiency()
    );

    let groups = vertex_partition(n, FILES);
    for kind in [
        StrategyKind::Random,
        StrategyKind::Bandwidth,
        StrategyKind::Global,
    ] {
        let mut strategy = kind.build();
        let mut run_rng = StdRng::seed_from_u64(3);
        let report = simulate(
            &instance,
            strategy.as_mut(),
            &SimConfig::default(),
            &mut run_rng,
        );
        assert!(report.success, "{kind} must complete the push");
        let (pruned, _) = ocd::core::prune::prune(&instance, &report.schedule);
        println!(
            "{}: {} rounds, {} transfers ({} after pruning)",
            kind.name(),
            report.steps,
            report.bandwidth,
            pruned.bandwidth()
        );
        // Per-region completion: the slowest vertex of each want-group.
        let mut region_done = [0usize; FILES];
        for (v, done) in report.completion_steps.iter().enumerate() {
            let region = groups[v];
            region_done[region] =
                region_done[region].max(done.expect("successful run completes everyone"));
        }
        let rendered: Vec<String> = region_done
            .iter()
            .enumerate()
            .map(|(r, d)| format!("r{r}:{d}"))
            .collect();
        println!("  region completion rounds: {}\n", rendered.join("  "));
    }

    println!(
        "bounds: ≥ {} rounds, ≥ {} transfers",
        ocd::core::bounds::makespan_lower_bound(&instance),
        ocd::core::bounds::bandwidth_lower_bound(&instance)
    );
}
