//! Distribution over an unreliable, physically-shared network — the
//! paper's §6 open problems in one scenario.
//!
//! A swarm distributes a file while (a) links suffer Markov outages,
//! (b) peers churn in and out, and (c) in a separate comparison, the
//! overlay's links are routed over a shared physical transit-stub
//! network whose capacities the overlay cannot see.
//!
//! Run with: `cargo run --release --example unreliable_network`

use ocd::core::scenario::single_file;
use ocd::graph::generate::{paper_random, transit_stub, TransitStubConfig};
use ocd::graph::underlay::Underlay;
use ocd::graph::NodeId;
use ocd::heuristics::dynamics::{Churn, LinkOutages, StaticNetwork};
use ocd::heuristics::{simulate_dynamic, simulate_underlay, NetworkDynamics};
use ocd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(17);
    let topology = paper_random(40, &mut rng);
    let instance = single_file(topology, 48, 0);
    println!(
        "swarm: {} peers, {} pieces; static bounds: {} rounds / {} transfers\n",
        instance.num_vertices(),
        instance.num_tokens(),
        ocd::core::bounds::makespan_lower_bound(&instance),
        ocd::core::bounds::bandwidth_lower_bound(&instance)
    );

    // (a)+(b): dynamics sweep with the Local heuristic.
    let conditions: Vec<(&str, Box<dyn NetworkDynamics>)> = vec![
        ("static", Box::new(StaticNetwork)),
        (
            "link outages (15%/50%)",
            Box::new(LinkOutages::new(0.15, 0.5)),
        ),
        (
            "churn (8%/40%, seed pinned)",
            Box::new(Churn::new(0.08, 0.4, vec![0])),
        ),
    ];
    for (label, mut model) in conditions {
        let mut strategy = StrategyKind::Local.build();
        let mut run_rng = StdRng::seed_from_u64(5);
        let config = SimConfig {
            max_steps: 5_000,
            ..Default::default()
        };
        let outcome = simulate_dynamic(
            &instance,
            strategy.as_mut(),
            model.as_mut(),
            &config,
            &mut run_rng,
        );
        assert!(outcome.report.success);
        // Independent re-validation against the recorded conditions.
        let replay = ocd::core::validate::replay_with_capacities(
            &instance,
            &outcome.report.schedule,
            &outcome.capacity_trace,
        )
        .expect("dynamic schedule validates");
        assert!(replay.is_successful());
        println!(
            "{label:<28} {} rounds, {} transfers",
            outcome.report.steps, outcome.report.bandwidth
        );
    }

    // (c): the same logical overlay, but riding a real physical network.
    println!("\nphysical-underlay comparison (Global strategy):");
    let ts = TransitStubConfig::paper_sized(120);
    let physical = transit_stub(&ts, &mut rng);
    let backbone = ts.transit_domains * ts.transit_nodes;
    let hosts: Vec<NodeId> = (backbone..backbone + 40).map(NodeId::new).collect();
    let overlay = paper_random(40, &mut rng);
    let underlay = Underlay::new(physical.clone(), hosts).expect("hosts exist");
    let mapping = underlay
        .map_overlay(&overlay)
        .expect("physical net connected");
    let phys_instance = single_file(overlay, 48, 0);

    let mut s1 = StrategyKind::Global.build();
    let mut rng1 = StdRng::seed_from_u64(9);
    let pure = ocd::heuristics::simulate(
        &phys_instance,
        s1.as_mut(),
        &SimConfig::default(),
        &mut rng1,
    );
    let mut s2 = StrategyKind::Global.build();
    let mut rng2 = StdRng::seed_from_u64(9);
    let real = simulate_underlay(
        &phys_instance,
        s2.as_mut(),
        &physical,
        &mapping,
        &SimConfig {
            max_steps: 50_000,
            ..Default::default()
        },
        &mut rng2,
    );
    assert!(pure.success && real.report.success);
    println!(
        "  overlay model:  {} rounds\n  physical truth: {} rounds ({:.1}x, {} proposals rejected, max link stress {})",
        pure.steps,
        real.report.steps,
        real.report.steps as f64 / pure.steps as f64,
        real.total_rejected(),
        mapping.max_stress(physical.edge_count()),
    );
}
