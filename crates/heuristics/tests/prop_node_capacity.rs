//! Differential property tests for the node-capacity medium.
//!
//! 1. A [`NodeCapacity`] whose budgets cover every vertex's full arc
//!    capacity can never bind, so it must be *invisible*: the same
//!    schedule move-for-move as the wrapped [`Ideal`] medium — including
//!    the RNG stream the strategies consume — across random graphs and
//!    all five paper strategies.
//! 2. When budgets genuinely bind, everything the medium admits must
//!    replay cleanly under the budget-enforcing validator, for every
//!    paper strategy (none of which is budget-aware).

use ocd_core::scenario::single_file;
use ocd_core::{validate, Instance, NodeBudgets, Token};
use ocd_heuristics::{simulate, simulate_with, Ideal, NodeCapacity, SimConfig, StrategyKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn slack_budgets_match_ideal_move_for_move(
        seed in 0u64..10_000,
        n in 4usize..14,
        m in 2usize..10,
        kind_idx in 0usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topology = ocd_graph::generate::paper_random(n, &mut rng);
        let instance = single_file(topology.clone(), m, 0);
        let kind = StrategyKind::paper_five()[kind_idx];
        let config = SimConfig {
            max_steps: 200,
            ..Default::default()
        };

        let ideal = {
            let mut strategy = kind.build();
            let mut run_rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
            simulate(&instance, strategy.as_mut(), &config, &mut run_rng)
        };

        // Budgets equal to each vertex's total arc capacity sit exactly
        // on the never-binds boundary: admission must be a no-op.
        let uplink: Vec<u32> = topology
            .nodes()
            .map(|v| {
                topology
                    .out_edges(v)
                    .map(|e| topology.capacity(e))
                    .fold(0u32, u32::saturating_add)
            })
            .collect();
        let downlink: Vec<u32> = topology
            .nodes()
            .map(|v| {
                topology
                    .in_edges(v)
                    .map(|e| topology.capacity(e))
                    .fold(0u32, u32::saturating_add)
            })
            .collect();
        let budgets = NodeBudgets::new(uplink, downlink).unwrap();
        let constrained = {
            let mut strategy = kind.build();
            let mut run_rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
            let mut medium = NodeCapacity::new(Ideal, budgets);
            simulate_with(&instance, strategy.as_mut(), &mut medium, &config, &mut run_rng)
        };

        prop_assert_eq!(
            &constrained.report.schedule,
            &ideal.schedule,
            "{} on seed {} diverged under slack node budgets",
            kind.name(),
            seed
        );
        prop_assert_eq!(constrained.report.success, ideal.success);
        prop_assert_eq!(
            constrained.report.completion_steps.clone(),
            ideal.completion_steps.clone()
        );
    }

    #[test]
    fn binding_budgets_always_replay_cleanly(
        seed in 0u64..10_000,
        n in 4usize..12,
        m in 2usize..8,
        kind_idx in 0usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topology = ocd_graph::generate::paper_random(n, &mut rng);
        let budgets = NodeBudgets::uplink_only(n, 1);
        let instance = Instance::builder(topology, m)
            .have(0, (0..m).map(Token::new))
            .want_all_everywhere()
            .node_budgets(budgets.clone())
            .build()
            .unwrap();
        let kind = StrategyKind::paper_five()[kind_idx];
        let config = SimConfig {
            max_steps: 400,
            ..Default::default()
        };

        let mut strategy = kind.build();
        let mut run_rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let mut medium = NodeCapacity::new(Ideal, budgets);
        let outcome = simulate_with(
            &instance,
            strategy.as_mut(),
            &mut medium,
            &config,
            &mut run_rng,
        );

        // The paper strategies know nothing about budgets, so the
        // medium clips them — but whatever it admits must satisfy the
        // budget-enforcing replay (the same check `certify()` runs).
        let replay = validate::replay(&instance, &outcome.report.schedule);
        prop_assert!(
            replay.is_ok(),
            "{} on seed {} emitted a budget-violating schedule: {:?}",
            kind.name(),
            seed,
            replay.err()
        );
        if outcome.report.success {
            prop_assert!(replay.unwrap().is_successful());
        }
    }
}
