//! Differential property tests pinning the CSR graph rewrite and the
//! sharded planner at the schedule level (mirroring `prop_medium.rs`):
//!
//! 1. A graph built incrementally and the same graph rebuilt through the
//!    bulk `from_edges` path (what serde deserialization runs) must
//!    drive every paper strategy to the byte-identical schedule — the
//!    strategies consume arc iteration order and the RNG in lockstep,
//!    so any divergence in CSR ordering shows up as a different
//!    schedule.
//! 2. The sharded planner must produce the byte-identical schedule for
//!    every shard count, on random and classic topologies alike.

use ocd_core::scenario::single_file;
use ocd_core::{Instance, Schedule};
use ocd_graph::generate::classic;
use ocd_graph::DiGraph;
use ocd_heuristics::{
    simulate, Sharded, ShardedLocal, ShardedRandom, ShardedTreeStripe, SimConfig, Strategy,
    StrategyKind,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(strategy: &mut dyn Strategy, instance: &Instance, seed: u64) -> Schedule {
    let config = SimConfig {
        max_steps: 300,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let report = simulate(instance, strategy, &config, &mut rng);
    assert!(report.success, "{} failed", strategy.name());
    report.schedule
}

/// The instance rebuilt on a serde-round-tripped topology: exercises
/// `DiGraph::from_edges` (reservation, duplicate rejection, CSR rebuild
/// from a cold start) against the incrementally-built original.
fn round_tripped(instance: &Instance) -> Instance {
    let json = serde_json::to_string(instance.graph()).unwrap();
    let g: DiGraph = serde_json::from_str(&json).unwrap();
    assert_eq!(&g, instance.graph());
    let mut builder = Instance::builder(g, instance.num_tokens());
    for v in instance.graph().nodes() {
        builder = builder
            .have_set(v.index(), instance.have(v).clone())
            .want_set(v.index(), instance.want(v).clone());
    }
    builder.build().unwrap()
}

fn classic_topology(idx: usize, n: usize, cap: u32) -> DiGraph {
    match idx % 4 {
        0 => classic::cycle(n.max(3), cap, true),
        1 => classic::path(n.max(2), cap, true),
        2 => classic::complete(n.clamp(3, 8), cap),
        _ => classic::star(n.max(3), cap, true),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bulk_built_graph_schedules_match_incremental_for_all_strategies(
        seed in 0u64..10_000,
        n in 4usize..14,
        m in 2usize..10,
        kind_idx in 0usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topology = ocd_graph::generate::paper_random(n, &mut rng);
        let instance = single_file(topology, m, 0);
        let rebuilt = round_tripped(&instance);
        let kind = StrategyKind::paper_five()[kind_idx];
        let a = run(kind.build().as_mut(), &instance, seed ^ 0xC54);
        let b = run(kind.build().as_mut(), &rebuilt, seed ^ 0xC54);
        prop_assert_eq!(a, b, "{} diverged after round trip", kind);
    }

    #[test]
    fn sharded_schedules_are_shard_count_invariant_on_random_graphs(
        seed in 0u64..10_000,
        n in 4usize..16,
        m in 2usize..10,
        shards in 2usize..6,
        strat_idx in 0usize..3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topology = ocd_graph::generate::paper_random(n, &mut rng);
        let instance = single_file(topology, m, 0);
        let build = |shards: usize| -> Box<dyn Strategy> {
            match strat_idx {
                0 => Box::new(Sharded::new(ShardedRandom::new(), shards)),
                1 => Box::new(Sharded::new(ShardedLocal::new(), shards)),
                _ => Box::new(Sharded::new(ShardedTreeStripe::new(2), shards)),
            }
        };
        let baseline = run(build(1).as_mut(), &instance, seed ^ 0x5A4);
        let sharded = run(build(shards).as_mut(), &instance, seed ^ 0x5A4);
        prop_assert_eq!(baseline, sharded, "shards = {} diverged", shards);
    }

    #[test]
    fn sharded_schedules_are_shard_count_invariant_on_classic_graphs(
        seed in 0u64..10_000,
        topo_idx in 0usize..4,
        n in 3usize..10,
        m in 2usize..8,
        cap in 1u32..4,
    ) {
        let instance = single_file(classic_topology(topo_idx, n, cap), m, 0);
        for build in [
            |s: usize| Box::new(Sharded::new(ShardedRandom::new(), s)) as Box<dyn Strategy>,
            |s: usize| Box::new(Sharded::new(ShardedLocal::new(), s)) as Box<dyn Strategy>,
        ] {
            let baseline = run(build(1).as_mut(), &instance, seed ^ 0x31A);
            let sharded = run(build(4).as_mut(), &instance, seed ^ 0x31A);
            prop_assert_eq!(baseline, sharded);
        }
    }
}
