//! Differential property test for the medium layer: a
//! [`PhysicalUnderlay`] whose physical network *is* the overlay (every
//! overlay arc rides its own dedicated physical arc, the identity
//! mapping) must behave exactly like the [`Ideal`] medium — the same
//! schedule move-for-move, zero rejections — across random graphs and
//! all five paper strategies.
//!
//! This pins the refactored single step loop: admission control that
//! never binds must be invisible, including to the RNG stream the
//! strategies consume.

use ocd_core::scenario::single_file;
use ocd_graph::underlay::Underlay;
use ocd_graph::NodeId;
use ocd_heuristics::{simulate, simulate_underlay, SimConfig, StrategyKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn identity_underlay_matches_ideal_move_for_move(
        seed in 0u64..10_000,
        n in 4usize..14,
        m in 2usize..10,
        kind_idx in 0usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topology = ocd_graph::generate::paper_random(n, &mut rng);
        let instance = single_file(topology.clone(), m, 0);
        let kind = StrategyKind::paper_five()[kind_idx];
        let config = SimConfig {
            max_steps: 200,
            ..Default::default()
        };

        let ideal = {
            let mut strategy = kind.build();
            let mut run_rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
            simulate(&instance, strategy.as_mut(), &config, &mut run_rng)
        };

        // Physical = overlay, hosts = all nodes: the mapping is the
        // identity, so every admission budget equals the overlay
        // capacity the strategy already respects.
        let hosts: Vec<NodeId> = topology.nodes().collect();
        let underlay = Underlay::new(topology.clone(), hosts).unwrap();
        let mapping = underlay.map_overlay(&topology).unwrap();
        let constrained = {
            let mut strategy = kind.build();
            let mut run_rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
            simulate_underlay(
                &instance,
                strategy.as_mut(),
                &topology,
                &mapping,
                &config,
                &mut run_rng,
            )
        };

        prop_assert_eq!(
            &constrained.report.schedule,
            &ideal.schedule,
            "{} on seed {} diverged under the identity underlay",
            kind.name(),
            seed
        );
        prop_assert_eq!(constrained.total_rejected(), 0);
        prop_assert_eq!(constrained.report.success, ideal.success);
        prop_assert_eq!(
            constrained.report.completion_steps.clone(),
            ideal.completion_steps.clone()
        );
    }
}
