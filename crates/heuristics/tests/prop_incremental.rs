//! Property test: the engine's incrementally-maintained aggregate
//! counters must equal [`AggregateKnowledge::compute`] rebuilt from
//! scratch at every step of a run — across random graphs, all five
//! paper strategies, and knowledge delays 0, 1, and 5.
//!
//! The check instruments a run from the inside: a wrapper strategy
//! snapshots the true possession vector each step and compares the
//! aggregates the engine exposes against a from-scratch recomputation
//! on the snapshot from `delay` steps ago (clamped to the start), which
//! is exactly the view [`DelayedAggregates`] pipelines to strategies.

use ocd_core::knowledge::AggregateKnowledge;
use ocd_core::scenario::single_file;
use ocd_core::{Instance, TokenSet};
use ocd_graph::generate::paper_random;
use ocd_graph::EdgeId;
use ocd_heuristics::{simulate, KnowledgeTier, SimConfig, Strategy, StrategyKind, WorldView};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Delegates planning to a real strategy while auditing the aggregates
/// the engine hands out. Failures are recorded, not panicked, so the
/// proptest harness can report the generating inputs.
struct AuditedStrategy {
    inner: Box<dyn Strategy>,
    delay: usize,
    /// `snapshots[i]` = possession at the start of step `i`.
    snapshots: Vec<Vec<TokenSet>>,
    checks: usize,
    mismatch: Option<String>,
}

impl AuditedStrategy {
    fn new(kind: StrategyKind, delay: usize) -> Self {
        AuditedStrategy {
            inner: kind.build(),
            delay,
            snapshots: Vec::new(),
            checks: 0,
            mismatch: None,
        }
    }
}

impl Strategy for AuditedStrategy {
    fn name(&self) -> &'static str {
        "audited"
    }
    fn tier(&self) -> KnowledgeTier {
        self.inner.tier()
    }
    fn reset(&mut self, instance: &Instance) {
        self.snapshots.clear();
        self.checks = 0;
        self.mismatch = None;
        self.inner.reset(instance);
    }
    fn plan_step(
        &mut self,
        view: &WorldView<'_>,
        rng: &mut dyn RngCore,
    ) -> Vec<(EdgeId, TokenSet)> {
        assert_eq!(
            view.step,
            self.snapshots.len(),
            "engine must call plan_step once per step, in order"
        );
        self.snapshots.push(view.possession.to_vec());
        let base = view.step.saturating_sub(self.delay);
        let expected = AggregateKnowledge::compute(
            view.instance.num_tokens(),
            &self.snapshots[base],
            view.instance.want_all(),
        );
        if *view.aggregates != expected {
            self.mismatch.get_or_insert_with(|| {
                format!(
                    "step {} (delay {}): engine aggregates diverge from \
                     compute() on the possession snapshot of step {base}",
                    view.step, self.delay
                )
            });
        }
        self.checks += 1;
        self.inner.plan_step(view, rng)
    }
    fn may_idle(&self, step: usize) -> bool {
        self.inner.may_idle(step)
    }
}

const DELAYS: [usize; 3] = [0, 1, 5];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn incremental_aggregates_match_recompute_at_every_step(
        seed in 0u64..10_000,
        n in 4usize..14,
        m in 2usize..10,
        kind_idx in 0usize..5,
        delay_idx in 0usize..3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topology = paper_random(n, &mut rng);
        let instance = single_file(topology, m, 0);
        let delay = DELAYS[delay_idx];
        let kind = StrategyKind::paper_five()[kind_idx];
        let config = SimConfig {
            max_steps: 80,
            knowledge_delay: delay,
            ..Default::default()
        };

        let mut audited = AuditedStrategy::new(kind, delay);
        let report = simulate(&instance, &mut audited, &config, &mut rng);

        prop_assert!(
            audited.mismatch.is_none(),
            "{} on seed {}: {}",
            kind.name(),
            seed,
            audited.mismatch.as_deref().unwrap_or_default()
        );
        // The audit must actually have run: one check per simulated step
        // (plan_step may be called one extra time on the aborted stall
        // step, so >= rather than ==).
        prop_assert!(
            audited.checks >= report.steps,
            "{} on seed {}: {} checks for {} steps",
            kind.name(),
            seed,
            audited.checks,
            report.steps
        );
    }
}
