//! Physically-constrained simulation (paper §6, "realistic
//! topologies").
//!
//! Overlay links that share a physical link do not have independent
//! capacities. [`simulate_underlay`] runs a strategy through the
//! ordinary engine loop ([`crate::simulate_with`]) under the
//! [`PhysicalUnderlay`] medium: each physical arc has its capacity as
//! a per-step budget, and a token is admitted on an overlay arc only if
//! every physical arc on that overlay arc's path still has budget.
//! Admission is round-robin across overlay arcs (one token per arc per
//! round) so no overlay link starves.
//!
//! The interesting output is the *inflation* of completion time over
//! the pure-overlay model — how optimistic the independence assumption
//! was (see the `table_underlay` experiment).

use crate::engine::{simulate_with, SimConfig, SimReport};
use crate::medium::{Medium, PhysicalUnderlay};
use crate::Strategy;
use ocd_core::{Instance, TokenSet};
use ocd_graph::underlay::OverlayMapping;
use ocd_graph::{DiGraph, EdgeId};
use rand::RngCore;

/// Result of a physically-constrained run.
#[derive(Debug, Clone)]
pub struct UnderlayReport {
    /// The usual metrics; the schedule holds the *admitted* sends.
    pub report: SimReport,
    /// Tokens proposed by the strategy but rejected by admission
    /// control, per step.
    pub rejected_per_step: Vec<u64>,
}

impl UnderlayReport {
    /// Total rejected (overlay-proposed, physically inadmissible) moves.
    #[must_use]
    pub fn total_rejected(&self) -> u64 {
        self.rejected_per_step.iter().sum()
    }
}

/// Clips one proposed timestep to physical feasibility. Returns the
/// admitted sends and the number of rejected token-moves.
///
/// This is [`PhysicalUnderlay::admit`] exposed as a standalone
/// function for analysis code and tests; the engine path goes through
/// the medium directly.
pub fn admit_physical(
    physical: &DiGraph,
    mapping: &OverlayMapping,
    proposed: &[(EdgeId, TokenSet)],
) -> (Vec<(EdgeId, TokenSet)>, u64) {
    let mut medium = PhysicalUnderlay::new(physical, mapping);
    let mut admitted = proposed.to_vec();
    let rejected = medium.admit(&mut admitted);
    (admitted, rejected)
}

/// Runs `strategy` with physical admission control. The strategy plans
/// against the overlay's own (naive) capacities; admission then clips
/// to physical feasibility, so the recorded schedule is valid for the
/// overlay instance *and* physically realizable.
///
/// # Panics
///
/// Panics on strategy contract violations (as [`crate::simulate`]) or a
/// mapping whose path list does not cover the overlay's arcs.
pub fn simulate_underlay(
    instance: &Instance,
    strategy: &mut dyn Strategy,
    physical: &DiGraph,
    mapping: &OverlayMapping,
    config: &SimConfig,
    rng: &mut dyn RngCore,
) -> UnderlayReport {
    let mut medium = PhysicalUnderlay::new(physical, mapping);
    let outcome = simulate_with(instance, strategy, &mut medium, config, rng);
    UnderlayReport {
        report: outcome.report,
        rejected_per_step: outcome.rejected_per_step,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, StrategyKind};
    use ocd_core::scenario::single_file;
    use ocd_core::validate;
    use ocd_core::Token;
    use ocd_graph::generate::classic;
    use ocd_graph::underlay::Underlay;
    use ocd_graph::NodeId;
    use rand::prelude::*;

    /// Physical star: hub router 0, hosts 1..=4 with symmetric cap 2.
    /// Overlay: complete graph on the 4 hosts, each overlay link
    /// believing it has capacity 2.
    fn star_setup() -> (Instance, DiGraph, OverlayMapping) {
        let physical = classic::star(5, 2, true);
        let hosts: Vec<NodeId> = (1..5).map(|i| physical.node(i)).collect();
        let overlay = classic::complete(4, 2);
        let underlay = Underlay::new(physical.clone(), hosts).unwrap();
        let mapping = underlay.map_overlay(&overlay).unwrap();
        let instance = single_file(overlay, 6, 0);
        (instance, physical, mapping)
    }

    #[test]
    fn admission_respects_physical_budgets() {
        let (instance, physical, mapping) = star_setup();
        let g = instance.graph();
        // Host 0 proposes 2 tokens to every other host: 6 proposed
        // moves, but its physical access link (cap 2) admits only 2.
        let full = TokenSet::from_tokens(6, [Token::new(0), Token::new(1)]);
        let proposed: Vec<(EdgeId, TokenSet)> =
            g.out_edges(g.node(0)).map(|e| (e, full.clone())).collect();
        let (admitted, rejected) = admit_physical(&physical, &mapping, &proposed);
        let admitted_moves: u64 = admitted.iter().map(|(_, t)| t.len() as u64).sum();
        assert_eq!(admitted_moves, 2, "access link capacity 2 caps the fan-out");
        assert_eq!(rejected, 4);
    }

    #[test]
    fn round_robin_admission_is_fair() {
        let (instance, physical, mapping) = star_setup();
        let g = instance.graph();
        let full = TokenSet::from_tokens(6, [Token::new(0), Token::new(1)]);
        let proposed: Vec<(EdgeId, TokenSet)> =
            g.out_edges(g.node(0)).map(|e| (e, full.clone())).collect();
        let (admitted, _) = admit_physical(&physical, &mapping, &proposed);
        // The 2 admitted tokens go to 2 *different* overlay arcs.
        assert_eq!(admitted.len(), 2);
        assert!(admitted.iter().all(|(_, t)| t.len() == 1));
    }

    #[test]
    fn physical_constraints_inflate_completion_time() {
        let (instance, physical, mapping) = star_setup();
        let run_overlay = || {
            let mut s = StrategyKind::Global.build();
            let mut rng = StdRng::seed_from_u64(3);
            simulate(&instance, s.as_mut(), &SimConfig::default(), &mut rng)
        };
        let run_physical = || {
            let mut s = StrategyKind::Global.build();
            let mut rng = StdRng::seed_from_u64(3);
            simulate_underlay(
                &instance,
                s.as_mut(),
                &physical,
                &mapping,
                &SimConfig::default(),
                &mut rng,
            )
        };
        let pure = run_overlay();
        let constrained = run_physical();
        assert!(pure.success && constrained.report.success);
        assert!(
            constrained.report.steps > pure.steps,
            "sharing the hub must slow things down ({} vs {})",
            constrained.report.steps,
            pure.steps
        );
        assert!(constrained.total_rejected() > 0);
        // The admitted schedule is still a valid overlay schedule.
        let replay = validate::replay(&instance, &constrained.report.schedule).unwrap();
        assert!(replay.is_successful());
    }

    #[test]
    fn generous_physical_network_changes_nothing() {
        // Physical = overlay (each overlay arc rides its own dedicated
        // physical arc): admission is a no-op.
        let overlay = classic::cycle(5, 2, true);
        let hosts: Vec<NodeId> = overlay.nodes().collect();
        let underlay = Underlay::new(overlay.clone(), hosts).unwrap();
        let mapping = underlay.map_overlay(&overlay).unwrap();
        let instance = single_file(overlay.clone(), 4, 0);
        let mut s1 = StrategyKind::Local.build();
        let mut rng1 = StdRng::seed_from_u64(9);
        let pure = simulate(&instance, s1.as_mut(), &SimConfig::default(), &mut rng1);
        let mut s2 = StrategyKind::Local.build();
        let mut rng2 = StdRng::seed_from_u64(9);
        let constrained = simulate_underlay(
            &instance,
            s2.as_mut(),
            &overlay,
            &mapping,
            &SimConfig::default(),
            &mut rng2,
        );
        assert_eq!(pure.schedule, constrained.report.schedule);
        assert_eq!(constrained.total_rejected(), 0);
    }
}
