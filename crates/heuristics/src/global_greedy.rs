//! The Global heuristic (§5.1).
//!
//! "In addition to the aggregate vector, vertices have the ability to
//! coordinate across each other at each timestep to ensure that they
//! maximize diversity. This also alleviates the need for vertices to
//! request tokens from other vertices since there is global
//! coordination. Our implementation of this technique applies a greedy
//! selection algorithm over the set of tokens and edges, and is thus not
//! guaranteed to maximize diversity."
//!
//! The greedy pass visits arcs in a random order each step and fills
//! each arc's capacity with the best not-yet-scheduled deliveries for
//! its destination, ranked: directly wanted first, then tokens still
//! needed somewhere (useful relays), then everything else; within a
//! class, rarest first. Coordination means a token is scheduled for a
//! given destination at most once per step — the duplicate sends that
//! plague the uncoordinated heuristics cannot happen.

use crate::{KnowledgeTier, Strategy, WorldView};
use ocd_core::{Instance, Token, TokenSet};
use ocd_graph::EdgeId;
use rand::seq::SliceRandom;
use rand::{Rng, RngCore};

/// Centrally-coordinated greedy diversity maximization.
#[derive(Debug, Default)]
pub struct GlobalGreedy {
    /// Ablation: ignore aggregate rarity when ranking candidate tokens
    /// (class ordering and random tie-breaks only). Quantifies how much
    /// of the Global heuristic's edge comes from rarity-awareness
    /// versus pure same-step coordination (see `table_ablation`).
    no_rarity: bool,
}

impl GlobalGreedy {
    /// Creates the strategy with rarity-aware ranking.
    #[must_use]
    pub fn new() -> Self {
        GlobalGreedy::default()
    }

    /// Ablated variant that ignores rarity.
    #[must_use]
    pub fn without_rarity() -> Self {
        GlobalGreedy { no_rarity: true }
    }
}

impl Strategy for GlobalGreedy {
    fn name(&self) -> &'static str {
        if self.no_rarity {
            "global-norarity"
        } else {
            "global"
        }
    }

    fn tier(&self) -> KnowledgeTier {
        KnowledgeTier::Global
    }

    fn reset(&mut self, _instance: &Instance) {}

    fn plan_step(
        &mut self,
        view: &WorldView<'_>,
        rng: &mut dyn RngCore,
    ) -> Vec<(EdgeId, TokenSet)> {
        let g = view.graph();
        let m = view.instance.num_tokens();
        let n = g.node_count();

        // Tokens already scheduled for delivery to each vertex this step.
        let mut scheduled: Vec<TokenSet> = vec![TokenSet::new(m); n];
        let mut order: Vec<EdgeId> = g.edge_ids().collect();
        order.shuffle(rng);

        let mut out = Vec::new();
        for e in order {
            let arc = g.edge(e);
            let cap = view.capacity(e) as usize;
            if cap == 0 {
                continue;
            }
            let mut candidates =
                view.possession[arc.src.index()].difference(&view.possession[arc.dst.index()]);
            candidates.subtract(&scheduled[arc.dst.index()]);
            if candidates.is_empty() {
                continue;
            }
            let want = view.instance.want(arc.dst);
            let mut ranked: Vec<(u8, u32, u32, Token)> = candidates
                .iter()
                .map(|t| {
                    let class = if want.contains(t) {
                        0
                    } else if view.aggregates.is_needed(t) {
                        1
                    } else {
                        2
                    };
                    let rarity = if self.no_rarity {
                        0
                    } else {
                        view.aggregates.rarity(t)
                    };
                    (class, rarity, rng.random::<u32>(), t)
                })
                .collect();
            ranked.sort_unstable();
            let mut send = TokenSet::new(m);
            for (_, _, _, t) in ranked.into_iter().take(cap) {
                send.insert(t);
                scheduled[arc.dst.index()].insert(t);
            }
            out.push((e, send));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, SimConfig};
    use ocd_core::scenario::{multi_sender, single_file};
    use ocd_core::validate;
    use ocd_graph::generate::classic;
    use ocd_graph::DiGraph;
    use rand::prelude::*;

    #[test]
    fn no_same_step_duplicate_deliveries() {
        // Two holders feeding one receiver with generous capacity: the
        // coordinated greedy must not deliver the same token twice in the
        // same step.
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(g.node(0), g.node(2), 10).unwrap();
        g.add_edge(g.node(1), g.node(2), 10).unwrap();
        let instance = ocd_core::Instance::builder(g, 4)
            .have_set(0, TokenSet::full(4))
            .have_set(1, TokenSet::full(4))
            .want_set(2, TokenSet::full(4))
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let report = simulate(
            &instance,
            &mut GlobalGreedy::new(),
            &SimConfig::default(),
            &mut rng,
        );
        assert!(report.success);
        assert_eq!(report.steps, 1);
        assert_eq!(report.bandwidth, 4, "each token delivered exactly once");
    }

    #[test]
    fn completes_and_validates_on_single_file() {
        let instance = single_file(classic::cycle(10, 3, true), 16, 0);
        let mut rng = StdRng::seed_from_u64(2);
        let report = simulate(
            &instance,
            &mut GlobalGreedy::new(),
            &SimConfig::default(),
            &mut rng,
        );
        assert!(report.success);
        assert!(validate::replay(&instance, &report.schedule)
            .unwrap()
            .is_successful());
    }

    #[test]
    fn prioritizes_directly_wanted_tokens() {
        // Source holds tokens {0, 1}; arc capacity 1; receiver wants only
        // token 1. Greedy must deliver token 1 in step 1.
        let g = classic::path(2, 1, false);
        let instance = ocd_core::Instance::builder(g, 2)
            .have(0, [Token::new(0), Token::new(1)])
            .want(1, [Token::new(1)])
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let report = simulate(
            &instance,
            &mut GlobalGreedy::new(),
            &SimConfig::default(),
            &mut rng,
        );
        assert!(report.success);
        assert_eq!(report.steps, 1);
        let first = &report.schedule.steps()[0];
        let sent = first.sends().next().unwrap().1;
        assert!(sent.contains(Token::new(1)));
    }

    #[test]
    fn no_rarity_ablation_completes() {
        let instance = single_file(classic::cycle(10, 3, true), 16, 0);
        let mut rng = StdRng::seed_from_u64(5);
        let report = simulate(
            &instance,
            &mut GlobalGreedy::without_rarity(),
            &SimConfig::default(),
            &mut rng,
        );
        assert!(report.success);
        assert_eq!(GlobalGreedy::without_rarity().name(), "global-norarity");
    }

    #[test]
    fn multi_sender_scenario_completes() {
        let mut rng = StdRng::seed_from_u64(4);
        let instance = multi_sender(classic::cycle(12, 4, true), 24, 4, &mut rng);
        let report = simulate(
            &instance,
            &mut GlobalGreedy::new(),
            &SimConfig::default(),
            &mut rng,
        );
        assert!(report.success);
    }
}
