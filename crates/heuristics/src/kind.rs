//! Enumeration of the built-in strategies, for experiment drivers and
//! the CLI.

use crate::{
    BandwidthCautious, GatherThenPlan, GlobalGreedy, LocalRarest, PerNeighborQueue, RandomUseful,
    RoundRobin, Strategy,
};
use std::fmt;
use std::str::FromStr;

/// The built-in strategies by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum StrategyKind {
    /// [`RoundRobin`]
    RoundRobin,
    /// [`RandomUseful`]
    Random,
    /// [`LocalRarest`]
    Local,
    /// [`BandwidthCautious`]
    Bandwidth,
    /// [`GlobalGreedy`]
    Global,
    /// [`GatherThenPlan`] wrapping [`GlobalGreedy`]
    GatherThenPlan,
    /// [`PerNeighborQueue`]
    PerNeighborQueue,
}

impl StrategyKind {
    /// The paper's five evaluated heuristics, in the order its figures
    /// list them.
    #[must_use]
    pub fn paper_five() -> [StrategyKind; 5] {
        [
            StrategyKind::RoundRobin,
            StrategyKind::Random,
            StrategyKind::Local,
            StrategyKind::Bandwidth,
            StrategyKind::Global,
        ]
    }

    /// Every built-in strategy.
    #[must_use]
    pub fn all() -> [StrategyKind; 7] {
        [
            StrategyKind::RoundRobin,
            StrategyKind::Random,
            StrategyKind::Local,
            StrategyKind::Bandwidth,
            StrategyKind::Global,
            StrategyKind::GatherThenPlan,
            StrategyKind::PerNeighborQueue,
        ]
    }

    /// Instantiates the strategy.
    #[must_use]
    pub fn build(self) -> Box<dyn Strategy> {
        match self {
            StrategyKind::RoundRobin => Box::new(RoundRobin::new()),
            StrategyKind::Random => Box::new(RandomUseful::new()),
            StrategyKind::Local => Box::new(LocalRarest::new()),
            StrategyKind::Bandwidth => Box::new(BandwidthCautious::new()),
            StrategyKind::Global => Box::new(GlobalGreedy::new()),
            StrategyKind::GatherThenPlan => Box::new(GatherThenPlan::new()),
            StrategyKind::PerNeighborQueue => Box::new(PerNeighborQueue::new()),
        }
    }

    /// The display/CLI name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::RoundRobin => "round-robin",
            StrategyKind::Random => "random",
            StrategyKind::Local => "local",
            StrategyKind::Bandwidth => "bandwidth",
            StrategyKind::Global => "global",
            StrategyKind::GatherThenPlan => "gather-then-plan",
            StrategyKind::PerNeighborQueue => "per-neighbor-queue",
        }
    }
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error for unknown strategy names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownStrategy(String);

impl fmt::Display for UnknownStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown strategy `{}` (expected one of: round-robin, random, local, bandwidth, global, gather-then-plan, per-neighbor-queue)",
            self.0
        )
    }
}

impl std::error::Error for UnknownStrategy {}

impl FromStr for StrategyKind {
    type Err = UnknownStrategy;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "round-robin" | "roundrobin" | "rr" => Ok(StrategyKind::RoundRobin),
            "random" => Ok(StrategyKind::Random),
            "local" | "rarest" => Ok(StrategyKind::Local),
            "bandwidth" | "bw" => Ok(StrategyKind::Bandwidth),
            "global" => Ok(StrategyKind::Global),
            "gather-then-plan" | "gather" => Ok(StrategyKind::GatherThenPlan),
            "per-neighbor-queue" | "pnq" => Ok(StrategyKind::PerNeighborQueue),
            other => Err(UnknownStrategy(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, SimConfig};
    use ocd_core::scenario::single_file;
    use ocd_core::validate;
    use ocd_graph::generate::classic;
    use rand::prelude::*;

    #[test]
    fn names_round_trip_through_fromstr() {
        for kind in StrategyKind::all() {
            assert_eq!(kind.name().parse::<StrategyKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.name());
        }
    }

    #[test]
    fn aliases_parse() {
        assert_eq!(
            "rr".parse::<StrategyKind>().unwrap(),
            StrategyKind::RoundRobin
        );
        assert_eq!(
            "bw".parse::<StrategyKind>().unwrap(),
            StrategyKind::Bandwidth
        );
        assert_eq!(
            "rarest".parse::<StrategyKind>().unwrap(),
            StrategyKind::Local
        );
        assert_eq!(
            "pnq".parse::<StrategyKind>().unwrap(),
            StrategyKind::PerNeighborQueue
        );
    }

    #[test]
    fn paper_five_is_stable() {
        // Figure binaries iterate exactly the paper's five heuristics;
        // new strategies join `all()` without disturbing them.
        assert_eq!(StrategyKind::paper_five().len(), 5);
        assert!(!StrategyKind::paper_five().contains(&StrategyKind::PerNeighborQueue));
    }

    #[test]
    fn unknown_name_errors_with_hint() {
        let err = "bogus".parse::<StrategyKind>().unwrap_err();
        assert!(err.to_string().contains("bogus"));
        assert!(err.to_string().contains("round-robin"));
    }

    #[test]
    fn every_builtin_completes_a_small_single_file_run() {
        let instance = single_file(classic::cycle(7, 3, true), 9, 0);
        for kind in StrategyKind::all() {
            let mut strategy = kind.build();
            let mut rng = StdRng::seed_from_u64(42);
            let report = simulate(
                &instance,
                strategy.as_mut(),
                &SimConfig::default(),
                &mut rng,
            );
            assert!(report.success, "{kind} failed");
            let replay = validate::replay(&instance, &report.schedule)
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert!(replay.is_successful(), "{kind} schedule not successful");
            assert!(
                report.bandwidth >= instance.total_deficiency(),
                "{kind} beat the bandwidth lower bound"
            );
        }
    }

    #[test]
    fn builders_report_consistent_names() {
        for kind in StrategyKind::all() {
            assert_eq!(kind.build().name(), kind.name());
        }
    }
}
