//! The Round Robin heuristic (§5.1).
//!
//! "The round-robin strategy simply sends the circular queue of tokens
//! over each link (skipping tokens it does not have). This is the
//! simplest of the heuristics, and can easily be computed locally as no
//! information other than the set of tokens kept locally and the last
//! token sent to each peer. While simple, this strategy suffers from
//! sending tokens multiple times to peers and of duplicating sends that
//! other peers have also sent."

use crate::{KnowledgeTier, Strategy, WorldView};
use ocd_core::{Instance, Token, TokenSet};
use ocd_graph::EdgeId;
use rand::RngCore;

/// Round Robin: per out-arc circular cursor over the token universe;
/// each step every arc carries the next `capacity` tokens the sender
/// possesses. No peer knowledge at all, so the same token is re-sent to
/// peers that already have it.
#[derive(Debug, Default)]
pub struct RoundRobin {
    /// Per-edge cursor: the token index to start scanning from.
    cursors: Vec<u32>,
}

impl RoundRobin {
    /// Creates a fresh Round Robin strategy.
    #[must_use]
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl Strategy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn tier(&self) -> KnowledgeTier {
        KnowledgeTier::LocalOnly
    }

    fn reset(&mut self, instance: &Instance) {
        self.cursors = vec![0; instance.graph().edge_count()];
    }

    fn plan_step(
        &mut self,
        view: &WorldView<'_>,
        _rng: &mut dyn RngCore,
    ) -> Vec<(EdgeId, TokenSet)> {
        let g = view.graph();
        let m = view.instance.num_tokens();
        let mut out = Vec::new();
        for e in g.edge_ids() {
            let arc = g.edge(e);
            let cap = view.capacity(e) as usize;
            let mine = &view.possession[arc.src.index()];
            if cap == 0 || mine.is_empty() {
                continue;
            }
            let count = cap.min(mine.len());
            let mut send = TokenSet::new(m);
            let mut cursor = Token::new(self.cursors[e.index()] as usize % m.max(1));
            for _ in 0..count {
                let t = mine
                    .next_cyclic(cursor)
                    .expect("non-empty set always yields a next token");
                send.insert(t);
                cursor = Token::new((t.index() + 1) % m);
            }
            self.cursors[e.index()] = cursor.index() as u32;
            out.push((e, send));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, SimConfig};
    use ocd_core::scenario::single_file;
    use ocd_core::validate;
    use ocd_graph::generate::classic;
    use rand::prelude::*;

    #[test]
    fn cycles_through_all_tokens_on_one_link() {
        // Single arc of capacity 2, 5 tokens: steps send {0,1}, {2,3},
        // {4,0}, ...
        let instance = single_file(classic::path(2, 2, false), 5, 0);
        let mut rr = RoundRobin::new();
        rr.reset(&instance);
        let possession = instance.have_all().to_vec();
        let aggregates =
            ocd_core::knowledge::AggregateKnowledge::compute(5, &possession, instance.want_all());
        let mut rng = StdRng::seed_from_u64(0);
        let view = WorldView {
            instance: &instance,
            possession: &possession,
            aggregates: &aggregates,
            step: 0,
            capacities: None,
        };
        let s1 = rr.plan_step(&view, &mut rng);
        assert_eq!(s1.len(), 1);
        let tokens1: Vec<usize> = s1[0].1.iter().map(Token::index).collect();
        assert_eq!(tokens1, vec![0, 1]);
        let s2 = rr.plan_step(&view, &mut rng);
        let tokens2: Vec<usize> = s2[0].1.iter().map(Token::index).collect();
        assert_eq!(tokens2, vec![2, 3]);
        let s3 = rr.plan_step(&view, &mut rng);
        let tokens3: Vec<usize> = s3[0].1.iter().map(Token::index).collect();
        assert_eq!(tokens3, vec![0, 4], "wraps around the universe");
    }

    #[test]
    fn completes_single_file_distribution() {
        let instance = single_file(classic::cycle(6, 3, true), 10, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let report = simulate(
            &instance,
            &mut RoundRobin::new(),
            &SimConfig::default(),
            &mut rng,
        );
        assert!(report.success);
        assert!(validate::replay(&instance, &report.schedule)
            .unwrap()
            .is_successful());
        // Round robin keeps re-sending: bandwidth strictly exceeds the
        // lower bound on any non-trivial multi-hop topology.
        assert!(report.bandwidth > instance.total_deficiency());
    }

    #[test]
    fn skips_tokens_it_does_not_have() {
        // Vertex 0 has only token 3 of 6.
        let g = classic::path(2, 2, false);
        let instance = ocd_core::Instance::builder(g, 6)
            .have(0, [Token::new(3)])
            .want(1, [Token::new(3)])
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let report = simulate(
            &instance,
            &mut RoundRobin::new(),
            &SimConfig::default(),
            &mut rng,
        );
        assert!(report.success);
        assert_eq!(report.steps, 1);
        assert_eq!(report.bandwidth, 1, "only the single held token is sent");
    }

    #[test]
    fn is_deterministic() {
        let instance = single_file(classic::cycle(5, 2, true), 7, 0);
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            simulate(
                &instance,
                &mut RoundRobin::new(),
                &SimConfig::default(),
                &mut rng,
            )
            .schedule
        };
        assert_eq!(run(1), run(99), "round robin ignores the RNG entirely");
    }
}
