//! The strategy interface and the world view handed to strategies.

use ocd_core::knowledge::AggregateKnowledge;
use ocd_core::{Instance, TokenSet};
use ocd_graph::{DiGraph, EdgeId, NodeId};
use rand::RngCore;
use std::fmt;

/// How much of the system state a strategy reads — the §4.1 "knowledge"
/// ladder. The engine computes everything and exposes it through
/// [`WorldView`]; a strategy's tier documents (and its implementation
/// honours) which accessors it touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnowledgeTier {
    /// Only the vertex's own have/want sets and incident arcs.
    LocalOnly,
    /// Plus the current possession of direct peers (the paper's Random
    /// heuristic assumes "peers have current knowledge about the tokens
    /// known by each of their peers at the beginning of the turn").
    PeerState,
    /// Plus the global per-token aggregates of §5.1 (possibly delayed).
    Aggregates,
    /// Full global state (the Bandwidth and Global heuristics).
    Global,
}

impl fmt::Display for KnowledgeTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            KnowledgeTier::LocalOnly => "local-only",
            KnowledgeTier::PeerState => "peer-state",
            KnowledgeTier::Aggregates => "aggregates",
            KnowledgeTier::Global => "global",
        })
    }
}

/// Read-only snapshot of the simulation at the start of a timestep.
#[derive(Debug)]
pub struct WorldView<'a> {
    /// The instance being distributed.
    pub instance: &'a Instance,
    /// True possession `p_i(v)` of every vertex at the start of the step.
    pub possession: &'a [TokenSet],
    /// The aggregate knowledge visible this step (delayed by the engine's
    /// configured propagation lag).
    pub aggregates: &'a AggregateKnowledge,
    /// 0-based step index.
    pub step: usize,
    /// Effective per-arc capacity *this step*, indexed by
    /// [`EdgeId::index`]. Equal to the graph's static capacities in
    /// ordinary runs; under [`dynamics`](crate::dynamics) a capacity may
    /// differ or be 0 (link down). `None` means "use the graph's static
    /// capacities" — strategies must read capacities through
    /// [`WorldView::capacity`], never from the graph directly.
    pub capacities: Option<&'a [u32]>,
}

impl WorldView<'_> {
    /// The overlay graph.
    #[must_use]
    pub fn graph(&self) -> &DiGraph {
        self.instance.graph()
    }

    /// Effective capacity of arc `e` at this timestep (0 = unusable).
    #[must_use]
    pub fn capacity(&self, e: EdgeId) -> u32 {
        match self.capacities {
            Some(caps) => caps[e.index()],
            None => self.instance.graph().capacity(e),
        }
    }

    /// Current possession of `v`.
    #[must_use]
    pub fn possession_of(&self, v: NodeId) -> &TokenSet {
        &self.possession[v.index()]
    }

    /// Tokens `v` still needs: `w(v) \ p_i(v)`.
    #[must_use]
    pub fn need_of(&self, v: NodeId) -> TokenSet {
        self.instance
            .want(v)
            .difference(&self.possession[v.index()])
    }

    /// Whether every vertex is satisfied.
    #[must_use]
    pub fn all_satisfied(&self) -> bool {
        self.graph()
            .nodes()
            .all(|v| self.instance.want(v).is_subset(&self.possession[v.index()]))
    }
}

/// A per-timestep decision procedure: given the visible state, assign
/// token sets to arcs.
///
/// Contract (checked by the engine with panics, since violations are
/// strategy bugs, not data errors):
///
/// - every returned set must satisfy `s ⊆ p_i(src)`, `|s| ≤ capacity`;
/// - arcs may appear at most once per step (duplicates are unioned by
///   the schedule, which could then exceed capacity).
pub trait Strategy {
    /// Human-readable name used in experiment output.
    fn name(&self) -> &'static str;

    /// The knowledge tier this strategy operates at.
    fn tier(&self) -> KnowledgeTier;

    /// Called once before a simulation starts; (re)initializes internal
    /// state for the given instance.
    fn reset(&mut self, instance: &Instance);

    /// Plans the sends of one timestep.
    fn plan_step(&mut self, view: &WorldView<'_>, rng: &mut dyn RngCore)
        -> Vec<(EdgeId, TokenSet)>;

    /// Whether the strategy may legitimately make zero moves while wants
    /// remain unsatisfied at `step` (e.g. a knowledge-gathering phase).
    /// The engine treats an idle step from a strategy that answers
    /// `false` as a stall and aborts the run.
    fn may_idle(&self, step: usize) -> bool {
        let _ = step;
        false
    }
}

impl fmt::Debug for dyn Strategy + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Strategy({})", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocd_core::scenario::single_file;
    use ocd_graph::generate::classic;

    #[test]
    fn world_view_helpers() {
        let instance = single_file(classic::path(3, 1, true), 2, 0);
        let possession: Vec<TokenSet> = instance.have_all().to_vec();
        let aggregates = AggregateKnowledge::compute(2, &possession, instance.want_all());
        let view = WorldView {
            instance: &instance,
            possession: &possession,
            aggregates: &aggregates,
            step: 0,
            capacities: None,
        };
        let v1 = instance.graph().node(1);
        assert_eq!(view.need_of(v1).len(), 2);
        assert!(view.possession_of(v1).is_empty());
        assert!(!view.all_satisfied());
        assert_eq!(view.graph().node_count(), 3);
    }

    #[test]
    fn tier_display() {
        assert_eq!(KnowledgeTier::LocalOnly.to_string(), "local-only");
        assert_eq!(KnowledgeTier::Global.to_string(), "global");
    }
}
