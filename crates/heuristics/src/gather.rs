//! The §4.2 gather-then-plan scheme.
//!
//! "It is possible for an on-line algorithm to always perform within an
//! additive factor of the diameter of the graph … since with this many
//! steps at the start of computation, full information about the state
//! of the graph can be propagated to each vertex. Armed with this
//! knowledge, each vertex can compute an optimal solution for the entire
//! graph (deterministically), then follow this schedule."
//!
//! This wrapper idles for `diameter` steps (modelling the knowledge
//! flood — knowledge messages are control traffic, not token bandwidth)
//! and then delegates to an inner coordinated strategy. With an exact
//! inner planner this realizes the additive-diameter bound exactly; with
//! the [`GlobalGreedy`](crate::GlobalGreedy) default it is the practical
//! approximation.

use crate::{GlobalGreedy, KnowledgeTier, Strategy, WorldView};
use ocd_core::{Instance, TokenSet};
use ocd_graph::{algo, EdgeId};
use rand::RngCore;

/// Idle for the graph diameter, then run a coordinated strategy.
#[derive(Debug)]
pub struct GatherThenPlan<S = GlobalGreedy> {
    inner: S,
    gather_steps: usize,
}

impl GatherThenPlan<GlobalGreedy> {
    /// Gather, then run the global greedy heuristic.
    #[must_use]
    pub fn new() -> Self {
        GatherThenPlan {
            inner: GlobalGreedy::new(),
            gather_steps: 0,
        }
    }
}

impl Default for GatherThenPlan<GlobalGreedy> {
    fn default() -> Self {
        GatherThenPlan::new()
    }
}

impl<S: Strategy> GatherThenPlan<S> {
    /// Gather, then run `inner`.
    #[must_use]
    pub fn with_inner(inner: S) -> Self {
        GatherThenPlan {
            inner,
            gather_steps: 0,
        }
    }

    /// Steps spent gathering (the diameter computed at reset).
    #[must_use]
    pub fn gather_steps(&self) -> usize {
        self.gather_steps
    }
}

impl<S: Strategy> Strategy for GatherThenPlan<S> {
    fn name(&self) -> &'static str {
        "gather-then-plan"
    }

    fn tier(&self) -> KnowledgeTier {
        // After the gather phase the knowledge genuinely is global; the
        // scheme's point is that it got there through local exchange.
        KnowledgeTier::Aggregates
    }

    fn reset(&mut self, instance: &Instance) {
        // Knowledge travels bidirectionally along edges (§4.1), so the
        // gather phase needs the diameter of the symmetrized graph. Fall
        // back to n - 1 (the worst case) if even that is disconnected.
        let g = instance.graph();
        let mut sym = g.clone();
        for e in g.edges() {
            let _ = sym.add_edge(e.dst, e.src, e.capacity);
        }
        self.gather_steps = algo::diameter(&sym)
            .map(|d| d as usize)
            .unwrap_or_else(|| g.node_count().saturating_sub(1));
        self.inner.reset(instance);
    }

    fn plan_step(
        &mut self,
        view: &WorldView<'_>,
        rng: &mut dyn RngCore,
    ) -> Vec<(EdgeId, TokenSet)> {
        if view.step < self.gather_steps {
            Vec::new()
        } else {
            self.inner.plan_step(view, rng)
        }
    }

    fn may_idle(&self, step: usize) -> bool {
        step < self.gather_steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, SimConfig};
    use ocd_core::scenario::single_file;
    use ocd_graph::generate::classic;
    use rand::prelude::*;

    #[test]
    fn idles_exactly_diameter_steps_then_distributes() {
        let instance = single_file(classic::cycle(6, 3, true), 4, 0);
        // Symmetric 6-cycle has diameter 3.
        let mut strategy = GatherThenPlan::new();
        let mut rng = StdRng::seed_from_u64(1);
        let report = simulate(&instance, &mut strategy, &SimConfig::default(), &mut rng);
        assert!(report.success);
        assert_eq!(strategy.gather_steps(), 3);
        for step in report.schedule.steps().iter().take(3) {
            assert!(step.is_empty(), "gather phase moves no tokens");
        }
        assert!(!report.schedule.steps()[3].is_empty());
        // Additive overhead: inner strategy alone would finish in
        // report.steps - 3.
    }

    #[test]
    fn pays_only_additive_overhead_versus_inner() {
        let instance = single_file(classic::cycle(8, 4, true), 6, 0);
        let mut rng = StdRng::seed_from_u64(2);
        let inner_only = simulate(
            &instance,
            &mut GlobalGreedy::new(),
            &SimConfig::default(),
            &mut rng,
        );
        let mut wrapped = GatherThenPlan::new();
        let mut rng2 = StdRng::seed_from_u64(2);
        let gathered = simulate(&instance, &mut wrapped, &SimConfig::default(), &mut rng2);
        assert!(inner_only.success && gathered.success);
        assert_eq!(
            gathered.steps,
            inner_only.steps + wrapped.gather_steps(),
            "same plan shifted by the gather phase (same RNG seed)"
        );
        assert_eq!(gathered.bandwidth, inner_only.bandwidth);
    }

    #[test]
    fn directed_asymmetric_graph_uses_symmetrized_diameter() {
        // Directed 4-cycle: directed diameter 3, but knowledge flows both
        // ways so the gather phase needs only 2 steps... the symmetrized
        // 4-cycle has diameter 2.
        let instance = single_file(classic::cycle(4, 2, false), 2, 0);
        let mut strategy = GatherThenPlan::new();
        let mut rng = StdRng::seed_from_u64(3);
        let report = simulate(&instance, &mut strategy, &SimConfig::default(), &mut rng);
        assert!(report.success);
        assert_eq!(strategy.gather_steps(), 2);
    }
}
