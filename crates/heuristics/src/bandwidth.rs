//! The Bandwidth heuristic (§5.1).
//!
//! "An online heuristic, albeit with global knowledge, which more
//! cautiously adds tokens to a move. This bandwidth heuristic is
//! designed on the principle that each vertex shall obtain from its
//! peers in its next turn only tokens that it will eventually use. We
//! then determine whether a vertex will use the token by i) if it needs
//! the token, or ii) if it is the closest one-hop-knowledge vertex to a
//! node that needs it. A one-hop-knowledge vertex is one which for a
//! given token, *could* obtain the token in a single turn given the
//! opportunity."
//!
//! Implementation notes: decisions are receiver-driven. For every token
//! still needed somewhere, the vertices entitled to receive it this turn
//! are (i) every needy vertex with a holding in-neighbor and (ii) the
//! single closest one-hop-knowledge vertex (hop distance to the nearest
//! needy vertex, ties to the lowest id) when some needy vertex has no
//! holding in-neighbor yet — the relay that walks the token toward
//! distant demand without flooding. Each receiver then picks one holding
//! in-neighbor per token, least-loaded first, within arc capacities.

use crate::{KnowledgeTier, Strategy, WorldView};
use ocd_core::{Instance, Token, TokenSet};
use ocd_graph::{EdgeId, NodeId};
use rand::RngCore;
use std::collections::VecDeque;

/// The cautious, bandwidth-minimizing online heuristic.
#[derive(Debug, Default)]
pub struct BandwidthCautious {
    /// Ablation: relay via a *single* globally-closest one-hop vertex
    /// per token per step instead of one relay per distant needy vertex.
    /// Cheaper in bandwidth on paper, but serializes progress toward
    /// demand clusters in different directions (see `table_ablation`).
    single_relay: bool,
}

impl BandwidthCautious {
    /// Creates the strategy with the paper's per-needy-vertex relays.
    #[must_use]
    pub fn new() -> Self {
        BandwidthCautious::default()
    }

    /// Ablated variant: one relay per token per step.
    #[must_use]
    pub fn with_single_relay() -> Self {
        BandwidthCautious { single_relay: true }
    }
}

impl Strategy for BandwidthCautious {
    fn name(&self) -> &'static str {
        if self.single_relay {
            "bandwidth-1relay"
        } else {
            "bandwidth"
        }
    }

    fn tier(&self) -> KnowledgeTier {
        KnowledgeTier::Global
    }

    fn reset(&mut self, _instance: &Instance) {}

    fn plan_step(
        &mut self,
        view: &WorldView<'_>,
        rng: &mut dyn RngCore,
    ) -> Vec<(EdgeId, TokenSet)> {
        let g = view.graph();
        let n = g.node_count();
        let m = view.instance.num_tokens();

        // Receivers per vertex: tokens the vertex shall obtain this turn.
        let mut to_obtain: Vec<TokenSet> = vec![TokenSet::new(m); n];

        for ti in 0..m {
            let token = Token::new(ti);
            // Needy vertices: want it, lack it.
            let needy: Vec<NodeId> = g
                .nodes()
                .filter(|&v| {
                    view.instance.want(v).contains(token)
                        && !view.possession[v.index()].contains(token)
                })
                .collect();
            if needy.is_empty() {
                continue;
            }
            // One-hop-knowledge vertices: lack it, but an in-neighbor has it.
            let one_hop = |v: NodeId| {
                !view.possession[v.index()].contains(token)
                    && g.in_edges(v).any(|e| {
                        view.capacity(e) > 0
                            && view.possession[g.edge(e).src.index()].contains(token)
                    })
            };
            // Rule (i): needy vertices that can already obtain it.
            let mut distant: Vec<NodeId> = Vec::new();
            for &z in &needy {
                if one_hop(z) {
                    to_obtain[z.index()].insert(token);
                } else {
                    distant.push(z);
                }
            }
            // Rule (ii): for each needy vertex without direct access, its
            // *closest* one-hop-knowledge vertex obtains the token — the
            // relay that walks the token toward that demand. A Voronoi
            // multi-source BFS from all one-hop vertices yields, for
            // every vertex, the nearest one-hop vertex at once.
            if !distant.is_empty() {
                let hop_vertices: Vec<NodeId> = g.nodes().filter(|&v| one_hop(v)).collect();
                let origin = nearest_origin(g, &hop_vertices);
                let mut relays: Vec<NodeId> =
                    distant.iter().filter_map(|&z| origin[z.index()]).collect();
                if self.single_relay {
                    relays.sort_unstable();
                    relays.truncate(1);
                }
                for relay in relays {
                    to_obtain[relay.index()].insert(token);
                }
            }
        }

        // Receiver-driven arc assignment, within capacities.
        let mut load: Vec<usize> = vec![0; g.edge_count()];
        let mut sends: Vec<TokenSet> = vec![TokenSet::new(m); g.edge_count()];
        for v in g.nodes() {
            if to_obtain[v.index()].is_empty() {
                continue;
            }
            let in_edges: Vec<EdgeId> = g.in_edges(v).collect();
            for t in crate::policy::rarest_first(&to_obtain[v.index()], view.aggregates, rng) {
                let mut best: Option<(usize, EdgeId)> = None;
                for &e in &in_edges {
                    let arc = g.edge(e);
                    if load[e.index()] >= view.capacity(e) as usize {
                        continue;
                    }
                    if !view.possession[arc.src.index()].contains(t) {
                        continue;
                    }
                    let key = (load[e.index()], e);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
                if let Some((_, e)) = best {
                    sends[e.index()].insert(t);
                    load[e.index()] += 1;
                }
            }
        }

        sends
            .into_iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .map(|(e, s)| (EdgeId::new(e), s))
            .collect()
    }
}

/// Multi-source forward BFS from `sources`: for every vertex, the
/// nearest source that reaches it along arc directions (ties break to
/// the earlier source in `sources`, which are supplied in ascending id
/// order). `None` where no source reaches.
fn nearest_origin(g: &ocd_graph::DiGraph, sources: &[NodeId]) -> Vec<Option<NodeId>> {
    let mut dist = vec![u32::MAX; g.node_count()];
    let mut origin: Vec<Option<NodeId>> = vec![None; g.node_count()];
    let mut queue = VecDeque::new();
    for &s in sources {
        if origin[s.index()].is_none() {
            dist[s.index()] = 0;
            origin[s.index()] = Some(s);
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        for w in g.out_neighbors(u) {
            if origin[w.index()].is_none() {
                dist[w.index()] = dist[u.index()] + 1;
                origin[w.index()] = origin[u.index()];
                queue.push_back(w);
            }
        }
    }
    origin
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, SimConfig};
    use ocd_core::scenario::single_file;
    use ocd_core::validate;
    use ocd_graph::generate::classic;
    use ocd_graph::DiGraph;
    use rand::prelude::*;

    #[test]
    fn relays_token_along_path_without_flooding() {
        // 0 -> 1 -> 2 -> 3 -> 4, only vertex 4 wants the token. The
        // cautious heuristic moves it one hop per step toward 4 and
        // nothing else: bandwidth exactly 4 (the path length), makespan 4.
        let instance_graph = classic::path(5, 3, false);
        let instance = ocd_core::Instance::builder(instance_graph, 1)
            .have(0, [Token::new(0)])
            .want(4, [Token::new(0)])
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let report = simulate(
            &instance,
            &mut BandwidthCautious::new(),
            &SimConfig::default(),
            &mut rng,
        );
        assert!(report.success);
        assert_eq!(report.steps, 4);
        assert_eq!(report.bandwidth, 4, "no flooding off the demand path");
    }

    #[test]
    fn does_not_deliver_to_uninterested_branches() {
        // Star with 4 leaves; only leaf 2 wants the file of 3 tokens.
        let g = classic::star(5, 3, false);
        let mut builder = ocd_core::Instance::builder(g, 3);
        builder = builder.have_set(0, TokenSet::full(3));
        builder = builder.want_set(2, TokenSet::full(3));
        let instance = builder.build().unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let report = simulate(
            &instance,
            &mut BandwidthCautious::new(),
            &SimConfig::default(),
            &mut rng,
        );
        assert!(report.success);
        assert_eq!(report.bandwidth, 3, "exactly the wanted tokens move");
    }

    #[test]
    fn all_want_all_still_completes() {
        let instance = single_file(classic::cycle(8, 3, true), 10, 0);
        let mut rng = StdRng::seed_from_u64(3);
        let report = simulate(
            &instance,
            &mut BandwidthCautious::new(),
            &SimConfig::default(),
            &mut rng,
        );
        assert!(report.success);
        assert!(validate::replay(&instance, &report.schedule)
            .unwrap()
            .is_successful());
    }

    #[test]
    fn relay_chooses_closest_one_hop_vertex() {
        // Diamond: 0 -> 1 -> 3 and 0 -> 2 -> 2' -> 3 (longer). Token at
        // 0, needed at 3. Step 1: one-hop vertices are {1, 2}; 1 is
        // closer to 3, so only 1 receives.
        let mut g = DiGraph::with_nodes(5);
        g.add_edge(g.node(0), g.node(1), 1).unwrap(); // e0
        g.add_edge(g.node(1), g.node(3), 1).unwrap(); // e1
        g.add_edge(g.node(0), g.node(2), 1).unwrap(); // e2
        g.add_edge(g.node(2), g.node(4), 1).unwrap(); // e3
        g.add_edge(g.node(4), g.node(3), 1).unwrap(); // e4
        let instance = ocd_core::Instance::builder(g, 1)
            .have(0, [Token::new(0)])
            .want(3, [Token::new(0)])
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let report = simulate(
            &instance,
            &mut BandwidthCautious::new(),
            &SimConfig::default(),
            &mut rng,
        );
        assert!(report.success);
        assert_eq!(report.steps, 2);
        assert_eq!(report.bandwidth, 2, "token went 0 -> 1 -> 3 only");
    }

    #[test]
    fn single_relay_ablation_still_completes_but_serializes() {
        // Star of two distant demand branches: per-needy relays serve
        // both branches at once; the single-relay ablation alternates.
        let g = classic::star(7, 2, false);
        let mut builder = ocd_core::Instance::builder(g, 1);
        builder = builder.have(0, [Token::new(0)]);
        // Leaves 1..=6 all want the token but arcs are center→leaf, so
        // every leaf is needy and one-hop; use a deeper shape instead.
        let mut g2 = ocd_graph::DiGraph::with_nodes(5);
        g2.add_edge(g2.node(0), g2.node(1), 1).unwrap(); // s -> a
        g2.add_edge(g2.node(1), g2.node(2), 1).unwrap(); // a -> z1
        g2.add_edge(g2.node(0), g2.node(3), 1).unwrap(); // s -> b
        g2.add_edge(g2.node(3), g2.node(4), 1).unwrap(); // b -> z2
        let instance = ocd_core::Instance::builder(g2, 1)
            .have(0, [Token::new(0)])
            .want(2, [Token::new(0)])
            .want(4, [Token::new(0)])
            .build()
            .unwrap();
        let _ = builder;
        let run = |mut strategy: BandwidthCautious| {
            let mut rng = StdRng::seed_from_u64(3);
            simulate(&instance, &mut strategy, &SimConfig::default(), &mut rng)
        };
        let per_needy = run(BandwidthCautious::new());
        let single = run(BandwidthCautious::with_single_relay());
        assert!(per_needy.success && single.success);
        assert_eq!(per_needy.steps, 2, "both branches advance in parallel");
        assert!(
            single.steps > per_needy.steps,
            "single relay serializes the two demand branches"
        );
        assert_eq!(
            BandwidthCautious::with_single_relay().name(),
            "bandwidth-1relay"
        );
    }

    #[test]
    fn duplicate_holders_cause_single_delivery() {
        // Both 0 and 1 hold the token and both feed 2; the receiver-
        // driven assignment must fetch it once.
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(g.node(0), g.node(2), 5).unwrap();
        g.add_edge(g.node(1), g.node(2), 5).unwrap();
        let instance = ocd_core::Instance::builder(g, 1)
            .have(0, [Token::new(0)])
            .have(1, [Token::new(0)])
            .want(2, [Token::new(0)])
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let report = simulate(
            &instance,
            &mut BandwidthCautious::new(),
            &SimConfig::default(),
            &mut rng,
        );
        assert!(report.success);
        assert_eq!(report.bandwidth, 1);
    }
}
