//! The pluggable transmission **medium** — the single extension point
//! that answers, per step, "what effective capacity does each arc have,
//! and is this proposed move admitted?".
//!
//! The paper's §6 sketches every network-realism extension as a
//! restriction layered on the same scheduling loop: changing conditions
//! alter per-arc capacities between turns, and physical underlays make
//! overlay capacities non-independent. A [`Medium`] captures exactly
//! that contract, so [`crate::simulate_with`] runs the one incremental
//! step loop for all three worlds:
//!
//! - [`Ideal`]: the graph's static capacities, every proposal admitted.
//!   All hooks are no-ops, so the monomorphized loop compiles down to
//!   the plain engine — using `Ideal` costs nothing over the pre-medium
//!   engine.
//! - [`Dynamic`]: wraps any [`NetworkDynamics`] model; per-step
//!   capacities are written into a reusable buffer (no per-step `Vec`),
//!   the capacity trace is recorded for later re-validation, and idle
//!   steps never abort the run (the network may simply be down).
//! - [`PhysicalUnderlay`]: overlay arcs ride physical paths with shared
//!   capacities; each proposed timestep passes through round-robin
//!   physical admission control before being applied.
//! - [`NodeCapacity`]: per-vertex uplink/downlink budgets
//!   ([`NodeBudgets`]) shared across each vertex's arcs, layered on top
//!   of *any* inner medium; when the budgets can never bind, admission
//!   is skipped entirely and the wrapped medium's behaviour (schedules,
//!   RNG stream) is reproduced exactly.
//!
//! # Contract
//!
//! For every step the engine calls, in order: [`Medium::observe`] (the
//! true possession state, for knowledge-equipped media),
//! [`Medium::capacities`] (exactly once, in step order), and — after
//! the strategy has planned and the §3.1 checks have passed —
//! [`Medium::admit`]. Admission may only *remove* proposed token-moves:
//! it must never add tokens, touch arcs the strategy did not use, or
//! reorder sends, so an admitted timestep is always a subset of a
//! schedule that already satisfied possession and capacity.

use crate::dynamics::NetworkDynamics;
use ocd_core::{NodeBudgets, Token, TokenSet};
use ocd_graph::underlay::OverlayMapping;
use ocd_graph::{DiGraph, EdgeId};
use rand::RngCore;

/// A transmission medium: per-step effective capacities plus admission
/// control, plugged into the engine's single incremental step loop by
/// [`crate::simulate_with`].
///
/// Implementations are monomorphized into the loop; the default hook
/// bodies are no-ops so a medium only pays for what it overrides.
pub trait Medium {
    /// Human-readable medium name used in experiment output and
    /// [`ocd_core::record::RunRecord::medium`].
    fn name(&self) -> &'static str;

    /// Called once before a simulation starts, with the overlay graph
    /// the run distributes over.
    fn reset(&mut self, graph: &DiGraph);

    /// Hook giving knowledge-equipped media (e.g. adversarial dynamics)
    /// the true possession state at the start of the step, before
    /// [`capacities`](Self::capacities) is called for the same step.
    fn observe(&mut self, possession: &[TokenSet]) {
        let _ = possession;
    }

    /// Effective capacity of every arc for timestep `step`, indexed by
    /// [`EdgeId::index`]; 0 disables an arc for this step. Called
    /// exactly once per step, in step order. `static_caps` holds the
    /// graph's static capacities; media without per-step variation
    /// return it unchanged (no copy), while dynamic media fill and
    /// return an internal reusable buffer.
    fn capacities<'a>(
        &'a mut self,
        graph: &DiGraph,
        static_caps: &'a [u32],
        step: usize,
        rng: &mut dyn RngCore,
    ) -> &'a [u32];

    /// Clips one proposed (already §3.1-validated) timestep to what the
    /// medium admits, in place, returning the number of rejected
    /// token-moves. The default admits everything.
    fn admit(&mut self, proposed: &mut Vec<(EdgeId, TokenSet)>) -> u64 {
        let _ = proposed;
        0
    }

    /// Whether the engine should record the per-step capacity vectors
    /// (needed to re-validate schedules produced under changing
    /// capacities, see [`ocd_core::validate::replay_with_capacities`]).
    fn records_capacity_trace(&self) -> bool {
        false
    }

    /// Whether the engine should record per-step rejected-move counts
    /// (media with admission control).
    fn records_rejections(&self) -> bool {
        false
    }

    /// Whether a step with zero admitted moves and zero rejections
    /// aborts the run as a stall. Media whose conditions change over
    /// time answer `false`: a strategy may be *unable* to move while
    /// links are down, so non-completion is only declared at the step
    /// cap.
    fn stall_aborts(&self) -> bool {
        true
    }
}

impl std::fmt::Debug for dyn Medium + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Medium({})", self.name())
    }
}

/// The paper's §3.1 baseline medium: static capacities, every proposal
/// admitted, idle steps abort as stalls. Every hook is a no-op, so
/// `simulate_with::<Ideal>` monomorphizes to the plain incremental
/// engine with zero overhead.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ideal;

impl Medium for Ideal {
    fn name(&self) -> &'static str {
        "ideal"
    }
    fn reset(&mut self, _graph: &DiGraph) {}
    fn capacities<'a>(
        &'a mut self,
        _graph: &DiGraph,
        static_caps: &'a [u32],
        _step: usize,
        _rng: &mut dyn RngCore,
    ) -> &'a [u32] {
        static_caps
    }
}

/// Changing network conditions (§6): adapts any [`NetworkDynamics`]
/// model to the [`Medium`] contract. Capacities are written into an
/// internal buffer reused across steps, the capacity trace is recorded,
/// and idle steps do not abort.
#[derive(Debug)]
pub struct Dynamic<'a> {
    dynamics: &'a mut dyn NetworkDynamics,
    /// Reusable per-step capacity buffer (sized to the arc count on
    /// reset; no per-step allocation).
    buf: Vec<u32>,
}

impl<'a> Dynamic<'a> {
    /// Wraps a dynamics model.
    pub fn new(dynamics: &'a mut dyn NetworkDynamics) -> Self {
        Dynamic {
            dynamics,
            buf: Vec::new(),
        }
    }
}

impl Medium for Dynamic<'_> {
    fn name(&self) -> &'static str {
        self.dynamics.name()
    }
    fn reset(&mut self, graph: &DiGraph) {
        self.dynamics.reset(graph);
        self.buf.clear();
        self.buf.resize(graph.edge_count(), 0);
    }
    fn observe(&mut self, possession: &[TokenSet]) {
        self.dynamics.observe(possession);
    }
    fn capacities<'a>(
        &'a mut self,
        graph: &DiGraph,
        _static_caps: &'a [u32],
        step: usize,
        rng: &mut dyn RngCore,
    ) -> &'a [u32] {
        self.dynamics
            .capacities_into(graph, step, rng, &mut self.buf);
        &self.buf
    }
    fn records_capacity_trace(&self) -> bool {
        true
    }
    fn stall_aborts(&self) -> bool {
        false
    }
}

/// Physically-constrained transmission (§6, "realistic topologies"):
/// overlay arcs ride physical paths, and overlay links sharing a
/// physical link share its capacity. Strategies plan against the
/// overlay's own (naive) static capacities; each proposed timestep is
/// then clipped by round-robin *physical admission control* — every
/// physical arc has its capacity as a per-step budget, and overlay arcs
/// take turns admitting one token each (ascending token order within an
/// arc) so no overlay link starves.
///
/// All scratch state (physical budgets, per-arc token queues, cursors)
/// is reused across steps.
#[derive(Debug)]
pub struct PhysicalUnderlay<'a> {
    physical: &'a DiGraph,
    mapping: &'a OverlayMapping,
    /// Per-physical-arc remaining budget for the current step.
    budget: Vec<u32>,
    /// Recycled per-proposal token queues (the tokens awaiting
    /// admission, in ascending order).
    queues: Vec<Vec<Token>>,
    /// `cursors[slot]` = next token of `queues[slot]` to admit.
    cursors: Vec<usize>,
}

impl<'a> PhysicalUnderlay<'a> {
    /// Creates the medium for a physical graph and an overlay-to-path
    /// mapping (see [`ocd_graph::underlay::Underlay::map_overlay`]).
    #[must_use]
    pub fn new(physical: &'a DiGraph, mapping: &'a OverlayMapping) -> Self {
        PhysicalUnderlay {
            physical,
            mapping,
            budget: Vec::new(),
            queues: Vec::new(),
            cursors: Vec::new(),
        }
    }
}

impl Medium for PhysicalUnderlay<'_> {
    fn name(&self) -> &'static str {
        "physical-underlay"
    }

    fn reset(&mut self, graph: &DiGraph) {
        assert_eq!(
            self.mapping.paths.len(),
            graph.edge_count(),
            "mapping does not cover the overlay's arcs"
        );
        self.budget.clear();
        self.budget.reserve(self.physical.edge_count());
    }

    fn capacities<'a>(
        &'a mut self,
        _graph: &DiGraph,
        static_caps: &'a [u32],
        _step: usize,
        _rng: &mut dyn RngCore,
    ) -> &'a [u32] {
        // The *overlay* believes in its static capacities; physical
        // feasibility is enforced by admission instead.
        static_caps
    }

    fn admit(&mut self, proposed: &mut Vec<(EdgeId, TokenSet)>) -> u64 {
        self.budget.clear();
        self.budget
            .extend(self.physical.edge_ids().map(|e| self.physical.capacity(e)));
        while self.queues.len() < proposed.len() {
            self.queues.push(Vec::new());
        }
        self.cursors.clear();
        self.cursors.resize(proposed.len(), 0);
        // Drain each proposed set into its recycled queue; the set is
        // then refilled with the admitted tokens only.
        for (slot, (_, tokens)) in proposed.iter_mut().enumerate() {
            let queue = &mut self.queues[slot];
            queue.clear();
            queue.extend(tokens.iter());
            tokens.clear();
        }
        let mut rejected = 0u64;
        let mut progress = true;
        while progress {
            progress = false;
            for (slot, (e, admitted)) in proposed.iter_mut().enumerate() {
                let queue = &self.queues[slot];
                let cursor = &mut self.cursors[slot];
                if *cursor >= queue.len() {
                    continue;
                }
                let path = &self.mapping.paths[e.index()];
                let feasible = path.iter().all(|pe| self.budget[pe.index()] > 0);
                if feasible {
                    for pe in path {
                        self.budget[pe.index()] -= 1;
                    }
                    admitted.insert(queue[*cursor]);
                    *cursor += 1;
                    progress = true;
                } else {
                    // Physical path saturated: everything left on this
                    // arc is rejected this step.
                    rejected += (queue.len() - *cursor) as u64;
                    *cursor = queue.len();
                }
            }
        }
        proposed.retain(|(_, tokens)| !tokens.is_empty());
        rejected
    }

    fn records_rejections(&self) -> bool {
        true
    }
}

/// Uplink-constrained transmission (the Mundinger–Weber–Weiss regime):
/// every vertex shares one uplink budget across all its out-arcs and
/// one downlink budget across all its in-arcs, per step, on top of
/// whatever the wrapped medium enforces. Strategies still plan against
/// the inner medium's capacities; each proposed timestep is first
/// admitted by the inner medium, then clipped by round-robin
/// *node-capacity admission* — arcs take turns sending one token each
/// (ascending token order within an arc) while both endpoint budgets
/// last, so no arc starves its siblings.
///
/// When the budgets can never bind (every vertex's uplink ≥ its
/// out-capacity sum and downlink ≥ its in-capacity sum, see
/// [`NodeBudgets::never_binds`]), admission returns immediately after
/// the inner medium's: the wrapper is then observationally identical to
/// the wrapped medium — same schedules, same RNG stream
/// (property-tested in `prop_node_capacity.rs`).
#[derive(Debug)]
pub struct NodeCapacity<M> {
    inner: M,
    budgets: NodeBudgets,
    /// Whether the budgets can bind on the current graph (set at reset).
    binding: bool,
    /// `(src, dst)` vertex indices of each overlay arc, captured at
    /// reset ([`Medium::admit`] has no graph access).
    endpoints: Vec<(usize, usize)>,
    /// Per-vertex remaining uplink/downlink for the current step.
    up_left: Vec<u64>,
    down_left: Vec<u64>,
    /// Recycled per-proposal token queues and admission cursors.
    queues: Vec<Vec<Token>>,
    cursors: Vec<usize>,
}

impl<M: Medium> NodeCapacity<M> {
    /// Wraps `inner` with per-vertex `budgets`. Budgets must cover the
    /// graph the simulation runs over (checked at reset).
    #[must_use]
    pub fn new(inner: M, budgets: NodeBudgets) -> Self {
        NodeCapacity {
            inner,
            budgets,
            binding: true,
            endpoints: Vec::new(),
            up_left: Vec::new(),
            down_left: Vec::new(),
            queues: Vec::new(),
            cursors: Vec::new(),
        }
    }

    /// The wrapped medium.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The budgets this medium enforces.
    #[must_use]
    pub fn budgets(&self) -> &NodeBudgets {
        &self.budgets
    }
}

impl<M: Medium> Medium for NodeCapacity<M> {
    fn name(&self) -> &'static str {
        "node-capacity"
    }

    fn reset(&mut self, graph: &DiGraph) {
        assert_eq!(
            self.budgets.len(),
            graph.node_count(),
            "node budgets do not cover the graph's vertices"
        );
        self.inner.reset(graph);
        self.binding = !self.budgets.never_binds(graph);
        self.endpoints.clear();
        self.endpoints.extend(graph.edge_ids().map(|e| {
            let arc = graph.edge(e);
            (arc.src.index(), arc.dst.index())
        }));
        self.up_left.resize(graph.node_count(), 0);
        self.down_left.resize(graph.node_count(), 0);
    }

    fn observe(&mut self, possession: &[TokenSet]) {
        self.inner.observe(possession);
    }

    fn capacities<'a>(
        &'a mut self,
        graph: &DiGraph,
        static_caps: &'a [u32],
        step: usize,
        rng: &mut dyn RngCore,
    ) -> &'a [u32] {
        self.inner.capacities(graph, static_caps, step, rng)
    }

    fn admit(&mut self, proposed: &mut Vec<(EdgeId, TokenSet)>) -> u64 {
        let mut rejected = self.inner.admit(proposed);
        if !self.binding {
            // Identity fast path: the wrapped medium's admission is the
            // whole story, bit-for-bit.
            return rejected;
        }
        for (v, left) in self.up_left.iter_mut().enumerate() {
            *left = u64::from(self.budgets.uplink(v));
        }
        for (v, left) in self.down_left.iter_mut().enumerate() {
            *left = u64::from(self.budgets.downlink(v));
        }
        while self.queues.len() < proposed.len() {
            self.queues.push(Vec::new());
        }
        self.cursors.clear();
        self.cursors.resize(proposed.len(), 0);
        for (slot, (_, tokens)) in proposed.iter_mut().enumerate() {
            let queue = &mut self.queues[slot];
            queue.clear();
            queue.extend(tokens.iter());
            tokens.clear();
        }
        let mut progress = true;
        while progress {
            progress = false;
            for (slot, (e, admitted)) in proposed.iter_mut().enumerate() {
                let queue = &self.queues[slot];
                let cursor = &mut self.cursors[slot];
                if *cursor >= queue.len() {
                    continue;
                }
                let (src, dst) = self.endpoints[e.index()];
                if self.up_left[src] > 0 && self.down_left[dst] > 0 {
                    self.up_left[src] -= 1;
                    self.down_left[dst] -= 1;
                    admitted.insert(queue[*cursor]);
                    *cursor += 1;
                    progress = true;
                } else {
                    // An endpoint budget is exhausted: everything left
                    // on this arc is rejected this step.
                    rejected += (queue.len() - *cursor) as u64;
                    *cursor = queue.len();
                }
            }
        }
        proposed.retain(|(_, tokens)| !tokens.is_empty());
        rejected
    }

    fn records_capacity_trace(&self) -> bool {
        self.inner.records_capacity_trace()
    }

    fn records_rejections(&self) -> bool {
        true
    }

    fn stall_aborts(&self) -> bool {
        self.inner.stall_aborts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn ideal_passes_static_caps_through() {
        let g = ocd_graph::generate::classic::cycle(4, 3, true);
        let static_caps: Vec<u32> = g.edge_ids().map(|e| g.capacity(e)).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let mut ideal = Ideal;
        ideal.reset(&g);
        let caps = ideal.capacities(&g, &static_caps, 0, &mut rng);
        assert!(std::ptr::eq(caps.as_ptr(), static_caps.as_ptr()), "no copy");
        assert!(ideal.stall_aborts());
        assert!(!ideal.records_capacity_trace());
        assert!(!ideal.records_rejections());
        let mut proposal = vec![(EdgeId::new(0), TokenSet::full(2))];
        assert_eq!(ideal.admit(&mut proposal), 0);
        assert_eq!(proposal.len(), 1, "ideal admission is the identity");
    }

    #[test]
    fn node_capacity_identity_when_budgets_never_bind() {
        // Cycle(4, cap 3, symmetric): out/in-capacity sums are 6.
        let g = ocd_graph::generate::classic::cycle(4, 3, true);
        let mut medium = NodeCapacity::new(Ideal, NodeBudgets::uniform(4, 6, 6));
        medium.reset(&g);
        assert_eq!(medium.name(), "node-capacity");
        assert!(medium.stall_aborts());
        let mut proposal = vec![
            (EdgeId::new(0), TokenSet::full(3)),
            (EdgeId::new(2), TokenSet::full(3)),
        ];
        assert_eq!(medium.admit(&mut proposal), 0);
        assert_eq!(proposal.len(), 2);
        assert_eq!(proposal[0].1.len(), 3, "nothing clipped");
    }

    #[test]
    fn node_capacity_clips_shared_uplink_round_robin() {
        // Star center 0 with out-arcs to 1 and 2 (cap 2 each); uplink
        // budget 3 at the center. Proposing 2 tokens per arc, the
        // round-robin admits 2 on the first pass (one per arc) and 1 on
        // the second, rejecting the last.
        let g = ocd_graph::generate::classic::star(3, 2, false);
        let mut medium = NodeCapacity::new(Ideal, NodeBudgets::uplink_only(3, 3));
        medium.reset(&g);
        let mut proposal = vec![
            (EdgeId::new(0), TokenSet::full(2)),
            (EdgeId::new(1), TokenSet::full(2)),
        ];
        assert_eq!(medium.admit(&mut proposal), 1);
        let admitted: u64 = proposal.iter().map(|(_, t)| t.len() as u64).sum();
        assert_eq!(admitted, 3);
        // Round-robin fairness: both arcs got at least one token.
        assert_eq!(proposal.len(), 2);
        assert!(proposal.iter().all(|(_, t)| !t.is_empty()));
    }

    #[test]
    fn node_capacity_clips_shared_downlink() {
        // Two sources feed vertex 2 (arcs 0→2 and 1→2, cap 1 each);
        // downlink budget 1 at vertex 2 admits exactly one of them.
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(g.node(0), g.node(2), 1).unwrap();
        g.add_edge(g.node(1), g.node(2), 1).unwrap();
        let budgets = NodeBudgets::uniform(3, 1, 1);
        let mut medium = NodeCapacity::new(Ideal, budgets);
        medium.reset(&g);
        let mut proposal = vec![
            (EdgeId::new(0), TokenSet::from_tokens(2, [Token::new(0)])),
            (EdgeId::new(1), TokenSet::from_tokens(2, [Token::new(1)])),
        ];
        assert_eq!(medium.admit(&mut proposal), 1);
        assert_eq!(proposal.len(), 1, "the saturated arc was dropped");
        assert_eq!(proposal[0].0, EdgeId::new(0), "ascending arc order wins");
    }

    #[test]
    fn dynamic_reuses_its_capacity_buffer() {
        let g = ocd_graph::generate::classic::cycle(4, 3, true);
        let static_caps: Vec<u32> = g.edge_ids().map(|e| g.capacity(e)).collect();
        let mut model = crate::dynamics::StaticNetwork;
        let mut medium = Dynamic::new(&mut model);
        medium.reset(&g);
        let mut rng = StdRng::seed_from_u64(1);
        let first_ptr = {
            let caps = medium.capacities(&g, &static_caps, 0, &mut rng);
            assert_eq!(caps, static_caps.as_slice());
            caps.as_ptr()
        };
        let second_ptr = medium.capacities(&g, &static_caps, 1, &mut rng).as_ptr();
        assert!(std::ptr::eq(first_ptr, second_ptr), "buffer is recycled");
        assert!(!medium.stall_aborts());
        assert!(medium.records_capacity_trace());
    }
}
