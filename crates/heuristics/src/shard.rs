//! Deterministic sharded planning: the per-step loop partitioned across
//! vertex ranges.
//!
//! The lockstep strategies in this crate walk every arc of the overlay
//! once per step from a single thread. At the paper's evaluation sizes
//! that is fine, but the `table_scale` experiment pushes the engine to
//! `n = 10^6`-vertex `G(n, p)` overlays where one planning pass touches
//! tens of millions of arcs. This module makes that pass parallel
//! **without changing a single scheduled move**:
//!
//! - A [`VertexStrategy`] re-states a heuristic as two *per-vertex*
//!   rules — an optional receiver rule ([`plan_requests`]) and a sender
//!   rule ([`plan_sends`]) — each touching only arcs *owned* by that
//!   vertex, so distinct vertices never propose sends for the same arc.
//! - The [`Sharded`] adapter implements the ordinary [`Strategy`]
//!   interface on top: it splits the vertex set into contiguous ranges,
//!   plans each range on its own thread (`std::thread::scope`), and
//!   merges the per-shard proposals. With `shards = 1` it runs the loop
//!   inline with no thread machinery at all.
//!
//! # Why `shards = N` is byte-identical to `shards = 1`
//!
//! Randomness is the only thing that could couple vertices: the legacy
//! strategies thread one RNG through the whole arc loop, so the draw a
//! vertex sees depends on every vertex planned before it. Here the
//! adapter instead draws **one** word from the engine RNG per step and
//! derives an independent RNG per `(step, phase, vertex)` with a
//! SplitMix64-style mixer. A vertex's draws therefore depend only on its
//! own identity — never on which shard planned it or in which order —
//! and the merged proposal set is the same for every shard count. The
//! merge itself needs no tie-breaking: arc ownership makes proposal keys
//! unique, and [`Timestep::from_sends`](ocd_core::Timestep::from_sends)
//! canonicalizes entry order, so the resulting [`Schedule`] — and every
//! artifact derived from it — is byte-identical across `shards`.
//!
//! The per-vertex RNG discipline is a *different* (equally valid) random
//! coupling than the legacy strategies' shared stream, so
//! `Sharded<ShardedRandom>` does not reproduce [`RandomUseful`]'s exact
//! schedules — except [`ShardedTreeStripe`], which consumes no
//! randomness and matches [`TreeStripe`] move for move (tested).
//!
//! [`plan_requests`]: VertexStrategy::plan_requests
//! [`plan_sends`]: VertexStrategy::plan_sends
//! [`Schedule`]: ocd_core::Schedule
//! [`RandomUseful`]: crate::RandomUseful

use crate::policy::{random_fill, rarest_flood_fill, subdivide_requests};
use crate::tree_stripe::{best_root, TreeStripe};
use crate::{KnowledgeTier, Strategy, WorldView};
use ocd_core::{Instance, TokenSet};
use ocd_graph::{EdgeId, NodeId};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::ops::Range;

/// Phase tag mixed into the per-vertex seed so the receiver and sender
/// rules of the same vertex in the same step draw from distinct streams.
const PHASE_REQUESTS: u64 = 0x52455155; // "REQU"
const PHASE_SENDS: u64 = 0x53454e44; // "SEND"

/// SplitMix64 finalizer: a bijective avalanche mix.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed for the RNG of `vertex` in `phase` of the step whose engine draw
/// was `step_seed`. Depends only on these three values — not on shard
/// count, shard boundaries, or planning order.
fn vertex_seed(step_seed: u64, phase: u64, vertex: u64) -> u64 {
    splitmix64(splitmix64(step_seed ^ phase) ^ vertex)
}

/// A heuristic restated as independent per-vertex rules, so planning can
/// be sharded across vertex ranges.
///
/// Arc ownership contract: across one step, the union of all vertices'
/// [`plan_requests`](Self::plan_requests) output must mention each arc
/// at most once, and likewise for [`plan_sends`](Self::plan_sends) —
/// typically each vertex speaks only for its in-arcs (requests) and its
/// out-arcs (sends). The adapter merges proposals assuming this holds.
///
/// Implementations must be [`Sync`]: shards borrow the strategy
/// immutably from worker threads. All per-step scratch state therefore
/// lives on the workers' stacks, not in `self`.
pub trait VertexStrategy: Sync {
    /// Human-readable name used in experiment output.
    fn name(&self) -> &'static str;

    /// The knowledge tier the per-vertex rules operate at.
    fn tier(&self) -> KnowledgeTier;

    /// Called once before a simulation starts.
    fn reset(&mut self, instance: &Instance) {
        let _ = instance;
    }

    /// Whether the receiver phase runs at all. When `false` the adapter
    /// skips phase 1 entirely (no allocation, no threads).
    fn uses_requests(&self) -> bool {
        false
    }

    /// Receiver rule: the tokens vertex `v` requests on each of its
    /// in-arcs this step. Only consulted when
    /// [`uses_requests`](Self::uses_requests) is `true`.
    fn plan_requests(
        &self,
        view: &WorldView<'_>,
        v: NodeId,
        rng: &mut dyn RngCore,
    ) -> Vec<(EdgeId, TokenSet)> {
        let _ = (view, v, rng);
        Vec::new()
    }

    /// Sender rule: the sends on the arcs vertex `v` owns this step.
    /// `requests` is the edge-indexed merge of every vertex's phase-1
    /// output (empty slice when [`uses_requests`](Self::uses_requests)
    /// is `false`). Empty token sets should be omitted.
    fn plan_sends(
        &self,
        view: &WorldView<'_>,
        v: NodeId,
        requests: &[TokenSet],
        rng: &mut dyn RngCore,
    ) -> Vec<(EdgeId, TokenSet)>;
}

/// Adapter running a [`VertexStrategy`] as an ordinary [`Strategy`],
/// planning each step across `shards` worker threads.
///
/// The schedule is byte-identical for every `shards` value (see the
/// module docs above); `shards = 1` runs inline on the caller's
/// thread.
#[derive(Debug)]
pub struct Sharded<V> {
    inner: V,
    shards: usize,
}

impl<V: VertexStrategy> Sharded<V> {
    /// Wraps `inner`, planning with `shards` parallel vertex ranges.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn new(inner: V, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        Sharded { inner, shards }
    }

    /// Number of configured shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Contiguous vertex ranges, sizes differing by at most one.
    fn ranges(&self, n: usize) -> Vec<Range<usize>> {
        let shards = self.shards.min(n).max(1);
        let base = n / shards;
        let rem = n % shards;
        let mut out = Vec::with_capacity(shards);
        let mut start = 0;
        for i in 0..shards {
            let len = base + usize::from(i < rem);
            out.push(start..start + len);
            start += len;
        }
        out
    }

    /// Runs `per_vertex` over every vertex, fanned out across shards,
    /// and concatenates the proposals in ascending shard (= vertex)
    /// order. The closure sees only the vertex index, so the output is
    /// independent of the fan-out.
    fn fan_out<F>(&self, n: usize, per_vertex: F) -> Vec<(EdgeId, TokenSet)>
    where
        F: Fn(usize, &mut Vec<(EdgeId, TokenSet)>) + Sync,
    {
        let ranges = self.ranges(n);
        if ranges.len() == 1 {
            let mut buf = Vec::new();
            for v in 0..n {
                per_vertex(v, &mut buf);
            }
            return buf;
        }
        let mut shard_buffers: Vec<Vec<(EdgeId, TokenSet)>> = Vec::with_capacity(ranges.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|range| {
                    let per_vertex = &per_vertex;
                    s.spawn(move || {
                        let mut buf = Vec::new();
                        for v in range {
                            per_vertex(v, &mut buf);
                        }
                        buf
                    })
                })
                .collect();
            for handle in handles {
                shard_buffers.push(handle.join().expect("shard worker panicked"));
            }
        });
        shard_buffers.into_iter().flatten().collect()
    }
}

impl<V: VertexStrategy> Strategy for Sharded<V> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn tier(&self) -> KnowledgeTier {
        self.inner.tier()
    }

    fn reset(&mut self, instance: &Instance) {
        // Force the CSR index once, before any worker threads exist, so
        // shards never race to build it (OnceLock would serialize them,
        // but warming it here keeps the parallel section pure compute).
        let g = instance.graph();
        if g.node_count() > 0 {
            let _ = g.out_edges(g.node(0));
            let _ = g.in_edges(g.node(0));
        }
        self.inner.reset(instance);
    }

    fn plan_step(
        &mut self,
        view: &WorldView<'_>,
        rng: &mut dyn RngCore,
    ) -> Vec<(EdgeId, TokenSet)> {
        let g = view.graph();
        let n = g.node_count();
        // One engine draw per step regardless of shard count; everything
        // downstream derives from it.
        let step_seed = rng.next_u64();
        let inner = &self.inner;

        // Phase 1 (receivers): merge per-vertex requests into an
        // edge-indexed table. Arc ownership makes the keys unique, so
        // the merge order is irrelevant.
        let requests: Vec<TokenSet> = if inner.uses_requests() {
            let pairs = self.fan_out(n, |v, buf| {
                let mut vrng =
                    StdRng::seed_from_u64(vertex_seed(step_seed, PHASE_REQUESTS, v as u64));
                buf.extend(inner.plan_requests(view, g.node(v), &mut vrng));
            });
            let m = view.instance.num_tokens();
            let mut table = vec![TokenSet::new(m); g.edge_count()];
            for (e, tokens) in pairs {
                debug_assert!(table[e.index()].is_empty(), "arc {e} requested twice");
                table[e.index()] = tokens;
            }
            table
        } else {
            Vec::new()
        };

        // Phase 2 (senders): concatenated shard buffers, already unique
        // per arc; Timestep::from_sends canonicalizes the order.
        let mut sends = self.fan_out(n, |v, buf| {
            let mut vrng = StdRng::seed_from_u64(vertex_seed(step_seed, PHASE_SENDS, v as u64));
            buf.extend(inner.plan_sends(view, g.node(v), &requests, &mut vrng));
        });
        sends.sort_unstable_by_key(|(e, _)| *e);
        sends
    }
}

/// Per-vertex restatement of [`RandomUseful`](crate::RandomUseful): each
/// vertex fills its out-arcs with uniform random subsets of the tokens
/// the peer lacks.
#[derive(Debug, Default)]
pub struct ShardedRandom;

impl ShardedRandom {
    /// Creates the strategy.
    #[must_use]
    pub fn new() -> Self {
        ShardedRandom
    }
}

impl VertexStrategy for ShardedRandom {
    fn name(&self) -> &'static str {
        "sharded-random"
    }

    fn tier(&self) -> KnowledgeTier {
        KnowledgeTier::PeerState
    }

    fn plan_sends(
        &self,
        view: &WorldView<'_>,
        v: NodeId,
        _requests: &[TokenSet],
        rng: &mut dyn RngCore,
    ) -> Vec<(EdgeId, TokenSet)> {
        let g = view.graph();
        let mut out = Vec::new();
        for e in g.out_edges(v) {
            let arc = g.edge(e);
            let cap = view.capacity(e) as usize;
            if cap == 0 {
                continue;
            }
            let candidates =
                view.possession[arc.src.index()].difference(&view.possession[arc.dst.index()]);
            if candidates.is_empty() {
                continue;
            }
            out.push((e, random_fill(candidates, cap, rng)));
        }
        out
    }
}

/// Per-vertex restatement of [`LocalRarest`](crate::LocalRarest):
/// receivers subdivide their needs into per-in-arc requests (phase 1),
/// senders serve the requests on their out-arcs and flood the remaining
/// capacity rarest-first (phase 2).
#[derive(Debug, Default)]
pub struct ShardedLocal;

impl ShardedLocal {
    /// Creates the strategy.
    #[must_use]
    pub fn new() -> Self {
        ShardedLocal
    }
}

impl VertexStrategy for ShardedLocal {
    fn name(&self) -> &'static str {
        "sharded-local"
    }

    fn tier(&self) -> KnowledgeTier {
        KnowledgeTier::Aggregates
    }

    fn uses_requests(&self) -> bool {
        true
    }

    fn plan_requests(
        &self,
        view: &WorldView<'_>,
        v: NodeId,
        rng: &mut dyn RngCore,
    ) -> Vec<(EdgeId, TokenSet)> {
        let g = view.graph();
        let need = view.need_of(v);
        if need.is_empty() {
            return Vec::new();
        }
        let in_edges: Vec<EdgeId> = g.in_edges(v).collect();
        if in_edges.is_empty() {
            return Vec::new();
        }
        let assigned = subdivide_requests(
            &need,
            &in_edges,
            &|e, t| view.possession[g.edge(e).src.index()].contains(t),
            &|e| view.capacity(e),
            view.aggregates,
            rng,
        );
        in_edges
            .into_iter()
            .zip(assigned)
            .filter(|(_, req)| !req.is_empty())
            .collect()
    }

    fn plan_sends(
        &self,
        view: &WorldView<'_>,
        v: NodeId,
        requests: &[TokenSet],
        rng: &mut dyn RngCore,
    ) -> Vec<(EdgeId, TokenSet)> {
        let g = view.graph();
        let mut out = Vec::new();
        for e in g.out_edges(v) {
            let arc = g.edge(e);
            let cap = view.capacity(e) as usize;
            if cap == 0 {
                continue;
            }
            let mut send = requests[e.index()].clone();
            debug_assert!(send.len() <= cap);
            debug_assert!(send.is_subset(&view.possession[arc.src.index()]));
            if send.len() < cap {
                let mut candidates =
                    view.possession[arc.src.index()].difference(&view.possession[arc.dst.index()]);
                candidates.subtract(&send);
                let room = cap - send.len();
                rarest_flood_fill(&mut send, &candidates, room, view.aggregates, rng);
            }
            if !send.is_empty() {
                out.push((e, send));
            }
        }
        out
    }
}

/// Per-vertex restatement of [`TreeStripe`]: each vertex assembles the
/// sends on its parent arcs (the arcs delivering stripes *to* it).
///
/// Tree striping touches an arc's budget and send set only through the
/// arc's unique destination, so regrouping the legacy tree-major loop by
/// destination preserves the exact per-arc operation sequence — this
/// strategy's schedules equal [`TreeStripe`]'s move for move (tested),
/// making it the anchor that pins the sharded engine to the legacy one.
#[derive(Debug)]
pub struct ShardedTreeStripe {
    k: usize,
    /// `trees[j][v]` = the arc delivering stripe `j` to vertex `v`;
    /// built by the same BFS as [`TreeStripe`].
    trees: Vec<Vec<Option<EdgeId>>>,
}

impl ShardedTreeStripe {
    /// Creates a `k`-tree striping strategy.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "need at least one tree");
        ShardedTreeStripe {
            k,
            trees: Vec::new(),
        }
    }
}

impl VertexStrategy for ShardedTreeStripe {
    fn name(&self) -> &'static str {
        "sharded-tree-stripe"
    }

    fn tier(&self) -> KnowledgeTier {
        KnowledgeTier::Aggregates
    }

    fn reset(&mut self, instance: &Instance) {
        let g = instance.graph();
        let root = best_root(instance);
        self.trees = (0..self.k)
            .map(|j| TreeStripe::build_tree(g, root, j))
            .collect();
    }

    fn plan_sends(
        &self,
        view: &WorldView<'_>,
        v: NodeId,
        _requests: &[TokenSet],
        _rng: &mut dyn RngCore,
    ) -> Vec<(EdgeId, TokenSet)> {
        let g = view.graph();
        // Per-arc accumulators for this vertex's parent arcs, visited in
        // stripe order — the same order the legacy tree-major loop
        // touches them. `k` is small, so a linear scan beats a map.
        let mut entries: Vec<(EdgeId, usize, TokenSet)> = Vec::new();
        for (j, tree) in self.trees.iter().enumerate() {
            let Some(e) = tree[v.index()] else {
                continue;
            };
            let slot = match entries.iter().position(|(edge, _, _)| *edge == e) {
                Some(slot) => slot,
                None => {
                    let cap = view.capacity(e) as usize;
                    entries.push((e, cap, TokenSet::new(view.instance.num_tokens())));
                    entries.len() - 1
                }
            };
            let (_, budget, send) = &mut entries[slot];
            if *budget == 0 {
                continue;
            }
            let arc = g.edge(e);
            // Stripe-j tokens the parent has and this vertex lacks.
            let mut eligible =
                view.possession[arc.src.index()].difference(&view.possession[v.index()]);
            for t in eligible.clone().iter() {
                if t.index() % self.k != j {
                    eligible.remove(t);
                }
            }
            eligible.subtract(send);
            eligible.truncate(*budget);
            *budget -= eligible.len();
            send.union_with(&eligible);
        }
        entries
            .into_iter()
            .filter(|(_, _, send)| !send.is_empty())
            .map(|(e, _, send)| (e, send))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, SimConfig};
    use ocd_core::scenario::{multi_file, single_file};
    use ocd_core::validate;
    use ocd_graph::generate::{classic, paper_random};

    fn run(strategy: &mut dyn Strategy, instance: &Instance, seed: u64) -> crate::SimReport {
        let mut rng = StdRng::seed_from_u64(seed);
        simulate(instance, strategy, &SimConfig::default(), &mut rng)
    }

    fn random_instance(seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        single_file(paper_random(40, &mut rng), 24, 0)
    }

    #[test]
    fn vertex_seed_is_phase_and_vertex_sensitive() {
        let s = vertex_seed(42, PHASE_SENDS, 7);
        assert_ne!(s, vertex_seed(42, PHASE_REQUESTS, 7));
        assert_ne!(s, vertex_seed(42, PHASE_SENDS, 8));
        assert_ne!(s, vertex_seed(43, PHASE_SENDS, 7));
        assert_eq!(s, vertex_seed(42, PHASE_SENDS, 7), "pure function");
    }

    #[test]
    fn sharded_random_succeeds_and_validates() {
        let instance = random_instance(1);
        let report = run(&mut Sharded::new(ShardedRandom::new(), 4), &instance, 11);
        assert!(report.success);
        let replay = validate::replay(&instance, &report.schedule).unwrap();
        assert!(replay.is_successful());
    }

    #[test]
    fn sharded_local_succeeds_and_validates() {
        let instance = multi_file(classic::cycle(12, 4, true), 24, 4, 0);
        let report = run(&mut Sharded::new(ShardedLocal::new(), 4), &instance, 12);
        assert!(report.success);
        let replay = validate::replay(&instance, &report.schedule).unwrap();
        assert!(replay.is_successful());
    }

    #[test]
    fn schedules_are_identical_across_shard_counts() {
        // The tentpole guarantee: shards = N reproduces shards = 1 byte
        // for byte, for every strategy and both phases.
        let instance = random_instance(2);
        for shards in [2usize, 3, 4, 7] {
            let baseline = run(&mut Sharded::new(ShardedRandom::new(), 1), &instance, 21);
            let sharded = run(
                &mut Sharded::new(ShardedRandom::new(), shards),
                &instance,
                21,
            );
            assert_eq!(
                baseline.schedule, sharded.schedule,
                "random, {shards} shards"
            );
            let baseline = run(&mut Sharded::new(ShardedLocal::new(), 1), &instance, 21);
            let sharded = run(
                &mut Sharded::new(ShardedLocal::new(), shards),
                &instance,
                21,
            );
            assert_eq!(
                baseline.schedule, sharded.schedule,
                "local, {shards} shards"
            );
            let baseline = run(
                &mut Sharded::new(ShardedTreeStripe::new(2), 1),
                &instance,
                21,
            );
            let sharded = run(
                &mut Sharded::new(ShardedTreeStripe::new(2), shards),
                &instance,
                21,
            );
            assert_eq!(
                baseline.schedule, sharded.schedule,
                "tree-stripe, {shards} shards"
            );
        }
    }

    #[test]
    fn sharded_tree_stripe_matches_legacy_exactly() {
        // Tree striping consumes no randomness, so the per-vertex
        // regrouping must reproduce the legacy strategy move for move —
        // on every shard count.
        for seed in [3u64, 4, 5] {
            let instance = random_instance(seed);
            for k in [1usize, 2, 4] {
                let legacy = run(&mut TreeStripe::new(k), &instance, 31);
                for shards in [1usize, 4] {
                    let sharded = run(
                        &mut Sharded::new(ShardedTreeStripe::new(k), shards),
                        &instance,
                        31,
                    );
                    assert_eq!(
                        legacy.schedule, sharded.schedule,
                        "k = {k}, shards = {shards}, seed = {seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn seeded_runs_reproduce_and_seeds_matter() {
        let instance = random_instance(6);
        let schedule =
            |seed| run(&mut Sharded::new(ShardedRandom::new(), 4), &instance, seed).schedule;
        assert_eq!(schedule(7), schedule(7));
        assert_ne!(schedule(7), schedule(8));
    }

    #[test]
    fn more_shards_than_vertices_is_fine() {
        let instance = single_file(classic::path(3, 2, true), 4, 0);
        let report = run(&mut Sharded::new(ShardedRandom::new(), 64), &instance, 41);
        assert!(report.success);
    }

    #[test]
    fn names_and_tiers_forward() {
        let s = Sharded::new(ShardedLocal::new(), 2);
        assert_eq!(s.name(), "sharded-local");
        assert_eq!(s.tier(), KnowledgeTier::Aggregates);
        assert_eq!(s.shards(), 2);
        assert_eq!(
            Sharded::new(ShardedRandom::new(), 1).tier(),
            KnowledgeTier::PeerState
        );
        assert_eq!(
            Sharded::new(ShardedTreeStripe::new(2), 1).name(),
            "sharded-tree-stripe"
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = Sharded::new(ShardedRandom::new(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_panics() {
        let _ = ShardedTreeStripe::new(0);
    }
}
