//! The step-by-step simulation engine.

use crate::{Strategy, WorldView};
use ocd_core::knowledge::{AggregateKnowledge, DelayedAggregates};
use ocd_core::{Instance, Schedule, Timestep, TokenSet};
use rand::RngCore;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Hard cap on timesteps; a run that has not satisfied every want by
    /// then reports failure. Guards against non-terminating strategies.
    pub max_steps: usize,
    /// Propagation delay (in steps) applied to the aggregate knowledge
    /// strategies see — the paper's "state `k` turns ago" relaxation
    /// (§5.1). 0 = fresh aggregates, the paper's default assumption.
    pub knowledge_delay: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_steps: 10_000,
            knowledge_delay: 0,
        }
    }
}

/// Per-step counters recorded during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepRecord {
    /// 0-based step index.
    pub step: usize,
    /// Tokens transferred this step.
    pub moves: u64,
    /// Outstanding (vertex, token) needs after the step.
    pub remaining_need: u64,
}

/// Result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// The schedule the strategy produced (always valid for the
    /// instance; the engine enforces the §3.1 restrictions).
    pub schedule: Schedule,
    /// Whether every want was satisfied within the step budget.
    pub success: bool,
    /// Steps actually executed (= `schedule.makespan()`).
    pub steps: usize,
    /// Total tokens transferred (= `schedule.bandwidth()`).
    pub bandwidth: u64,
    /// For each vertex, the step after which its want set was complete
    /// (0 = already satisfied initially); `None` if never satisfied.
    pub completion_steps: Vec<Option<usize>>,
    /// Per-step counters.
    pub trace: Vec<StepRecord>,
}

impl SimReport {
    /// Mean completion step over vertices that started unsatisfied.
    /// `None` if nothing needed distributing or some vertex never
    /// finished.
    #[must_use]
    pub fn mean_completion(&self) -> Option<f64> {
        let finishers: Vec<usize> = self
            .completion_steps
            .iter()
            .map(|c| c.ok_or(()))
            .collect::<Result<Vec<_>, ()>>()
            .ok()?;
        let late: Vec<usize> = finishers.into_iter().filter(|&s| s > 0).collect();
        if late.is_empty() {
            None
        } else {
            Some(late.iter().sum::<usize>() as f64 / late.len() as f64)
        }
    }
}

/// Runs `strategy` on `instance` until success, stall, or the step cap.
///
/// Each step the engine:
///
/// 1. computes the fresh aggregates and pushes them through the
///    configured knowledge delay;
/// 2. hands the strategy a [`WorldView`];
/// 3. checks the returned sends against the §3.1 restrictions
///    (possession, capacity) — violations are strategy bugs and panic;
/// 4. applies the sends to the possession state (received tokens become
///    usable next step, per the store-and-forward model).
///
/// # Panics
///
/// Panics if the strategy violates capacity or possession, sends on a
/// non-existent arc, or duplicates an arc within a step.
pub fn simulate(
    instance: &Instance,
    strategy: &mut dyn Strategy,
    config: &SimConfig,
    rng: &mut dyn RngCore,
) -> SimReport {
    simulate_inner(instance, strategy, config, rng, None).0
}

/// Shared implementation: when `dynamics` is supplied, per-step
/// capacities come from it (0 = link down), stalls do not abort (a
/// strategy may be *unable* to move while links are down), and the
/// capacity trace is returned for later validation.
pub(crate) fn simulate_inner(
    instance: &Instance,
    strategy: &mut dyn Strategy,
    config: &SimConfig,
    rng: &mut dyn RngCore,
    mut dynamics: Option<&mut dyn crate::dynamics::NetworkDynamics>,
) -> (SimReport, Vec<Vec<u32>>) {
    let g = instance.graph();
    let n = g.node_count();
    let m = instance.num_tokens();
    strategy.reset(instance);
    if let Some(d) = dynamics.as_deref_mut() {
        d.reset(g);
    }

    let mut possession: Vec<TokenSet> = instance.have_all().to_vec();
    let mut schedule = Schedule::new();
    let mut trace = Vec::new();
    let mut capacity_trace: Vec<Vec<u32>> = Vec::new();
    let mut completion_steps: Vec<Option<usize>> = (0..n)
        .map(|v| {
            let v = g.node(v);
            instance.want(v).is_subset(instance.have(v)).then_some(0)
        })
        .collect();

    let initial = AggregateKnowledge::compute(m, &possession, instance.want_all());
    let mut delayed = DelayedAggregates::new(config.knowledge_delay, initial);
    let static_caps: Vec<u32> = g.edge_ids().map(|e| g.capacity(e)).collect();

    let mut step = 0usize;
    let mut success = remaining_need(instance, &possession) == 0;
    while !success && step < config.max_steps {
        let fresh = AggregateKnowledge::compute(m, &possession, instance.want_all());
        let visible = delayed.advance(fresh).clone();
        let caps: Vec<u32> = match dynamics.as_deref_mut() {
            Some(d) => {
                d.observe(&possession);
                d.capacities(g, step, rng)
            }
            None => static_caps.clone(),
        };
        assert_eq!(
            caps.len(),
            g.edge_count(),
            "dynamics produced a malformed capacity vector"
        );
        let sends = {
            let view = WorldView {
                instance,
                possession: &possession,
                aggregates: &visible,
                step,
                capacities: Some(&caps),
            };
            strategy.plan_step(&view, rng)
        };

        // Enforce the §3.1 restrictions; violations are strategy bugs.
        let mut seen_edges = vec![false; g.edge_count()];
        for (edge, tokens) in &sends {
            assert!(
                edge.index() < g.edge_count(),
                "strategy {} sent on unknown arc {edge} at step {step}",
                strategy.name()
            );
            assert!(
                !std::mem::replace(&mut seen_edges[edge.index()], true),
                "strategy {} duplicated arc {edge} at step {step}",
                strategy.name()
            );
            let arc = g.edge(*edge);
            assert!(
                tokens.len() <= caps[edge.index()] as usize,
                "strategy {} overfilled arc {edge} ({} > {}) at step {step}",
                strategy.name(),
                tokens.len(),
                caps[edge.index()]
            );
            assert!(
                tokens.is_subset(&possession[arc.src.index()]),
                "strategy {} sent unpossessed tokens on arc {edge} at step {step}",
                strategy.name()
            );
        }

        let timestep = Timestep::from_sends(sends);
        let moves = timestep.bandwidth();
        if moves == 0 && dynamics.is_none() && !strategy.may_idle(step) {
            break; // stall
        }
        capacity_trace.push(caps);
        // Apply: receipts land after all sends are read (store & forward).
        for (edge, tokens) in timestep.sends() {
            let dst = g.edge(edge).dst;
            possession[dst.index()].union_with(tokens);
        }
        schedule.push_timestep(timestep);
        step += 1;
        for v in g.nodes() {
            if completion_steps[v.index()].is_none()
                && instance.want(v).is_subset(&possession[v.index()])
            {
                completion_steps[v.index()] = Some(step);
            }
        }
        let remaining = remaining_need(instance, &possession);
        trace.push(StepRecord {
            step: step - 1,
            moves,
            remaining_need: remaining,
        });
        success = remaining == 0;
    }

    (
        SimReport {
            steps: schedule.makespan(),
            bandwidth: schedule.bandwidth(),
            schedule,
            success,
            completion_steps,
            trace,
        },
        capacity_trace,
    )
}

fn remaining_need(instance: &Instance, possession: &[TokenSet]) -> u64 {
    instance
        .want_all()
        .iter()
        .zip(possession)
        .map(|(w, p)| w.difference_len(p) as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KnowledgeTier, Strategy};
    use ocd_core::scenario::single_file;
    use ocd_core::validate;
    use ocd_graph::generate::classic;
    use ocd_graph::EdgeId;
    use rand::prelude::*;

    /// Floods everything allowed on every arc each step.
    struct Flood;

    impl Strategy for Flood {
        fn name(&self) -> &'static str {
            "flood"
        }
        fn tier(&self) -> KnowledgeTier {
            KnowledgeTier::PeerState
        }
        fn reset(&mut self, _: &Instance) {}
        fn plan_step(
            &mut self,
            view: &WorldView<'_>,
            _rng: &mut dyn RngCore,
        ) -> Vec<(EdgeId, TokenSet)> {
            let g = view.graph();
            let mut out = Vec::new();
            for e in g.edge_ids() {
                let arc = g.edge(e);
                let mut send = view.possession[arc.src.index()]
                    .difference(&view.possession[arc.dst.index()]);
                send.truncate(arc.capacity as usize);
                if !send.is_empty() {
                    out.push((e, send));
                }
            }
            out
        }
    }

    /// Never sends anything.
    struct Lazy;

    impl Strategy for Lazy {
        fn name(&self) -> &'static str {
            "lazy"
        }
        fn tier(&self) -> KnowledgeTier {
            KnowledgeTier::LocalOnly
        }
        fn reset(&mut self, _: &Instance) {}
        fn plan_step(
            &mut self,
            _view: &WorldView<'_>,
            _rng: &mut dyn RngCore,
        ) -> Vec<(EdgeId, TokenSet)> {
            Vec::new()
        }
    }

    #[test]
    fn flood_succeeds_and_schedule_validates() {
        let instance = single_file(classic::cycle(5, 3, true), 6, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let report = simulate(&instance, &mut Flood, &SimConfig::default(), &mut rng);
        assert!(report.success);
        assert_eq!(report.steps, report.schedule.makespan());
        assert_eq!(report.bandwidth, report.schedule.bandwidth());
        let replay = validate::replay(&instance, &report.schedule).unwrap();
        assert!(replay.is_successful());
        // Trace is monotone in remaining need and ends at zero.
        for w in report.trace.windows(2) {
            assert!(w[1].remaining_need <= w[0].remaining_need);
        }
        assert_eq!(report.trace.last().unwrap().remaining_need, 0);
    }

    #[test]
    fn completion_steps_recorded() {
        let instance = single_file(classic::path(3, 5, true), 2, 0);
        let mut rng = StdRng::seed_from_u64(2);
        let report = simulate(&instance, &mut Flood, &SimConfig::default(), &mut rng);
        assert_eq!(report.completion_steps[0], Some(0), "source starts satisfied");
        assert_eq!(report.completion_steps[1], Some(1));
        assert_eq!(report.completion_steps[2], Some(2));
        assert_eq!(report.mean_completion(), Some(1.5));
    }

    #[test]
    fn stalled_strategy_aborts_without_panic() {
        let instance = single_file(classic::path(3, 1, true), 2, 0);
        let mut rng = StdRng::seed_from_u64(3);
        let report = simulate(&instance, &mut Lazy, &SimConfig::default(), &mut rng);
        assert!(!report.success);
        assert_eq!(report.steps, 0);
        assert_eq!(report.completion_steps[1], None);
        assert_eq!(report.mean_completion(), None);
    }

    #[test]
    fn trivially_satisfied_instance_takes_zero_steps() {
        let g = classic::path(2, 1, true);
        let instance = ocd_core::Instance::builder(g, 1)
            .have(0, [ocd_core::Token::new(0)])
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let report = simulate(&instance, &mut Flood, &SimConfig::default(), &mut rng);
        assert!(report.success);
        assert_eq!(report.steps, 0);
        assert_eq!(report.bandwidth, 0);
    }

    #[test]
    fn max_steps_caps_runaway() {
        let instance = single_file(classic::path(4, 1, true), 8, 0);
        let config = SimConfig {
            max_steps: 2,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let report = simulate(&instance, &mut Flood, &config, &mut rng);
        assert!(!report.success);
        assert_eq!(report.steps, 2);
    }

    #[test]
    #[should_panic(expected = "overfilled")]
    fn capacity_violation_panics() {
        struct Overfill;
        impl Strategy for Overfill {
            fn name(&self) -> &'static str {
                "overfill"
            }
            fn tier(&self) -> KnowledgeTier {
                KnowledgeTier::Global
            }
            fn reset(&mut self, _: &Instance) {}
            fn plan_step(
                &mut self,
                view: &WorldView<'_>,
                _rng: &mut dyn RngCore,
            ) -> Vec<(EdgeId, TokenSet)> {
                // Send everything the source has, ignoring capacity 1.
                vec![(EdgeId::new(0), view.possession[0].clone())]
            }
        }
        let instance = single_file(classic::path(2, 1, false), 5, 0);
        let mut rng = StdRng::seed_from_u64(6);
        let _ = simulate(&instance, &mut Overfill, &SimConfig::default(), &mut rng);
    }

    #[test]
    #[should_panic(expected = "unpossessed")]
    fn possession_violation_panics() {
        struct Fabricate;
        impl Strategy for Fabricate {
            fn name(&self) -> &'static str {
                "fabricate"
            }
            fn tier(&self) -> KnowledgeTier {
                KnowledgeTier::Global
            }
            fn reset(&mut self, _: &Instance) {}
            fn plan_step(
                &mut self,
                view: &WorldView<'_>,
                _rng: &mut dyn RngCore,
            ) -> Vec<(EdgeId, TokenSet)> {
                // Edge 1 goes 1 -> 2 but vertex 1 has nothing yet.
                vec![(
                    EdgeId::new(1),
                    TokenSet::from_tokens(view.instance.num_tokens(), [ocd_core::Token::new(0)]),
                )]
            }
        }
        let instance = single_file(classic::path(3, 1, false), 1, 0);
        let mut rng = StdRng::seed_from_u64(7);
        let _ = simulate(&instance, &mut Fabricate, &SimConfig::default(), &mut rng);
    }
}
