//! The step-by-step simulation engine.
//!
//! There is exactly **one** step loop — [`simulate_with`], generic over
//! the transmission [`Medium`] — shared by the ideal §3.1 model
//! ([`crate::simulate`]), changing network conditions
//! ([`crate::simulate_dynamic`]), and physical-underlay admission
//! control ([`crate::simulate_underlay`]).
//!
//! The loop is written to be **incremental and allocation-free in
//! steady state**: aggregate knowledge is maintained by counter updates
//! from each delivery (never recomputed from scratch), per-vertex
//! outstanding need is tracked as a scalar, duplicate-arc detection uses
//! a stamped array instead of a fresh `Vec<bool>`, and the knowledge
//! delay pipeline recycles its buffers. The only per-step heap traffic
//! is recording the outputs the caller asked for (the schedule, the
//! trace, and — when the medium requests them — the capacity trace and
//! rejection counts) and whatever the strategy allocates for its own
//! sends.

use crate::medium::{Ideal, Medium};
use crate::{Strategy, WorldView};
use ocd_core::knowledge::{AggregateKnowledge, DelayedAggregates};
use ocd_core::metrics::{MetricsRegistry, MetricsSnapshot, NoopRecorder, Recorder};
use ocd_core::provenance::{NoopProvenance, ProvenanceHook, ProvenanceTrace};
use ocd_core::record::{RunRecord, StepTrace, RUN_RECORD_VERSION};
use ocd_core::span::{FlightRecorder, NoopSpans, SpanRecorder};
use ocd_core::{Instance, Schedule, Timestep, TokenSet};
use rand::RngCore;
use std::time::Instant;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Hard cap on timesteps; a run that has not satisfied every want by
    /// then reports failure. Guards against non-terminating strategies.
    pub max_steps: usize,
    /// Propagation delay (in steps) applied to the aggregate knowledge
    /// strategies see — the paper's "state `k` turns ago" relaxation
    /// (§5.1). 0 = fresh aggregates, the paper's default assumption.
    pub knowledge_delay: usize,
    /// Record run metrics (headline counters, the per-step move
    /// histogram, per-arc utilization series) into a
    /// [`MetricsSnapshot`] on the outcome. The recorded set is fully
    /// deterministic: equal-seed runs snapshot byte-identically. Off by
    /// default — the disabled path monomorphizes over
    /// [`NoopRecorder`] and costs nothing.
    pub metrics: bool,
    /// Additionally run the step loop under a wall-clock
    /// [`FlightRecorder`] whose per-phase spans (`engine.plan` /
    /// `engine.admit` / `engine.apply`) are folded into the
    /// `engine.plan_nanos` / `engine.admit_nanos` / `engine.apply_nanos`
    /// histograms after the run. Timings are inherently
    /// nondeterministic, so this breaks the byte-identical-snapshot
    /// guarantee; keep it off for comparable artifacts. No effect
    /// unless `metrics` is also set.
    pub metric_timings: bool,
    /// Record causal token provenance (the first-acquisition forest;
    /// see [`ocd_core::provenance`]) into a [`ProvenanceTrace`] on the
    /// outcome. Fully deterministic: equal-seed runs produce
    /// byte-identical trace artifacts. Off by default — the disabled
    /// path monomorphizes over [`NoopProvenance`] and costs nothing.
    pub provenance: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_steps: 10_000,
            knowledge_delay: 0,
            metrics: false,
            metric_timings: false,
            provenance: false,
        }
    }
}

/// Per-step counters recorded during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepRecord {
    /// 0-based step index.
    pub step: usize,
    /// Tokens transferred this step.
    pub moves: u64,
    /// Outstanding (vertex, token) needs after the step.
    pub remaining_need: u64,
    /// Wall-clock nanoseconds the step took (planning + validation +
    /// application), so figure binaries can report per-step cost.
    pub nanos: u64,
}

/// Result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// The schedule the strategy produced (always valid for the
    /// instance; the engine enforces the §3.1 restrictions).
    pub schedule: Schedule,
    /// Whether every want was satisfied within the step budget.
    pub success: bool,
    /// Steps actually executed (= `schedule.makespan()`).
    pub steps: usize,
    /// Total tokens transferred (= `schedule.bandwidth()`).
    pub bandwidth: u64,
    /// For each vertex, the step after which its want set was complete
    /// (0 = already satisfied initially); `None` if never satisfied.
    pub completion_steps: Vec<Option<usize>>,
    /// Per-step counters.
    pub trace: Vec<StepRecord>,
    /// Tokens delivered to a vertex that already held them — waste from
    /// simultaneous duplicate sends (the only duplicates the lockstep
    /// model permits). Comparable with the asynchronous runtime's
    /// duplicate-token counter, which additionally counts retransmission
    /// overshoot.
    pub duplicate_deliveries: u64,
    /// Wall-clock nanoseconds for the whole run (setup + step loop).
    pub wall_nanos: u64,
}

impl SimReport {
    /// Mean completion step over vertices that started unsatisfied.
    /// `None` if nothing needed distributing or some vertex never
    /// finished.
    #[must_use]
    pub fn mean_completion(&self) -> Option<f64> {
        let finishers: Vec<usize> = self
            .completion_steps
            .iter()
            .map(|c| c.ok_or(()))
            .collect::<Result<Vec<_>, ()>>()
            .ok()?;
        let late: Vec<usize> = finishers.into_iter().filter(|&s| s > 0).collect();
        if late.is_empty() {
            None
        } else {
            Some(late.iter().sum::<usize>() as f64 / late.len() as f64)
        }
    }

    /// Mean wall-clock nanoseconds per executed step (`None` for a
    /// zero-step run).
    #[must_use]
    pub fn mean_step_nanos(&self) -> Option<f64> {
        if self.trace.is_empty() {
            None
        } else {
            Some(self.trace.iter().map(|r| r.nanos as f64).sum::<f64>() / self.trace.len() as f64)
        }
    }
}

/// Everything one [`simulate_with`] run produced: the usual report plus
/// the medium-specific extras (empty unless the medium records them).
///
/// Convert to the shared machine-readable artifact with
/// [`SimOutcome::to_record`].
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// The simulation report (schedule, metrics, trace).
    pub report: SimReport,
    /// `capacity_trace[i][e]` = effective capacity of arc `e` at step
    /// `i`; empty unless the medium
    /// [records it](Medium::records_capacity_trace).
    pub capacity_trace: Vec<Vec<u32>>,
    /// Token-moves rejected by admission control, per step; empty
    /// unless the medium [records it](Medium::records_rejections).
    pub rejected_per_step: Vec<u64>,
    /// Metrics snapshot of the run; `None` unless
    /// [`SimConfig::metrics`] was set.
    pub metrics: Option<MetricsSnapshot>,
    /// Causal token-provenance trace of the run; `None` unless
    /// [`SimConfig::provenance`] was set. Identical to the trace
    /// [`ProvenanceTrace::from_schedule`] derives from the outcome's
    /// schedule — the live hook just avoids the replay.
    pub provenance: Option<ProvenanceTrace>,
}

impl SimOutcome {
    /// Builds the shared [`RunRecord`] artifact: the instance, the
    /// schedule, every recorded metric, and the medium extras, in the
    /// JSON schema every layer of the suite emits and consumes.
    /// [`RunRecord::certify`] can re-validate the run from the artifact
    /// alone.
    #[must_use]
    pub fn to_record(
        &self,
        instance: &Instance,
        strategy: &str,
        medium: &str,
        seed: u64,
    ) -> RunRecord {
        RunRecord {
            version: RUN_RECORD_VERSION,
            strategy: strategy.to_string(),
            medium: medium.to_string(),
            seed,
            instance: instance.clone(),
            schedule: self.report.schedule.clone(),
            success: self.report.success,
            steps: self.report.steps,
            bandwidth: self.report.bandwidth,
            duplicate_deliveries: self.report.duplicate_deliveries,
            wall_nanos: self.report.wall_nanos,
            completion_steps: self.report.completion_steps.clone(),
            trace: self
                .report
                .trace
                .iter()
                .map(|r| StepTrace {
                    step: r.step,
                    moves: r.moves,
                    remaining_need: r.remaining_need,
                    nanos: r.nanos,
                })
                .collect(),
            capacity_trace: self.capacity_trace.clone(),
            rejected_per_step: self.rejected_per_step.clone(),
            metrics: self.metrics.clone(),
            provenance: self.provenance.as_ref().map(ProvenanceTrace::to_record),
        }
    }
}

/// Runs `strategy` on `instance` under the ideal §3.1 medium (static
/// capacities, every proposal admitted) until success, stall, or the
/// step cap. Equivalent to `simulate_with(.., &mut Ideal, ..)`.
///
/// # Panics
///
/// Panics if the strategy violates capacity or possession, sends on a
/// non-existent arc, or duplicates an arc within a step.
pub fn simulate(
    instance: &Instance,
    strategy: &mut dyn Strategy,
    config: &SimConfig,
    rng: &mut dyn RngCore,
) -> SimReport {
    simulate_with(instance, strategy, &mut Ideal, config, rng).report
}

/// The one step loop: runs `strategy` on `instance` over `medium`.
///
/// Each step the engine:
///
/// 1. feeds the incrementally-maintained aggregates through the
///    configured knowledge delay (with delay 0 the fresh aggregates are
///    borrowed directly);
/// 2. asks the medium for this step's effective capacities (the ideal
///    medium borrows the static capacities without copying);
/// 3. hands the strategy a [`WorldView`];
/// 4. checks the returned sends against the §3.1 restrictions
///    (possession, capacity) — violations are strategy bugs and panic;
/// 5. passes the proposal through the medium's admission control;
/// 6. applies the admitted sends to the possession state (received
///    tokens become usable next step, per the store-and-forward model),
///    updating the aggregates and per-vertex outstanding-need counters
///    from the deliveries alone.
///
/// A step with zero admitted moves and zero rejections aborts the run
/// as a stall if the medium says [stalls abort](Medium::stall_aborts)
/// and the strategy does not claim the right to idle.
///
/// When [`SimConfig::metrics`] is set the run additionally produces a
/// [`MetricsSnapshot`] (`engine.*` metrics: headline counters, per-step
/// move histogram, per-arc utilization series, instance-shape gauges;
/// phase-timing histograms too under [`SimConfig::metric_timings`]).
/// When [`SimConfig::provenance`] is set it also produces a
/// [`ProvenanceTrace`] of first acquisitions. When unset, the loop
/// monomorphizes over [`NoopRecorder`] / [`NoopProvenance`] and the
/// instrumentation compiles away.
///
/// # Panics
///
/// Panics if the strategy violates capacity or possession, sends on a
/// non-existent arc, or duplicates an arc within a step; also on a
/// medium that produces a malformed capacity vector.
pub fn simulate_with<M: Medium>(
    instance: &Instance,
    strategy: &mut dyn Strategy,
    medium: &mut M,
    config: &SimConfig,
    rng: &mut dyn RngCore,
) -> SimOutcome {
    if config.metrics && config.metric_timings {
        // Wall-clock flight recording: the per-phase spans are the
        // timing source, folded into the phase histograms afterwards.
        let mut spans = FlightRecorder::wall();
        let mut registry = MetricsRegistry::new();
        let mut outcome = if config.provenance {
            let mut prov =
                ProvenanceTrace::new(instance.graph().node_count(), instance.num_tokens());
            let mut outcome = run_loop(
                instance,
                strategy,
                medium,
                config,
                rng,
                &mut registry,
                &mut prov,
                &mut spans,
            );
            outcome.provenance = Some(prov);
            outcome
        } else {
            run_loop(
                instance,
                strategy,
                medium,
                config,
                rng,
                &mut registry,
                &mut NoopProvenance,
                &mut spans,
            )
        };
        debug_assert!(spans.is_balanced());
        let m_plan = registry.histogram("engine.plan_nanos");
        let m_admit = registry.histogram("engine.admit_nanos");
        let m_apply = registry.histogram("engine.apply_nanos");
        for span in spans.spans() {
            match span.name {
                "engine.plan" => registry.observe(m_plan, span.wall_ns),
                "engine.admit" => registry.observe(m_admit, span.wall_ns),
                "engine.apply" => registry.observe(m_apply, span.wall_ns),
                _ => {}
            }
        }
        outcome.metrics = Some(registry.snapshot());
        outcome
    } else {
        simulate_with_spans(instance, strategy, medium, config, rng, &mut NoopSpans)
    }
}

/// [`simulate_with`], recording the step loop's phase spans
/// (`engine.step` ⊃ `engine.plan` / `engine.admit` / `engine.apply`,
/// plus `engine.vertex_complete` events) into a caller-supplied
/// [`SpanRecorder`].
///
/// Span counters are deterministic quantities (moves admitted,
/// remaining need), so a [`FlightRecorder::logical`] recorder produces
/// byte-identical artifacts across equal-seed runs. Pass
/// [`FlightRecorder::wall`] for wall-clock span durations instead.
/// [`SimConfig::metric_timings`] is ignored on this path — the spans
/// *are* the timing mechanism.
pub fn simulate_with_spans<M: Medium, S: SpanRecorder>(
    instance: &Instance,
    strategy: &mut dyn Strategy,
    medium: &mut M,
    config: &SimConfig,
    rng: &mut dyn RngCore,
    spans: &mut S,
) -> SimOutcome {
    let new_trace = || ProvenanceTrace::new(instance.graph().node_count(), instance.num_tokens());
    match (config.metrics, config.provenance) {
        (true, true) => {
            let mut registry = MetricsRegistry::new();
            let mut prov = new_trace();
            let mut outcome = run_loop(
                instance,
                strategy,
                medium,
                config,
                rng,
                &mut registry,
                &mut prov,
                spans,
            );
            outcome.metrics = Some(registry.snapshot());
            outcome.provenance = Some(prov);
            outcome
        }
        (true, false) => {
            let mut registry = MetricsRegistry::new();
            let mut outcome = run_loop(
                instance,
                strategy,
                medium,
                config,
                rng,
                &mut registry,
                &mut NoopProvenance,
                spans,
            );
            outcome.metrics = Some(registry.snapshot());
            outcome
        }
        (false, true) => {
            let mut prov = new_trace();
            let mut outcome = run_loop(
                instance,
                strategy,
                medium,
                config,
                rng,
                &mut NoopRecorder,
                &mut prov,
                spans,
            );
            outcome.provenance = Some(prov);
            outcome
        }
        (false, false) => run_loop(
            instance,
            strategy,
            medium,
            config,
            rng,
            &mut NoopRecorder,
            &mut NoopProvenance,
            spans,
        ),
    }
}

/// The monomorphized loop body behind [`simulate_with`]: `R` is either
/// the live [`MetricsRegistry`] or [`NoopRecorder`], `P` either the
/// live [`ProvenanceTrace`] or [`NoopProvenance`], and `S` either a
/// live [`FlightRecorder`] or [`NoopSpans`] (whose inlined no-ops make
/// the disabled paths identical to the uninstrumented loop).
#[allow(clippy::too_many_arguments)]
fn run_loop<M: Medium, R: Recorder, P: ProvenanceHook, S: SpanRecorder>(
    instance: &Instance,
    strategy: &mut dyn Strategy,
    medium: &mut M,
    config: &SimConfig,
    rng: &mut dyn RngCore,
    rec: &mut R,
    prov: &mut P,
    spans: &mut S,
) -> SimOutcome {
    let run_start = Instant::now();
    let g = instance.graph();
    let n = g.node_count();
    let m = instance.num_tokens();
    strategy.reset(instance);
    medium.reset(g);
    let record_capacity_trace = medium.records_capacity_trace();
    let record_rejections = medium.records_rejections();
    let stall_aborts = medium.stall_aborts();

    // Metric handles are interned once here; on the Noop path every
    // call below is an inlined empty body.
    let m_steps = rec.counter("engine.steps");
    let m_moves = rec.counter("engine.moves");
    let m_dups = rec.counter("engine.duplicate_deliveries");
    let m_rejected = rec.counter("engine.rejected_moves");
    let m_step_moves = rec.histogram("engine.step_moves");
    // The phase-timing histograms are interned unconditionally so the
    // snapshot shape is stable; they are only *populated* (from the
    // wall-clock phase spans) on the `metric_timings` path in
    // `simulate_with`.
    let _ = rec.histogram("engine.plan_nanos");
    let _ = rec.histogram("engine.admit_nanos");
    let _ = rec.histogram("engine.apply_nanos");
    let m_arc_tokens = rec.series("engine.arc_tokens", g.edge_count());
    let m_vertex_uplink = rec.series("engine.vertex_uplink_tokens", n);
    let g_vertices = rec.gauge("engine.vertices");
    let g_arcs = rec.gauge("engine.arcs");
    let g_tokens = rec.gauge("engine.tokens");
    let g_remaining = rec.gauge("engine.remaining_need");
    rec.set(g_vertices, n as i64);
    rec.set(g_arcs, g.edge_count() as i64);
    rec.set(g_tokens, m as i64);

    let mut possession: Vec<TokenSet> = instance.have_all().to_vec();
    let mut schedule = Schedule::new();
    let mut trace = Vec::new();
    let mut capacity_trace: Vec<Vec<u32>> = Vec::new();
    let mut rejected_per_step: Vec<u64> = Vec::new();

    // Per-vertex outstanding need and its total, maintained from
    // deliveries instead of re-scanned each step.
    let mut missing: Vec<usize> = (0..n)
        .map(|v| {
            let v = g.node(v);
            instance.want(v).difference_len(&possession[v.index()])
        })
        .collect();
    let mut remaining: u64 = missing.iter().map(|&c| c as u64).sum();
    let mut completion_steps: Vec<Option<usize>> =
        missing.iter().map(|&c| (c == 0).then_some(0)).collect();

    // Fresh aggregates are computed once by the reference implementation
    // and then maintained incrementally; the delay pipeline only exists
    // when a delay is configured, so the common delay-0 path borrows
    // `fresh` without any copying.
    let mut fresh = AggregateKnowledge::compute(m, &possession, instance.want_all());
    let mut delayed = (config.knowledge_delay > 0)
        .then(|| DelayedAggregates::new(config.knowledge_delay, fresh.clone()));
    let static_caps: Vec<u32> = g.edge_ids().map(|e| g.capacity(e)).collect();

    // Scratch arena reused across steps: a stamped duplicate-arc
    // detector (bumping `stamp` invalidates the whole array in O(1))
    // and a delivery buffer for the newly-received tokens of one send.
    let mut seen_stamp: Vec<u64> = vec![0; g.edge_count()];
    let mut stamp = 0u64;
    let mut delta = TokenSet::new(m);
    let mut duplicate_deliveries = 0u64;

    let mut step = 0usize;
    let mut success = remaining == 0;
    while !success && step < config.max_steps {
        let step_start = Instant::now();
        let step_span = spans.open("engine.step");
        let plan_span = spans.open("engine.plan");
        let visible: &AggregateKnowledge = match delayed.as_mut() {
            Some(d) => d.advance_from(&fresh),
            None => &fresh,
        };
        medium.observe(&possession);
        let caps: &[u32] = medium.capacities(g, &static_caps, step, rng);
        assert_eq!(
            caps.len(),
            g.edge_count(),
            "medium produced a malformed capacity vector"
        );
        let mut sends = {
            let view = WorldView {
                instance,
                possession: &possession,
                aggregates: visible,
                step,
                capacities: Some(caps),
            };
            strategy.plan_step(&view, rng)
        };

        // Enforce the §3.1 restrictions; violations are strategy bugs.
        stamp += 1;
        for (edge, tokens) in &sends {
            assert!(
                edge.index() < g.edge_count(),
                "strategy {} sent on unknown arc {edge} at step {step}",
                strategy.name()
            );
            assert!(
                std::mem::replace(&mut seen_stamp[edge.index()], stamp) != stamp,
                "strategy {} duplicated arc {edge} at step {step}",
                strategy.name()
            );
            let arc = g.edge(*edge);
            assert!(
                tokens.len() <= caps[edge.index()] as usize,
                "strategy {} overfilled arc {edge} ({} > {}) at step {step}",
                strategy.name(),
                tokens.len(),
                caps[edge.index()]
            );
            assert!(
                tokens.is_subset(&possession[arc.src.index()]),
                "strategy {} sent unpossessed tokens on arc {edge} at step {step}",
                strategy.name()
            );
        }

        if record_capacity_trace {
            capacity_trace.push(caps.to_vec());
        }
        spans.close(plan_span);
        let admit_span = spans.open("engine.admit");
        let rejected = medium.admit(&mut sends);
        let timestep = Timestep::from_sends(sends);
        let moves = timestep.bandwidth();
        spans.close(admit_span);
        if moves == 0 && rejected == 0 && stall_aborts && !strategy.may_idle(step) {
            spans.close(step_span);
            break; // stall
        }
        if record_rejections {
            rejected_per_step.push(rejected);
        }
        rec.add(m_rejected, rejected);
        let apply_span = spans.open("engine.apply");
        // Apply: receipts land after all sends are read (store &
        // forward; validation above used the pre-step possession). Each
        // send's *newly received* tokens — `delta` — are the only
        // events that change the aggregates and need counters.
        for (edge, tokens) in timestep.sends() {
            let arc = g.edge(edge);
            let dst = arc.dst;
            rec.series_add(m_arc_tokens, edge.index(), tokens.len() as u64);
            rec.series_add(m_vertex_uplink, arc.src.index(), tokens.len() as u64);
            delta.copy_from(tokens);
            delta.subtract(&possession[dst.index()]);
            rec.add(m_dups, (tokens.len() - delta.len()) as u64);
            duplicate_deliveries += (tokens.len() - delta.len()) as u64;
            if delta.is_empty() {
                continue;
            }
            possession[dst.index()].union_with(&delta);
            prov.record_delivery(step as u64, edge, arc.src, dst, &delta);
            let satisfied = fresh.apply_delivery(&delta, instance.want(dst));
            remaining -= satisfied;
            let missing_dst = &mut missing[dst.index()];
            *missing_dst -= satisfied as usize;
            if *missing_dst == 0 && completion_steps[dst.index()].is_none() {
                completion_steps[dst.index()] = Some(step + 1);
                spans.event("engine.vertex_complete", dst.index() as u64);
            }
        }
        schedule.push_timestep(timestep);
        spans.close(apply_span);
        spans.attach(step_span, "moves", moves);
        spans.attach(step_span, "rejected", rejected);
        spans.attach(step_span, "remaining_need", remaining);
        spans.close(step_span);
        rec.add(m_steps, 1);
        rec.add(m_moves, moves);
        rec.observe(m_step_moves, moves);
        step += 1;
        trace.push(StepRecord {
            step: step - 1,
            moves,
            remaining_need: remaining,
            nanos: step_start.elapsed().as_nanos() as u64,
        });
        success = remaining == 0;
    }
    rec.set(g_remaining, remaining as i64);

    debug_assert_eq!(
        fresh,
        AggregateKnowledge::compute(m, &possession, instance.want_all()),
        "incremental aggregates diverged from the reference implementation"
    );
    debug_assert_eq!(remaining, remaining_need(instance, &possession));

    SimOutcome {
        report: SimReport {
            steps: schedule.makespan(),
            bandwidth: schedule.bandwidth(),
            schedule,
            success,
            completion_steps,
            trace,
            duplicate_deliveries,
            wall_nanos: run_start.elapsed().as_nanos() as u64,
        },
        capacity_trace,
        rejected_per_step,
        metrics: None,
        provenance: None,
    }
}

fn remaining_need(instance: &Instance, possession: &[TokenSet]) -> u64 {
    instance
        .want_all()
        .iter()
        .zip(possession)
        .map(|(w, p)| w.difference_len(p) as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KnowledgeTier, Strategy};
    use ocd_core::scenario::single_file;
    use ocd_core::validate;
    use ocd_graph::generate::classic;
    use ocd_graph::EdgeId;
    use rand::prelude::*;

    /// Floods everything allowed on every arc each step.
    struct Flood;

    impl Strategy for Flood {
        fn name(&self) -> &'static str {
            "flood"
        }
        fn tier(&self) -> KnowledgeTier {
            KnowledgeTier::PeerState
        }
        fn reset(&mut self, _: &Instance) {}
        fn plan_step(
            &mut self,
            view: &WorldView<'_>,
            _rng: &mut dyn RngCore,
        ) -> Vec<(EdgeId, TokenSet)> {
            let g = view.graph();
            let mut out = Vec::new();
            for e in g.edge_ids() {
                let arc = g.edge(e);
                let mut send =
                    view.possession[arc.src.index()].difference(&view.possession[arc.dst.index()]);
                send.truncate(arc.capacity as usize);
                if !send.is_empty() {
                    out.push((e, send));
                }
            }
            out
        }
    }

    /// Never sends anything.
    struct Lazy;

    impl Strategy for Lazy {
        fn name(&self) -> &'static str {
            "lazy"
        }
        fn tier(&self) -> KnowledgeTier {
            KnowledgeTier::LocalOnly
        }
        fn reset(&mut self, _: &Instance) {}
        fn plan_step(
            &mut self,
            _view: &WorldView<'_>,
            _rng: &mut dyn RngCore,
        ) -> Vec<(EdgeId, TokenSet)> {
            Vec::new()
        }
    }

    #[test]
    fn flood_succeeds_and_schedule_validates() {
        let instance = single_file(classic::cycle(5, 3, true), 6, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let report = simulate(&instance, &mut Flood, &SimConfig::default(), &mut rng);
        assert!(report.success);
        assert_eq!(report.steps, report.schedule.makespan());
        assert_eq!(report.bandwidth, report.schedule.bandwidth());
        let replay = validate::replay(&instance, &report.schedule).unwrap();
        assert!(replay.is_successful());
        // Trace is monotone in remaining need and ends at zero.
        for w in report.trace.windows(2) {
            assert!(w[1].remaining_need <= w[0].remaining_need);
        }
        assert_eq!(report.trace.last().unwrap().remaining_need, 0);
    }

    #[test]
    fn completion_steps_recorded() {
        let instance = single_file(classic::path(3, 5, true), 2, 0);
        let mut rng = StdRng::seed_from_u64(2);
        let report = simulate(&instance, &mut Flood, &SimConfig::default(), &mut rng);
        assert_eq!(
            report.completion_steps[0],
            Some(0),
            "source starts satisfied"
        );
        assert_eq!(report.completion_steps[1], Some(1));
        assert_eq!(report.completion_steps[2], Some(2));
        assert_eq!(report.mean_completion(), Some(1.5));
    }

    #[test]
    fn stalled_strategy_aborts_without_panic() {
        let instance = single_file(classic::path(3, 1, true), 2, 0);
        let mut rng = StdRng::seed_from_u64(3);
        let report = simulate(&instance, &mut Lazy, &SimConfig::default(), &mut rng);
        assert!(!report.success);
        assert_eq!(report.steps, 0);
        assert_eq!(report.completion_steps[1], None);
        assert_eq!(report.mean_completion(), None);
        assert_eq!(report.mean_step_nanos(), None);
    }

    #[test]
    fn trivially_satisfied_instance_takes_zero_steps() {
        let g = classic::path(2, 1, true);
        let instance = ocd_core::Instance::builder(g, 1)
            .have(0, [ocd_core::Token::new(0)])
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let report = simulate(&instance, &mut Flood, &SimConfig::default(), &mut rng);
        assert!(report.success);
        assert_eq!(report.steps, 0);
        assert_eq!(report.bandwidth, 0);
    }

    #[test]
    fn max_steps_caps_runaway() {
        let instance = single_file(classic::path(4, 1, true), 8, 0);
        let config = SimConfig {
            max_steps: 2,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let report = simulate(&instance, &mut Flood, &config, &mut rng);
        assert!(!report.success);
        assert_eq!(report.steps, 2);
    }

    #[test]
    fn knowledge_delay_runs_match_zero_delay_outcome_for_flood() {
        // Flood ignores the aggregates entirely, so any delay must give
        // the identical schedule — this exercises the delayed
        // (`advance_from`) pipeline against the borrow-fresh fast path.
        let instance = single_file(classic::cycle(6, 2, true), 8, 0);
        let baseline = {
            let mut rng = StdRng::seed_from_u64(11);
            simulate(&instance, &mut Flood, &SimConfig::default(), &mut rng)
        };
        for delay in [1usize, 3, 5] {
            let config = SimConfig {
                knowledge_delay: delay,
                ..Default::default()
            };
            let mut rng = StdRng::seed_from_u64(11);
            let report = simulate(&instance, &mut Flood, &config, &mut rng);
            assert!(report.success, "delay {delay}");
            assert_eq!(report.schedule, baseline.schedule, "delay {delay}");
        }
    }

    #[test]
    fn wall_clock_fields_are_recorded() {
        let instance = single_file(classic::cycle(5, 3, true), 6, 0);
        let mut rng = StdRng::seed_from_u64(12);
        let report = simulate(&instance, &mut Flood, &SimConfig::default(), &mut rng);
        assert!(report.wall_nanos > 0);
        assert_eq!(report.trace.len(), report.steps);
        let step_total: u64 = report.trace.iter().map(|r| r.nanos).sum();
        assert!(step_total <= report.wall_nanos, "steps are part of the run");
        assert!(report.mean_step_nanos().is_some());
    }

    #[test]
    fn metrics_snapshot_matches_report() {
        let instance = single_file(classic::cycle(5, 3, true), 6, 0);
        let config = SimConfig {
            metrics: true,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(21);
        let outcome = simulate_with(
            &instance,
            &mut Flood,
            &mut crate::medium::Ideal,
            &config,
            &mut rng,
        );
        let snap = outcome.metrics.as_ref().expect("metrics enabled");
        assert_eq!(
            snap.counter("engine.steps"),
            Some(outcome.report.steps as u64)
        );
        assert_eq!(snap.counter("engine.moves"), Some(outcome.report.bandwidth));
        assert_eq!(
            snap.counter("engine.duplicate_deliveries"),
            Some(outcome.report.duplicate_deliveries)
        );
        assert_eq!(snap.counter("engine.rejected_moves"), Some(0));
        assert_eq!(snap.gauge("engine.vertices"), Some(5));
        assert_eq!(snap.gauge("engine.remaining_need"), Some(0));
        let arc_tokens = snap.series("engine.arc_tokens").expect("per-arc series");
        assert_eq!(
            arc_tokens.len(),
            instance.graph().edge_count(),
            "one slot per arc"
        );
        assert_eq!(
            arc_tokens.iter().sum::<u64>(),
            outcome.report.bandwidth,
            "arc utilization sums to total bandwidth"
        );
        let uplink = snap
            .series("engine.vertex_uplink_tokens")
            .expect("per-vertex uplink series");
        assert_eq!(uplink.len(), instance.num_vertices(), "one slot per vertex");
        assert_eq!(
            uplink.iter().sum::<u64>(),
            outcome.report.bandwidth,
            "uplink utilization sums to total bandwidth"
        );
        let hist = snap.histogram("engine.step_moves").expect("move histogram");
        assert_eq!(hist.count, outcome.report.steps as u64);
        assert_eq!(hist.sum, outcome.report.bandwidth);
        // Timings were not requested: histograms exist but stay empty,
        // keeping the snapshot deterministic.
        assert_eq!(snap.histogram("engine.plan_nanos").unwrap().count, 0);
        // Embedding survives the record round trip.
        let record = outcome.to_record(&instance, "flood", "ideal", 21);
        record.certify().unwrap();
        assert_eq!(record.metrics.as_ref(), Some(snap));
    }

    #[test]
    fn metrics_disabled_yields_none() {
        let instance = single_file(classic::cycle(5, 3, true), 6, 0);
        let mut rng = StdRng::seed_from_u64(22);
        let outcome = simulate_with(
            &instance,
            &mut Flood,
            &mut crate::medium::Ideal,
            &SimConfig::default(),
            &mut rng,
        );
        assert!(outcome.metrics.is_none());
        let record = outcome.to_record(&instance, "flood", "ideal", 22);
        record.certify().unwrap();
    }

    #[test]
    fn same_seed_snapshots_are_byte_identical() {
        let instance = single_file(classic::cycle(6, 2, true), 8, 0);
        let config = SimConfig {
            metrics: true,
            ..Default::default()
        };
        let run = || {
            let mut rng = StdRng::seed_from_u64(33);
            let mut strategy = crate::StrategyKind::Random.build();
            simulate_with(
                &instance,
                strategy.as_mut(),
                &mut crate::medium::Ideal,
                &config,
                &mut rng,
            )
            .metrics
            .unwrap()
            .to_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn metric_timings_populate_phase_histograms() {
        let instance = single_file(classic::cycle(5, 3, true), 6, 0);
        let config = SimConfig {
            metrics: true,
            metric_timings: true,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(23);
        let outcome = simulate_with(
            &instance,
            &mut Flood,
            &mut crate::medium::Ideal,
            &config,
            &mut rng,
        );
        let snap = outcome.metrics.unwrap();
        let steps = outcome.report.steps as u64;
        for name in [
            "engine.plan_nanos",
            "engine.admit_nanos",
            "engine.apply_nanos",
        ] {
            let h = snap.histogram(name).unwrap();
            assert_eq!(h.count, steps, "{name} observed once per step");
        }
    }

    #[test]
    fn span_recording_captures_phases_per_step() {
        let instance = single_file(classic::cycle(5, 3, true), 6, 0);
        let mut rng = StdRng::seed_from_u64(24);
        let mut spans = FlightRecorder::logical();
        let outcome = simulate_with_spans(
            &instance,
            &mut Flood,
            &mut crate::medium::Ideal,
            &SimConfig::default(),
            &mut rng,
            &mut spans,
        );
        assert!(outcome.report.success);
        assert!(spans.is_balanced(), "every span closed");
        let steps = outcome.report.steps;
        assert_eq!(spans.count("engine.step"), steps);
        assert_eq!(spans.count("engine.plan"), steps);
        assert_eq!(spans.count("engine.admit"), steps);
        assert_eq!(spans.count("engine.apply"), steps);
        // Phases nest under their step span, and the step span carries
        // the deterministic move/need counters.
        let step_spans: Vec<_> = spans
            .spans()
            .iter()
            .filter(|s| s.name == "engine.step")
            .collect();
        assert!(step_spans.iter().all(|s| s.depth == 0));
        assert!(spans
            .spans()
            .iter()
            .filter(|s| s.name != "engine.step")
            .all(|s| s.depth == 1));
        let moves: u64 = step_spans
            .iter()
            .map(|s| {
                s.counters
                    .iter()
                    .find(|(k, _)| *k == "moves")
                    .expect("moves counter attached")
                    .1
            })
            .sum();
        assert_eq!(moves, outcome.report.bandwidth);
        // One completion event per initially-unsatisfied vertex.
        let completions = spans
            .events()
            .iter()
            .filter(|e| e.name == "engine.vertex_complete")
            .count();
        assert_eq!(completions, 4, "4 non-source vertices complete");
        // Logical clock: no wall time recorded.
        assert!(spans.spans().iter().all(|s| s.wall_ns == 0));
    }

    #[test]
    fn same_seed_span_artifacts_are_byte_identical() {
        let instance = single_file(classic::cycle(6, 2, true), 8, 0);
        let run = || {
            let mut rng = StdRng::seed_from_u64(25);
            let mut strategy = crate::StrategyKind::Random.build();
            let mut spans = FlightRecorder::logical();
            simulate_with_spans(
                &instance,
                strategy.as_mut(),
                &mut crate::medium::Ideal,
                &SimConfig::default(),
                &mut rng,
                &mut spans,
            );
            (
                spans.to_chrome_json("engine"),
                spans.to_json(),
                spans.to_csv(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stalled_run_still_balances_spans() {
        let instance = single_file(classic::path(3, 1, true), 2, 0);
        let mut rng = StdRng::seed_from_u64(26);
        let mut spans = FlightRecorder::logical();
        let outcome = simulate_with_spans(
            &instance,
            &mut Lazy,
            &mut crate::medium::Ideal,
            &SimConfig::default(),
            &mut rng,
            &mut spans,
        );
        assert!(!outcome.report.success);
        assert!(spans.is_balanced(), "stall break closes the step span");
        assert_eq!(spans.count("engine.step"), 1, "the stalled step");
    }

    #[test]
    fn provenance_trace_matches_schedule_derivation() {
        let instance = single_file(classic::cycle(6, 2, true), 8, 0);
        let config = SimConfig {
            provenance: true,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(41);
        let mut strategy = crate::StrategyKind::Random.build();
        let outcome = simulate_with(
            &instance,
            strategy.as_mut(),
            &mut crate::medium::Ideal,
            &config,
            &mut rng,
        );
        let live = outcome.provenance.as_ref().expect("provenance enabled");
        let derived = ProvenanceTrace::from_schedule(&instance, &outcome.report.schedule);
        assert_eq!(
            *live, derived,
            "live hook and schedule replay must agree exactly"
        );
        // Every unsatisfied (vertex, token) need that got satisfied has
        // a recorded parent delivery.
        assert!(outcome.report.success);
        assert!(live.critical_path(&instance).is_some());
        // Embedding survives the record round trip and certifies.
        let record = outcome.to_record(&instance, "random", "ideal", 41);
        record.certify().unwrap();
        assert_eq!(record.provenance.as_ref(), Some(&live.to_record()));
    }

    #[test]
    fn provenance_disabled_yields_none() {
        let instance = single_file(classic::cycle(5, 3, true), 6, 0);
        let mut rng = StdRng::seed_from_u64(42);
        let outcome = simulate_with(
            &instance,
            &mut Flood,
            &mut crate::medium::Ideal,
            &SimConfig::default(),
            &mut rng,
        );
        assert!(outcome.provenance.is_none());
        let record = outcome.to_record(&instance, "flood", "ideal", 42);
        assert!(record.provenance.is_none());
        record.certify().unwrap();
    }

    #[test]
    fn same_seed_provenance_artifacts_are_byte_identical() {
        let instance = single_file(classic::cycle(6, 2, true), 8, 0);
        let config = SimConfig {
            provenance: true,
            ..Default::default()
        };
        let run = || {
            let mut rng = StdRng::seed_from_u64(43);
            let mut strategy = crate::StrategyKind::Random.build();
            let outcome = simulate_with(
                &instance,
                strategy.as_mut(),
                &mut crate::medium::Ideal,
                &config,
                &mut rng,
            );
            let trace = outcome.provenance.unwrap();
            (
                trace.to_json(),
                trace.to_csv(),
                trace.to_chrome_json(&instance),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn mean_completion_and_step_nanos_on_empty_report() {
        // A trivially satisfied instance runs zero steps: no trace, no
        // late finishers — both means are undefined.
        let g = classic::path(2, 1, true);
        let instance = ocd_core::Instance::builder(g, 1)
            .have(0, [ocd_core::Token::new(0)])
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(44);
        let report = simulate(&instance, &mut Flood, &SimConfig::default(), &mut rng);
        assert!(report.success);
        assert!(report.trace.is_empty());
        assert_eq!(report.mean_completion(), None);
        assert_eq!(report.mean_step_nanos(), None);
    }

    #[test]
    fn mean_completion_and_step_nanos_on_single_step_run() {
        let instance = single_file(classic::path(2, 5, true), 2, 0);
        let mut rng = StdRng::seed_from_u64(45);
        let report = simulate(&instance, &mut Flood, &SimConfig::default(), &mut rng);
        assert!(report.success);
        assert_eq!(report.steps, 1);
        assert_eq!(report.mean_completion(), Some(1.0));
        let mean = report.mean_step_nanos().expect("one step recorded");
        assert!((mean - report.trace[0].nanos as f64).abs() < 1e-9);
    }

    #[test]
    fn to_record_certifies_for_every_extras_combination() {
        let instance = single_file(classic::cycle(5, 3, true), 6, 0);
        for (metrics, provenance) in [(false, false), (true, false), (false, true), (true, true)] {
            let config = SimConfig {
                metrics,
                provenance,
                ..Default::default()
            };
            let mut rng = StdRng::seed_from_u64(46);
            let outcome = simulate_with(
                &instance,
                &mut Flood,
                &mut crate::medium::Ideal,
                &config,
                &mut rng,
            );
            let record = outcome.to_record(&instance, "flood", "ideal", 46);
            assert_eq!(record.metrics.is_some(), metrics);
            assert_eq!(record.provenance.is_some(), provenance);
            record.certify().unwrap();
            // And the JSON round trip stays certifiable.
            let back = ocd_core::RunRecord::from_json(&record.to_json().unwrap()).unwrap();
            back.certify().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "overfilled")]
    fn capacity_violation_panics() {
        struct Overfill;
        impl Strategy for Overfill {
            fn name(&self) -> &'static str {
                "overfill"
            }
            fn tier(&self) -> KnowledgeTier {
                KnowledgeTier::Global
            }
            fn reset(&mut self, _: &Instance) {}
            fn plan_step(
                &mut self,
                view: &WorldView<'_>,
                _rng: &mut dyn RngCore,
            ) -> Vec<(EdgeId, TokenSet)> {
                // Send everything the source has, ignoring capacity 1.
                vec![(EdgeId::new(0), view.possession[0].clone())]
            }
        }
        let instance = single_file(classic::path(2, 1, false), 5, 0);
        let mut rng = StdRng::seed_from_u64(6);
        let _ = simulate(&instance, &mut Overfill, &SimConfig::default(), &mut rng);
    }

    #[test]
    #[should_panic(expected = "duplicated arc")]
    fn duplicate_arc_panics() {
        struct Duplicate;
        impl Strategy for Duplicate {
            fn name(&self) -> &'static str {
                "duplicate"
            }
            fn tier(&self) -> KnowledgeTier {
                KnowledgeTier::Global
            }
            fn reset(&mut self, _: &Instance) {}
            fn plan_step(
                &mut self,
                view: &WorldView<'_>,
                _rng: &mut dyn RngCore,
            ) -> Vec<(EdgeId, TokenSet)> {
                let t =
                    TokenSet::from_tokens(view.instance.num_tokens(), [ocd_core::Token::new(0)]);
                vec![(EdgeId::new(0), t.clone()), (EdgeId::new(0), t)]
            }
        }
        let instance = single_file(classic::path(2, 2, false), 2, 0);
        let mut rng = StdRng::seed_from_u64(8);
        let _ = simulate(&instance, &mut Duplicate, &SimConfig::default(), &mut rng);
    }

    #[test]
    #[should_panic(expected = "unpossessed")]
    fn possession_violation_panics() {
        struct Fabricate;
        impl Strategy for Fabricate {
            fn name(&self) -> &'static str {
                "fabricate"
            }
            fn tier(&self) -> KnowledgeTier {
                KnowledgeTier::Global
            }
            fn reset(&mut self, _: &Instance) {}
            fn plan_step(
                &mut self,
                view: &WorldView<'_>,
                _rng: &mut dyn RngCore,
            ) -> Vec<(EdgeId, TokenSet)> {
                // Edge 1 goes 1 -> 2 but vertex 1 has nothing yet.
                vec![(
                    EdgeId::new(1),
                    TokenSet::from_tokens(view.instance.num_tokens(), [ocd_core::Token::new(0)]),
                )]
            }
        }
        let instance = single_file(classic::path(3, 1, false), 1, 0);
        let mut rng = StdRng::seed_from_u64(7);
        let _ = simulate(&instance, &mut Fabricate, &SimConfig::default(), &mut rng);
    }
}
