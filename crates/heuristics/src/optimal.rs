//! Analytic-optimal baselines for the uplink-constrained regime.
//!
//! Mundinger, Weber and Weiss ("Optimal Scheduling of Peer-to-Peer File
//! Dissemination") solve the broadcast problem this module scores
//! against: a server holding a file of `M` parts, `N` peers on a
//! complete overlay who all want every part, and bandwidth constrained
//! per *node* uplink rather than per arc. For unit uplinks the discrete
//! optimal makespan has a closed form ([`mww_makespan`]); for unequal
//! server/peer uplinks this module exposes a certified *lower bound*
//! ([`uplink_makespan_lower_bound`]) and a node-capacity-aware
//! brute-force exact solver ([`brute_force_uplink_makespan`]) that pins
//! both on small instances (the repo's branch-and-bound solver is
//! arc-capacitated and cannot express shared uplinks).
//!
//! `table_competitive_gap` uses these as denominators for
//! competitive-ratio scoring of the paper's heuristics at sizes far
//! beyond brute-force reach.

use ocd_core::{Instance, NodeBudgets, Token};
use ocd_graph::generate::classic;
use std::collections::{HashSet, VecDeque};

/// `⌈log₂ x⌉` for `x ≥ 1`.
fn ceil_log2(x: usize) -> usize {
    x.next_power_of_two().trailing_zeros() as usize
}

/// The Mundinger–Weber–Weiss optimal makespan for unit uplinks: a
/// server holding `parts` tokens, `peers` peers on a complete overlay,
/// every vertex (server and peers) may upload **one token per step**,
/// downloads unconstrained. The discrete optimum is
///
/// ```text
/// T*(M, N) = M − 1 + ⌈log₂(N + 1)⌉
/// ```
///
/// *Why it is a lower bound*: the server uploads one token per step, so
/// the `M`-th distinct part first leaves the server at step ≥ `M`; at
/// that point it has 2 holders (server + 1 peer), and the holder count
/// at best doubles per step, so reaching all `N + 1` vertices takes
/// ≥ `⌈log₂(N+1)⌉ − 1` further steps. *Why it is achieved*: greedy
/// rarest-first per-neighbor-queue scheduling meets it (see
/// [`PerNeighborQueue`](crate::PerNeighborQueue)); the unit tests in
/// this module certify exactness against [`brute_force_uplink_makespan`]
/// for every `M ≤ 3, N ≤ 4`.
///
/// Degenerate cases: 0 parts or 0 peers need 0 steps.
#[must_use]
pub fn mww_makespan(parts: usize, peers: usize) -> usize {
    if parts == 0 || peers == 0 {
        return 0;
    }
    parts - 1 + ceil_log2(peers + 1)
}

/// Certified lower bound on the broadcast makespan with a server uplink
/// of `server_up` and per-peer uplinks of `peer_up` tokens per step
/// (complete overlay, downloads unconstrained). The bound is the max of
/// two arguments, each valid for *any* schedule:
///
/// - **counting**: `N·M` transfers must happen; step `t` can carry at
///   most `server_up + p·peer_up` transfers where `p` is the number of
///   peers holding at least one token, itself bounded by the transfers
///   completed so far.
/// - **last part**: fewer than `M` distinct parts have left the server
///   before step `⌈M/server_up⌉`, so some part has at most `server_up`
///   peer copies then; holders of that part then grow by at most
///   `server_up + holders·peer_up` per step and must reach `N`.
///
/// At `server_up == peer_up == 1` the bound equals [`mww_makespan`],
/// i.e. it is tight; in general it is a lower bound only (the module's
/// tests pin `bound ≤ brute-force optimum` on every small case).
///
/// # Panics
///
/// Panics if `server_up == 0` while work remains (no schedule exists).
#[must_use]
pub fn uplink_makespan_lower_bound(
    parts: usize,
    peers: usize,
    server_up: u32,
    peer_up: u32,
) -> usize {
    if parts == 0 || peers == 0 {
        return 0;
    }
    assert!(server_up > 0, "a silent server can never broadcast");
    let (s, p) = (server_up as u64, peer_up as u64);
    let (n, m) = (peers as u64, parts as u64);

    // Counting bound: cumulative transfer capacity vs N·M.
    let counting = {
        let mut transfers = 0u64;
        let mut t = 0usize;
        while transfers < n * m {
            let active = transfers.min(n);
            transfers = transfers.saturating_add(s + active * p);
            t += 1;
        }
        t
    };

    // Last-part bound: departure time plus spreading time.
    let last_part = {
        let depart = parts.div_ceil(server_up as usize);
        let mut holders = s.min(n);
        let mut t = depart;
        while holders < n {
            holders = (holders + s + holders * p).min(n);
            t += 1;
        }
        t
    };

    counting.max(last_part)
}

/// Exact optimal broadcast makespan by breadth-first search over
/// possession states, with per-step feasibility decided by a
/// sender-capacity matching — the node-capacity analogue of the
/// arc-capacitated branch-and-bound in `ocd-solver`, reachable only for
/// tiny instances (`parts ≤ 8`, `peers ≤ 5`).
///
/// Model: complete overlay, server (holding all `parts`) plus `peers`
/// empty peers; per step each vertex uploads at most its uplink
/// (`server_up` / `peer_up`) tokens, counting duplicates; downloads and
/// per-arc capacities unconstrained; store-and-forward (tokens received
/// this step are usable next step).
///
/// # Panics
///
/// Panics if `parts > 8` or `peers > 5` (state space blow-up) or if
/// `server_up == 0` while work remains.
#[must_use]
pub fn brute_force_uplink_makespan(
    parts: usize,
    peers: usize,
    server_up: u32,
    peer_up: u32,
) -> usize {
    if parts == 0 || peers == 0 {
        return 0;
    }
    assert!(
        parts <= 8 && peers <= 5,
        "brute force is for tiny instances"
    );
    assert!(server_up > 0, "a silent server can never broadcast");
    let full: u16 = (1 << parts) - 1;
    let start = vec![0u16; peers];
    if start.iter().all(|&mask| mask == full) {
        return 0;
    }
    let mut visited: HashSet<Vec<u16>> = HashSet::new();
    visited.insert(start.clone());
    let mut frontier = VecDeque::new();
    frontier.push_back((start, 0usize));
    while let Some((state, depth)) = frontier.pop_front() {
        let mut done = None;
        for_each_successor(&state, full, server_up, peer_up, |next| {
            if done.is_some() || !visited.insert(next.to_vec()) {
                return;
            }
            if next.iter().all(|&mask| mask == full) {
                done = Some(depth + 1);
            } else {
                frontier.push_back((next.to_vec(), depth + 1));
            }
        });
        if let Some(t) = done {
            return t;
        }
    }
    unreachable!("broadcast with a positive server uplink always completes");
}

/// Enumerates every distinct canonical successor of `state` (one step of
/// feasible transfers) and feeds it to `emit`.
fn for_each_successor(
    state: &[u16],
    full: u16,
    server_up: u32,
    peer_up: u32,
    mut emit: impl FnMut(&[u16]),
) {
    let peers = state.len();
    // Total upload capacity this step bounds how many tokens can land.
    let active = state.iter().filter(|&&mask| mask != 0).count() as u64;
    let max_transfers = u64::from(server_up) + active * u64::from(peer_up);

    // Recursively choose each peer's receive set (a subset of what it
    // is missing), pruning on the total-capacity bound, then check the
    // sender assignment exists.
    let mut receive = vec![0u16; peers];
    let mut stack: Vec<(usize, u64)> = vec![(0, 0)];
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        peer: usize,
        used: u64,
        state: &[u16],
        full: u16,
        receive: &mut Vec<u16>,
        max_transfers: u64,
        server_up: u32,
        peer_up: u32,
        emit: &mut impl FnMut(&[u16]),
    ) {
        if peer == state.len() {
            if used == 0 {
                return; // an idle step never helps a makespan search
            }
            if feasible(state, receive, server_up, peer_up) {
                let mut next: Vec<u16> = state
                    .iter()
                    .zip(receive.iter())
                    .map(|(&mask, &gain)| mask | gain)
                    .collect();
                next.sort_unstable_by(|a, b| b.cmp(a));
                emit(&next);
            }
            return;
        }
        let missing = full & !state[peer];
        // Iterate all subsets of `missing`, including the empty set.
        let mut sub = missing;
        loop {
            let gain = u64::from(sub.count_ones());
            if used + gain <= max_transfers {
                receive[peer] = sub;
                recurse(
                    peer + 1,
                    used + gain,
                    state,
                    full,
                    receive,
                    max_transfers,
                    server_up,
                    peer_up,
                    emit,
                );
            }
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & missing;
        }
        receive[peer] = 0;
    }
    let _ = &mut stack;
    recurse(
        0,
        0,
        state,
        full,
        &mut receive,
        max_transfers,
        server_up,
        peer_up,
        &mut emit,
    );
}

/// Whether the per-peer receive sets admit a sender assignment: every
/// (receiver, token) demand is served by a vertex that held the token
/// at the start of the step (the server, or a peer other than the
/// receiver) without any sender exceeding its uplink. Solved as
/// capacity-constrained bipartite matching with augmenting paths.
fn feasible(state: &[u16], receive: &[u16], server_up: u32, peer_up: u32) -> bool {
    let peers = state.len();
    // Sender 0 is the server; sender i+1 is peer i.
    let caps: Vec<u32> = std::iter::once(server_up)
        .chain(
            state
                .iter()
                .map(|&mask| if mask == 0 { 0 } else { peer_up }),
        )
        .collect();
    let mut demands: Vec<(usize, u16)> = Vec::new();
    for (r, &gain) in receive.iter().enumerate() {
        let mut bits = gain;
        while bits != 0 {
            let bit = bits & bits.wrapping_neg();
            demands.push((r, bit));
            bits ^= bit;
        }
    }
    let eligible = |d: (usize, u16)| -> Vec<usize> {
        let (receiver, bit) = d;
        let mut senders = vec![0usize];
        for (q, &mask) in state.iter().enumerate() {
            if q != receiver && mask & bit != 0 {
                senders.push(q + 1);
            }
        }
        senders
    };
    let mut assigned: Vec<Option<usize>> = vec![None; demands.len()];
    let mut load = vec![0u32; peers + 1];

    fn try_assign(
        d: usize,
        demands: &[(usize, u16)],
        eligible: &dyn Fn((usize, u16)) -> Vec<usize>,
        caps: &[u32],
        assigned: &mut Vec<Option<usize>>,
        load: &mut Vec<u32>,
        visited: &mut Vec<bool>,
    ) -> bool {
        for s in eligible(demands[d]) {
            if visited[s] || caps[s] == 0 {
                continue;
            }
            visited[s] = true;
            if load[s] < caps[s] {
                assigned[d] = Some(s);
                load[s] += 1;
                return true;
            }
            // Try to reroute one of s's current demands elsewhere.
            for d2 in 0..demands.len() {
                if assigned[d2] == Some(s) {
                    load[s] -= 1;
                    assigned[d2] = None;
                    if try_assign(d2, demands, eligible, caps, assigned, load, visited) {
                        assigned[d] = Some(s);
                        load[s] += 1;
                        return true;
                    }
                    assigned[d2] = Some(s);
                    load[s] += 1;
                }
            }
        }
        false
    }

    for d in 0..demands.len() {
        let mut visited = vec![false; peers + 1];
        if !try_assign(
            d,
            &demands,
            &eligible,
            &caps,
            &mut assigned,
            &mut load,
            &mut visited,
        ) {
            return false;
        }
    }
    true
}

/// Builds the Mundinger–Weber–Weiss broadcast instance: vertex 0 (the
/// server) holds all `parts` tokens on a complete symmetric overlay of
/// `1 + peers` vertices, everyone wants everything, and the attached
/// [`NodeBudgets`] give the server an uplink of `server_up` and every
/// peer `peer_up` (downlinks unconstrained). Per-arc capacities are set
/// to `max(server_up, peer_up)` so only the node budgets ever bind.
///
/// # Panics
///
/// Panics if `peers == 0`, `parts == 0`, or `server_up == 0`.
#[must_use]
pub fn broadcast_instance(parts: usize, peers: usize, server_up: u32, peer_up: u32) -> Instance {
    assert!(peers > 0 && parts > 0, "degenerate broadcast instance");
    assert!(server_up > 0, "a silent server can never broadcast");
    let n = peers + 1;
    let g = classic::complete(n, server_up.max(peer_up));
    Instance::builder(g, parts)
        .have(0, (0..parts).map(Token::new))
        .want_all_everywhere()
        .node_budgets(NodeBudgets::server_peers(n, server_up, peer_up))
        .build()
        .expect("broadcast instance is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, PerNeighborQueue, SimConfig};
    use rand::prelude::*;

    #[test]
    fn closed_form_matches_brute_force_at_unit_uplinks() {
        // The oracle is certified before anything is scored against it:
        // every (M ≤ 3, N ≤ 4) optimum from exhaustive search equals
        // the closed form.
        for parts in 1..=3 {
            for peers in 1..=4 {
                assert_eq!(
                    brute_force_uplink_makespan(parts, peers, 1, 1),
                    mww_makespan(parts, peers),
                    "closed form wrong at M = {parts}, N = {peers}"
                );
            }
        }
    }

    #[test]
    fn closed_form_spot_values() {
        assert_eq!(mww_makespan(1, 1), 1);
        assert_eq!(mww_makespan(1, 3), 2);
        assert_eq!(mww_makespan(1, 4), 3);
        assert_eq!(mww_makespan(2, 2), 3);
        assert_eq!(mww_makespan(3, 2), 4);
        assert_eq!(mww_makespan(0, 5), 0);
        assert_eq!(mww_makespan(5, 0), 0);
    }

    #[test]
    fn lower_bound_is_tight_at_unit_uplinks() {
        for parts in 1..=4 {
            for peers in 1..=6 {
                assert_eq!(
                    uplink_makespan_lower_bound(parts, peers, 1, 1),
                    mww_makespan(parts, peers)
                );
            }
        }
    }

    #[test]
    fn lower_bound_never_exceeds_brute_force_optimum() {
        for parts in 1..=3 {
            for peers in 1..=4 {
                for server_up in 1..=3 {
                    for peer_up in 0..=2 {
                        let exact = brute_force_uplink_makespan(parts, peers, server_up, peer_up);
                        let bound = uplink_makespan_lower_bound(parts, peers, server_up, peer_up);
                        assert!(
                            bound <= exact,
                            "bound {bound} > optimum {exact} at M = {parts}, N = {peers}, \
                             s = {server_up}, p = {peer_up}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn brute_force_unequal_uplink_spot_values() {
        // Fat server, unit peers: both parts leave the server in step 1,
        // and the 4 remaining deliveries fit in step 2 (verified by an
        // explicit schedule during design).
        assert_eq!(brute_force_uplink_makespan(2, 3, 2, 1), 2);
        // Silent peers: the server alone delivers N·M transfers at
        // `server_up` per step.
        assert_eq!(brute_force_uplink_makespan(2, 2, 1, 0), 4);
        assert_eq!(brute_force_uplink_makespan(2, 2, 2, 0), 2);
    }

    #[test]
    fn broadcast_instance_shape() {
        let inst = broadcast_instance(3, 4, 2, 1);
        assert_eq!(inst.num_vertices(), 5);
        assert_eq!(inst.num_tokens(), 3);
        assert_eq!(inst.have(inst.graph().node(0)).len(), 3);
        assert!(inst.have(inst.graph().node(1)).is_empty());
        let budgets = inst.node_budgets().expect("budgeted");
        assert_eq!(budgets.uplink(0), 2);
        assert_eq!(budgets.uplink(3), 1);
        assert!(inst.is_satisfiable());
    }

    #[test]
    fn per_neighbor_queue_meets_the_oracle_on_small_broadcasts() {
        // The policy the oracle module vouches for: on every tiny
        // unit-uplink broadcast, per-neighbor-queue scheduling achieves
        // the brute-force optimum exactly (competitive ratio 1.0).
        for parts in 1..=3 {
            for peers in 2..=4 {
                let inst = broadcast_instance(parts, peers, 1, 1);
                let mut rng = StdRng::seed_from_u64(7);
                let report = simulate(
                    &inst,
                    &mut PerNeighborQueue::new(),
                    &SimConfig::default(),
                    &mut rng,
                );
                assert!(report.success);
                assert_eq!(
                    report.steps,
                    mww_makespan(parts, peers),
                    "suboptimal at M = {parts}, N = {peers}"
                );
            }
        }
    }
}
