//! Changing network conditions (paper §6, "open problems").
//!
//! "We can consider that the capacity of each arc, or even the set of
//! arcs themselves changes between turns. By restricting the types of
//! possible changes, this could model cross traffic, dynamic channel
//! conditions, intermittent mobility, or even denial-of-service attacks.
//! … Arrivals and departures … may be viewed as an instance of the
//! 'Changing network conditions' with capacities to and from particular
//! nodes going from zero to non-zero and back."
//!
//! A [`NetworkDynamics`] produces the *effective* per-arc capacities of
//! each timestep (0 = link down). [`simulate_dynamic`] runs a strategy
//! under a dynamics model; the returned capacity trace lets
//! [`ocd_core::validate::replay_with_capacities`] re-check the schedule
//! independently. Provided models:
//!
//! - [`CrossTraffic`]: every arc retains a random fraction of its
//!   capacity each step (congestion; never fully down).
//! - [`LinkOutages`]: per-link two-state Markov up/down process, with
//!   anti-parallel arc pairs failing together (a physical link dies in
//!   both directions).
//! - [`Churn`]: per-*vertex* leave/rejoin process — a departed vertex's
//!   incident arcs all drop to 0; it keeps its tokens and resumes on
//!   rejoin (the §6 "arrivals and departures" variant).
//! - [`AdversarialCuts`]: a full-knowledge adversary that each step cuts
//!   the arcs currently most useful to the protocol (the
//!   denial-of-service flavor).

use crate::engine::{simulate_with, SimConfig, SimReport};
use crate::medium::Dynamic;
use crate::Strategy;
use ocd_core::{Instance, TokenSet};
use ocd_graph::{DiGraph, EdgeId};
use rand::{Rng, RngCore};

/// A source of per-step effective capacities.
pub trait NetworkDynamics {
    /// Human-readable model name for experiment output.
    fn name(&self) -> &'static str;

    /// Called once at simulation start.
    fn reset(&mut self, graph: &DiGraph);

    /// Writes the effective capacity of every arc for timestep `step`
    /// into `out`, indexed by [`EdgeId::index`]. 0 disables the arc for
    /// this step. Called exactly once per step, in step order, always
    /// with `out.len() == graph.edge_count()` — the engine's
    /// [`Dynamic`] medium owns the buffer and reuses it across steps,
    /// so a model never allocates per step.
    fn capacities_into(
        &mut self,
        graph: &DiGraph,
        step: usize,
        rng: &mut dyn RngCore,
        out: &mut [u32],
    );

    /// Optional hook giving knowledge-equipped models (adversaries) the
    /// current possession state before
    /// [`capacities_into`](Self::capacities_into) is called for the same
    /// step. Default: ignored.
    fn observe(&mut self, possession: &[TokenSet]) {
        let _ = possession;
    }
}

impl std::fmt::Debug for dyn NetworkDynamics + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NetworkDynamics({})", self.name())
    }
}

/// Result of a dynamic run: the usual report plus the capacity trace
/// needed to re-validate the schedule.
#[derive(Debug, Clone)]
pub struct DynamicReport {
    /// The simulation report (schedule, metrics, trace).
    pub report: SimReport,
    /// `capacity_trace[i][e]` = effective capacity of arc `e` at step `i`.
    pub capacity_trace: Vec<Vec<u32>>,
}

/// Runs `strategy` under `dynamics`. Unlike [`crate::simulate`], an
/// idle step is *not* treated as a stall — the network may simply be
/// down — so non-completion is only declared at the step cap.
pub fn simulate_dynamic(
    instance: &Instance,
    strategy: &mut dyn Strategy,
    dynamics: &mut dyn NetworkDynamics,
    config: &SimConfig,
    rng: &mut dyn RngCore,
) -> DynamicReport {
    let mut medium = Dynamic::new(dynamics);
    let outcome = simulate_with(instance, strategy, &mut medium, config, rng);
    DynamicReport {
        report: outcome.report,
        capacity_trace: outcome.capacity_trace,
    }
}

/// No change: the graph's static capacities every step. Useful as the
/// control arm of dynamics experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticNetwork;

impl NetworkDynamics for StaticNetwork {
    fn name(&self) -> &'static str {
        "static"
    }
    fn reset(&mut self, _graph: &DiGraph) {}
    fn capacities_into(
        &mut self,
        graph: &DiGraph,
        _step: usize,
        _rng: &mut dyn RngCore,
        out: &mut [u32],
    ) {
        for e in graph.edge_ids() {
            out[e.index()] = graph.capacity(e);
        }
    }
}

/// Congestion: each step every arc keeps a uniform random fraction of
/// its capacity in `[min_fraction, 1]`, rounded up (so never below 1).
#[derive(Debug, Clone, Copy)]
pub struct CrossTraffic {
    /// Smallest retained fraction of capacity (0.0..=1.0).
    pub min_fraction: f64,
}

impl CrossTraffic {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `min_fraction` is outside `[0, 1]`.
    #[must_use]
    pub fn new(min_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&min_fraction),
            "min_fraction {min_fraction} outside [0, 1]"
        );
        CrossTraffic { min_fraction }
    }
}

impl NetworkDynamics for CrossTraffic {
    fn name(&self) -> &'static str {
        "cross-traffic"
    }
    fn reset(&mut self, _graph: &DiGraph) {}
    fn capacities_into(
        &mut self,
        graph: &DiGraph,
        _step: usize,
        rng: &mut dyn RngCore,
        out: &mut [u32],
    ) {
        for e in graph.edge_ids() {
            let fraction = rng.random_range(self.min_fraction..=1.0);
            out[e.index()] = (f64::from(graph.capacity(e)) * fraction).ceil().max(1.0) as u32;
        }
    }
}

/// Two-state Markov link failures: an up link goes down with
/// `down_prob`, a down link recovers with `up_prob`. Anti-parallel arc
/// pairs `(u,v)/(v,u)` share fate (one physical link).
#[derive(Debug, Clone)]
pub struct LinkOutages {
    /// P(up → down) per step.
    pub down_prob: f64,
    /// P(down → up) per step.
    pub up_prob: f64,
    /// Up/down state per *link group* (see `group_of`).
    state: Vec<bool>,
    /// Arc → link-group index.
    group_of: Vec<usize>,
}

impl LinkOutages {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if a probability is outside `[0, 1]`.
    #[must_use]
    pub fn new(down_prob: f64, up_prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&down_prob));
        assert!((0.0..=1.0).contains(&up_prob));
        LinkOutages {
            down_prob,
            up_prob,
            state: Vec::new(),
            group_of: Vec::new(),
        }
    }
}

impl NetworkDynamics for LinkOutages {
    fn name(&self) -> &'static str {
        "link-outages"
    }

    fn reset(&mut self, graph: &DiGraph) {
        // Group anti-parallel arcs: group id = the smaller arc id of the
        // pair.
        self.group_of = graph
            .edge_ids()
            .map(|e| {
                let arc = graph.edge(e);
                match graph.find_edge(arc.dst, arc.src) {
                    Some(rev) => e.index().min(rev.index()),
                    None => e.index(),
                }
            })
            .collect();
        self.state = vec![true; graph.edge_count()];
    }

    fn capacities_into(
        &mut self,
        graph: &DiGraph,
        _step: usize,
        rng: &mut dyn RngCore,
        out: &mut [u32],
    ) {
        // Advance each group exactly once (groups are identified by the
        // arcs whose group id equals their own index).
        for e in 0..self.state.len() {
            if self.group_of[e] == e {
                let up = self.state[e];
                let flip = if up {
                    rng.random_bool(self.down_prob)
                } else {
                    rng.random_bool(self.up_prob)
                };
                if flip {
                    self.state[e] = !up;
                }
            }
        }
        for e in graph.edge_ids() {
            out[e.index()] = if self.state[self.group_of[e.index()]] {
                graph.capacity(e)
            } else {
                0
            };
        }
    }
}

/// Vertex churn (§6 "arrivals and departures"): each step a present
/// vertex departs with `leave_prob` and an absent one rejoins with
/// `rejoin_prob`; a departed vertex's incident arcs all read capacity 0.
/// Vertices listed in `pinned` never depart (e.g. the origin server).
#[derive(Debug, Clone)]
pub struct Churn {
    /// P(present → departed) per step.
    pub leave_prob: f64,
    /// P(departed → present) per step.
    pub rejoin_prob: f64,
    /// Vertices that never churn.
    pub pinned: Vec<usize>,
    present: Vec<bool>,
}

impl Churn {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if a probability is outside `[0, 1]`.
    #[must_use]
    pub fn new(leave_prob: f64, rejoin_prob: f64, pinned: Vec<usize>) -> Self {
        assert!((0.0..=1.0).contains(&leave_prob));
        assert!((0.0..=1.0).contains(&rejoin_prob));
        Churn {
            leave_prob,
            rejoin_prob,
            pinned,
            present: Vec::new(),
        }
    }

    /// Which vertices are currently present (after the last step).
    #[must_use]
    pub fn present(&self) -> &[bool] {
        &self.present
    }
}

impl NetworkDynamics for Churn {
    fn name(&self) -> &'static str {
        "churn"
    }

    fn reset(&mut self, graph: &DiGraph) {
        self.present = vec![true; graph.node_count()];
    }

    fn capacities_into(
        &mut self,
        graph: &DiGraph,
        _step: usize,
        rng: &mut dyn RngCore,
        out: &mut [u32],
    ) {
        for v in 0..self.present.len() {
            if self.pinned.contains(&v) {
                continue;
            }
            let flip = if self.present[v] {
                rng.random_bool(self.leave_prob)
            } else {
                rng.random_bool(self.rejoin_prob)
            };
            if flip {
                self.present[v] = !self.present[v];
            }
        }
        for e in graph.edge_ids() {
            let arc = graph.edge(e);
            out[e.index()] = if self.present[arc.src.index()] && self.present[arc.dst.index()] {
                graph.capacity(e)
            } else {
                0
            };
        }
    }
}

/// A denial-of-service adversary with full knowledge: each step it cuts
/// the `budget` arcs whose transfer would be most useful right now
/// (most tokens the source holds that the destination lacks).
///
/// A *persistent* adversary (cooldown 0) whose budget covers the useful
/// in-arcs of the last needy vertex blocks completion outright — a
/// finding this model makes measurable. The `cooldown` knob models
/// jamming detection/rotation: an arc cut at step `i` cannot be cut
/// again before step `i + 1 + cooldown`, so tokens eventually slip
/// through and the attack only slows distribution.
#[derive(Debug, Clone)]
pub struct AdversarialCuts {
    /// Number of arcs cut per step.
    pub budget: usize,
    /// Steps an arc is immune after being cut (0 = persistent).
    pub cooldown: usize,
    possession: Vec<TokenSet>,
    last_cut: Vec<Option<usize>>,
}

impl AdversarialCuts {
    /// Creates a persistent adversary (no cooldown).
    #[must_use]
    pub fn new(budget: usize) -> Self {
        AdversarialCuts {
            budget,
            cooldown: 0,
            possession: Vec::new(),
            last_cut: Vec::new(),
        }
    }

    /// Creates an adversary whose cuts must rotate: an arc cut at step
    /// `i` is immune until step `i + 1 + cooldown`.
    #[must_use]
    pub fn with_cooldown(budget: usize, cooldown: usize) -> Self {
        AdversarialCuts {
            cooldown,
            ..AdversarialCuts::new(budget)
        }
    }

    /// How much the protocol would gain from arc `e` this step: the
    /// number of tokens the source holds that the destination lacks.
    fn utility(&self, graph: &DiGraph, e: EdgeId) -> usize {
        let arc = graph.edge(e);
        if self.possession.is_empty() {
            return 0;
        }
        self.possession[arc.src.index()].difference_len(&self.possession[arc.dst.index()])
    }
}

impl NetworkDynamics for AdversarialCuts {
    fn name(&self) -> &'static str {
        "adversarial-cuts"
    }

    fn reset(&mut self, graph: &DiGraph) {
        self.possession.clear();
        self.last_cut = vec![None; graph.edge_count()];
    }

    fn observe(&mut self, possession: &[TokenSet]) {
        self.possession = possession.to_vec();
    }

    fn capacities_into(
        &mut self,
        graph: &DiGraph,
        step: usize,
        _rng: &mut dyn RngCore,
        out: &mut [u32],
    ) {
        let mut scored: Vec<(usize, EdgeId)> = graph
            .edge_ids()
            .filter(|e| {
                self.cooldown == 0
                    || self.last_cut[e.index()].is_none_or(|last| step > last + self.cooldown)
            })
            .map(|e| (self.utility(graph, e), e))
            .collect();
        scored.sort_unstable_by(|a, b| b.cmp(a));
        for e in graph.edge_ids() {
            out[e.index()] = graph.capacity(e);
        }
        for &(useful, e) in scored.iter().take(self.budget) {
            if useful > 0 {
                out[e.index()] = 0;
                self.last_cut[e.index()] = Some(step);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StrategyKind, WorldView};
    use ocd_core::scenario::single_file;
    use ocd_core::validate;
    use ocd_graph::generate::classic;
    use rand::prelude::*;

    fn run_dynamic(
        dynamics: &mut dyn NetworkDynamics,
        kind: StrategyKind,
        max_steps: usize,
    ) -> (Instance, DynamicReport) {
        let instance = single_file(classic::cycle(8, 3, true), 8, 0);
        let mut strategy = kind.build();
        let config = SimConfig {
            max_steps,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let report = simulate_dynamic(&instance, strategy.as_mut(), dynamics, &config, &mut rng);
        (instance, report)
    }

    #[test]
    fn static_network_matches_plain_simulation() {
        let instance = single_file(classic::cycle(8, 3, true), 8, 0);
        let run_plain = || {
            let mut strategy = StrategyKind::Local.build();
            let mut rng = StdRng::seed_from_u64(5);
            crate::simulate(
                &instance,
                strategy.as_mut(),
                &SimConfig::default(),
                &mut rng,
            )
        };
        let plain = run_plain();
        let (_, dynamic) = run_dynamic(&mut StaticNetwork, StrategyKind::Local, 10_000);
        assert!(plain.success && dynamic.report.success);
        assert_eq!(plain.schedule, dynamic.report.schedule);
        assert_eq!(dynamic.capacity_trace.len(), dynamic.report.steps);
    }

    #[test]
    fn cross_traffic_slows_but_completes() {
        let mut dynamics = CrossTraffic::new(0.1);
        let (instance, r) = run_dynamic(&mut dynamics, StrategyKind::Random, 10_000);
        assert!(r.report.success, "congestion only slows things down");
        let replay =
            validate::replay_with_capacities(&instance, &r.report.schedule, &r.capacity_trace)
                .expect("dynamic schedule valid under its capacity trace");
        assert!(replay.is_successful());
    }

    #[test]
    fn outages_respect_effective_capacities() {
        let mut dynamics = LinkOutages::new(0.3, 0.5);
        let (instance, r) = run_dynamic(&mut dynamics, StrategyKind::Global, 10_000);
        assert!(r.report.success, "Markov outages recover eventually");
        // No step ever used a down link.
        for (i, step) in r.report.schedule.steps().iter().enumerate() {
            for (edge, tokens) in step.sends() {
                assert!(
                    tokens.len() as u32 <= r.capacity_trace[i][edge.index()],
                    "step {i} used a down/over-capacity link"
                );
            }
        }
        let replay =
            validate::replay_with_capacities(&instance, &r.report.schedule, &r.capacity_trace)
                .unwrap();
        assert!(replay.is_successful());
    }

    #[test]
    fn outages_fail_pairs_together() {
        let g = classic::cycle(6, 2, true);
        let mut dynamics = LinkOutages::new(0.5, 0.5);
        dynamics.reset(&g);
        let mut rng = StdRng::seed_from_u64(1);
        let mut caps = vec![0u32; g.edge_count()];
        for step in 0..20 {
            dynamics.capacities_into(&g, step, &mut rng, &mut caps);
            for e in g.edge_ids() {
                let arc = g.edge(e);
                let rev = g.find_edge(arc.dst, arc.src).expect("symmetric cycle");
                assert_eq!(
                    caps[e.index()] == 0,
                    caps[rev.index()] == 0,
                    "anti-parallel pair diverged at step {step}"
                );
            }
        }
    }

    #[test]
    fn churn_pins_the_source_and_completes() {
        let mut dynamics = Churn::new(0.15, 0.5, vec![0]);
        let (instance, r) = run_dynamic(&mut dynamics, StrategyKind::Local, 10_000);
        assert!(r.report.success, "pinned source + rejoining peers complete");
        let replay =
            validate::replay_with_capacities(&instance, &r.report.schedule, &r.capacity_trace)
                .unwrap();
        assert!(replay.is_successful());
    }

    #[test]
    fn permanent_partition_fails_at_step_cap() {
        // leave_prob 1, rejoin 0: all unpinned vertices vanish at step 0.
        let mut dynamics = Churn::new(1.0, 0.0, vec![0]);
        let (_, r) = run_dynamic(&mut dynamics, StrategyKind::Random, 50);
        assert!(!r.report.success);
        assert_eq!(
            r.report.steps, 50,
            "ran to the step cap without stalling out"
        );
    }

    #[test]
    fn adversary_slows_distribution() {
        let measure = |budget: usize| {
            let mut dynamics = AdversarialCuts::new(budget);
            let (_, r) = run_dynamic(&mut dynamics, StrategyKind::Global, 10_000);
            assert!(r.report.success, "budget {budget} leaves enough capacity");
            r.report.steps
        };
        let free = measure(0);
        // Budget 1 cannot cover the whole useful frontier of the cycle,
        // so distribution completes — just slower.
        let harassed = measure(1);
        assert!(
            harassed >= free,
            "an adversary cutting useful links cannot speed things up"
        );
    }

    #[test]
    fn adversary_with_frontier_covering_budget_blocks_forever() {
        // On a cycle the source's useful frontier is 2 arcs; a budget of
        // 4 covers every useful arc every step: nothing ever moves.
        let mut dynamics = AdversarialCuts::new(4);
        let (_, r) = run_dynamic(&mut dynamics, StrategyKind::Global, 60);
        assert!(!r.report.success);
        assert_eq!(
            r.report.bandwidth, 0,
            "a frontier-covering adversary stops every transfer"
        );
    }

    #[test]
    fn view_capacity_falls_back_to_graph() {
        let instance = single_file(classic::path(2, 7, false), 1, 0);
        let possession = instance.have_all().to_vec();
        let aggregates =
            ocd_core::knowledge::AggregateKnowledge::compute(1, &possession, instance.want_all());
        let view = WorldView {
            instance: &instance,
            possession: &possession,
            aggregates: &aggregates,
            step: 0,
            capacities: None,
        };
        assert_eq!(view.capacity(ocd_graph::EdgeId::new(0)), 7);
        let caps = vec![3u32];
        let view = WorldView {
            capacities: Some(&caps),
            ..view
        };
        assert_eq!(view.capacity(ocd_graph::EdgeId::new(0)), 3);
    }
}
