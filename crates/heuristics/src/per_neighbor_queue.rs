//! The per-neighbor-queue broadcast policy.
//!
//! "Optimal Distributed Broadcasting with Per-neighbor Queues" shows
//! that a sender which keeps one queue of useful tokens per out-neighbor
//! and, each step, serves the queues in a fixed priority order achieves
//! the optimal broadcast makespan on uplink-constrained networks. This
//! strategy restates that policy in the lockstep engine: every vertex
//! repeatedly pops the globally best `(out-arc, token)` pair — ranked
//! like [`GlobalGreedy`](crate::GlobalGreedy) by (directly wanted,
//! needed somewhere, other), then rarest first, with deterministic
//! token/arc tie-breaks — until its uplink budget or its queues are
//! exhausted.
//!
//! Unlike the paper's five heuristics it is *budget-aware*: when the
//! instance carries [`NodeBudgets`](ocd_core::NodeBudgets) it plans
//! within each vertex's uplink and downlink, so nothing it proposes is
//! clipped by the node-capacity medium. On unbudgeted instances the
//! budgets are unbounded and it degrades to a deterministic,
//! coordinated rarest-first greedy (which keeps it safe to run
//! everywhere [`StrategyKind::all`](crate::StrategyKind::all) is used).
//!
//! The strategy is deterministic — it never draws from the RNG — so
//! runs are reproducible regardless of seed.

use crate::{KnowledgeTier, Strategy, WorldView};
use ocd_core::{Instance, Token, TokenSet};
use ocd_graph::EdgeId;
use rand::RngCore;

/// Deterministic per-out-neighbor queue scheduling (optimal broadcast
/// policy on uplink-constrained complete overlays).
#[derive(Debug, Default)]
pub struct PerNeighborQueue {
    /// Scratch: tokens already planned for delivery to each vertex this
    /// step (coordination — at most one copy per destination per step).
    planned: Vec<TokenSet>,
    /// Scratch: per-vertex remaining downlink this step.
    down_left: Vec<u64>,
    /// Scratch: the current sender's per-neighbor queues.
    queues: Vec<ArcQueue>,
}

/// One out-arc's candidate queue while its sender is being planned.
#[derive(Debug)]
struct ArcQueue {
    edge: EdgeId,
    dst: usize,
    cap_left: u32,
    /// Useful tokens still poppable on this arc.
    candidates: TokenSet,
    /// Tokens planned on this arc so far this step.
    send: TokenSet,
}

impl PerNeighborQueue {
    /// Creates the strategy.
    #[must_use]
    pub fn new() -> Self {
        PerNeighborQueue::default()
    }
}

impl Strategy for PerNeighborQueue {
    fn name(&self) -> &'static str {
        "per-neighbor-queue"
    }

    fn tier(&self) -> KnowledgeTier {
        KnowledgeTier::Global
    }

    fn reset(&mut self, instance: &Instance) {
        let n = instance.num_vertices();
        let m = instance.num_tokens();
        self.planned.clear();
        self.planned.resize(n, TokenSet::new(m));
        self.down_left.clear();
        self.down_left.resize(n, 0);
    }

    fn plan_step(
        &mut self,
        view: &WorldView<'_>,
        _rng: &mut dyn RngCore,
    ) -> Vec<(EdgeId, TokenSet)> {
        let g = view.graph();
        let budgets = view.instance.node_budgets();
        for p in &mut self.planned {
            p.clear();
        }
        for (v, left) in self.down_left.iter_mut().enumerate() {
            *left = budgets.map_or(u64::MAX, |b| u64::from(b.downlink(v)));
        }

        let mut out = Vec::new();
        for v in g.nodes() {
            let mut up_left = budgets.map_or(u64::MAX, |b| u64::from(b.uplink_of(v)));
            if up_left == 0 || view.possession[v.index()].is_empty() {
                continue;
            }
            // Build this sender's per-neighbor queues: tokens the
            // neighbor lacks and nobody has planned for it yet.
            self.queues.clear();
            for e in g.out_edges(v) {
                let arc = g.edge(e);
                let dst = arc.dst.index();
                let cap_left = view.capacity(e);
                if cap_left == 0 || self.down_left[dst] == 0 {
                    continue;
                }
                let mut candidates = view.possession[v.index()].difference(&view.possession[dst]);
                candidates.subtract(&self.planned[dst]);
                if candidates.is_empty() {
                    continue;
                }
                let send = TokenSet::new(view.instance.num_tokens());
                self.queues.push(ArcQueue {
                    edge: e,
                    dst,
                    cap_left,
                    candidates,
                    send,
                });
            }
            // Serve the queues: repeatedly pop the best (arc, token)
            // pair until the uplink or every queue runs dry. Destination
            // ties break toward the *emptiest* peer (counting this
            // step's plans): feeding starved peers grows the active
            // sender population geometrically, which is what makes the
            // policy track the optimal makespan at scale.
            while up_left > 0 {
                let mut best: Option<(u8, u32, Token, usize, usize)> = None;
                for (slot, q) in self.queues.iter().enumerate() {
                    let want = view.instance.want(g.node(q.dst));
                    let fill = view.possession[q.dst].len() + self.planned[q.dst].len();
                    for t in q.candidates.iter() {
                        let class = if want.contains(t) {
                            0
                        } else if view.aggregates.is_needed(t) {
                            1
                        } else {
                            2
                        };
                        let key = (class, view.aggregates.rarity(t), t, fill, slot);
                        if best.is_none_or(|b| key < b) {
                            best = Some(key);
                        }
                    }
                }
                let Some((_, _, token, _, slot)) = best else {
                    break;
                };
                let q = &mut self.queues[slot];
                q.send.insert(token);
                q.candidates.remove(token);
                self.planned[q.dst].insert(token);
                // The same token is useless on this sender's *other*
                // queues to the same destination only if a duplicate
                // arc existed (the graph forbids them), but other
                // queues to different destinations keep their copy.
                up_left -= 1;
                q.cap_left -= 1;
                self.down_left[q.dst] -= 1;
                if q.cap_left == 0 || self.down_left[q.dst] == 0 {
                    q.candidates.clear();
                }
            }
            for q in &mut self.queues {
                if !q.send.is_empty() {
                    let send = std::mem::replace(&mut q.send, TokenSet::new(0));
                    out.push((q.edge, send));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, SimConfig};
    use ocd_core::scenario::single_file;
    use ocd_core::{validate, Instance, NodeBudgets};
    use ocd_graph::generate::classic;
    use rand::prelude::*;

    #[test]
    fn deterministic_across_seeds() {
        let instance = single_file(classic::cycle(8, 2, true), 8, 0);
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            simulate(
                &instance,
                &mut PerNeighborQueue::new(),
                &SimConfig::default(),
                &mut rng,
            )
        };
        let a = run(1);
        let b = run(999);
        assert!(a.success);
        assert_eq!(a.schedule, b.schedule, "no RNG dependence");
    }

    #[test]
    fn completes_and_validates_on_single_file() {
        let instance = single_file(classic::cycle(10, 3, true), 16, 0);
        let mut rng = StdRng::seed_from_u64(2);
        let report = simulate(
            &instance,
            &mut PerNeighborQueue::new(),
            &SimConfig::default(),
            &mut rng,
        );
        assert!(report.success);
        assert!(validate::replay(&instance, &report.schedule)
            .unwrap()
            .is_successful());
    }

    #[test]
    fn plans_within_node_budgets() {
        // Complete overlay, 2 tokens at the server, uplink 1 everywhere:
        // every planned step must already respect the budgets, so the
        // schedule replays cleanly under budget enforcement.
        let g = classic::complete(4, 8);
        let instance = Instance::builder(g, 2)
            .have(0, [Token::new(0), Token::new(1)])
            .want_all_everywhere()
            .node_budgets(NodeBudgets::uplink_only(4, 1))
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let report = simulate(
            &instance,
            &mut PerNeighborQueue::new(),
            &SimConfig::default(),
            &mut rng,
        );
        assert!(report.success);
        // Budget enforcement lives in validate::replay when the
        // instance carries budgets.
        assert!(validate::replay(&instance, &report.schedule)
            .unwrap()
            .is_successful());
    }

    #[test]
    fn achieves_optimal_makespan_on_broadcast() {
        // M = 2 parts, N = 3 peers, unit uplinks: the optimal makespan
        // is M - 1 + ceil(log2(N + 1)) = 3 (certified in the `optimal`
        // module against brute force). The per-neighbor-queue policy
        // must hit it exactly.
        let g = classic::complete(4, 8);
        let instance = Instance::builder(g, 2)
            .have(0, [Token::new(0), Token::new(1)])
            .want_all_everywhere()
            .node_budgets(NodeBudgets::uplink_only(4, 1))
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let report = simulate(
            &instance,
            &mut PerNeighborQueue::new(),
            &SimConfig::default(),
            &mut rng,
        );
        assert!(report.success);
        assert_eq!(report.steps, 3);
    }
}
