//! Per-neighbor decision primitives shared by the lockstep strategies
//! and the asynchronous [`ocd-net`] runtime.
//!
//! The §5.1 heuristics are defined as *local* rules — what one sender
//! puts on one arc, what one receiver requests from its in-peers — and
//! the lockstep engine merely iterates those rules in a fixed order.
//! The asynchronous runtime makes the same decisions from each actor's
//! *believed* peer state instead of the true possession. Factoring the
//! rules here means both executions run literally the same code, so the
//! differential test (`ocd-net` at latency 1 / loss 0 vs. the lockstep
//! engine) can demand bit-identical RNG consumption, not just similar
//! outcomes.
//!
//! Every function draws from the RNG in a documented, input-determined
//! order; callers that interleave these calls identically see identical
//! decisions.
//!
//! [`ocd-net`]: https://docs.rs/ocd-net

use ocd_core::knowledge::AggregateKnowledge;
use ocd_core::{Token, TokenSet};
use ocd_graph::EdgeId;
use rand::seq::SliceRandom;
use rand::{Rng, RngCore};

/// Sorts `tokens` ascending by aggregate rarity (fewest holders first),
/// breaking ties uniformly at random. Draws exactly one `u32` per token,
/// in ascending token order.
pub fn rarest_first(
    tokens: &TokenSet,
    aggregates: &AggregateKnowledge,
    rng: &mut dyn RngCore,
) -> Vec<Token> {
    let mut keyed: Vec<(u32, u32, Token)> = tokens
        .iter()
        .map(|t| (aggregates.rarity(t), rng.next_u32(), t))
        .collect();
    keyed.sort_unstable();
    keyed.into_iter().map(|(_, _, t)| t).collect()
}

/// The Random heuristic's per-arc rule: a uniform random subset of size
/// `cap` of the candidate tokens, or all of them if they fit. Draws from
/// the RNG only when `candidates.len() > cap` (a `partial_shuffle` of
/// `cap` slots).
pub fn random_fill(candidates: TokenSet, cap: usize, rng: &mut dyn RngCore) -> TokenSet {
    let mut pool: Vec<Token> = candidates.iter().collect();
    if pool.len() <= cap {
        candidates
    } else {
        let (chosen, _) = pool.partial_shuffle(rng, cap);
        TokenSet::from_tokens(candidates.universe(), chosen.iter().copied())
    }
}

/// The Local heuristic's flood rule: extend `send` with up to `room`
/// tokens from `candidates`, rarest first, preferring tokens some vertex
/// still needs, ties broken uniformly at random. `candidates` must be
/// disjoint from `send`. Draws one `u32` per candidate (in ascending
/// token order) even when everything fits — ranking happens before
/// truncation.
pub fn rarest_flood_fill(
    send: &mut TokenSet,
    candidates: &TokenSet,
    room: usize,
    aggregates: &AggregateKnowledge,
    rng: &mut dyn RngCore,
) {
    let mut ranked: Vec<(bool, u32, u32, Token)> = candidates
        .iter()
        .map(|t| {
            (
                !aggregates.is_needed(t), // needed first
                aggregates.rarity(t),
                rng.random::<u32>(),
                t,
            )
        })
        .collect();
    ranked.sort_unstable();
    for (_, _, _, t) in ranked.into_iter().take(room) {
        send.insert(t);
    }
}

/// The per-neighbor-queue flood rule: extend `send` with up to `room`
/// tokens from `candidates`, preferring tokens some vertex still needs,
/// then rarest first, ties broken by ascending token id. Fully
/// deterministic — no RNG — which is what makes the per-neighbor-queue
/// policy reproducible across seeds in both the lockstep engine and the
/// asynchronous runtime.
pub fn deterministic_rarest_fill(
    send: &mut TokenSet,
    candidates: &TokenSet,
    room: usize,
    aggregates: &AggregateKnowledge,
) {
    let mut ranked: Vec<(bool, u32, Token)> = candidates
        .iter()
        .map(|t| (!aggregates.is_needed(t), aggregates.rarity(t), t))
        .collect();
    ranked.sort_unstable();
    for (_, _, t) in ranked.into_iter().take(room) {
        send.insert(t);
    }
}

/// The Local heuristic's receiver rule: subdivide `need` into per-in-arc
/// requests so no two in-peers are asked for the same token. Rarest
/// tokens are assigned first (they claim scarce slots); each token goes
/// to the eligible arc — peer believed to hold it, request list below
/// `capacity` — with the lightest load so far, ties broken uniformly at
/// random. Returns one request set per entry of `in_edges`, aligned by
/// index.
///
/// RNG consumption: one draw per token of `need` (via [`rarest_first`]),
/// then one draw per *eligible* arc per token, in `in_edges` order.
pub fn subdivide_requests(
    need: &TokenSet,
    in_edges: &[EdgeId],
    peer_has: &dyn Fn(EdgeId, Token) -> bool,
    capacity: &dyn Fn(EdgeId) -> u32,
    aggregates: &AggregateKnowledge,
    rng: &mut dyn RngCore,
) -> Vec<TokenSet> {
    let m = need.universe();
    let mut load: Vec<usize> = vec![0; in_edges.len()];
    let mut requests: Vec<TokenSet> = vec![TokenSet::new(m); in_edges.len()];
    for t in rarest_first(need, aggregates, rng) {
        // Eligible arcs: the peer holds the token and the request list
        // has capacity left.
        let mut best: Option<(usize, u32, EdgeId, usize)> = None; // (load, jitter, edge, slot)
        for (slot, &e) in in_edges.iter().enumerate() {
            if load[slot] >= capacity(e) as usize {
                continue;
            }
            if !peer_has(e, t) {
                continue;
            }
            let key = (load[slot], rng.next_u32(), e, slot);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        if let Some((_, _, _, slot)) = best {
            requests[slot].insert(t);
            load[slot] += 1;
        }
    }
    requests
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn uniform_aggregates(m: usize) -> AggregateKnowledge {
        AggregateKnowledge {
            have_counts: vec![1; m],
            need_counts: vec![1; m],
        }
    }

    #[test]
    fn random_fill_returns_everything_when_it_fits() {
        let candidates = TokenSet::from_tokens(8, [Token::new(1), Token::new(5)]);
        let mut rng = StdRng::seed_from_u64(0);
        let before = rng.clone();
        let send = random_fill(candidates.clone(), 3, &mut rng);
        assert_eq!(send, candidates);
        // No draw happened: the RNG state is untouched.
        assert_eq!(rng.random::<u64>(), before.clone().random::<u64>());
    }

    #[test]
    fn random_fill_respects_cap() {
        let candidates = TokenSet::full(16);
        let mut rng = StdRng::seed_from_u64(1);
        let send = random_fill(candidates.clone(), 5, &mut rng);
        assert_eq!(send.len(), 5);
        assert!(send.is_subset(&candidates));
    }

    #[test]
    fn rarest_flood_fill_prefers_needed_then_rare() {
        let aggregates = AggregateKnowledge {
            have_counts: vec![5, 1, 3],
            need_counts: vec![0, 1, 1], // token 0 no longer needed anywhere
        };
        let mut send = TokenSet::new(3);
        let mut rng = StdRng::seed_from_u64(2);
        rarest_flood_fill(&mut send, &TokenSet::full(3), 2, &aggregates, &mut rng);
        assert!(send.contains(Token::new(1)), "rarest needed token first");
        assert!(send.contains(Token::new(2)));
        assert!(!send.contains(Token::new(0)), "unneeded token loses");
    }

    #[test]
    fn deterministic_fill_prefers_needed_then_rare_then_id() {
        let aggregates = AggregateKnowledge {
            have_counts: vec![5, 1, 1, 3],
            need_counts: vec![0, 1, 1, 1], // token 0 no longer needed
        };
        let mut send = TokenSet::new(4);
        deterministic_rarest_fill(&mut send, &TokenSet::full(4), 2, &aggregates);
        assert!(send.contains(Token::new(1)), "rarest needed, lowest id");
        assert!(send.contains(Token::new(2)), "rarity tie broken by id");
        assert!(!send.contains(Token::new(0)));
        assert!(!send.contains(Token::new(3)));
    }

    #[test]
    fn subdivide_never_duplicates_a_token() {
        let need = TokenSet::full(4);
        let in_edges = [EdgeId::new(0), EdgeId::new(1)];
        let mut rng = StdRng::seed_from_u64(3);
        let requests = subdivide_requests(
            &need,
            &in_edges,
            &|_, _| true,
            &|_| 2,
            &uniform_aggregates(4),
            &mut rng,
        );
        assert_eq!(requests.len(), 2);
        assert!(!requests[0].intersects(&requests[1]));
        assert_eq!(requests[0].len() + requests[1].len(), 4);
        assert!(requests.iter().all(|r| r.len() <= 2));
    }

    #[test]
    fn subdivide_skips_peers_without_the_token() {
        let need = TokenSet::full(2);
        let in_edges = [EdgeId::new(0), EdgeId::new(1)];
        let mut rng = StdRng::seed_from_u64(4);
        // Only arc 1's peer holds anything.
        let requests = subdivide_requests(
            &need,
            &in_edges,
            &|e, _| e.index() == 1,
            &|_| 4,
            &uniform_aggregates(2),
            &mut rng,
        );
        assert!(requests[0].is_empty());
        assert_eq!(requests[1].len(), 2);
    }

    #[test]
    fn subdivide_respects_per_arc_capacity() {
        let need = TokenSet::full(6);
        let in_edges = [EdgeId::new(0)];
        let mut rng = StdRng::seed_from_u64(5);
        let requests = subdivide_requests(
            &need,
            &in_edges,
            &|_, _| true,
            &|_| 2,
            &uniform_aggregates(6),
            &mut rng,
        );
        assert_eq!(requests[0].len(), 2, "capacity bounds the request list");
    }
}
