//! A tree-striping baseline in the style of the systems the paper
//! surveys (§2): SplitStream/CoopNet build a forest of `k` trees and
//! push one content stripe down each; Overcast is the `k = 1` case.
//!
//! This strategy exists to *situate* those architectures inside the
//! OCD framework: striped tree push is structurally elegant but, unlike
//! the paper's mesh heuristics, it never exploits cross-links or
//! peer-to-peer exchange — on general overlays it pays for that in
//! makespan (see the `table_baselines` experiment).
//!
//! Construction: at reset the strategy roots itself at the vertex
//! holding the most tokens (the seed in single-source scenarios) and
//! grows `k` BFS spanning trees whose neighbor-expansion order is
//! rotated per tree, approximating SplitStream's interior-node
//! diversity without its DHT machinery. Token `t` belongs to stripe
//! `t mod k` and travels only down tree `t mod k`, within the shared
//! per-arc capacities.

use crate::{KnowledgeTier, Strategy, WorldView};
use ocd_core::{Instance, TokenSet};
use ocd_graph::{DiGraph, EdgeId, NodeId};
use rand::RngCore;
use std::collections::VecDeque;

/// Striped push over a forest of `k` BFS trees.
#[derive(Debug)]
pub struct TreeStripe {
    k: usize,
    /// `trees[j][v]` = the arc delivering stripe `j` to vertex `v`
    /// (`None` for the root and unreachable vertices).
    trees: Vec<Vec<Option<EdgeId>>>,
}

impl TreeStripe {
    /// Creates a `k`-tree striping strategy.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "need at least one tree");
        TreeStripe {
            k,
            trees: Vec::new(),
        }
    }

    /// Number of stripes/trees.
    #[must_use]
    pub fn stripes(&self) -> usize {
        self.k
    }

    /// BFS tree from `root` expanding each vertex's out-arcs starting
    /// at a per-tree rotation offset, so different trees prefer
    /// different parents where the topology allows. Shared with the
    /// sharded variant ([`crate::ShardedTreeStripe`]) so both build the
    /// identical forest.
    pub(crate) fn build_tree(g: &DiGraph, root: NodeId, rotation: usize) -> Vec<Option<EdgeId>> {
        let mut parent_arc = vec![None; g.node_count()];
        let mut seen = vec![false; g.node_count()];
        seen[root.index()] = true;
        let mut queue = VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            let arcs: Vec<EdgeId> = g.out_edges(u).collect();
            let len = arcs.len();
            for i in 0..len {
                let e = arcs[(i + rotation) % len];
                let v = g.edge(e).dst;
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    parent_arc[v.index()] = Some(e);
                    queue.push_back(v);
                }
            }
        }
        parent_arc
    }
}

/// Root choice shared by [`TreeStripe`] and the sharded variant: the
/// best-provisioned vertex (the seed in single-source scenarios), lowest
/// id on ties.
pub(crate) fn best_root(instance: &Instance) -> NodeId {
    instance
        .graph()
        .nodes()
        .max_by_key(|&v| (instance.have(v).len(), std::cmp::Reverse(v)))
        .expect("non-empty graph")
}

impl Strategy for TreeStripe {
    fn name(&self) -> &'static str {
        "tree-stripe"
    }

    fn tier(&self) -> KnowledgeTier {
        // Tree construction assumes topology knowledge at join time
        // (like the surveyed systems' control planes); forwarding is
        // then purely local parent→child push.
        KnowledgeTier::Aggregates
    }

    fn reset(&mut self, instance: &Instance) {
        let g = instance.graph();
        let root = best_root(instance);
        self.trees = (0..self.k).map(|j| Self::build_tree(g, root, j)).collect();
    }

    fn plan_step(
        &mut self,
        view: &WorldView<'_>,
        _rng: &mut dyn RngCore,
    ) -> Vec<(EdgeId, TokenSet)> {
        let g = view.graph();
        let m = view.instance.num_tokens();
        let mut budget: Vec<usize> = g.edge_ids().map(|e| view.capacity(e) as usize).collect();
        let mut sends: Vec<TokenSet> = vec![TokenSet::new(m); g.edge_count()];
        for (j, tree) in self.trees.iter().enumerate() {
            for v in g.nodes() {
                let Some(e) = tree[v.index()] else {
                    continue;
                };
                if budget[e.index()] == 0 {
                    continue;
                }
                let arc = g.edge(e);
                // Stripe-j tokens the parent has and the child lacks.
                let mut eligible =
                    view.possession[arc.src.index()].difference(&view.possession[v.index()]);
                for t in eligible.clone().iter() {
                    if t.index() % self.k != j {
                        eligible.remove(t);
                    }
                }
                eligible.subtract(&sends[e.index()]);
                let room = budget[e.index()];
                eligible.truncate(room);
                budget[e.index()] -= eligible.len();
                sends[e.index()].union_with(&eligible);
            }
        }
        sends
            .into_iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .map(|(e, s)| (EdgeId::new(e), s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, SimConfig, StrategyKind};
    use ocd_core::scenario::single_file;
    use ocd_core::validate;
    use ocd_graph::generate::{classic, paper_random};
    use rand::prelude::*;

    #[test]
    fn single_tree_on_a_path_is_plain_relay() {
        let instance = single_file(classic::path(4, 2, false), 4, 0);
        let mut strategy = TreeStripe::new(1);
        let mut rng = StdRng::seed_from_u64(1);
        let report = simulate(&instance, &mut strategy, &SimConfig::default(), &mut rng);
        assert!(report.success);
        assert!(validate::replay(&instance, &report.schedule)
            .unwrap()
            .is_successful());
        assert_eq!(report.bandwidth, 12, "every token crosses every hop once");
    }

    #[test]
    fn striping_completes_on_random_overlays() {
        let mut rng = StdRng::seed_from_u64(7);
        let instance = single_file(paper_random(25, &mut rng), 24, 0);
        for k in [1usize, 2, 4] {
            let mut strategy = TreeStripe::new(k);
            let mut run_rng = StdRng::seed_from_u64(2);
            let report = simulate(
                &instance,
                &mut strategy,
                &SimConfig::default(),
                &mut run_rng,
            );
            assert!(report.success, "k = {k}");
            assert!(
                report.bandwidth >= instance.total_deficiency(),
                "k = {k} beat the bound"
            );
        }
    }

    #[test]
    fn tree_push_never_beats_the_mesh_heuristics_by_much() {
        // Not a theorem — a regression guard for the baseline's role:
        // on a random overlay the coordinated mesh heuristic should be
        // at least as fast as single-tree push.
        let mut rng = StdRng::seed_from_u64(9);
        let instance = single_file(paper_random(30, &mut rng), 30, 0);
        let run = |strategy: &mut dyn Strategy| {
            let mut r = StdRng::seed_from_u64(3);
            simulate(&instance, strategy, &SimConfig::default(), &mut r)
        };
        let tree = run(&mut TreeStripe::new(1));
        let mut global = StrategyKind::Global.build();
        let mesh = run(global.as_mut());
        assert!(tree.success && mesh.success);
        assert!(mesh.steps <= tree.steps);
    }

    #[test]
    fn stripes_partition_tokens() {
        let instance = single_file(classic::complete(5, 8), 8, 0);
        let mut strategy = TreeStripe::new(4);
        strategy.reset(&instance);
        assert_eq!(strategy.stripes(), 4);
        let mut rng = StdRng::seed_from_u64(4);
        let report = simulate(&instance, &mut strategy, &SimConfig::default(), &mut rng);
        assert!(report.success);
        // Every arc's sent tokens all belong to trees that use that arc;
        // weaker invariant easily checkable: schedule valid + success.
        assert!(validate::replay(&instance, &report.schedule)
            .unwrap()
            .is_successful());
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_panics() {
        let _ = TreeStripe::new(0);
    }
}
