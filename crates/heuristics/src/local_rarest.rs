//! The Local (rarest-random) heuristic (§5.1).
//!
//! Based on "the commonly proposed notion of 'rarest random' … by
//! diversifying the set of tokens known by various vertices, they can
//! share them with each other for increased bandwidth." Per the paper we
//! assume each step's initial aggregate need and knowledge (have/need
//! counts per token) are distributed to all vertices — possibly with a
//! delay — and, "to avoid the problem where two peers send the same
//! 'rare' block in the same direction, our heuristic subdivides a
//! vertex's needs to their peers", i.e. receivers assign each needed
//! token to exactly one in-peer as a block request. Remaining arc
//! capacity floods rarest-first (the Local heuristic is still a flooding
//! heuristic: it fills links whenever doing so "can increase knowledge").

use crate::policy::{rarest_flood_fill, subdivide_requests};
use crate::{KnowledgeTier, Strategy, WorldView};
use ocd_core::{Instance, TokenSet};
use ocd_graph::EdgeId;
use rand::RngCore;

/// Rarest-random with per-peer request subdivision.
#[derive(Debug, Default)]
pub struct LocalRarest {
    /// Ablation: when true, skip the request-subdivision phase and rely
    /// on flood-fill alone. The paper motivates subdivision as the fix
    /// for "two peers send the same 'rare' block in the same direction";
    /// disabling it quantifies exactly that duplicate-send waste (see
    /// the `table_ablation` experiment).
    no_subdivision: bool,
}

impl LocalRarest {
    /// Creates the strategy as the paper describes it.
    #[must_use]
    pub fn new() -> Self {
        LocalRarest::default()
    }

    /// Ablated variant without the request-subdivision phase.
    #[must_use]
    pub fn without_subdivision() -> Self {
        LocalRarest {
            no_subdivision: true,
        }
    }
}

impl Strategy for LocalRarest {
    fn name(&self) -> &'static str {
        if self.no_subdivision {
            "local-nosubdiv"
        } else {
            "local"
        }
    }

    fn tier(&self) -> KnowledgeTier {
        KnowledgeTier::Aggregates
    }

    fn reset(&mut self, _instance: &Instance) {}

    fn plan_step(
        &mut self,
        view: &WorldView<'_>,
        rng: &mut dyn RngCore,
    ) -> Vec<(EdgeId, TokenSet)> {
        let g = view.graph();
        let m = view.instance.num_tokens();

        // --- Receiver side: subdivide needs into per-in-arc requests. ---
        // requests[e] = tokens the destination of arc e asks for on e.
        // The actual rule lives in [`crate::policy::subdivide_requests`],
        // shared with the asynchronous runtime.
        let mut requests: Vec<TokenSet> = vec![TokenSet::new(m); g.edge_count()];
        let subdividing = !self.no_subdivision;
        for v in g.nodes().filter(|_| subdividing) {
            let need = view.need_of(v);
            if need.is_empty() {
                continue;
            }
            let in_edges: Vec<EdgeId> = g.in_edges(v).collect();
            if in_edges.is_empty() {
                continue;
            }
            let assigned = subdivide_requests(
                &need,
                &in_edges,
                &|e, t| view.possession[g.edge(e).src.index()].contains(t),
                &|e| view.capacity(e),
                view.aggregates,
                rng,
            );
            for (&e, req) in in_edges.iter().zip(assigned) {
                requests[e.index()] = req;
            }
        }

        // --- Sender side: serve requests, then flood the remainder. ---
        let mut out = Vec::new();
        for e in g.edge_ids() {
            let arc = g.edge(e);
            let cap = view.capacity(e) as usize;
            if cap == 0 {
                continue;
            }
            let mut send = requests[e.index()].clone();
            debug_assert!(send.len() <= cap);
            debug_assert!(send.is_subset(&view.possession[arc.src.index()]));
            if send.len() < cap {
                // Flood fill: rarest tokens the peer lacks, preferring
                // tokens somebody still needs (the "want" aggregate).
                let mut candidates =
                    view.possession[arc.src.index()].difference(&view.possession[arc.dst.index()]);
                candidates.subtract(&send);
                let room = cap - send.len();
                rarest_flood_fill(&mut send, &candidates, room, view.aggregates, rng);
            }
            if !send.is_empty() {
                out.push((e, send));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::rarest_first;
    use crate::{simulate, SimConfig};
    use ocd_core::knowledge::AggregateKnowledge;
    use ocd_core::scenario::{multi_file, single_file};
    use ocd_core::validate;
    use ocd_core::Token;
    use ocd_graph::generate::classic;
    use rand::prelude::*;

    #[test]
    fn rarest_first_orders_by_have_count() {
        let aggregates = AggregateKnowledge {
            have_counts: vec![5, 1, 3],
            need_counts: vec![1, 1, 1],
        };
        let tokens = TokenSet::full(3);
        let mut rng = StdRng::seed_from_u64(0);
        let order: Vec<usize> = rarest_first(&tokens, &aggregates, &mut rng)
            .iter()
            .map(|t| t.index())
            .collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn completes_single_file() {
        let instance = single_file(classic::cycle(8, 3, true), 12, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let report = simulate(
            &instance,
            &mut LocalRarest::new(),
            &SimConfig::default(),
            &mut rng,
        );
        assert!(report.success);
        assert!(validate::replay(&instance, &report.schedule)
            .unwrap()
            .is_successful());
    }

    #[test]
    fn requests_avoid_duplicate_rare_sends() {
        // Receiver 2 has two in-peers (0 and 1) that both hold both
        // tokens; subdivision must not request the same token twice, so
        // with capacity 1 per arc both tokens arrive in step 1.
        let mut g = ocd_graph::DiGraph::with_nodes(3);
        g.add_edge(g.node(0), g.node(2), 1).unwrap();
        g.add_edge(g.node(1), g.node(2), 1).unwrap();
        let instance = ocd_core::Instance::builder(g, 2)
            .have(0, [Token::new(0), Token::new(1)])
            .have(1, [Token::new(0), Token::new(1)])
            .want(2, [Token::new(0), Token::new(1)])
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let report = simulate(
            &instance,
            &mut LocalRarest::new(),
            &SimConfig::default(),
            &mut rng,
        );
        assert!(report.success);
        assert_eq!(
            report.steps, 1,
            "distinct requests fetch both tokens at once"
        );
        assert_eq!(report.bandwidth, 2);
    }

    #[test]
    fn handles_multi_file_demand() {
        let instance = multi_file(classic::cycle(12, 4, true), 24, 4, 0);
        let mut rng = StdRng::seed_from_u64(3);
        let report = simulate(
            &instance,
            &mut LocalRarest::new(),
            &SimConfig::default(),
            &mut rng,
        );
        assert!(report.success);
    }

    #[test]
    fn no_subdivision_ablation_wastes_duplicate_sends() {
        // Two peers feed one receiver over unit arcs; token 0 is
        // strictly rarer than token 1 (a bystander holds an extra copy
        // of token 1), so without request subdivision *both* peers
        // deterministically flood token 0 in step 1 — the paper's "two
        // peers send the same 'rare' block in the same direction"
        // problem — and completion takes 2 steps with a wasted move.
        let mut g = ocd_graph::DiGraph::with_nodes(4);
        g.add_edge(g.node(0), g.node(2), 1).unwrap();
        g.add_edge(g.node(1), g.node(2), 1).unwrap();
        let instance = ocd_core::Instance::builder(g, 2)
            .have(0, [Token::new(0), Token::new(1)])
            .have(1, [Token::new(0), Token::new(1)])
            .have(3, [Token::new(1)]) // bystander: makes token 0 rarer
            .want(2, [Token::new(0), Token::new(1)])
            .build()
            .unwrap();
        let run = |mut strategy: LocalRarest| {
            let mut rng = StdRng::seed_from_u64(2);
            simulate(&instance, &mut strategy, &SimConfig::default(), &mut rng)
        };
        let ablated = run(LocalRarest::without_subdivision());
        assert!(ablated.success);
        assert_eq!(ablated.steps, 2, "duplicate rare sends cost a step");
        assert!(ablated.bandwidth > 2, "and a wasted transfer");
        let subdivided = run(LocalRarest::new());
        assert_eq!(
            subdivided.steps, 1,
            "subdivision fetches both tokens at once"
        );
        assert_eq!(subdivided.bandwidth, 2);
        assert_eq!(LocalRarest::without_subdivision().name(), "local-nosubdiv");
    }

    #[test]
    fn works_with_delayed_aggregates() {
        let instance = single_file(classic::cycle(8, 3, true), 12, 0);
        let config = SimConfig {
            knowledge_delay: 3,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let report = simulate(&instance, &mut LocalRarest::new(), &config, &mut rng);
        assert!(
            report.success,
            "stale rarity data degrades but still completes"
        );
    }
}
