//! Lockstep RLNC engine: the §3.1 store-and-forward model with random
//! linear network coding over GF(2^8) in place of token replication.
//!
//! Structure mirrors the uncoded [`engine`](crate::simulate_with)
//! exactly: a [`CodedMedium`] abstracts per-step capacities and
//! per-packet delivery (the coded counterpart of
//! [`Medium`](crate::Medium), whose admission contract is token-set
//! shaped and therefore cannot carry coefficient-vector packets), a
//! [`Recorder`](ocd_core::Recorder) collects metrics, and a
//! [`ProvenanceHook`](ocd_core::ProvenanceHook) captures lineage — all
//! three monomorphize to nothing when disabled.
//!
//! The per-vertex state is a [`CodedBasis`] instead of a
//! [`TokenSet`](ocd_core::TokenSet): senders emit random combinations
//! of whatever they can already reproduce, receivers absorb a packet
//! iff it is innovative, and *duplicate delivery* becomes *redundant
//! delivery* — a packet inside the receiver's span. With the bases
//! tracking true state, same-step races are accounted against the
//! receiver's live basis (the coded analogue of diffing against the
//! arriving set rather than stale start-of-step possession).
//!
//! Coded provenance is slot-indexed: the `r`-th innovative packet a
//! vertex absorbs is recorded as the acquisition of token `r` of the
//! [`RlncInstance::slot_instance`], so the standard critical-path and
//! per-arc bottleneck analysis applies, and
//! [`ProvenanceTrace::contributing_arcs`] reads off the *set* of arcs
//! whose packets entered each decoding basis.

use ocd_core::metrics::{CounterId, MetricsRegistry, MetricsSnapshot, NoopRecorder, Recorder};
use ocd_core::provenance::{NoopProvenance, ProvenanceHook, ProvenanceTrace};
use ocd_core::rlnc::{CodedBasis, RlncInstance};
use ocd_core::{Token, TokenSet};
use ocd_graph::{DiGraph, EdgeId};
use rand::{Rng, RngCore};

/// The transmission substrate of the coded engine: per-step arc
/// capacities plus a per-packet delivery verdict. The default
/// implementations model an ideal medium (static capacities, lossless).
pub trait CodedMedium {
    /// Medium name for reports.
    fn name(&self) -> &'static str;

    /// Called once per run before the first step.
    fn reset(&mut self, _graph: &DiGraph) {}

    /// Per-arc packet capacities for this step, indexed by edge id.
    fn capacities<'a>(
        &'a mut self,
        _graph: &DiGraph,
        static_caps: &'a [u32],
        _step: usize,
        _rng: &mut dyn RngCore,
    ) -> &'a [u32] {
        static_caps
    }

    /// Whether a packet sent on `edge` survives to delivery.
    fn deliver(&mut self, _edge: EdgeId, _rng: &mut dyn RngCore) -> bool {
        true
    }
}

/// The ideal coded medium: static capacities, every packet arrives.
/// Zero-sized, so monomorphizing over it costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdealCoded;

impl CodedMedium for IdealCoded {
    fn name(&self) -> &'static str {
        "ideal"
    }
}

/// A lossy coded medium: each packet independently survives with
/// probability `1 - loss`. One RNG draw per packet, at send time, in
/// send order.
#[derive(Debug, Clone, Copy)]
pub struct LossyCoded {
    loss: f64,
}

impl LossyCoded {
    /// Creates a medium dropping each packet with probability `loss`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ loss < 1`.
    #[must_use]
    pub fn new(loss: f64) -> Self {
        assert!((0.0..1.0).contains(&loss), "loss must be in [0, 1)");
        LossyCoded { loss }
    }
}

impl CodedMedium for LossyCoded {
    fn name(&self) -> &'static str {
        "lossy"
    }
    fn deliver(&mut self, _edge: EdgeId, rng: &mut dyn RngCore) -> bool {
        !rng.random_bool(self.loss)
    }
}

/// What a coded strategy sees when planning a step: true per-vertex
/// bases (the coded engine is the full-knowledge tier, like the
/// uncoded Random baseline's possession view).
#[derive(Debug)]
pub struct CodedView<'a> {
    /// The overlay graph.
    pub graph: &'a DiGraph,
    /// This step's per-arc packet capacities, indexed by edge id.
    pub capacities: &'a [u32],
    /// Start-of-step decoding state of every vertex.
    pub bases: &'a [CodedBasis],
    /// Which vertices must decode the generation.
    pub receiver: &'a [bool],
    /// Current step number (0-based).
    pub step: usize,
}

/// A coded planning rule: how many fresh random combinations to put on
/// each arc this step. Counts must respect the view's capacities; the
/// engine asserts this and rejects duplicate arcs, mirroring the §3.1
/// checks of the uncoded engine.
pub trait CodedStrategy {
    /// Strategy name for reports.
    fn name(&self) -> &'static str;

    /// Called once per run before the first step.
    fn reset(&mut self, _instance: &RlncInstance) {}

    /// Plans this step's sends as `(arc, packet count)` pairs.
    fn plan_step(&mut self, view: &CodedView<'_>, rng: &mut dyn RngCore) -> Vec<(EdgeId, u32)>;
}

/// Coded Random: sender-driven useful flooding. Each arc carries
/// `min(capacity, ⌈innovative_capacity · redundancy⌉)` fresh
/// combinations whenever the sender's span exceeds the receiver's —
/// the straight RLNC translation of the paper's Random heuristic,
/// where the candidate count `|have(src) ∖ have(dst)|` becomes the
/// rank deficit `rank(dst ∪ src) − rank(dst)`. Draws no RNG during
/// planning (packet coefficients are drawn at send time).
#[derive(Debug, Clone, Copy)]
pub struct CodedRandom {
    redundancy: f64,
}

impl CodedRandom {
    /// Creates the strategy with a proactive-redundancy factor ≥ 1:
    /// how many combinations to send per innovative packet the
    /// receiver could use, to ride through loss without waiting for
    /// feedback.
    ///
    /// # Panics
    ///
    /// Panics if `redundancy < 1`.
    #[must_use]
    pub fn new(redundancy: f64) -> Self {
        assert!(redundancy >= 1.0, "redundancy is a multiplier ≥ 1");
        CodedRandom { redundancy }
    }
}

impl CodedStrategy for CodedRandom {
    fn name(&self) -> &'static str {
        "coded-random"
    }

    fn plan_step(&mut self, view: &CodedView<'_>, _rng: &mut dyn RngCore) -> Vec<(EdgeId, u32)> {
        let mut plan = Vec::new();
        for e in view.graph.edge_ids() {
            let arc = view.graph.edge(e);
            let useful =
                view.bases[arc.dst.index()].innovative_capacity_from(&view.bases[arc.src.index()]);
            if useful == 0 {
                continue;
            }
            let want = (useful as f64 * self.redundancy).ceil() as u32;
            let count = want.min(view.capacities[e.index()]);
            if count > 0 {
                plan.push((e, count));
            }
        }
        plan
    }
}

/// Coded Local: receiver-driven subdivision. Each vertex with a rank
/// deficit spreads `⌈deficit · redundancy⌉` packet requests across its
/// useful in-arcs, always assigning the next request to the least-
/// loaded eligible arc (ties by arc order) — the coded counterpart of
/// the Local heuristic's request subdivision, which avoids the
/// all-peers-flood-everyone redundancy of [`CodedRandom`]. Fully
/// deterministic at planning time.
#[derive(Debug, Clone, Copy)]
pub struct CodedLocal {
    redundancy: f64,
}

impl CodedLocal {
    /// Creates the strategy with a proactive-redundancy factor ≥ 1.
    ///
    /// # Panics
    ///
    /// Panics if `redundancy < 1`.
    #[must_use]
    pub fn new(redundancy: f64) -> Self {
        assert!(redundancy >= 1.0, "redundancy is a multiplier ≥ 1");
        CodedLocal { redundancy }
    }
}

impl CodedStrategy for CodedLocal {
    fn name(&self) -> &'static str {
        "coded-local"
    }

    fn plan_step(&mut self, view: &CodedView<'_>, _rng: &mut dyn RngCore) -> Vec<(EdgeId, u32)> {
        let mut counts = vec![0u32; view.graph.edge_count()];
        for v in view.graph.nodes() {
            let deficit = view.bases[v.index()].deficit();
            if deficit == 0 {
                continue;
            }
            // Eligible in-arcs and their per-arc budgets: capacity,
            // clamped to the redundancy-scaled useful supply.
            let arcs: Vec<(EdgeId, u32)> = view
                .graph
                .in_edges(v)
                .filter_map(|e| {
                    let src = view.graph.edge(e).src;
                    let useful =
                        view.bases[v.index()].innovative_capacity_from(&view.bases[src.index()]);
                    if useful == 0 {
                        return None;
                    }
                    let budget = ((useful as f64 * self.redundancy).ceil() as u32)
                        .min(view.capacities[e.index()]);
                    (budget > 0).then_some((e, budget))
                })
                .collect();
            let want = (deficit as f64 * self.redundancy).ceil() as usize;
            let mut load = vec![0u32; arcs.len()];
            for _ in 0..want {
                // Least-loaded eligible arc, ties by position (in-edge
                // iteration order is deterministic).
                let Some(slot) = (0..arcs.len())
                    .filter(|&i| load[i] < arcs[i].1)
                    .min_by_key(|&i| (load[i], i))
                else {
                    break;
                };
                load[slot] += 1;
            }
            for (&(e, _), &l) in arcs.iter().zip(&load) {
                counts[e.index()] += l;
            }
        }
        view.graph
            .edge_ids()
            .filter_map(|e| {
                let c = counts[e.index()].min(view.capacities[e.index()]);
                (c > 0).then_some((e, c))
            })
            .collect()
    }
}

/// Configuration of a coded run.
#[derive(Debug, Clone, Copy)]
pub struct CodedSimConfig {
    /// Hard step cap.
    pub max_steps: usize,
    /// Collect a [`MetricsSnapshot`].
    pub metrics: bool,
    /// Record slot-indexed coded provenance.
    pub provenance: bool,
}

impl Default for CodedSimConfig {
    fn default() -> Self {
        CodedSimConfig {
            max_steps: 10_000,
            metrics: false,
            provenance: false,
        }
    }
}

/// Outcome counters of a coded run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodedSimReport {
    /// Whether every receiver reached full rank within the step cap.
    pub success: bool,
    /// Timesteps used.
    pub steps: usize,
    /// Packets put on arcs (including lost ones).
    pub packets_sent: u64,
    /// Packets that increased their receiver's rank.
    pub innovative_deliveries: u64,
    /// Packets that arrived inside the receiver's span — the coded
    /// analogue of duplicate deliveries (same-step races included,
    /// accounted against the live basis).
    pub redundant_deliveries: u64,
    /// Packets dropped by the medium.
    pub packets_lost: u64,
    /// Wire bytes sent: packets × (payload + coefficient header).
    pub bytes_sent: u64,
    /// Per-vertex step (1-based) at which the vertex reached full
    /// rank; `Some(0)` for the source, `None` if it never completed.
    pub completion_steps: Vec<Option<usize>>,
    /// Whether every completed receiver decoded the exact generation
    /// payloads (end-to-end correctness of the field arithmetic).
    pub decode_ok: bool,
}

/// A coded run's report plus optional instrumentation artifacts.
#[derive(Debug, Clone)]
pub struct CodedOutcome {
    /// Outcome counters.
    pub report: CodedSimReport,
    /// Snapshot when [`CodedSimConfig::metrics`] was set.
    pub metrics: Option<MetricsSnapshot>,
    /// Slot-indexed trace when [`CodedSimConfig::provenance`] was set.
    pub provenance: Option<ProvenanceTrace>,
}

/// Runs a coded strategy on the ideal medium.
pub fn simulate_coded(
    instance: &RlncInstance,
    strategy: &mut dyn CodedStrategy,
    config: &CodedSimConfig,
    rng: &mut dyn RngCore,
) -> CodedOutcome {
    simulate_coded_with(instance, strategy, &mut IdealCoded, config, rng)
}

/// Runs a coded strategy over an explicit [`CodedMedium`], dispatching
/// to the monomorphized loop for each instrumentation combination —
/// the same zero-cost pattern as the uncoded
/// [`simulate_with`](crate::simulate_with).
///
/// # Panics
///
/// Panics if the strategy violates capacity, sends on a non-existent
/// arc, duplicates an arc within a step, or plans from an empty basis.
pub fn simulate_coded_with<M: CodedMedium>(
    instance: &RlncInstance,
    strategy: &mut dyn CodedStrategy,
    medium: &mut M,
    config: &CodedSimConfig,
    rng: &mut dyn RngCore,
) -> CodedOutcome {
    let new_trace = || ProvenanceTrace::new(instance.graph().node_count(), instance.generation());
    match (config.metrics, config.provenance) {
        (true, true) => {
            let mut registry = MetricsRegistry::new();
            let mut prov = new_trace();
            let mut outcome = coded_loop(
                instance,
                strategy,
                medium,
                config,
                rng,
                &mut registry,
                &mut prov,
            );
            outcome.metrics = Some(registry.snapshot());
            outcome.provenance = Some(prov);
            outcome
        }
        (true, false) => {
            let mut registry = MetricsRegistry::new();
            let mut outcome = coded_loop(
                instance,
                strategy,
                medium,
                config,
                rng,
                &mut registry,
                &mut NoopProvenance,
            );
            outcome.metrics = Some(registry.snapshot());
            outcome
        }
        (false, true) => {
            let mut prov = new_trace();
            let mut outcome = coded_loop(
                instance,
                strategy,
                medium,
                config,
                rng,
                &mut NoopRecorder,
                &mut prov,
            );
            outcome.provenance = Some(prov);
            outcome
        }
        (false, false) => coded_loop(
            instance,
            strategy,
            medium,
            config,
            rng,
            &mut NoopRecorder,
            &mut NoopProvenance,
        ),
    }
}

struct Counters {
    sent: CounterId,
    innovative: CounterId,
    redundant: CounterId,
    lost: CounterId,
    bytes: CounterId,
}

fn coded_loop<M: CodedMedium, R: Recorder, P: ProvenanceHook>(
    instance: &RlncInstance,
    strategy: &mut dyn CodedStrategy,
    medium: &mut M,
    config: &CodedSimConfig,
    rng: &mut dyn RngCore,
    rec: &mut R,
    prov: &mut P,
) -> CodedOutcome {
    let g = instance.graph();
    let k = instance.generation();
    medium.reset(g);
    strategy.reset(instance);
    let counters = Counters {
        sent: rec.counter("coded.packets_sent"),
        innovative: rec.counter("coded.innovative_deliveries"),
        redundant: rec.counter("coded.redundant_deliveries"),
        lost: rec.counter("coded.packets_lost"),
        bytes: rec.counter("coded.bytes_sent"),
    };
    let static_caps: Vec<u32> = g.edge_ids().map(|e| g.capacity(e)).collect();
    let receiver: Vec<bool> = g.nodes().map(|v| instance.is_receiver(v)).collect();
    let mut bases = instance.initial_bases();
    let mut completion: Vec<Option<usize>> =
        bases.iter().map(|b| b.is_complete().then_some(0)).collect();
    let mut report = CodedSimReport {
        success: false,
        steps: 0,
        packets_sent: 0,
        innovative_deliveries: 0,
        redundant_deliveries: 0,
        packets_lost: 0,
        bytes_sent: 0,
        completion_steps: Vec::new(),
        decode_ok: false,
    };
    // Duplicate-arc stamps, mirroring the uncoded engine's §3.1 check.
    let mut stamp = vec![usize::MAX; g.edge_count()];
    let all_done = |bases: &[CodedBasis]| {
        g.nodes()
            .all(|v| !receiver[v.index()] || bases[v.index()].is_complete())
    };
    for step in 0..config.max_steps {
        if all_done(&bases) {
            break;
        }
        let caps = medium.capacities(g, &static_caps, step, rng).to_vec();
        assert_eq!(caps.len(), g.edge_count(), "malformed capacity vector");
        let plan = strategy.plan_step(
            &CodedView {
                graph: g,
                capacities: &caps,
                bases: &bases,
                receiver: &receiver,
                step,
            },
            rng,
        );
        if plan.is_empty() {
            // No sender can help anyone: the run is at its fixpoint.
            break;
        }
        // Store-and-forward: packets mix start-of-step state even when
        // the sender gains rank from a parallel delivery this step.
        let snapshot = bases.clone();
        for &(e, count) in &plan {
            assert!(e.index() < g.edge_count(), "send on non-existent arc");
            assert!(stamp[e.index()] != step, "duplicate arc in step plan");
            stamp[e.index()] = step;
            assert!(count >= 1, "empty send on arc");
            assert!(count <= caps[e.index()], "capacity violated on arc");
            let arc = g.edge(e);
            for _ in 0..count {
                let packet = snapshot[arc.src.index()].random_packet(rng);
                report.packets_sent += 1;
                report.bytes_sent += packet.wire_bytes();
                rec.add(counters.sent, 1);
                rec.add(counters.bytes, packet.wire_bytes());
                if !medium.deliver(e, rng) {
                    report.packets_lost += 1;
                    rec.add(counters.lost, 1);
                    continue;
                }
                // Innovation is judged against the receiver's *live*
                // basis, so a same-step race between two in-arcs books
                // the loser as redundant — never as progress.
                let dst = arc.dst.index();
                let slot = bases[dst].rank();
                if bases[dst].absorb(packet) {
                    report.innovative_deliveries += 1;
                    rec.add(counters.innovative, 1);
                    if prov.enabled() {
                        let delta = TokenSet::from_tokens(k, [Token::new(slot)]);
                        prov.record_delivery(step as u64, e, arc.src, arc.dst, &delta);
                    }
                    if bases[dst].is_complete() && completion[dst].is_none() {
                        completion[dst] = Some(step + 1);
                    }
                } else {
                    report.redundant_deliveries += 1;
                    rec.add(counters.redundant, 1);
                }
            }
        }
        report.steps = step + 1;
    }
    report.success = all_done(&bases);
    report.decode_ok = report.success
        && g.nodes()
            .all(|v| !receiver[v.index()] || instance.decodes_correctly(&bases[v.index()]));
    report.completion_steps = completion;
    CodedOutcome {
        report,
        metrics: None,
        provenance: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, SimConfig, StrategyKind};
    use ocd_core::scenario::single_file;
    use ocd_graph::generate::{classic, paper_random};
    use rand::prelude::*;

    #[test]
    fn coded_random_completes_and_decodes_on_a_ring() {
        let inst = RlncInstance::single_source(classic::cycle(6, 2, true), 8, 16, 0);
        let mut rng = StdRng::seed_from_u64(5);
        let out = simulate_coded(
            &inst,
            &mut CodedRandom::new(1.0),
            &CodedSimConfig::default(),
            &mut rng,
        );
        assert!(out.report.success);
        assert!(out.report.decode_ok, "payload arithmetic must round-trip");
        assert!(
            out.report.innovative_deliveries >= 8 * 5,
            "each of 5 receivers needs k"
        );
        assert_eq!(
            out.report.bytes_sent,
            out.report.packets_sent * inst.packet_bytes()
        );
    }

    #[test]
    fn coded_local_sends_fewer_redundant_packets_than_flooding() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = paper_random(16, &mut rng);
        let inst = RlncInstance::single_source(g, 12, 8, 0);
        let run = |strategy: &mut dyn CodedStrategy, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            simulate_coded(&inst, strategy, &CodedSimConfig::default(), &mut rng).report
        };
        let flood: u64 = (0..4)
            .map(|s| run(&mut CodedRandom::new(1.0), s).redundant_deliveries)
            .sum();
        let local: u64 = (0..4)
            .map(|s| run(&mut CodedLocal::new(1.0), s).redundant_deliveries)
            .sum();
        for s in 0..4 {
            assert!(run(&mut CodedLocal::new(1.0), s).success);
        }
        assert!(
            local <= flood,
            "subdivision must not be more redundant than flooding: {local} > {flood}"
        );
    }

    #[test]
    fn rlnc_never_loses_to_uncoded_random_at_loss_zero() {
        // The satellite differential: at loss 0 / redundancy 1, RLNC's
        // completion step is pinned against the uncoded Random
        // schedule on the same topology — the threshold end-game can
        // only help, never hurt.
        for seed in 0..5u64 {
            let mut topo_rng = StdRng::seed_from_u64(seed);
            let g = paper_random(20, &mut topo_rng);
            let k = 12;
            let uncoded_inst = single_file(g.clone(), k, 0);
            let mut strategy = StrategyKind::Random.build();
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let uncoded = simulate(
                &uncoded_inst,
                strategy.as_mut(),
                &SimConfig::default(),
                &mut rng,
            );
            assert!(uncoded.success);

            let coded_inst = RlncInstance::single_source(g, k, 32, 0);
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let coded = simulate_coded(
                &coded_inst,
                &mut CodedRandom::new(1.0),
                &CodedSimConfig::default(),
                &mut rng,
            );
            assert!(coded.report.success && coded.report.decode_ok);
            assert!(
                coded.report.steps <= uncoded.steps,
                "seed {seed}: coded {} > uncoded {}",
                coded.report.steps,
                uncoded.steps
            );
        }
    }

    #[test]
    fn two_node_pipe_is_capacity_bound() {
        // One arc of capacity 2 moving a generation of 6: exactly 3
        // steps, every packet innovative (pinned by seed).
        let mut g = ocd_graph::DiGraph::with_nodes(2);
        g.add_edge(g.node(0), g.node(1), 2).unwrap();
        let inst = RlncInstance::single_source(g, 6, 4, 0);
        let mut rng = StdRng::seed_from_u64(2);
        let out = simulate_coded(
            &inst,
            &mut CodedRandom::new(1.0),
            &CodedSimConfig::default(),
            &mut rng,
        );
        assert!(out.report.success && out.report.decode_ok);
        assert_eq!(out.report.steps, 3);
        assert_eq!(out.report.packets_sent, 6);
        assert_eq!(out.report.redundant_deliveries, 0);
        assert_eq!(
            out.report.completion_steps[0],
            Some(0),
            "source starts complete"
        );
        assert_eq!(out.report.completion_steps[1], Some(3));
    }

    #[test]
    fn lossy_medium_is_survived_by_redundancy() {
        let inst = RlncInstance::single_source(classic::cycle(5, 2, true), 6, 8, 0);
        let mut rng = StdRng::seed_from_u64(9);
        let out = simulate_coded_with(
            &inst,
            &mut CodedRandom::new(1.5),
            &mut LossyCoded::new(0.3),
            &CodedSimConfig::default(),
            &mut rng,
        );
        assert!(out.report.success && out.report.decode_ok);
        assert!(out.report.packets_lost > 0, "losses actually happened");
    }

    #[test]
    fn coded_provenance_reports_lineage_sets_and_bottlenecks() {
        let inst = RlncInstance::single_source(classic::cycle(6, 2, true), 5, 8, 0);
        let mut rng = StdRng::seed_from_u64(4);
        let config = CodedSimConfig {
            provenance: true,
            metrics: true,
            ..CodedSimConfig::default()
        };
        let out = simulate_coded(&inst, &mut CodedRandom::new(1.0), &config, &mut rng);
        assert!(out.report.success);
        let trace = out.provenance.expect("provenance requested");
        // Every innovative delivery filled exactly one fresh slot.
        assert_eq!(trace.len() as u64, out.report.innovative_deliveries);
        let slots = inst.slot_instance();
        let analysis = trace.analyze(&slots);
        assert!(analysis.critical_path.is_some(), "someone finished last");
        let carried: u64 = analysis.arcs.iter().map(|a| a.first_deliveries).sum();
        assert_eq!(carried, out.report.innovative_deliveries);
        // Each receiver's decoded generation has a non-empty arc-set
        // lineage bounded by its in-degree.
        for v in inst.graph().nodes().filter(|&v| inst.is_receiver(v)) {
            let lineage = trace.contributing_arcs(v);
            assert!(!lineage.is_empty());
            assert!(lineage.len() <= inst.graph().in_degree(v));
            assert!(lineage.iter().all(|&e| inst.graph().edge(e).dst == v));
        }
        // Metrics agree with the report.
        let metrics = out.metrics.expect("metrics requested");
        assert_eq!(
            metrics.counter("coded.innovative_deliveries"),
            Some(out.report.innovative_deliveries)
        );
        assert_eq!(
            metrics.counter("coded.packets_sent"),
            Some(out.report.packets_sent)
        );
    }

    #[test]
    fn unreachable_receiver_halts_at_fixpoint() {
        let mut g = ocd_graph::DiGraph::with_nodes(3);
        g.add_edge(g.node(0), g.node(1), 1).unwrap();
        // Node 2 has no in-arcs: the plan dries up once node 1 is full.
        let inst = RlncInstance::single_source(g, 4, 4, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let out = simulate_coded(
            &inst,
            &mut CodedRandom::new(1.0),
            &CodedSimConfig::default(),
            &mut rng,
        );
        assert!(!out.report.success);
        assert!(out.report.steps <= 8, "fixpoint exit, not max_steps");
        assert_eq!(out.report.completion_steps[2], None);
    }
}
