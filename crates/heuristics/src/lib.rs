//! On-line simulation engine and the OCD paper's distribution heuristics
//! (§4–§5.1).
//!
//! The paper evaluates five heuristics, from fully local to fully
//! coordinated:
//!
//! | Strategy | Knowledge (§4.1 tier) | Behaviour |
//! |---|---|---|
//! | [`RoundRobin`] | own state only | cycles its token queue over every link |
//! | [`RandomUseful`] | + peers' current possession | random tokens the peer lacks |
//! | [`LocalRarest`] | + global aggregates (optionally delayed) | request subdivision + rarest-first flooding |
//! | [`BandwidthCautious`] | global (still per-turn online) | only tokens a vertex will *eventually use* |
//! | [`GlobalGreedy`] | global, coordinated | greedy diversity maximization per step |
//!
//! plus [`GatherThenPlan`], the §4.2 observation that an on-line
//! algorithm can always pay an additive diameter penalty to gather full
//! knowledge and then follow a coordinated plan, and
//! [`PerNeighborQueue`], the uplink-aware per-out-neighbor queue policy
//! that is makespan-optimal for broadcast on uplink-constrained
//! complete overlays (scored against the [`optimal`] oracles).
//!
//! The [`engine`](simulate) runs any [`Strategy`] step by step,
//! maintaining true possession, feeding each strategy the knowledge it
//! is entitled to via [`WorldView`], and recording a [`SimReport`] whose
//! schedule always validates against the instance (property-tested).
//!
//! # Examples
//!
//! ```
//! use ocd_heuristics::{simulate, SimConfig, StrategyKind};
//! use ocd_core::scenario::single_file;
//! use ocd_graph::generate::classic;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let instance = single_file(classic::cycle(6, 2, true), 8, 0);
//! let mut strategy = StrategyKind::Random.build();
//! let mut rng = StdRng::seed_from_u64(7);
//! let report = simulate(&instance, strategy.as_mut(), &SimConfig::default(), &mut rng);
//! assert!(report.success);
//! assert!(report.schedule.bandwidth() >= instance.total_deficiency());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod bandwidth;
pub mod coded;
pub mod dynamics;
mod engine;
mod gather;
mod global_greedy;
mod kind;
mod local_rarest;
pub mod medium;
pub mod optimal;
mod per_neighbor_queue;
pub mod policy;
mod random;
mod round_robin;
mod shard;
mod tree_stripe;
pub mod underlay;
mod view;

pub use bandwidth::BandwidthCautious;
pub use coded::{
    simulate_coded, simulate_coded_with, CodedLocal, CodedMedium, CodedOutcome, CodedRandom,
    CodedSimConfig, CodedSimReport, CodedStrategy, CodedView, IdealCoded, LossyCoded,
};
pub use dynamics::{simulate_dynamic, DynamicReport, NetworkDynamics};
pub use engine::{
    simulate, simulate_with, simulate_with_spans, SimConfig, SimOutcome, SimReport, StepRecord,
};
pub use gather::GatherThenPlan;
pub use global_greedy::GlobalGreedy;
pub use kind::StrategyKind;
pub use local_rarest::LocalRarest;
pub use medium::{Dynamic, Ideal, Medium, NodeCapacity, PhysicalUnderlay};
pub use per_neighbor_queue::PerNeighborQueue;
pub use random::RandomUseful;
pub use round_robin::RoundRobin;
pub use shard::{Sharded, ShardedLocal, ShardedRandom, ShardedTreeStripe, VertexStrategy};
pub use tree_stripe::TreeStripe;
pub use underlay::{simulate_underlay, UnderlayReport};
pub use view::{KnowledgeTier, Strategy, WorldView};
