//! The Random heuristic (§5.1).
//!
//! "In this heuristic we assume that peers have current knowledge about
//! the tokens known by each of their peers at the beginning of the turn.
//! Each vertex then independently chooses at random which tokens to send
//! over the edge." It floods — any token the peer lacks is fair game,
//! wanted or not — but never re-sends what the peer already holds.

use crate::policy::random_fill;
use crate::{KnowledgeTier, Strategy, WorldView};
use ocd_core::{Instance, TokenSet};
use ocd_graph::EdgeId;
use rand::RngCore;

/// Random-useful flooding: per arc, a uniform random subset (of size up
/// to the capacity) of the tokens the sender has and the receiver lacks.
#[derive(Debug, Default)]
pub struct RandomUseful;

impl RandomUseful {
    /// Creates the strategy.
    #[must_use]
    pub fn new() -> Self {
        RandomUseful
    }
}

impl Strategy for RandomUseful {
    fn name(&self) -> &'static str {
        "random"
    }

    fn tier(&self) -> KnowledgeTier {
        KnowledgeTier::PeerState
    }

    fn reset(&mut self, _instance: &Instance) {}

    fn plan_step(
        &mut self,
        view: &WorldView<'_>,
        rng: &mut dyn RngCore,
    ) -> Vec<(EdgeId, TokenSet)> {
        let g = view.graph();
        let mut out = Vec::new();
        for e in g.edge_ids() {
            let arc = g.edge(e);
            let cap = view.capacity(e) as usize;
            if cap == 0 {
                continue;
            }
            let candidates =
                view.possession[arc.src.index()].difference(&view.possession[arc.dst.index()]);
            if candidates.is_empty() {
                continue;
            }
            out.push((e, random_fill(candidates, cap, rng)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, SimConfig};
    use ocd_core::scenario::single_file;
    use ocd_core::validate;
    use ocd_graph::generate::classic;
    use rand::prelude::*;

    #[test]
    fn never_resends_known_tokens() {
        let instance = single_file(classic::cycle(6, 2, true), 8, 0);
        let mut rng = StdRng::seed_from_u64(3);
        let report = simulate(
            &instance,
            &mut RandomUseful::new(),
            &SimConfig::default(),
            &mut rng,
        );
        assert!(report.success);
        let replay = validate::replay(&instance, &report.schedule).unwrap();
        assert!(replay.is_successful());
        // Each delivery adds a token the destination lacked *at the start
        // of its step*; only simultaneous duplicates from different peers
        // can be wasted. Check the per-arc no-resend property directly.
        for (i, step) in report.schedule.steps().iter().enumerate() {
            for (edge, tokens) in step.sends() {
                let dst = instance.graph().edge(edge).dst;
                assert!(
                    !tokens.intersects(replay.possession(i, dst)),
                    "step {i}: resent a token vertex {dst} already had"
                );
            }
        }
    }

    #[test]
    fn respects_capacity_via_partial_shuffle() {
        let instance = single_file(classic::path(2, 3, false), 10, 0);
        let mut rng = StdRng::seed_from_u64(4);
        let report = simulate(
            &instance,
            &mut RandomUseful::new(),
            &SimConfig::default(),
            &mut rng,
        );
        assert!(report.success);
        assert_eq!(report.steps, 4, "10 tokens over capacity 3 = 4 steps");
        assert_eq!(report.bandwidth, 10);
    }

    #[test]
    fn seeded_runs_reproduce() {
        let instance = single_file(classic::cycle(8, 2, true), 16, 0);
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            simulate(
                &instance,
                &mut RandomUseful::new(),
                &SimConfig::default(),
                &mut rng,
            )
            .schedule
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn different_seeds_usually_differ() {
        let instance = single_file(classic::cycle(8, 2, true), 16, 0);
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            simulate(
                &instance,
                &mut RandomUseful::new(),
                &SimConfig::default(),
                &mut rng,
            )
            .schedule
        };
        assert_ne!(run(7), run(8));
    }
}
