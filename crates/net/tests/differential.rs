//! Differential tests: the asynchronous runtime in ideal mode (latency
//! 1, no jitter, no loss, same-tick control) must reproduce the
//! lockstep engine *exactly* — same makespan, same bandwidth, and in
//! fact the same schedule, because both worlds share the decision code
//! in `ocd_heuristics::policy` and consume the RNG identically.
//!
//! Plus: every degraded-mode schedule still replays as a certified
//! sequence of legal moves, and the fault-injection run recovers and
//! accounts for every token it put on the wire.

use ocd_core::validate;
use ocd_core::{scenario, Instance};
use ocd_graph::generate::{classic, paper_random};
use ocd_heuristics::{simulate_with, Ideal, SimConfig, StrategyKind};
use ocd_net::{run_swarm, EventKind, FaultPlan, NetConfig, NetPolicy};
use rand::prelude::*;

/// Builds a seeded single-file G(n, p) instance (the paper's random
/// topology, everyone wants everything, vertex 0 is the source).
fn gnp_instance(n: usize, tokens: usize, graph_seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(graph_seed);
    scenario::single_file(paper_random(n, &mut rng), tokens, 0)
}

fn lockstep_pair(kind: StrategyKind, policy: NetPolicy) -> (StrategyKind, NetPolicy) {
    (kind, policy)
}

/// The core differential assertion: on `instance`, the async runtime
/// with the given policy and the lockstep engine with the matching
/// strategy, run from the same seed, produce the *same* schedule.
fn assert_lockstep_equivalence(instance: &Instance, policy: NetPolicy, seed: u64) {
    let kind = match policy {
        NetPolicy::Random => StrategyKind::Random,
        NetPolicy::Local => StrategyKind::Local,
        // The lockstep PerNeighborQueue coordinates across senders
        // (global planned-set dedup), which the per-actor runtime
        // cannot reproduce, so it has no lockstep-equivalence pair.
        NetPolicy::PerNeighborQueue => {
            unreachable!("per-neighbor-queue has no lockstep-equivalent differential")
        }
    };
    let (kind, policy) = lockstep_pair(kind, policy);

    // The baseline targets the generic step loop directly under the
    // ideal medium — the exact path `crate::simulate` wraps — so this
    // differential also pins `simulate_with::<Ideal>`.
    let mut lock_rng = StdRng::seed_from_u64(seed);
    let lock = simulate_with(
        instance,
        kind.build().as_mut(),
        &mut Ideal,
        &SimConfig::default(),
        &mut lock_rng,
    )
    .report;
    assert!(lock.success, "lockstep baseline must complete");

    let config = NetConfig {
        policy,
        ..NetConfig::default()
    };
    assert!(config.is_ideal());
    let mut net_rng = StdRng::seed_from_u64(seed);
    let report = run_swarm(instance, &config, &FaultPlan::none(), &mut net_rng);

    assert!(report.success, "{policy}: async ideal run must complete");
    assert_eq!(
        report.schedule, lock.schedule,
        "{policy}: ideal-mode schedule must equal the lockstep schedule"
    );
    assert_eq!(report.makespan(), lock.steps, "{policy}: makespan");
    assert_eq!(
        report.bandwidth(),
        lock.schedule.bandwidth(),
        "{policy}: bandwidth"
    );
    let lock_completions: Vec<Option<u64>> = lock
        .completion_steps
        .iter()
        .map(|c| c.map(|s| s as u64))
        .collect();
    assert_eq!(
        report.completion_ticks, lock_completions,
        "{policy}: per-vertex completion times"
    );
    // The extracted schedule is certified by the §3.1 validator.
    let replay =
        validate::replay(instance, &report.schedule).expect("extracted schedule must be legal");
    assert!(replay.is_successful());
}

#[test]
fn ideal_mode_matches_lockstep_on_seeded_gnp_instances() {
    for (graph_seed, run_seed) in [(11u64, 1u64), (22, 2), (33, 3)] {
        let instance = gnp_instance(16, 12, graph_seed);
        assert_lockstep_equivalence(&instance, NetPolicy::Random, run_seed);
        assert_lockstep_equivalence(&instance, NetPolicy::Local, run_seed);
    }
}

#[test]
fn ideal_mode_matches_lockstep_on_classic_topologies() {
    for g in [
        classic::cycle(7, 2, true),
        classic::star(6, 1, true),
        classic::complete(5, 1),
    ] {
        let instance = scenario::single_file(g, 9, 0);
        assert_lockstep_equivalence(&instance, NetPolicy::Random, 17);
        assert_lockstep_equivalence(&instance, NetPolicy::Local, 17);
    }
}

#[test]
fn degraded_schedules_always_replay() {
    // Whatever the link conditions, the recorded departures are legal
    // moves: sent tokens are possessed (store-and-forward) and per-arc
    // capacity is respected at every tick.
    let instance = gnp_instance(12, 8, 5);
    for policy in [NetPolicy::Random, NetPolicy::Local] {
        for (latency, jitter, loss) in [(1, 0, 0.1), (3, 0, 0.0), (2, 3, 0.2), (4, 2, 0.3)] {
            let config = NetConfig {
                policy,
                latency,
                jitter,
                loss,
                control_latency: 1,
                control_loss: loss / 2.0,
                have_refresh: 6,
                ..NetConfig::default()
            };
            let mut rng = StdRng::seed_from_u64(99);
            let report = run_swarm(&instance, &config, &FaultPlan::none(), &mut rng);
            let replay = validate::replay(&instance, &report.schedule).unwrap_or_else(|e| {
                panic!("{policy} latency={latency} jitter={jitter} loss={loss}: {e}")
            });
            assert!(
                report.success && replay.is_successful(),
                "{policy} latency={latency} jitter={jitter} loss={loss}: must recover"
            );
            assert!(report.accounts_for_every_token());
        }
    }
}

#[test]
fn fault_injection_recovers_and_accounts_for_every_token() {
    // 10% loss on both planes plus a mid-run crash/restart: the swarm
    // must still complete, and the trace must account for every data
    // token put on the wire.
    let instance = gnp_instance(10, 10, 7);
    let crashed = instance.graph().node(4);
    let faults = FaultPlan::none().crash_between(crashed, 6, 30);
    let config = NetConfig {
        policy: NetPolicy::Local,
        latency: 2,
        jitter: 1,
        loss: 0.10,
        control_latency: 1,
        control_loss: 0.10,
        have_refresh: 5,
        trace_capacity: 1 << 20,
        ..NetConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(2026);
    let report = run_swarm(&instance, &config, &faults, &mut rng);

    assert!(report.success, "swarm must recover from loss + crash");
    assert!(
        report.completion_ticks.iter().all(Option::is_some),
        "every wanter (including the restarted vertex) completes"
    );
    assert_eq!(report.vertex_counters[crashed.index()].crashes, 1);
    assert!(report.tokens_lost > 0, "10% loss drops something");
    assert!(report.retransmits > 0, "recovery implies retransmission");

    // Conservation: sent = delivered + lost + dropped-at-crashed +
    // still-in-flight, globally and per the (untruncated) event log.
    assert!(report.accounts_for_every_token());
    assert!(!report.trace.truncated(), "trace must be complete here");
    let sum_by = |kind: EventKind| -> u64 {
        report
            .trace
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| u64::from(e.tokens))
            .sum()
    };
    assert_eq!(sum_by(EventKind::DataSend), report.bandwidth());
    assert_eq!(sum_by(EventKind::DataDeliver), report.tokens_delivered);
    assert_eq!(sum_by(EventKind::DataLost), report.tokens_lost);
    assert_eq!(
        sum_by(EventKind::DataDroppedCrashed),
        report.tokens_dropped_crashed
    );
    assert_eq!(
        report.bandwidth(),
        report.tokens_delivered
            + report.tokens_lost
            + report.tokens_dropped_crashed
            + report.tokens_unresolved
    );

    // The crash visibly disturbed the run and is in the log.
    assert!(report.trace.iter().any(|e| e.kind == EventKind::Crash));
    assert!(report.trace.iter().any(|e| e.kind == EventKind::Restart));

    // And the extracted schedule is still a certified legal sequence.
    let replay = validate::replay(&instance, &report.schedule).unwrap();
    assert!(replay.is_successful());
}

#[test]
fn determinism_same_seed_identical_run() {
    let instance = gnp_instance(12, 8, 3);
    let config = NetConfig {
        policy: NetPolicy::Local,
        latency: 2,
        jitter: 2,
        loss: 0.15,
        control_loss: 0.05,
        have_refresh: 4,
        ..NetConfig::default()
    };
    let run = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        run_swarm(&instance, &config, &FaultPlan::none(), &mut rng)
    };
    let a = run(12345);
    let b = run(12345);
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.ticks, b.ticks);
    assert_eq!(a.completion_ticks, b.completion_ticks);
    assert_eq!(
        a.trace.iter().collect::<Vec<_>>(),
        b.trace.iter().collect::<Vec<_>>(),
        "same seed ⇒ identical event order"
    );
    let c = run(54321);
    assert_ne!(a.schedule, c.schedule, "different seed ⇒ different run");
}
