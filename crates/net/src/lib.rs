//! `ocd-net`: an asynchronous message-passing swarm runtime for the
//! overlay network content distribution problem.
//!
//! Where [`ocd_heuristics::simulate`] runs strategies in idealized
//! synchronized rounds, this crate drops the synchrony assumption: every
//! vertex becomes an actor with a mailbox and one FIFO send queue per
//! out-neighbor, links get per-arc latency, jitter (reordering) and
//! probabilistic loss, vertices can crash and restart, and receivers
//! retry requests with timeouts and exponential backoff. The §5.1
//! heuristics survive the move because their decision logic lives in
//! [`ocd_heuristics::policy`] and is shared verbatim between both
//! worlds.
//!
//! # Protocol
//!
//! Actors exchange four typed messages (see [`msg`] for the grammar):
//! `Have` possession-bitmap announcements, `Request` asks on a specific
//! in-arc, `Token` data payloads (the only kind metered by arc
//! capacity), and `Cancel` withdrawals for tokens obtained elsewhere.
//!
//! # Determinism
//!
//! The runtime is a deterministic discrete-event simulation: ticks run
//! fixed phases, calendars and iteration orders are index-sorted, and
//! every probabilistic choice (policy tie-breaks, loss, jitter) comes
//! from the caller's RNG. **Same instance + config + fault plan + seed
//! ⇒ identical event order, trace, counters, and schedule.**
//!
//! In the default *ideal mode* (latency 1, no jitter, no loss,
//! same-tick control) a run consumes the RNG identically to the
//! matching lockstep strategy and extracts the *equal* [`Schedule`] —
//! the differential tests assert equality, and every extracted
//! schedule, ideal or degraded, replays through
//! [`ocd_core::validate`].
//!
//! [`Schedule`]: ocd_core::Schedule
//!
//! # Examples
//!
//! ```
//! use ocd_net::{run_swarm, FaultPlan, NetConfig, NetPolicy};
//! use ocd_core::{scenario, validate};
//! use ocd_graph::generate::classic;
//! use rand::prelude::*;
//!
//! // Distribute 6 tokens from vertex 0 around a lossy ring.
//! let instance = scenario::single_file(classic::cycle(5, 2, true), 6, 0);
//! let config = NetConfig {
//!     policy: NetPolicy::Local,
//!     latency: 2,
//!     loss: 0.1,
//!     ..NetConfig::default()
//! };
//! let mut rng = StdRng::seed_from_u64(42);
//! let report = run_swarm(&instance, &config, &FaultPlan::none(), &mut rng);
//! assert!(report.success, "retries recover every lost token");
//! // The run doubles as a certified schedule of legal moves.
//! let replay = validate::replay(&instance, &report.schedule).unwrap();
//! assert!(replay.is_successful());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod coded;
pub mod config;
pub mod fault;
pub mod msg;
pub mod runtime;
pub mod trace;

pub use coded::{run_coded_swarm, run_coded_swarm_with_spans, CodedLinkCounters, CodedNetReport};
pub use config::{NetConfig, NetPolicy};
pub use fault::{FaultEvent, FaultPlan};
pub use msg::{CtrlMsg, CtrlPayload, DataMsg, MsgKind};
pub use runtime::{run_swarm, run_swarm_with_spans, NetReport};
pub use trace::{
    CompletionHistogram, EventKind, EventTrace, LinkCounters, TraceEvent, VertexCounters,
};
