//! Structured run instrumentation: a ring-buffered event log,
//! per-vertex and per-link counters, and a time-to-completion
//! histogram, all serializable to JSON and CSV.
//!
//! The event log is the runtime's flight recorder: bounded memory
//! (oldest events overwritten), every record tagged with its tick, so a
//! failing fault-injection run can be reconstructed post mortem. The
//! counters are the cheap always-on aggregates the `table_async`
//! experiment reports.

use std::fmt::Write as _;

/// What happened, as recorded in the event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A data message departed on an arc.
    DataSend,
    /// A data message arrived and was applied.
    DataDeliver,
    /// A data message was dropped by link loss.
    DataLost,
    /// A data message arrived at a crashed vertex and was discarded.
    DataDroppedCrashed,
    /// A control message departed.
    CtrlSend,
    /// A control message arrived and was applied.
    CtrlDeliver,
    /// A control message was dropped by link loss.
    CtrlLost,
    /// A control message arrived at a crashed vertex and was discarded.
    CtrlDroppedCrashed,
    /// A receiver's request timer expired; the token will be
    /// re-requested with backoff.
    RequestTimeout,
    /// A vertex crashed.
    Crash,
    /// A vertex restarted.
    Restart,
    /// A vertex received the last token of its want set.
    Complete,
}

impl EventKind {
    /// Stable lower-case name used in serialized output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::DataSend => "data_send",
            EventKind::DataDeliver => "data_deliver",
            EventKind::DataLost => "data_lost",
            EventKind::DataDroppedCrashed => "data_dropped_crashed",
            EventKind::CtrlSend => "ctrl_send",
            EventKind::CtrlDeliver => "ctrl_deliver",
            EventKind::CtrlLost => "ctrl_lost",
            EventKind::CtrlDroppedCrashed => "ctrl_dropped_crashed",
            EventKind::RequestTimeout => "request_timeout",
            EventKind::Crash => "crash",
            EventKind::Restart => "restart",
            EventKind::Complete => "complete",
        }
    }
}

/// One record of the event log. `vertex` is the acting vertex (receiver
/// for deliveries, sender for sends); `peer`/`edge` are `u32::MAX` when
/// not applicable; `tokens` is the payload size (0 for pure control
/// events).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation tick.
    pub tick: u64,
    /// What happened.
    pub kind: EventKind,
    /// Acting vertex index.
    pub vertex: u32,
    /// The other endpoint, or `u32::MAX`.
    pub peer: u32,
    /// The arc involved, or `u32::MAX`.
    pub edge: u32,
    /// Tokens carried.
    pub tokens: u32,
}

/// Sentinel for "no peer / no arc" in a [`TraceEvent`].
pub const NO_FIELD: u32 = u32::MAX;

/// Fixed-capacity ring buffer of [`TraceEvent`]s.
#[derive(Debug, Clone)]
pub struct EventTrace {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest retained event (once the buffer wrapped).
    head: usize,
    /// Total events ever recorded (≥ `buf.len()`).
    recorded: u64,
}

impl EventTrace {
    /// Creates a trace retaining at most `capacity` events (min 1).
    ///
    /// Memory is allocated **lazily**: only the first
    /// `min(capacity, 4096)` slots are reserved up front, and the
    /// buffer grows on demand as events beyond that are pushed — a
    /// huge configured capacity costs nothing until a run actually
    /// records that many events. The retention bound is always the
    /// full `capacity`, independent of the initial reservation.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventTrace {
            buf: Vec::with_capacity(capacity.min(4096)),
            capacity,
            head: 0,
            recorded: 0,
        }
    }

    /// Appends an event, evicting the oldest once full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
        self.recorded += 1;
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf[self.head..].iter().chain(&self.buf[..self.head])
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever recorded, including evicted ones.
    #[must_use]
    pub fn total_recorded(&self) -> u64 {
        self.recorded
    }

    /// Whether older events were evicted.
    #[must_use]
    pub fn truncated(&self) -> bool {
        self.recorded > self.buf.len() as u64
    }

    /// Events evicted by the ring buffer (`recorded - retained`).
    #[must_use]
    pub fn events_dropped(&self) -> u64 {
        self.recorded - self.buf.len() as u64
    }

    /// Serializes the trace as a JSON object: the retained events
    /// (oldest first) plus explicit `recorded` / `retained` /
    /// `events_dropped` counts, so truncation by the ring buffer is
    /// never silent.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"recorded\":{},\"retained\":{},\"events_dropped\":{},\"events\":[",
            self.recorded,
            self.buf.len(),
            self.events_dropped()
        );
        for (i, e) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"tick\":{},\"kind\":\"{}\",\"vertex\":{},\"peer\":{},\"edge\":{},\"tokens\":{}}}",
                e.tick,
                e.kind.name(),
                e.vertex,
                json_opt(e.peer),
                json_opt(e.edge),
                e.tokens
            );
        }
        out.push_str("]}");
        out
    }

    /// Serializes the retained events as CSV with a header row, plus a
    /// trailing `#`-comment line carrying the `recorded` / `retained` /
    /// `events_dropped` counts, so truncation is visible in this
    /// format too.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("tick,kind,vertex,peer,edge,tokens\n");
        for e in self.iter() {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{}",
                e.tick,
                e.kind.name(),
                e.vertex,
                csv_opt(e.peer),
                csv_opt(e.edge),
                e.tokens
            );
        }
        let _ = writeln!(
            out,
            "# recorded={} retained={} events_dropped={}",
            self.recorded,
            self.buf.len(),
            self.events_dropped()
        );
        out
    }
}

fn json_opt(v: u32) -> String {
    if v == NO_FIELD {
        "null".to_string()
    } else {
        v.to_string()
    }
}

fn csv_opt(v: u32) -> String {
    if v == NO_FIELD {
        String::new()
    } else {
        v.to_string()
    }
}

/// Per-vertex message and fault counters.
#[derive(Debug, Clone, Default)]
pub struct VertexCounters {
    /// Messages sent, indexed by [`MsgKind::index`](crate::msg::MsgKind::index).
    pub sent: [u64; 4],
    /// Messages received (and applied), indexed by
    /// [`MsgKind::index`](crate::msg::MsgKind::index).
    pub received: [u64; 4],
    /// Tokens delivered that the vertex already held.
    pub duplicate_tokens: u64,
    /// Request timers that expired (each triggers a backed-off retry).
    pub request_timeouts: u64,
    /// Times the vertex crashed.
    pub crashes: u64,
}

/// Per-arc link counters.
#[derive(Debug, Clone, Default)]
pub struct LinkCounters {
    /// Data tokens put on the wire.
    pub tokens_sent: u64,
    /// Data tokens delivered (including duplicates).
    pub tokens_delivered: u64,
    /// Data tokens dropped by loss.
    pub tokens_lost: u64,
    /// Data tokens dropped because the destination was crashed.
    pub tokens_dropped_crashed: u64,
    /// Data tokens sent on this arc that had already been sent on it
    /// before (retransmission overhead).
    pub retransmits: u64,
    /// High-water mark of the per-neighbor send queue.
    pub max_queue_depth: usize,
}

/// A histogram of per-vertex completion ticks, in fixed-width buckets.
#[derive(Debug, Clone)]
pub struct CompletionHistogram {
    /// Bucket width in ticks.
    pub bucket_width: u64,
    /// `counts[i]` = vertices completing in `[i*w, (i+1)*w)`.
    pub counts: Vec<u64>,
    /// Vertices that never completed.
    pub unfinished: u64,
}

impl CompletionHistogram {
    /// Builds the histogram from per-vertex completion ticks.
    #[must_use]
    pub fn from_completions(completions: &[Option<u64>], bucket_width: u64) -> Self {
        let bucket_width = bucket_width.max(1);
        let mut counts = Vec::new();
        let mut unfinished = 0;
        for c in completions {
            match c {
                Some(tick) => {
                    let b = (tick / bucket_width) as usize;
                    if counts.len() <= b {
                        counts.resize(b + 1, 0);
                    }
                    counts[b] += 1;
                }
                None => unfinished += 1,
            }
        }
        CompletionHistogram {
            bucket_width,
            counts,
            unfinished,
        }
    }

    /// CSV rendering: `bucket_start,bucket_end,count` rows plus an
    /// `unfinished` row when applicable.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("bucket_start,bucket_end,count\n");
        for (i, c) in self.counts.iter().enumerate() {
            let lo = i as u64 * self.bucket_width;
            let _ = writeln!(out, "{},{},{}", lo, lo + self.bucket_width, c);
        }
        if self.unfinished > 0 {
            let _ = writeln!(out, "unfinished,,{}", self.unfinished);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::MsgKind;

    fn ev(tick: u64) -> TraceEvent {
        TraceEvent {
            tick,
            kind: EventKind::DataSend,
            vertex: 0,
            peer: 1,
            edge: 2,
            tokens: 3,
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut trace = EventTrace::new(3);
        for t in 0..5 {
            trace.push(ev(t));
        }
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.total_recorded(), 5);
        assert!(trace.truncated());
        let ticks: Vec<u64> = trace.iter().map(|e| e.tick).collect();
        assert_eq!(ticks, vec![2, 3, 4], "oldest first, earliest evicted");
    }

    #[test]
    fn json_and_csv_shapes() {
        let mut trace = EventTrace::new(8);
        trace.push(ev(1));
        trace.push(TraceEvent {
            tick: 2,
            kind: EventKind::Crash,
            vertex: 4,
            peer: NO_FIELD,
            edge: NO_FIELD,
            tokens: 0,
        });
        let json = trace.to_json();
        assert!(json.starts_with("{\"recorded\":2,\"retained\":2,\"events_dropped\":0,"));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"kind\":\"data_send\""));
        assert!(json.contains("\"peer\":null"));
        let csv = trace.to_csv();
        assert!(csv.starts_with("tick,kind,vertex,peer,edge,tokens\n"));
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.lines().nth(2).unwrap().starts_with("2,crash,4,,,"));
        assert_eq!(
            csv.lines().last().unwrap(),
            "# recorded=2 retained=2 events_dropped=0"
        );
    }

    #[test]
    fn serialized_truncation_counts_are_explicit() {
        let mut trace = EventTrace::new(2);
        for t in 0..5 {
            trace.push(ev(t));
        }
        assert_eq!(trace.events_dropped(), 3);
        let json = trace.to_json();
        assert!(json.starts_with("{\"recorded\":5,\"retained\":2,\"events_dropped\":3,"));
        assert_eq!(
            trace.to_csv().lines().last().unwrap(),
            "# recorded=5 retained=2 events_dropped=3"
        );
    }

    #[test]
    fn wraparound_keeps_exact_window_in_oldest_first_order() {
        // Regression for the lazy-growth ring: push well past capacity
        // and check both the retained window and the iteration order.
        let capacity = 100;
        let pushes = 250u64;
        let mut trace = EventTrace::new(capacity);
        assert!(trace.is_empty());
        for t in 0..pushes {
            trace.push(ev(t));
        }
        assert_eq!(trace.len(), capacity);
        assert_eq!(trace.total_recorded(), pushes);
        assert_eq!(trace.events_dropped(), pushes - capacity as u64);
        assert!(trace.truncated());
        let ticks: Vec<u64> = trace.iter().map(|e| e.tick).collect();
        let expected: Vec<u64> = (pushes - capacity as u64..pushes).collect();
        assert_eq!(ticks, expected, "exact window, oldest first");
    }

    #[test]
    fn histogram_buckets_and_unfinished() {
        let completions = [Some(0), Some(3), Some(4), Some(11), None];
        let h = CompletionHistogram::from_completions(&completions, 4);
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.unfinished, 1);
        let csv = h.to_csv();
        assert!(csv.contains("0,4,2"));
        assert!(csv.contains("unfinished,,1"));
    }

    #[test]
    fn counters_default_to_zero() {
        let v = VertexCounters::default();
        assert_eq!(v.sent[MsgKind::Token.index()], 0);
        let l = LinkCounters::default();
        assert_eq!(l.retransmits, 0);
    }
}
