//! Runtime configuration: which per-neighbor policy drives the actors
//! and how the links and timers behave.

use ocd_core::NodeBudgets;
use std::fmt;
use std::str::FromStr;

/// Which §5.1 heuristic the actors run as their per-neighbor policy.
///
/// Both variants call the exact decision code of the lockstep strategies
/// (via [`ocd_heuristics::policy`]), applied to each actor's *believed*
/// peer state instead of the true possession.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetPolicy {
    /// Random-useful flooding ([`ocd_heuristics::RandomUseful`]):
    /// senders push random tokens the peer is believed to lack.
    Random,
    /// Rarest-random with request subdivision
    /// ([`ocd_heuristics::LocalRarest`]): receivers spread requests over
    /// in-peers, senders serve queues then flood rarest-first.
    Local,
    /// Deterministic per-neighbor-queue scheduling
    /// ([`ocd_heuristics::PerNeighborQueue`]): senders serve their
    /// existing per-out-neighbor queues, then flood deterministically
    /// rarest-first, all metered by the sender's uplink budget when
    /// node budgets are in effect. Optimal for broadcast on
    /// uplink-constrained complete overlays (see
    /// [`ocd_heuristics::optimal`]).
    PerNeighborQueue,
}

impl NetPolicy {
    /// Short name used in reports and CSV columns.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            NetPolicy::Random => "random",
            NetPolicy::Local => "local",
            NetPolicy::PerNeighborQueue => "per-neighbor-queue",
        }
    }
}

impl fmt::Display for NetPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for NetPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "random" | "rnd" => Ok(NetPolicy::Random),
            "local" | "rarest" | "local-rarest" => Ok(NetPolicy::Local),
            "per-neighbor-queue" | "pnq" => Ok(NetPolicy::PerNeighborQueue),
            other => Err(format!(
                "unknown net policy `{other}` (expected: random, local, per-neighbor-queue)"
            )),
        }
    }
}

/// Configuration of the asynchronous runtime.
///
/// The default is the *ideal mode* used by the differential tests: data
/// latency 1, no jitter, no loss, a same-tick control plane — exactly
/// the lockstep engine's synchronized-round model.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// The per-neighbor decision policy.
    pub policy: NetPolicy,
    /// Ticks a data (`Token`) message spends on a link. Must be ≥ 1
    /// (store-and-forward: a token sent at tick `t` is usable at
    /// `t + latency` at the earliest).
    pub latency: u32,
    /// Maximum extra ticks of random per-message delay (uniform in
    /// `0..=jitter`); with per-arc capacities this reorders deliveries.
    /// 0 = no jitter and no RNG draw.
    pub jitter: u32,
    /// Probability a data message is dropped in flight. 0.0 = no loss
    /// and no RNG draw.
    pub loss: f64,
    /// Ticks a control message (`Have`/`Request`/`Cancel`) spends on a
    /// link. 0 = delivered within the same tick (the paper's
    /// synchronized-knowledge assumption).
    pub control_latency: u32,
    /// Probability a control message is dropped. 0.0 = no loss and no
    /// RNG draw.
    pub control_loss: f64,
    /// Ticks a receiver waits for a requested token before re-requesting
    /// (the base of the exponential backoff), and ticks a sender keeps a
    /// token marked in-flight before it becomes floodable again. `None`
    /// derives a safe value from the latencies.
    pub request_timeout: Option<u32>,
    /// Cap on backoff doublings: the `k`-th retry of the same token
    /// waits `timeout * 2^min(k, max_backoff_exp)` ticks.
    pub max_backoff_exp: u32,
    /// Every `have_refresh` ticks each live vertex re-announces its full
    /// possession bitmap to its neighbors, repairing beliefs after lost
    /// `Have` messages or restarts. 0 = never.
    pub have_refresh: u64,
    /// Hard cap on simulated ticks; an incomplete run reports failure.
    pub max_ticks: u64,
    /// Capacity of the ring-buffered event log (oldest events are
    /// overwritten once full).
    pub trace_capacity: usize,
    /// Record causal token provenance (the first-acquisition forest;
    /// see [`ocd_core::provenance`]) onto the report. Data messages
    /// carry their departure tick, so provenance survives loss, crash
    /// drops, and retransmission: only the delivery that is actually
    /// *applied* becomes a parent. Off by default.
    pub record_provenance: bool,
    /// Per-vertex uplink budgets enforced at sender-decision time: a
    /// vertex transmits at most its uplink worth of tokens per tick,
    /// shared across all of its out-arcs (downlinks are not metered by
    /// the runtime). `None` (the default) falls back to the budgets
    /// embedded in the instance, if any; an explicit value overrides
    /// them and must match the instance's vertex count.
    pub node_budgets: Option<NodeBudgets>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            policy: NetPolicy::Random,
            latency: 1,
            jitter: 0,
            loss: 0.0,
            control_latency: 0,
            control_loss: 0.0,
            request_timeout: None,
            max_backoff_exp: 6,
            have_refresh: 10,
            max_ticks: 100_000,
            trace_capacity: 1 << 16,
            record_provenance: false,
            node_budgets: None,
        }
    }
}

impl NetConfig {
    /// Checks the configuration for values the runtime cannot honor.
    ///
    /// # Errors
    ///
    /// A human-readable message when `latency` is 0 (store-and-forward
    /// needs at least one tick on the link) or a loss probability is
    /// outside `[0, 1]` / non-finite.
    pub fn validate(&self) -> Result<(), String> {
        if self.latency == 0 {
            return Err("net config: latency must be >= 1 (store-and-forward)".into());
        }
        for (name, p) in [("loss", self.loss), ("control_loss", self.control_loss)] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!(
                    "net config: {name} must be a probability in [0, 1], got {p}"
                ));
            }
        }
        Ok(())
    }

    /// The effective retry/in-flight timeout: the configured value, or a
    /// derived one covering a full round trip (request there, token
    /// back, worst-case jitter) with slack. The derivation saturates
    /// instead of wrapping, so extreme configured latencies degrade to
    /// `u32::MAX` rather than to a uselessly small timeout.
    #[must_use]
    pub fn effective_timeout(&self) -> u32 {
        self.request_timeout
            .unwrap_or_else(|| {
                self.control_latency
                    .saturating_mul(2)
                    .saturating_add(self.latency)
                    .saturating_add(self.jitter)
                    .saturating_add(2)
            })
            .max(1)
    }

    /// Backoff-scaled timeout for the `attempts`-th retry.
    ///
    /// The doubling count is capped at `max_backoff_exp` *and* at 63 —
    /// a `u64` cannot represent more doublings, and a configured
    /// `max_backoff_exp >= 64` must not turn into a shift overflow
    /// (debug panic / release wraparound to a tiny timeout). The
    /// multiply saturates to `u64::MAX` for the same reason.
    #[must_use]
    pub fn backoff_timeout(&self, attempts: u32) -> u64 {
        let exp = attempts.min(self.max_backoff_exp).min(63);
        u64::from(self.effective_timeout()).saturating_mul(1u64 << exp)
    }

    /// Whether this configuration is the lockstep-equivalent ideal mode
    /// (the differential-test precondition).
    #[must_use]
    pub fn is_ideal(&self) -> bool {
        self.latency == 1
            && self.jitter == 0
            && self.loss == 0.0
            && self.control_latency == 0
            && self.control_loss == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parses_and_prints() {
        assert_eq!("random".parse::<NetPolicy>().unwrap(), NetPolicy::Random);
        assert_eq!("LOCAL".parse::<NetPolicy>().unwrap(), NetPolicy::Local);
        assert_eq!("rarest".parse::<NetPolicy>().unwrap().to_string(), "local");
        assert_eq!(
            "pnq".parse::<NetPolicy>().unwrap(),
            NetPolicy::PerNeighborQueue
        );
        assert_eq!(
            "per-neighbor-queue"
                .parse::<NetPolicy>()
                .unwrap()
                .to_string(),
            "per-neighbor-queue"
        );
        assert!("bogus".parse::<NetPolicy>().is_err());
    }

    #[test]
    fn default_is_ideal_mode() {
        assert!(NetConfig::default().is_ideal());
        let lossy = NetConfig {
            loss: 0.1,
            ..NetConfig::default()
        };
        assert!(!lossy.is_ideal());
    }

    #[test]
    fn timeout_derivation_and_backoff() {
        let config = NetConfig {
            latency: 3,
            jitter: 1,
            control_latency: 1,
            ..NetConfig::default()
        };
        assert_eq!(config.effective_timeout(), 8);
        assert_eq!(config.backoff_timeout(0), 8);
        assert_eq!(config.backoff_timeout(2), 32);
        // Backoff saturates at max_backoff_exp doublings.
        assert_eq!(config.backoff_timeout(99), 8 << 6);
        let fixed = NetConfig {
            request_timeout: Some(5),
            ..NetConfig::default()
        };
        assert_eq!(fixed.effective_timeout(), 5);
    }

    #[test]
    fn backoff_exponent_clamps_instead_of_overflowing() {
        // Regression: `max_backoff_exp >= 64` used to overflow the
        // `u64 <<` (debug panic, release wrap to a tiny timeout).
        let base = u64::from(NetConfig::default().effective_timeout());
        for exp in [63, 64, u32::MAX] {
            let config = NetConfig {
                max_backoff_exp: exp,
                ..NetConfig::default()
            };
            assert_eq!(config.backoff_timeout(0), base, "exp {exp}: no retries yet");
            let huge = config.backoff_timeout(u32::MAX);
            assert_eq!(
                huge,
                base.saturating_mul(1u64 << 63),
                "exp {exp}: doublings cap at 63"
            );
            assert!(huge >= config.backoff_timeout(62), "monotone in attempts");
        }
        // A base timeout of 2+ saturates the multiply at u64::MAX.
        let config = NetConfig {
            request_timeout: Some(2),
            max_backoff_exp: u32::MAX,
            ..NetConfig::default()
        };
        assert_eq!(config.backoff_timeout(63), u64::MAX);
    }

    #[test]
    fn derived_timeout_saturates_on_extreme_latencies() {
        // Regression: the round-trip derivation used plain u32
        // arithmetic and wrapped for large configured latencies.
        let config = NetConfig {
            latency: u32::MAX,
            jitter: u32::MAX,
            control_latency: u32::MAX,
            ..NetConfig::default()
        };
        assert_eq!(config.effective_timeout(), u32::MAX);
        let near = NetConfig {
            control_latency: u32::MAX / 2,
            ..NetConfig::default()
        };
        assert_eq!(near.effective_timeout(), u32::MAX, "2x control saturates");
        // An explicit request_timeout bypasses the derivation entirely.
        let fixed = NetConfig {
            latency: u32::MAX,
            request_timeout: Some(7),
            ..NetConfig::default()
        };
        assert_eq!(fixed.effective_timeout(), 7);
    }

    #[test]
    fn validate_rejects_unusable_configs() {
        assert!(NetConfig::default().validate().is_ok());
        let zero_latency = NetConfig {
            latency: 0,
            ..NetConfig::default()
        };
        assert!(zero_latency.validate().unwrap_err().contains("latency"));
        for bad in [-0.1, 1.5, f64::NAN] {
            let lossy = NetConfig {
                loss: bad,
                ..NetConfig::default()
            };
            assert!(lossy.validate().unwrap_err().contains("loss"), "{bad}");
            let ctrl = NetConfig {
                control_loss: bad,
                ..NetConfig::default()
            };
            assert!(
                ctrl.validate().unwrap_err().contains("control_loss"),
                "{bad}"
            );
        }
    }
}
