//! Runtime configuration: which per-neighbor policy drives the actors
//! and how the links and timers behave.

use std::fmt;
use std::str::FromStr;

/// Which §5.1 heuristic the actors run as their per-neighbor policy.
///
/// Both variants call the exact decision code of the lockstep strategies
/// (via [`ocd_heuristics::policy`]), applied to each actor's *believed*
/// peer state instead of the true possession.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetPolicy {
    /// Random-useful flooding ([`ocd_heuristics::RandomUseful`]):
    /// senders push random tokens the peer is believed to lack.
    Random,
    /// Rarest-random with request subdivision
    /// ([`ocd_heuristics::LocalRarest`]): receivers spread requests over
    /// in-peers, senders serve queues then flood rarest-first.
    Local,
}

impl NetPolicy {
    /// Short name used in reports and CSV columns.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            NetPolicy::Random => "random",
            NetPolicy::Local => "local",
        }
    }
}

impl fmt::Display for NetPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for NetPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "random" | "rnd" => Ok(NetPolicy::Random),
            "local" | "rarest" | "local-rarest" => Ok(NetPolicy::Local),
            other => Err(format!(
                "unknown net policy `{other}` (expected: random, local)"
            )),
        }
    }
}

/// Configuration of the asynchronous runtime.
///
/// The default is the *ideal mode* used by the differential tests: data
/// latency 1, no jitter, no loss, a same-tick control plane — exactly
/// the lockstep engine's synchronized-round model.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// The per-neighbor decision policy.
    pub policy: NetPolicy,
    /// Ticks a data (`Token`) message spends on a link. Must be ≥ 1
    /// (store-and-forward: a token sent at tick `t` is usable at
    /// `t + latency` at the earliest).
    pub latency: u32,
    /// Maximum extra ticks of random per-message delay (uniform in
    /// `0..=jitter`); with per-arc capacities this reorders deliveries.
    /// 0 = no jitter and no RNG draw.
    pub jitter: u32,
    /// Probability a data message is dropped in flight. 0.0 = no loss
    /// and no RNG draw.
    pub loss: f64,
    /// Ticks a control message (`Have`/`Request`/`Cancel`) spends on a
    /// link. 0 = delivered within the same tick (the paper's
    /// synchronized-knowledge assumption).
    pub control_latency: u32,
    /// Probability a control message is dropped. 0.0 = no loss and no
    /// RNG draw.
    pub control_loss: f64,
    /// Ticks a receiver waits for a requested token before re-requesting
    /// (the base of the exponential backoff), and ticks a sender keeps a
    /// token marked in-flight before it becomes floodable again. `None`
    /// derives a safe value from the latencies.
    pub request_timeout: Option<u32>,
    /// Cap on backoff doublings: the `k`-th retry of the same token
    /// waits `timeout * 2^min(k, max_backoff_exp)` ticks.
    pub max_backoff_exp: u32,
    /// Every `have_refresh` ticks each live vertex re-announces its full
    /// possession bitmap to its neighbors, repairing beliefs after lost
    /// `Have` messages or restarts. 0 = never.
    pub have_refresh: u64,
    /// Hard cap on simulated ticks; an incomplete run reports failure.
    pub max_ticks: u64,
    /// Capacity of the ring-buffered event log (oldest events are
    /// overwritten once full).
    pub trace_capacity: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            policy: NetPolicy::Random,
            latency: 1,
            jitter: 0,
            loss: 0.0,
            control_latency: 0,
            control_loss: 0.0,
            request_timeout: None,
            max_backoff_exp: 6,
            have_refresh: 10,
            max_ticks: 100_000,
            trace_capacity: 1 << 16,
        }
    }
}

impl NetConfig {
    /// The effective retry/in-flight timeout: the configured value, or a
    /// derived one covering a full round trip (request there, token
    /// back, worst-case jitter) with slack.
    #[must_use]
    pub fn effective_timeout(&self) -> u32 {
        self.request_timeout
            .unwrap_or(2 * self.control_latency + self.latency + self.jitter + 2)
            .max(1)
    }

    /// Backoff-scaled timeout for the `attempts`-th retry.
    #[must_use]
    pub fn backoff_timeout(&self, attempts: u32) -> u64 {
        u64::from(self.effective_timeout()) << attempts.min(self.max_backoff_exp)
    }

    /// Whether this configuration is the lockstep-equivalent ideal mode
    /// (the differential-test precondition).
    #[must_use]
    pub fn is_ideal(&self) -> bool {
        self.latency == 1
            && self.jitter == 0
            && self.loss == 0.0
            && self.control_latency == 0
            && self.control_loss == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parses_and_prints() {
        assert_eq!("random".parse::<NetPolicy>().unwrap(), NetPolicy::Random);
        assert_eq!("LOCAL".parse::<NetPolicy>().unwrap(), NetPolicy::Local);
        assert_eq!("rarest".parse::<NetPolicy>().unwrap().to_string(), "local");
        assert!("bogus".parse::<NetPolicy>().is_err());
    }

    #[test]
    fn default_is_ideal_mode() {
        assert!(NetConfig::default().is_ideal());
        let lossy = NetConfig {
            loss: 0.1,
            ..NetConfig::default()
        };
        assert!(!lossy.is_ideal());
    }

    #[test]
    fn timeout_derivation_and_backoff() {
        let config = NetConfig {
            latency: 3,
            jitter: 1,
            control_latency: 1,
            ..NetConfig::default()
        };
        assert_eq!(config.effective_timeout(), 8);
        assert_eq!(config.backoff_timeout(0), 8);
        assert_eq!(config.backoff_timeout(2), 32);
        // Backoff saturates at max_backoff_exp doublings.
        assert_eq!(config.backoff_timeout(99), 8 << 6);
        let fixed = NetConfig {
            request_timeout: Some(5),
            ..NetConfig::default()
        };
        assert_eq!(fixed.effective_timeout(), 5);
    }
}
