//! The discrete-event swarm runtime.
//!
//! Each vertex is an actor: it holds its durable token store
//! (possession), volatile *beliefs* about each neighbor's possession
//! (fed by `Have` announcements), an outstanding-request table with
//! timeouts and exponential backoff, and one FIFO send queue per
//! out-neighbor. Links carry typed messages with per-arc latency,
//! optional jitter (reordering) and probabilistic loss; data messages
//! are metered by the arc capacity, control messages model out-of-band
//! coordination traffic and are unmetered.
//!
//! # Tick phases
//!
//! Time advances in ticks; each tick runs fixed phases so that equal
//! seeds give identical event orders (the determinism guarantee):
//!
//! 1. **Faults** — scripted crashes/restarts fire.
//! 2. **Data delivery** — `Token` messages scheduled for this tick are
//!    applied in send order: possession grows, duplicates are counted,
//!    completions detected, `Have` deltas and cross-arc `Cancel`s go
//!    out.
//! 3. **Control delivery** — delayed `Have`/`Request`/`Cancel` messages
//!    are applied (with a zero-latency control plane they were applied
//!    the moment they were sent).
//! 4. **Receiver decisions** (Local policy) — expired request timers
//!    re-arm with backoff, then each vertex subdivides its outstanding
//!    need over its in-arcs and sends `Request`s, via the same
//!    [`policy`](ocd_heuristics::policy) code the lockstep strategy
//!    runs.
//! 5. **Sender decisions** — each arc (ascending id) drains its queue
//!    up to capacity, flood-fills the remainder from believed-missing
//!    tokens (minus in-flight and queued), transmits at most one data
//!    message, and records the departure in the extracted [`Schedule`].
//! 6. **Belief refresh** — periodically each vertex re-announces its
//!    full possession, repairing beliefs after lost messages.
//!
//! With the default ("ideal") configuration — latency 1, no jitter, no
//! loss, same-tick control — the phases collapse to exactly the
//! lockstep engine's synchronized rounds, and the runtime consumes the
//! RNG identically to [`ocd_heuristics::simulate`] running the matching
//! strategy: the differential test checks schedules for equality, not
//! mere similarity.

use crate::config::{NetConfig, NetPolicy};
use crate::fault::{FaultEvent, FaultPlan};
use crate::msg::{CtrlMsg, CtrlPayload, DataMsg, MsgKind};
use crate::trace::{
    CompletionHistogram, EventKind, EventTrace, LinkCounters, TraceEvent, VertexCounters, NO_FIELD,
};
use ocd_core::knowledge::AggregateKnowledge;
use ocd_core::provenance::{ProvenanceHook, ProvenanceTrace};
use ocd_core::span::{NoopSpans, SpanRecorder};
use ocd_core::{Instance, NodeBudgets, Schedule, ScheduleRecorder, Token, TokenSet};
use ocd_graph::{EdgeId, NodeId};
use ocd_heuristics::policy::{
    deterministic_rarest_fill, random_fill, rarest_flood_fill, subdivide_requests,
};
use rand::{Rng, RngCore};
use std::collections::{BTreeMap, VecDeque};

/// Result of an asynchronous run.
#[derive(Debug, Clone)]
pub struct NetReport {
    /// Whether every want was satisfied within the tick budget.
    pub success: bool,
    /// Ticks simulated (the completion tick on success).
    pub ticks: u64,
    /// The extracted schedule: every data departure, recorded at its
    /// departure tick. Valid by construction — certify it with
    /// [`ocd_core::validate::replay`].
    pub schedule: Schedule,
    /// For each vertex, the tick its want set completed (0 = satisfied
    /// from the start); `None` if never.
    pub completion_ticks: Vec<Option<u64>>,
    /// Tokens delivered to vertices that already held them.
    pub duplicate_deliveries: u64,
    /// Data tokens delivered in total (including duplicates).
    pub tokens_delivered: u64,
    /// Data tokens dropped by link loss.
    pub tokens_lost: u64,
    /// Data tokens dropped at crashed destinations.
    pub tokens_dropped_crashed: u64,
    /// Data tokens still in flight when the run ended.
    pub tokens_unresolved: u64,
    /// Data tokens re-sent on an arc that had already carried them.
    pub retransmits: u64,
    /// Messages sent over the whole run, indexed by [`MsgKind::index`].
    pub messages_sent: [u64; 4],
    /// Per-vertex counters.
    pub vertex_counters: Vec<VertexCounters>,
    /// Per-arc counters.
    pub link_counters: Vec<LinkCounters>,
    /// The ring-buffered event log.
    pub trace: EventTrace,
    /// Causal token-provenance trace; `None` unless
    /// [`NetConfig::record_provenance`] was set. Acquisition steps are
    /// the *departure* ticks of the delivering messages, so in ideal
    /// mode the trace equals the one
    /// [`ProvenanceTrace::from_schedule`] derives from the extracted
    /// schedule; under jitter the applied-delivery order may differ
    /// from the departure order, and the runtime-recorded trace is the
    /// causal truth.
    pub provenance: Option<ProvenanceTrace>,
}

impl NetReport {
    /// Makespan of the extracted schedule (= last departure tick + 1).
    #[must_use]
    pub fn makespan(&self) -> usize {
        self.schedule.makespan()
    }

    /// Total data tokens put on the wire (= `schedule.bandwidth()`).
    #[must_use]
    pub fn bandwidth(&self) -> u64 {
        self.schedule.bandwidth()
    }

    /// The conservation check the fault-injection tests rely on: every
    /// token put on the wire is delivered, lost, dropped at a crashed
    /// vertex, or still in flight — nothing vanishes unaccounted.
    #[must_use]
    pub fn accounts_for_every_token(&self) -> bool {
        self.bandwidth()
            == self.tokens_delivered
                + self.tokens_lost
                + self.tokens_dropped_crashed
                + self.tokens_unresolved
    }

    /// Completion-tick histogram with the given bucket width.
    #[must_use]
    pub fn completion_histogram(&self, bucket_width: u64) -> CompletionHistogram {
        CompletionHistogram::from_completions(&self.completion_ticks, bucket_width)
    }

    /// Feeds the report's vertex/link counters and token accounting
    /// into the suite-wide metrics registry and returns the snapshot —
    /// the `net.*` counterpart of the engine's `engine.*` metrics, in
    /// the same [`MetricsSnapshot`](ocd_core::MetricsSnapshot) schema
    /// the bench rollups and `RunRecord` artifacts consume.
    ///
    /// Everything here derives from the deterministic run state, so
    /// equal-seed runs snapshot byte-identically.
    #[must_use]
    pub fn metrics_snapshot(&self) -> ocd_core::MetricsSnapshot {
        use ocd_core::{MetricsRegistry, Recorder};
        let mut reg = MetricsRegistry::new();
        for (name, value) in [
            ("net.ticks", self.ticks),
            ("net.tokens_delivered", self.tokens_delivered),
            ("net.tokens_lost", self.tokens_lost),
            ("net.tokens_dropped_crashed", self.tokens_dropped_crashed),
            ("net.tokens_unresolved", self.tokens_unresolved),
            ("net.duplicate_deliveries", self.duplicate_deliveries),
            ("net.retransmits", self.retransmits),
        ] {
            let c = reg.counter(name);
            reg.add(c, value);
        }
        for kind in MsgKind::ALL {
            let c = reg.counter(&format!("net.msgs_sent.{}", kind.name()));
            reg.add(c, self.messages_sent[kind.index()]);
        }
        let timeouts = reg.counter("net.request_timeouts");
        let crashes = reg.counter("net.crashes");
        let vertex_timeouts = reg.series("net.vertex_request_timeouts", self.vertex_counters.len());
        for (v, vc) in self.vertex_counters.iter().enumerate() {
            reg.add(timeouts, vc.request_timeouts);
            reg.add(crashes, vc.crashes);
            reg.series_add(vertex_timeouts, v, vc.request_timeouts);
        }
        let arcs = self.link_counters.len();
        let sent = reg.series("net.arc_tokens_sent", arcs);
        let delivered = reg.series("net.arc_tokens_delivered", arcs);
        let lost = reg.series("net.arc_tokens_lost", arcs);
        let retrans = reg.series("net.arc_retransmits", arcs);
        let depth = reg.series("net.arc_max_queue_depth", arcs);
        for (e, lc) in self.link_counters.iter().enumerate() {
            reg.series_add(sent, e, lc.tokens_sent);
            reg.series_add(delivered, e, lc.tokens_delivered);
            reg.series_add(lost, e, lc.tokens_lost);
            reg.series_add(retrans, e, lc.retransmits);
            reg.series_add(depth, e, lc.max_queue_depth as u64);
        }
        let completion = reg.histogram("net.completion_ticks");
        let mut unfinished = 0i64;
        for c in &self.completion_ticks {
            match c {
                Some(tick) => reg.observe(completion, *tick),
                None => unfinished += 1,
            }
        }
        let g = reg.gauge("net.unfinished_vertices");
        reg.set(g, unfinished);
        reg.snapshot()
    }
}

/// An entry in a receiver's outstanding-request table.
#[derive(Debug, Clone, Copy)]
struct Outstanding {
    /// The in-arc the request went out on.
    edge: EdgeId,
    /// Tick at which the request expires and is retried with backoff.
    expiry: u64,
}

struct Runtime<'a> {
    instance: &'a Instance,
    config: &'a NetConfig,
    /// Effective uplink budgets: the config override, else the budgets
    /// embedded in the instance, else unconstrained.
    budgets: Option<&'a NodeBudgets>,
    timeout: u32,
    n: usize,
    m: usize,
    // --- actor state ---
    alive: Vec<bool>,
    possession: Vec<TokenSet>,
    /// Sorted undirected neighbor list per vertex.
    neighbors: Vec<Vec<NodeId>>,
    /// `belief[v][i]` = what `v` believes `neighbors[v][i]` possesses.
    belief: Vec<Vec<TokenSet>>,
    outstanding: Vec<Vec<Option<Outstanding>>>,
    outstanding_set: Vec<TokenSet>,
    attempts: Vec<Vec<u32>>,
    // --- per-arc link state ---
    queue: Vec<VecDeque<Token>>,
    queued_set: Vec<TokenSet>,
    inflight_expiry: Vec<Vec<Option<u64>>>,
    inflight_set: Vec<TokenSet>,
    sent_ever: Vec<TokenSet>,
    // --- event calendar ---
    data_cal: BTreeMap<u64, Vec<DataMsg>>,
    ctrl_cal: BTreeMap<u64, Vec<CtrlMsg>>,
    // --- progress tracking ---
    aggregates: AggregateKnowledge,
    missing: Vec<usize>,
    remaining: u64,
    completion_ticks: Vec<Option<u64>>,
    // --- instrumentation ---
    recorder: ScheduleRecorder,
    trace: EventTrace,
    vcount: Vec<VertexCounters>,
    lcount: Vec<LinkCounters>,
    duplicate_deliveries: u64,
    tokens_delivered: u64,
    tokens_lost: u64,
    tokens_dropped_crashed: u64,
    provenance: Option<ProvenanceTrace>,
}

/// Runs the asynchronous swarm on `instance` under `config` and the
/// scripted `faults`, drawing all randomness (policy tie-breaks, loss,
/// jitter) from `rng`. Same instance + config + faults + seed ⇒
/// identical event order, trace, and schedule.
pub fn run_swarm(
    instance: &Instance,
    config: &NetConfig,
    faults: &FaultPlan,
    rng: &mut dyn RngCore,
) -> NetReport {
    run_swarm_with_spans(instance, config, faults, rng, &mut NoopSpans)
}

/// [`run_swarm`] with a [`SpanRecorder`] attached: every simulated tick
/// opens a `net.tick` span with one child per phase (`net.faults`,
/// `net.deliver_data`, `net.deliver_ctrl`, `net.decide`,
/// `net.refresh_haves`), carrying `sent` / `remaining` counters. The
/// span stream is a pure function of the run state, so equal seeds give
/// byte-identical logical exports.
pub fn run_swarm_with_spans<S: SpanRecorder>(
    instance: &Instance,
    config: &NetConfig,
    faults: &FaultPlan,
    rng: &mut dyn RngCore,
    spans: &mut S,
) -> NetReport {
    config.validate().expect("invalid net config");
    let g = instance.graph();
    let n = g.node_count();
    let budgets = config
        .node_budgets
        .as_ref()
        .or_else(|| instance.node_budgets());
    if let Some(b) = budgets {
        assert_eq!(b.len(), n, "node budgets must cover every vertex");
    }
    let m = instance.num_tokens();

    let possession: Vec<TokenSet> = instance.have_all().to_vec();
    let neighbors: Vec<Vec<NodeId>> = g
        .nodes()
        .map(|v| {
            let mut peers: Vec<NodeId> = g.out_neighbors(v).chain(g.in_neighbors(v)).collect();
            peers.sort_unstable();
            peers.dedup();
            peers
        })
        .collect();
    let belief: Vec<Vec<TokenSet>> = neighbors
        .iter()
        .map(|peers| vec![TokenSet::new(m); peers.len()])
        .collect();
    let missing: Vec<usize> = g
        .nodes()
        .map(|v| instance.want(v).difference_len(&possession[v.index()]))
        .collect();
    let remaining: u64 = missing.iter().map(|&c| c as u64).sum();
    let completion_ticks: Vec<Option<u64>> =
        missing.iter().map(|&c| (c == 0).then_some(0)).collect();
    let aggregates = AggregateKnowledge::compute(m, &possession, instance.want_all());

    let mut rt = Runtime {
        instance,
        config,
        budgets,
        timeout: config.effective_timeout(),
        n,
        m,
        alive: vec![true; n],
        possession,
        neighbors,
        belief,
        outstanding: vec![vec![None; m]; n],
        outstanding_set: vec![TokenSet::new(m); n],
        attempts: vec![vec![0; m]; n],
        queue: vec![VecDeque::new(); g.edge_count()],
        queued_set: vec![TokenSet::new(m); g.edge_count()],
        inflight_expiry: vec![vec![None; m]; g.edge_count()],
        inflight_set: vec![TokenSet::new(m); g.edge_count()],
        sent_ever: vec![TokenSet::new(m); g.edge_count()],
        data_cal: BTreeMap::new(),
        ctrl_cal: BTreeMap::new(),
        aggregates,
        missing,
        remaining,
        completion_ticks,
        recorder: ScheduleRecorder::new(),
        trace: EventTrace::new(config.trace_capacity),
        vcount: vec![VertexCounters::default(); n],
        lcount: vec![LinkCounters::default(); g.edge_count()],
        duplicate_deliveries: 0,
        tokens_delivered: 0,
        tokens_lost: 0,
        tokens_dropped_crashed: 0,
        provenance: config.record_provenance.then(|| ProvenanceTrace::new(n, m)),
    };
    rt.run(faults, rng, spans)
}

impl Runtime<'_> {
    fn run<S: SpanRecorder>(
        &mut self,
        faults: &FaultPlan,
        rng: &mut dyn RngCore,
        spans: &mut S,
    ) -> NetReport {
        let mut success = self.remaining == 0;
        let mut now: u64 = 0;
        if !success {
            // Bootstrap: every vertex announces its initial possession.
            for v in 0..self.n {
                self.announce_have(NodeId::new(v), now, rng);
            }
        }
        while !success && now < self.config.max_ticks {
            let tick_span = spans.open("net.tick");
            let phase = spans.open("net.faults");
            self.apply_faults(faults, now, rng);
            spans.close(phase);
            let phase = spans.open("net.deliver_data");
            self.deliver_data(now, rng);
            spans.close(phase);
            let phase = spans.open("net.deliver_ctrl");
            self.deliver_ctrl(now, rng);
            spans.close(phase);
            if self.remaining == 0 {
                success = true;
                spans.attach(tick_span, "sent", 0);
                spans.attach(tick_span, "remaining", 0);
                spans.close(tick_span);
                break;
            }
            let phase = spans.open("net.decide");
            let sent = self.decide(now, rng);
            spans.close(phase);
            let phase = spans.open("net.refresh_haves");
            self.refresh_haves(now, rng);
            spans.close(phase);
            spans.attach(tick_span, "sent", sent);
            spans.attach(tick_span, "remaining", self.remaining);
            spans.close(tick_span);
            if sent == 0 && self.quiescent(faults, now) {
                break; // nothing in flight, queued, pending, or scripted
            }
            now += 1;
        }

        let tokens_unresolved: u64 = self
            .data_cal
            .values()
            .flatten()
            .map(|msg| msg.tokens.len() as u64)
            .sum();
        let mut messages_sent = [0u64; 4];
        for vc in &self.vcount {
            for (total, sent) in messages_sent.iter_mut().zip(vc.sent) {
                *total += sent;
            }
        }
        NetReport {
            success,
            ticks: now,
            schedule: std::mem::take(&mut self.recorder).finish(),
            completion_ticks: std::mem::take(&mut self.completion_ticks),
            duplicate_deliveries: self.duplicate_deliveries,
            tokens_delivered: self.tokens_delivered,
            tokens_lost: self.tokens_lost,
            tokens_dropped_crashed: self.tokens_dropped_crashed,
            tokens_unresolved,
            retransmits: self.lcount.iter().map(|l| l.retransmits).sum(),
            messages_sent,
            vertex_counters: std::mem::take(&mut self.vcount),
            link_counters: std::mem::take(&mut self.lcount),
            trace: std::mem::replace(&mut self.trace, EventTrace::new(1)),
            provenance: self.provenance.take(),
        }
    }

    /// True when no future event can ever fire: the run is stuck.
    fn quiescent(&self, faults: &FaultPlan, now: u64) -> bool {
        self.data_cal.is_empty()
            && self.ctrl_cal.is_empty()
            && !faults.pending_after(now + 1)
            && self.queued_set.iter().all(TokenSet::is_empty)
            && self.inflight_set.iter().all(TokenSet::is_empty)
            && self.outstanding_set.iter().all(TokenSet::is_empty)
    }

    fn event(&mut self, e: TraceEvent) {
        self.trace.push(e);
    }

    // ---------- phase 1: faults ----------

    fn apply_faults(&mut self, faults: &FaultPlan, now: u64, rng: &mut dyn RngCore) {
        let fired: Vec<FaultEvent> = faults.at(now).collect();
        for f in fired {
            match f {
                FaultEvent::Crash(v) => self.crash(v, now),
                FaultEvent::Restart(v) => self.restart(v, now, rng),
            }
        }
    }

    fn crash(&mut self, v: NodeId, now: u64) {
        if !self.alive[v.index()] {
            return;
        }
        self.alive[v.index()] = false;
        self.vcount[v.index()].crashes += 1;
        // Volatile state is lost; the durable token store survives.
        for b in &mut self.belief[v.index()] {
            b.clear();
        }
        self.outstanding[v.index()].fill(None);
        self.outstanding_set[v.index()].clear();
        self.attempts[v.index()].fill(0);
        for e in self.instance.graph().out_edges(v) {
            self.queue[e.index()].clear();
            self.queued_set[e.index()].clear();
            self.inflight_expiry[e.index()].fill(None);
            self.inflight_set[e.index()].clear();
        }
        self.event(TraceEvent {
            tick: now,
            kind: EventKind::Crash,
            vertex: v.index() as u32,
            peer: NO_FIELD,
            edge: NO_FIELD,
            tokens: 0,
        });
    }

    fn restart(&mut self, v: NodeId, now: u64, rng: &mut dyn RngCore) {
        if self.alive[v.index()] {
            return;
        }
        self.alive[v.index()] = true;
        self.event(TraceEvent {
            tick: now,
            kind: EventKind::Restart,
            vertex: v.index() as u32,
            peer: NO_FIELD,
            edge: NO_FIELD,
            tokens: 0,
        });
        // Rejoin: tell the neighborhood what survived on disk.
        self.announce_have(v, now, rng);
    }

    // ---------- phase 2: data delivery ----------

    fn deliver_data(&mut self, now: u64, rng: &mut dyn RngCore) {
        let Some(batch) = self.data_cal.remove(&now) else {
            return;
        };
        let g = self.instance.graph();
        for msg in batch {
            let arc = g.edge(msg.edge);
            let dst = arc.dst;
            if !self.alive[dst.index()] {
                self.tokens_dropped_crashed += msg.tokens.len() as u64;
                self.lcount[msg.edge.index()].tokens_dropped_crashed += msg.tokens.len() as u64;
                self.event(TraceEvent {
                    tick: now,
                    kind: EventKind::DataDroppedCrashed,
                    vertex: dst.index() as u32,
                    peer: arc.src.index() as u32,
                    edge: msg.edge.index() as u32,
                    tokens: msg.tokens.len() as u32,
                });
                continue;
            }
            let new = msg.tokens.difference(&self.possession[dst.index()]);
            let dup = (msg.tokens.len() - new.len()) as u64;
            self.duplicate_deliveries += dup;
            self.vcount[dst.index()].duplicate_tokens += dup;
            self.vcount[dst.index()].received[MsgKind::Token.index()] += 1;
            self.tokens_delivered += msg.tokens.len() as u64;
            self.lcount[msg.edge.index()].tokens_delivered += msg.tokens.len() as u64;
            self.event(TraceEvent {
                tick: now,
                kind: EventKind::DataDeliver,
                vertex: dst.index() as u32,
                peer: arc.src.index() as u32,
                edge: msg.edge.index() as u32,
                tokens: msg.tokens.len() as u32,
            });

            // Clear satisfied requests; cancel duplicates ordered
            // elsewhere so the other sender can reuse the slot.
            let mut cancels: Vec<(EdgeId, Token)> = Vec::new();
            for t in msg.tokens.iter() {
                if let Some(req) = self.outstanding[dst.index()][t.index()].take() {
                    self.outstanding_set[dst.index()].remove(t);
                    if req.edge != msg.edge {
                        cancels.push((req.edge, t));
                    }
                }
                self.attempts[dst.index()][t.index()] = 0;
            }

            if !new.is_empty() {
                self.possession[dst.index()].union_with(&new);
                // The message's departure tick (`sent_at`) is the
                // provenance step, so the parent edge survives loss,
                // crash drops, and retransmission: only the applied
                // delivery gets here.
                if let Some(prov) = &mut self.provenance {
                    prov.record_delivery(msg.sent_at, msg.edge, arc.src, dst, &new);
                }
                let satisfied = self
                    .aggregates
                    .apply_delivery(&new, self.instance.want(dst));
                self.remaining -= satisfied;
                self.missing[dst.index()] -= satisfied as usize;
                if self.missing[dst.index()] == 0 && self.completion_ticks[dst.index()].is_none() {
                    self.completion_ticks[dst.index()] = Some(now);
                    self.event(TraceEvent {
                        tick: now,
                        kind: EventKind::Complete,
                        vertex: dst.index() as u32,
                        peer: NO_FIELD,
                        edge: NO_FIELD,
                        tokens: 0,
                    });
                }
                // Announce the enlarged possession to the neighborhood.
                self.announce_have(dst, now, rng);
            }

            for (edge, t) in cancels {
                let peer = g.edge(edge).src;
                let set = TokenSet::from_tokens(self.m, [t]);
                self.send_ctrl(dst, peer, CtrlPayload::Cancel(set), now, rng);
            }
        }
    }

    // ---------- phase 3: control delivery ----------

    fn deliver_ctrl(&mut self, now: u64, rng: &mut dyn RngCore) {
        let Some(batch) = self.ctrl_cal.remove(&now) else {
            return;
        };
        for msg in batch {
            self.apply_ctrl(msg, now, rng);
        }
    }

    fn apply_ctrl(&mut self, msg: CtrlMsg, now: u64, _rng: &mut dyn RngCore) {
        let to = msg.to;
        if !self.alive[to.index()] {
            self.event(TraceEvent {
                tick: now,
                kind: EventKind::CtrlDroppedCrashed,
                vertex: to.index() as u32,
                peer: msg.from.index() as u32,
                edge: NO_FIELD,
                tokens: 0,
            });
            return;
        }
        self.vcount[to.index()].received[msg.payload.kind().index()] += 1;
        self.event(TraceEvent {
            tick: now,
            kind: EventKind::CtrlDeliver,
            vertex: to.index() as u32,
            peer: msg.from.index() as u32,
            edge: NO_FIELD,
            tokens: match &msg.payload {
                CtrlPayload::Have(s) | CtrlPayload::Request(s) | CtrlPayload::Cancel(s) => {
                    s.len() as u32
                }
            },
        });
        let g = self.instance.graph();
        match msg.payload {
            CtrlPayload::Have(snapshot) => {
                // Beliefs merge by union: possession only grows, so a
                // reordered stale snapshot can never regress a belief.
                if let Some(slot) = self.neighbor_slot(to, msg.from) {
                    self.belief[to.index()][slot].union_with(&snapshot);
                }
                // The snapshot also acknowledges data on the arc to → from.
                if let Some(e) = g.find_edge(to, msg.from) {
                    let acked = self.inflight_set[e.index()].intersection(&snapshot);
                    for t in acked.iter() {
                        self.inflight_expiry[e.index()][t.index()] = None;
                    }
                    self.inflight_set[e.index()].subtract(&acked);
                }
            }
            CtrlPayload::Request(wanted) => {
                // Requests address the data arc to → from.
                let Some(e) = g.find_edge(to, msg.from) else {
                    return;
                };
                for t in wanted.iter() {
                    if !self.possession[to.index()].contains(t) {
                        continue; // stale belief: the requester will retry
                    }
                    if self.queued_set[e.index()].contains(t) {
                        continue; // already queued
                    }
                    if self.inflight_expiry[e.index()][t.index()].is_some_and(|exp| exp > now) {
                        continue; // already on the wire
                    }
                    self.queue[e.index()].push_back(t);
                    self.queued_set[e.index()].insert(t);
                    let depth = self.queue[e.index()].len();
                    let lc = &mut self.lcount[e.index()];
                    lc.max_queue_depth = lc.max_queue_depth.max(depth);
                }
            }
            CtrlPayload::Cancel(stale) => {
                if let Some(e) = g.find_edge(to, msg.from) {
                    // Lazy deletion: stale deque entries are skipped at
                    // drain time because they left the membership set.
                    self.queued_set[e.index()].subtract(&stale);
                }
            }
        }
    }

    // ---------- phase 4+5: decisions ----------

    /// Receiver then sender decisions; returns data tokens transmitted.
    fn decide(&mut self, now: u64, rng: &mut dyn RngCore) -> u64 {
        if self.config.policy == NetPolicy::Local {
            self.receiver_decisions(now, rng);
        }
        self.sender_decisions(now, rng)
    }

    fn receiver_decisions(&mut self, now: u64, rng: &mut dyn RngCore) {
        let g = self.instance.graph();
        for vi in 0..self.n {
            let v = NodeId::new(vi);
            if !self.alive[vi] {
                continue;
            }
            // Expire overdue requests: the token becomes requestable
            // again right now, with a longer (backed-off) patience.
            let overdue: Vec<Token> = self.outstanding_set[vi]
                .iter()
                .filter(|t| self.outstanding[vi][t.index()].is_some_and(|o| o.expiry <= now))
                .collect();
            for t in overdue {
                self.outstanding[vi][t.index()] = None;
                self.outstanding_set[vi].remove(t);
                self.vcount[vi].request_timeouts += 1;
                self.event(TraceEvent {
                    tick: now,
                    kind: EventKind::RequestTimeout,
                    vertex: vi as u32,
                    peer: NO_FIELD,
                    edge: NO_FIELD,
                    tokens: 1,
                });
            }

            let mut need = self.instance.want(v).difference(&self.possession[vi]);
            need.subtract(&self.outstanding_set[vi]);
            if need.is_empty() {
                continue;
            }
            let in_edges: Vec<EdgeId> = g.in_edges(v).collect();
            if in_edges.is_empty() {
                continue;
            }
            let assigned = {
                let belief = &self.belief;
                let neighbors = &self.neighbors;
                let peer_has = |e: EdgeId, t: Token| {
                    let src = g.edge(e).src;
                    match neighbors[vi].binary_search(&src) {
                        Ok(slot) => belief[vi][slot].contains(t),
                        Err(_) => false,
                    }
                };
                subdivide_requests(
                    &need,
                    &in_edges,
                    &peer_has,
                    &|e| g.capacity(e),
                    &self.aggregates,
                    rng,
                )
            };
            for (&e, req) in in_edges.iter().zip(assigned) {
                if req.is_empty() {
                    continue;
                }
                for t in req.iter() {
                    let patience = self.config.backoff_timeout(self.attempts[vi][t.index()]);
                    self.attempts[vi][t.index()] = self.attempts[vi][t.index()].saturating_add(1);
                    self.outstanding[vi][t.index()] = Some(Outstanding {
                        edge: e,
                        expiry: now + patience,
                    });
                    self.outstanding_set[vi].insert(t);
                }
                let peer = g.edge(e).src;
                self.send_ctrl(v, peer, CtrlPayload::Request(req), now, rng);
            }
        }
    }

    fn sender_decisions(&mut self, now: u64, rng: &mut dyn RngCore) -> u64 {
        let g = self.instance.graph();
        let mut transmitted = 0u64;
        // Per-tick uplink accounting: every arc of the same sender draws
        // from one shared budget, so arcs visited later in id order see
        // whatever their siblings left over.
        let mut uplink_left: Vec<u64> = match self.budgets {
            Some(b) => (0..self.n).map(|v| u64::from(b.uplink(v))).collect(),
            None => Vec::new(),
        };
        for e in g.edge_ids() {
            let arc = g.edge(e);
            let (src, dst) = (arc.src, arc.dst);
            if !self.alive[src.index()] {
                continue;
            }
            let mut cap = arc.capacity as usize;
            if self.budgets.is_some() {
                cap = cap.min(usize::try_from(uplink_left[src.index()]).unwrap_or(usize::MAX));
            }

            // Expire in-flight markers: unacknowledged tokens become
            // floodable again (the data or its Have ack was lost).
            let expired: Vec<Token> = self.inflight_set[e.index()]
                .iter()
                .filter(|t| {
                    self.inflight_expiry[e.index()][t.index()].is_some_and(|exp| exp <= now)
                })
                .collect();
            for t in expired {
                self.inflight_expiry[e.index()][t.index()] = None;
                self.inflight_set[e.index()].remove(t);
            }

            // Serve the per-neighbor queue first (FIFO), then flood.
            let mut send = TokenSet::new(self.m);
            let mut budget = cap;
            while budget > 0 {
                let Some(t) = self.queue[e.index()].pop_front() else {
                    break;
                };
                if !self.queued_set[e.index()].contains(t) {
                    continue; // canceled while queued
                }
                self.queued_set[e.index()].remove(t);
                debug_assert!(self.possession[src.index()].contains(t));
                send.insert(t);
                budget -= 1;
            }
            if budget > 0 {
                let believed = match self.neighbor_slot(src, dst) {
                    Some(slot) => &self.belief[src.index()][slot],
                    None => unreachable!("arc endpoints are neighbors"),
                };
                let mut candidates = self.possession[src.index()].difference(believed);
                candidates.subtract(&send);
                candidates.subtract(&self.inflight_set[e.index()]);
                candidates.subtract(&self.queued_set[e.index()]);
                match self.config.policy {
                    NetPolicy::Random => {
                        if !candidates.is_empty() {
                            send.union_with(&random_fill(candidates, budget, rng));
                        }
                    }
                    NetPolicy::Local => {
                        rarest_flood_fill(&mut send, &candidates, budget, &self.aggregates, rng);
                    }
                    NetPolicy::PerNeighborQueue => {
                        deterministic_rarest_fill(&mut send, &candidates, budget, &self.aggregates);
                    }
                }
            }
            if send.is_empty() {
                continue;
            }

            // One data message per arc per tick, metered by capacity
            // (and, when budgets apply, by the sender's remaining
            // uplink — consumed whether or not the message survives
            // the link).
            debug_assert!(send.len() <= cap);
            if self.budgets.is_some() {
                uplink_left[src.index()] -= send.len() as u64;
            }
            let retrans = send.intersection(&self.sent_ever[e.index()]).len() as u64;
            self.lcount[e.index()].retransmits += retrans;
            self.sent_ever[e.index()].union_with(&send);
            for t in send.iter() {
                self.inflight_expiry[e.index()][t.index()] = Some(now + u64::from(self.timeout));
            }
            self.inflight_set[e.index()].union_with(&send);
            self.recorder.record(now as usize, e, &send);
            transmitted += send.len() as u64;
            self.lcount[e.index()].tokens_sent += send.len() as u64;
            self.vcount[src.index()].sent[MsgKind::Token.index()] += 1;
            self.event(TraceEvent {
                tick: now,
                kind: EventKind::DataSend,
                vertex: src.index() as u32,
                peer: dst.index() as u32,
                edge: e.index() as u32,
                tokens: send.len() as u32,
            });

            if self.config.loss > 0.0 && rng.random_bool(self.config.loss) {
                self.tokens_lost += send.len() as u64;
                self.lcount[e.index()].tokens_lost += send.len() as u64;
                self.event(TraceEvent {
                    tick: now,
                    kind: EventKind::DataLost,
                    vertex: src.index() as u32,
                    peer: dst.index() as u32,
                    edge: e.index() as u32,
                    tokens: send.len() as u32,
                });
                continue;
            }
            let mut arrival = now + u64::from(self.config.latency);
            if self.config.jitter > 0 {
                arrival += u64::from(rng.random_range(0..=self.config.jitter));
            }
            self.data_cal.entry(arrival).or_default().push(DataMsg {
                edge: e,
                tokens: send,
                sent_at: now,
            });
        }
        transmitted
    }

    // ---------- phase 6: belief refresh ----------

    fn refresh_haves(&mut self, now: u64, rng: &mut dyn RngCore) {
        let period = self.config.have_refresh;
        if period == 0 || !(now + 1).is_multiple_of(period) {
            return;
        }
        for v in 0..self.n {
            if self.alive[v] {
                self.announce_have(NodeId::new(v), now, rng);
            }
        }
    }

    // ---------- messaging ----------

    fn neighbor_slot(&self, v: NodeId, peer: NodeId) -> Option<usize> {
        self.neighbors[v.index()].binary_search(&peer).ok()
    }

    /// Sends `v`'s full possession snapshot to every neighbor.
    fn announce_have(&mut self, v: NodeId, now: u64, rng: &mut dyn RngCore) {
        let peers = self.neighbors[v.index()].clone();
        let snapshot = self.possession[v.index()].clone();
        for peer in peers {
            self.send_ctrl(v, peer, CtrlPayload::Have(snapshot.clone()), now, rng);
        }
    }

    fn send_ctrl(
        &mut self,
        from: NodeId,
        to: NodeId,
        payload: CtrlPayload,
        now: u64,
        rng: &mut dyn RngCore,
    ) {
        self.vcount[from.index()].sent[payload.kind().index()] += 1;
        self.event(TraceEvent {
            tick: now,
            kind: EventKind::CtrlSend,
            vertex: from.index() as u32,
            peer: to.index() as u32,
            edge: NO_FIELD,
            tokens: match &payload {
                CtrlPayload::Have(s) | CtrlPayload::Request(s) | CtrlPayload::Cancel(s) => {
                    s.len() as u32
                }
            },
        });
        if self.config.control_loss > 0.0 && rng.random_bool(self.config.control_loss) {
            self.event(TraceEvent {
                tick: now,
                kind: EventKind::CtrlLost,
                vertex: from.index() as u32,
                peer: to.index() as u32,
                edge: NO_FIELD,
                tokens: 0,
            });
            return;
        }
        let msg = CtrlMsg { from, to, payload };
        if self.config.control_latency == 0 {
            // Same-tick control plane: apply immediately, preserving the
            // lockstep engine's synchronized-knowledge semantics.
            self.apply_ctrl(msg, now, rng);
        } else {
            self.ctrl_cal
                .entry(now + u64::from(self.config.control_latency))
                .or_default()
                .push(msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocd_core::scenario::single_file;
    use ocd_core::validate;
    use ocd_graph::generate::classic;
    use rand::prelude::*;

    fn run(config: &NetConfig, seed: u64) -> NetReport {
        let instance = single_file(classic::cycle(6, 2, true), 8, 0);
        let mut rng = StdRng::seed_from_u64(seed);
        run_swarm(&instance, config, &FaultPlan::none(), &mut rng)
    }

    #[test]
    fn ideal_run_completes_and_validates() {
        let report = run(&NetConfig::default(), 7);
        assert!(report.success);
        assert!(report.completion_ticks.iter().all(Option::is_some));
        assert_eq!(report.bandwidth(), report.tokens_delivered);
        assert!(report.accounts_for_every_token());
        assert_eq!(report.retransmits, 0, "nothing lost, nothing re-sent");
        let instance = single_file(classic::cycle(6, 2, true), 8, 0);
        let replay = validate::replay(&instance, &report.schedule).unwrap();
        assert!(replay.is_successful());
    }

    #[test]
    fn local_policy_completes_with_latency_and_loss() {
        let config = NetConfig {
            policy: NetPolicy::Local,
            latency: 3,
            jitter: 2,
            loss: 0.15,
            control_latency: 1,
            control_loss: 0.05,
            have_refresh: 8,
            ..NetConfig::default()
        };
        let report = run(&config, 11);
        assert!(report.success, "ARQ must recover from loss");
        assert!(report.accounts_for_every_token());
        assert!(
            report.tokens_lost > 0,
            "15% loss over a whole run drops something"
        );
        let instance = single_file(classic::cycle(6, 2, true), 8, 0);
        assert!(validate::replay(&instance, &report.schedule).is_ok());
    }

    #[test]
    fn per_neighbor_queue_policy_is_deterministic_and_completes() {
        let config = NetConfig {
            policy: NetPolicy::PerNeighborQueue,
            ..NetConfig::default()
        };
        let a = run(&config, 3);
        let b = run(&config, 4040);
        assert!(a.success);
        assert_eq!(
            a.schedule, b.schedule,
            "the policy draws no RNG, so seeds cannot matter in ideal mode"
        );
        let instance = single_file(classic::cycle(6, 2, true), 8, 0);
        assert!(validate::replay(&instance, &a.schedule)
            .unwrap()
            .is_successful());
    }

    #[test]
    fn embedded_budgets_meter_the_uplink() {
        // The MWW broadcast instance carries its budgets; the runtime
        // picks them up without any config override, and the extracted
        // schedule certifies under the budget-enforcing replay.
        let instance = ocd_heuristics::optimal::broadcast_instance(2, 3, 1, 1);
        let config = NetConfig {
            policy: NetPolicy::PerNeighborQueue,
            ..NetConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let report = run_swarm(&instance, &config, &FaultPlan::none(), &mut rng);
        assert!(report.success);
        let replay = validate::replay(&instance, &report.schedule).unwrap();
        assert!(replay.is_successful());
        for step in report.schedule.steps() {
            let mut per_src = vec![0u64; instance.num_vertices()];
            for (e, tokens) in step.sends() {
                per_src[instance.graph().edge(e).src.index()] += tokens.len() as u64;
            }
            assert!(
                per_src.iter().all(|&sent| sent <= 1),
                "unit uplinks allow one token per sender per tick"
            );
        }
    }

    #[test]
    fn config_budgets_override_the_instance() {
        // An unbudgeted instance plus a config-supplied budget: every
        // tick's per-sender total respects the override.
        let instance = single_file(classic::cycle(6, 2, true), 8, 0);
        let config = NetConfig {
            policy: NetPolicy::Random,
            node_budgets: Some(NodeBudgets::uplink_only(6, 1)),
            ..NetConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(6);
        let report = run_swarm(&instance, &config, &FaultPlan::none(), &mut rng);
        assert!(report.success);
        for step in report.schedule.steps() {
            let mut per_src = [0u64; 6];
            for (e, tokens) in step.sends() {
                per_src[instance.graph().edge(e).src.index()] += tokens.len() as u64;
            }
            assert!(per_src.iter().all(|&sent| sent <= 1));
        }
        // The cycle has out-degree 2 at capacity 2: without the budget
        // some tick would push more than one token from one sender.
        let unbudgeted = run(&NetConfig::default(), 6);
        assert!(unbudgeted.schedule.steps().iter().any(|step| {
            let mut per_src = [0u64; 6];
            for (e, tokens) in step.sends() {
                per_src[instance.graph().edge(e).src.index()] += tokens.len() as u64;
            }
            per_src.iter().any(|&sent| sent > 1)
        }));
    }

    #[test]
    fn metrics_snapshot_mirrors_report_counters() {
        let config = NetConfig {
            policy: NetPolicy::Local,
            latency: 3,
            jitter: 2,
            loss: 0.15,
            control_latency: 1,
            ..NetConfig::default()
        };
        let report = run(&config, 11);
        let snap = report.metrics_snapshot();
        assert_eq!(snap.counter("net.ticks"), Some(report.ticks));
        assert_eq!(
            snap.counter("net.tokens_delivered"),
            Some(report.tokens_delivered)
        );
        assert_eq!(snap.counter("net.tokens_lost"), Some(report.tokens_lost));
        assert_eq!(snap.counter("net.retransmits"), Some(report.retransmits));
        assert_eq!(
            snap.counter("net.msgs_sent.token"),
            Some(report.messages_sent[MsgKind::Token.index()])
        );
        let timeouts: u64 = report
            .vertex_counters
            .iter()
            .map(|v| v.request_timeouts)
            .sum();
        assert_eq!(snap.counter("net.request_timeouts"), Some(timeouts));
        assert_eq!(
            snap.series("net.vertex_request_timeouts")
                .unwrap()
                .iter()
                .sum::<u64>(),
            timeouts,
            "per-vertex series sums to the total"
        );
        let sent = snap.series("net.arc_tokens_sent").unwrap();
        assert_eq!(sent.len(), report.link_counters.len());
        assert_eq!(
            sent.iter().sum::<u64>(),
            report.bandwidth(),
            "per-arc sends sum to total bandwidth"
        );
        let completion = snap.histogram("net.completion_ticks").unwrap();
        assert_eq!(completion.count, 6, "every vertex completed");
        assert_eq!(snap.gauge("net.unfinished_vertices"), Some(0));
        // Derived deterministically from the report: same seed,
        // byte-identical snapshot.
        assert_eq!(
            run(&config, 11).metrics_snapshot().to_json(),
            snap.to_json()
        );
    }

    #[test]
    #[should_panic(expected = "invalid net config")]
    fn run_swarm_rejects_invalid_config() {
        let config = NetConfig {
            loss: 2.0,
            ..NetConfig::default()
        };
        let _ = run(&config, 1);
    }

    #[test]
    fn same_seed_same_event_order_different_seed_differs() {
        let config = NetConfig {
            policy: NetPolicy::Local,
            latency: 2,
            jitter: 1,
            loss: 0.2,
            ..NetConfig::default()
        };
        let a = run(&config, 5);
        let b = run(&config, 5);
        assert_eq!(a.schedule, b.schedule);
        let ea: Vec<_> = a.trace.iter().collect();
        let eb: Vec<_> = b.trace.iter().collect();
        assert_eq!(ea, eb, "same seed ⇒ identical event order");
        let c = run(&config, 6);
        assert_ne!(a.schedule, c.schedule, "different seed ⇒ different run");
    }

    #[test]
    fn trivially_satisfied_instance_sends_nothing() {
        let g = classic::path(2, 1, true);
        let instance = ocd_core::Instance::builder(g, 1)
            .have(0, [Token::new(0)])
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let report = run_swarm(
            &instance,
            &NetConfig::default(),
            &FaultPlan::none(),
            &mut rng,
        );
        assert!(report.success);
        assert_eq!(report.ticks, 0);
        assert_eq!(report.bandwidth(), 0);
        assert!(report.trace.is_empty());
    }

    #[test]
    fn unsatisfiable_run_goes_quiescent_not_forever() {
        // Vertex 0 wants token 1, held only downstream of the one-way
        // arc 0 → 1: the run must detect quiescence and stop well
        // before max_ticks.
        let g = classic::path(2, 1, false);
        let instance = ocd_core::Instance::builder(g, 2)
            .have(0, [Token::new(0)])
            .have(1, [Token::new(1)])
            .want(0, [Token::new(1)])
            .want(1, [Token::new(0)])
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let config = NetConfig {
            max_ticks: 50_000,
            ..NetConfig::default()
        };
        let report = run_swarm(&instance, &config, &FaultPlan::none(), &mut rng);
        assert!(!report.success);
        assert!(
            report.ticks < 1_000,
            "quiescence detection stopped the run at tick {}",
            report.ticks
        );
        assert_eq!(report.tokens_delivered, 1, "token 0 still arrives");
    }

    #[test]
    fn provenance_disabled_by_default() {
        let report = run(&NetConfig::default(), 7);
        assert!(report.provenance.is_none());
    }

    #[test]
    fn ideal_provenance_matches_schedule_derivation() {
        // In ideal mode (latency 1, no jitter/loss) delivery order is
        // departure order, so the live trace must equal the one derived
        // by replaying the extracted schedule.
        let config = NetConfig {
            record_provenance: true,
            ..NetConfig::default()
        };
        let report = run(&config, 7);
        assert!(report.success);
        let live = report.provenance.as_ref().expect("provenance enabled");
        let instance = single_file(classic::cycle(6, 2, true), 8, 0);
        let derived = ProvenanceTrace::from_schedule(&instance, &report.schedule);
        assert_eq!(*live, derived);
        assert!(live.critical_path(&instance).is_some());
    }

    #[test]
    fn provenance_survives_loss_and_crashes_deterministically() {
        let instance = single_file(classic::cycle(5, 2, true), 6, 0);
        let faults = FaultPlan::none().crash_between(instance.graph().node(2), 1, 6);
        let config = NetConfig {
            policy: NetPolicy::Local,
            latency: 2,
            jitter: 1,
            loss: 0.2,
            have_refresh: 4,
            record_provenance: true,
            ..NetConfig::default()
        };
        let run_once = || {
            let mut rng = StdRng::seed_from_u64(9);
            run_swarm(&instance, &config, &faults, &mut rng)
        };
        let report = run_once();
        assert!(report.success, "ARQ recovers despite loss and a crash");
        let live = report.provenance.as_ref().unwrap();
        // Every vertex's satisfied wants trace back to a recorded
        // parent (or a seed), even though some deliveries were lost or
        // dropped at the crashed vertex: only applied deliveries are
        // parents.
        for v in instance.graph().nodes() {
            for t in instance.want(v).iter() {
                assert!(
                    live.parent(v, t).is_some() || instance.have(v).contains(t),
                    "vertex {v:?} token {t:?} has no provenance"
                );
            }
        }
        // Same seed ⇒ byte-identical artifacts in every export format.
        let again = run_once();
        let other = again.provenance.as_ref().unwrap();
        assert_eq!(live.to_json(), other.to_json());
        assert_eq!(live.to_csv(), other.to_csv());
        assert_eq!(
            live.to_chrome_json(&instance),
            other.to_chrome_json(&instance)
        );
    }

    #[test]
    fn crash_drops_messages_and_restart_recovers() {
        let instance = single_file(classic::cycle(5, 2, true), 6, 0);
        let faults = FaultPlan::none().crash_between(instance.graph().node(2), 1, 6);
        let config = NetConfig {
            policy: NetPolicy::Local,
            have_refresh: 4,
            ..NetConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let report = run_swarm(&instance, &config, &faults, &mut rng);
        assert!(report.success, "restarted vertex still completes");
        assert!(report.completion_ticks[2].is_some());
        assert_eq!(report.vertex_counters[2].crashes, 1);
        assert!(report.accounts_for_every_token());
        assert!(
            report.trace.iter().any(|e| e.kind == EventKind::Crash),
            "crash recorded in the trace"
        );
        let replay = validate::replay(&instance, &report.schedule).unwrap();
        assert!(replay.is_successful());
    }

    #[test]
    fn spans_cover_every_tick_with_all_phases() {
        let instance = single_file(classic::cycle(6, 2, true), 8, 0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut spans = ocd_core::FlightRecorder::logical();
        let report = run_swarm_with_spans(
            &instance,
            &NetConfig::default(),
            &FaultPlan::none(),
            &mut rng,
            &mut spans,
        );
        assert!(report.success);
        assert!(spans.is_balanced());
        let ticks = spans.count("net.tick");
        assert!(ticks > 0 && ticks as u64 <= report.ticks + 1);
        // Every tick ran the delivery phases; the final (completion)
        // tick skips decide/refresh.
        assert_eq!(spans.count("net.deliver_data"), ticks);
        assert_eq!(spans.count("net.deliver_ctrl"), ticks);
        assert_eq!(spans.count("net.faults"), ticks);
        assert!(spans.count("net.decide") >= ticks - 1);
        // Phase spans nest under their tick span.
        for s in spans.spans() {
            match s.name {
                "net.tick" => assert_eq!(s.depth, 0),
                _ => assert_eq!(s.depth, 1, "{} should nest under net.tick", s.name),
            }
        }
        // The `sent` counters on tick spans sum to the wire total.
        let sent: u64 = spans
            .spans()
            .iter()
            .filter(|s| s.name == "net.tick")
            .flat_map(|s| s.counters.iter())
            .filter(|(k, _)| *k == "sent")
            .map(|(_, v)| v)
            .sum();
        assert_eq!(sent, report.bandwidth());
    }

    #[test]
    fn span_recording_leaves_report_and_rng_stream_unchanged() {
        let instance = single_file(classic::cycle(6, 2, true), 8, 0);
        let config = NetConfig {
            policy: NetPolicy::Local,
            latency: 2,
            loss: 0.1,
            ..NetConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(13);
        let plain = run_swarm(&instance, &config, &FaultPlan::none(), &mut rng);
        let mut rng = StdRng::seed_from_u64(13);
        let mut spans = ocd_core::FlightRecorder::logical();
        let instrumented =
            run_swarm_with_spans(&instance, &config, &FaultPlan::none(), &mut rng, &mut spans);
        assert_eq!(plain.schedule, instrumented.schedule);
        assert_eq!(plain.ticks, instrumented.ticks);
        assert_eq!(plain.messages_sent, instrumented.messages_sent);
    }

    #[test]
    fn equal_seed_span_exports_are_byte_identical() {
        let instance = single_file(classic::cycle(6, 2, true), 8, 0);
        let config = NetConfig {
            loss: 0.2,
            jitter: 1,
            latency: 2,
            ..NetConfig::default()
        };
        let export = || {
            let mut rng = StdRng::seed_from_u64(99);
            let mut spans = ocd_core::FlightRecorder::logical();
            run_swarm_with_spans(&instance, &config, &FaultPlan::none(), &mut rng, &mut spans);
            spans.to_chrome_json("net")
        };
        assert_eq!(export(), export());
    }
}
