//! The coded swarm: RLNC over the asynchronous runtime's link model.
//!
//! Where [`run_swarm`](crate::run_swarm) moves named tokens and must
//! chase each individual loss with a targeted retransmission, the coded
//! swarm moves GF(2^8) combinations: `TOKEN` payloads carry coefficient
//! vectors, receivers absorb a packet iff it is innovative for their
//! [`CodedBasis`], and *any* lost or redundantly delivered packet is
//! repaired by a retransmit of **any** innovative combination — no
//! per-token bookkeeping, no duplicate-request races.
//!
//! Both swarm policies translate:
//!
//! - [`NetPolicy::Random`] becomes rank-window *push*: each arc keeps
//!   enough combinations in flight to cover the receiver's believed
//!   rank deficit (scaled by a proactive-redundancy factor).
//! - [`NetPolicy::Local`] becomes rank-credit *pull*: each receiver
//!   subdivides its deficit into per-arc `REQUEST` credits over the
//!   in-arcs whose senders are believed useful, re-arming expired
//!   credits with the runtime's exponential backoff.
//!
//! Belief is scalar: vertices announce their basis *rank* (`HAVE`
//! messages shrink from a token bitmap to one integer). Rank beliefs
//! can overestimate usefulness — two vertices of equal rank may span
//! different subspaces — which is exactly the price the paper's §4.1
//! knowledge hierarchy charges for local state; redundant deliveries
//! book that price.
//!
//! The loop is the same deterministic discrete-event design as the
//! uncoded runtime: fixed tick phases, calendars keyed `(tick, seq)`,
//! index-sorted iteration, every probabilistic choice from the caller's
//! RNG. Same instance + config + redundancy + seed ⇒ identical
//! counters and completion ticks.

use crate::config::{NetConfig, NetPolicy};
use ocd_core::rlnc::{CodedBasis, CodedPacket, RlncInstance};
use ocd_core::span::{NoopSpans, SpanRecorder};
use ocd_graph::EdgeId;
use rand::{Rng, RngCore};
use std::collections::BTreeMap;

/// Per-arc counters of a coded swarm run — the coded analogue of
/// [`LinkCounters`](crate::trace::LinkCounters), with token identity
/// replaced by innovation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CodedLinkCounters {
    /// Coded packets put on this arc (including lost ones).
    pub packets_sent: u64,
    /// Deliveries on this arc that increased the receiver's rank.
    pub innovative: u64,
    /// Deliveries on this arc inside the receiver's span.
    pub redundant: u64,
    /// Packets dropped by loss on this arc.
    pub lost: u64,
}

/// Result of a coded swarm run.
#[derive(Debug, Clone, PartialEq)]
pub struct CodedNetReport {
    /// Whether every receiver reached full rank within the tick budget.
    pub success: bool,
    /// Ticks simulated (the completion tick on success).
    pub ticks: u64,
    /// Coded packets put on the wire (including lost ones).
    pub packets_sent: u64,
    /// Packets that increased their receiver's rank.
    pub innovative_deliveries: u64,
    /// Packets that arrived inside the receiver's span (the coded
    /// analogue of duplicate deliveries).
    pub redundant_deliveries: u64,
    /// Packets dropped by link loss.
    pub packets_lost: u64,
    /// Packets still in flight when the run ended (completion can be
    /// detected while proactive redundancy is still on the wire).
    pub packets_unresolved: u64,
    /// Wire bytes: packets × (payload length + coefficient header).
    pub bytes_sent: u64,
    /// Control messages sent (`HAVE` rank announcements + `REQUEST`
    /// credits); always `have_messages + request_messages`.
    pub ctrl_messages: u64,
    /// `HAVE` rank beacons sent.
    pub have_messages: u64,
    /// `REQUEST` credit grants sent (pull mode only).
    pub request_messages: u64,
    /// Pull-mode request credits that expired and were re-armed with
    /// backoff.
    pub request_timeouts: u64,
    /// Per-vertex tick at which the vertex reached full rank (0 = the
    /// source); `None` if never.
    pub completion_ticks: Vec<Option<u64>>,
    /// Per-arc counters, indexed by [`EdgeId`].
    pub link_counters: Vec<CodedLinkCounters>,
    /// Whether every completed receiver decoded the exact generation.
    pub decode_ok: bool,
}

impl CodedNetReport {
    /// The conservation check: every packet put on the wire was
    /// delivered (innovatively or redundantly), lost, or still in
    /// flight at exit — nothing vanishes unaccounted.
    #[must_use]
    pub fn accounts_for_every_packet(&self) -> bool {
        self.packets_sent
            == self.innovative_deliveries
                + self.redundant_deliveries
                + self.packets_lost
                + self.packets_unresolved
    }

    /// Feeds the report's counters into the suite-wide metrics registry
    /// and returns the snapshot — the `coded.*` counterpart of
    /// [`NetReport::metrics_snapshot`](crate::NetReport::metrics_snapshot),
    /// in the same schema: per-kind message counters
    /// (`coded.msgs_sent.{have,request,token}`), innovation/loss
    /// accounting, per-arc series, and the rank-completion-tick
    /// histogram.
    ///
    /// Everything here derives from the deterministic run state, so
    /// equal-seed runs snapshot byte-identically.
    #[must_use]
    pub fn metrics_snapshot(&self) -> ocd_core::MetricsSnapshot {
        use crate::msg::MsgKind;
        use ocd_core::{MetricsRegistry, Recorder};
        let mut reg = MetricsRegistry::new();
        for (name, value) in [
            ("coded.ticks", self.ticks),
            ("coded.packets_sent", self.packets_sent),
            ("coded.innovative_deliveries", self.innovative_deliveries),
            ("coded.redundant_deliveries", self.redundant_deliveries),
            ("coded.packets_lost", self.packets_lost),
            ("coded.packets_unresolved", self.packets_unresolved),
            ("coded.bytes_sent", self.bytes_sent),
            ("coded.request_timeouts", self.request_timeouts),
        ] {
            let c = reg.counter(name);
            reg.add(c, value);
        }
        // Per-kind wire counters, named like the uncoded runtime's
        // `net.msgs_sent.{kind}` (the coded protocol has no `cancel`).
        for (kind, value) in [
            (MsgKind::Have, self.have_messages),
            (MsgKind::Request, self.request_messages),
            (MsgKind::Token, self.packets_sent),
        ] {
            let c = reg.counter(&format!("coded.msgs_sent.{}", kind.name()));
            reg.add(c, value);
        }
        let arcs = self.link_counters.len();
        let sent = reg.series("coded.arc_packets_sent", arcs);
        let innovative = reg.series("coded.arc_innovative", arcs);
        let redundant = reg.series("coded.arc_redundant", arcs);
        let lost = reg.series("coded.arc_lost", arcs);
        for (e, lc) in self.link_counters.iter().enumerate() {
            reg.series_add(sent, e, lc.packets_sent);
            reg.series_add(innovative, e, lc.innovative);
            reg.series_add(redundant, e, lc.redundant);
            reg.series_add(lost, e, lc.lost);
        }
        let completion = reg.histogram("coded.rank_completion_ticks");
        let mut unfinished = 0i64;
        for c in &self.completion_ticks {
            match c {
                Some(tick) => reg.observe(completion, *tick),
                None => unfinished += 1,
            }
        }
        let g = reg.gauge("coded.unfinished_vertices");
        reg.set(g, unfinished);
        reg.snapshot()
    }
}

/// An in-flight coded data packet. Loss is decided at send time (one
/// RNG draw, in send order) but booked at the scheduled arrival tick,
/// so in-flight accounting stays uniform.
struct DataInFlight {
    edge: EdgeId,
    packet: CodedPacket,
    lost: bool,
}

/// An in-flight control message.
enum CtrlInFlight {
    /// `dst`'s new basis rank, addressed to vertex `to`.
    Have { from: usize, to: usize, rank: usize },
    /// `count` packet credits for the sender of arc `edge`.
    Request { edge: EdgeId, count: u32 },
}

/// Outstanding pull-mode credits on one in-arc.
#[derive(Clone, Copy, Default)]
struct Pending {
    /// Credits granted but not yet seen back as deliveries.
    credits: u32,
    /// Tick at which the credits expire and re-arm.
    deadline: u64,
    /// Consecutive expiries, for backoff scaling.
    attempts: u32,
}

/// Runs the coded swarm and reports its counters.
///
/// `redundancy ≥ 1` is the proactive-redundancy factor: how many
/// combinations to keep in flight (push) or request (pull) per unit of
/// believed rank deficit, to ride through loss without waiting for
/// timeout feedback. [`NetPolicy::PerNeighborQueue`] has no coded
/// variant and runs as [`NetPolicy::Local`] (credit pull *is* its
/// queue discipline once tokens lose their identity).
///
/// # Panics
///
/// Panics if `config` fails [`NetConfig::validate`] or
/// `redundancy < 1`.
pub fn run_coded_swarm(
    instance: &RlncInstance,
    config: &NetConfig,
    redundancy: f64,
    rng: &mut dyn RngCore,
) -> CodedNetReport {
    run_coded_swarm_with_spans(instance, config, redundancy, rng, &mut NoopSpans)
}

/// [`run_coded_swarm`] with a [`SpanRecorder`] attached: every tick
/// opens a `coded.tick` span with one child per phase
/// (`coded.deliver_data`, `coded.deliver_ctrl`,
/// `coded.receiver_decisions`, `coded.sender_decisions`,
/// `coded.beacons`), carrying `sent` / `innovative` counters. The span
/// stream is a pure function of the run state, so equal seeds give
/// byte-identical logical exports.
pub fn run_coded_swarm_with_spans<S: SpanRecorder>(
    instance: &RlncInstance,
    config: &NetConfig,
    redundancy: f64,
    rng: &mut dyn RngCore,
    spans: &mut S,
) -> CodedNetReport {
    config.validate().expect("invalid net config");
    assert!(redundancy >= 1.0, "redundancy is a multiplier ≥ 1");
    let g = instance.graph();
    let n = g.node_count();
    let k = instance.generation();
    let pull = !matches!(config.policy, NetPolicy::Random);

    let mut bases: Vec<CodedBasis> = instance.initial_bases();
    // Common-knowledge start: beliefs begin at the true initial ranks
    // (the uncoded runtime's instance-wide have/want bootstrap).
    let mut believed_rank: Vec<Vec<usize>> = (0..n)
        .map(|v| {
            let _ = v;
            bases.iter().map(CodedBasis::rank).collect()
        })
        .collect();
    let mut completion: Vec<Option<u64>> =
        bases.iter().map(|b| b.is_complete().then_some(0)).collect();
    let receiver: Vec<bool> = g.nodes().map(|v| instance.is_receiver(v)).collect();

    let mut data_cal: BTreeMap<(u64, u64), DataInFlight> = BTreeMap::new();
    let mut ctrl_cal: BTreeMap<(u64, u64), CtrlInFlight> = BTreeMap::new();
    let mut seq = 0u64;
    // Packets currently in flight per arc (push-mode window control).
    let mut in_flight = vec![0u32; g.edge_count()];
    // Pull-mode sender-side serve queues and receiver-side credit state.
    let mut serve_credits = vec![0u32; g.edge_count()];
    let mut pending = vec![Pending::default(); g.edge_count()];

    let mut report = CodedNetReport {
        success: false,
        ticks: 0,
        packets_sent: 0,
        innovative_deliveries: 0,
        redundant_deliveries: 0,
        packets_lost: 0,
        packets_unresolved: 0,
        bytes_sent: 0,
        ctrl_messages: 0,
        have_messages: 0,
        request_messages: 0,
        request_timeouts: 0,
        completion_ticks: Vec::new(),
        link_counters: vec![CodedLinkCounters::default(); g.edge_count()],
        decode_ok: false,
    };

    let all_done = |bases: &[CodedBasis]| (0..n).all(|v| !receiver[v] || bases[v].is_complete());

    let mut now = 0u64;
    while now < config.max_ticks {
        if all_done(&bases) {
            break;
        }
        let mut activity = false;
        let tick_span = spans.open("coded.tick");
        let (sent_before, innovative_before) = (report.packets_sent, report.innovative_deliveries);

        // Phase 1: data delivery (send order within the tick).
        let phase = spans.open("coded.deliver_data");
        while let Some((&key, _)) = data_cal.range((now, 0)..=(now, u64::MAX)).next() {
            let msg = data_cal.remove(&key).expect("keyed entry");
            let arc = g.edge(msg.edge);
            in_flight[msg.edge.index()] = in_flight[msg.edge.index()].saturating_sub(1);
            activity = true;
            if msg.lost {
                report.packets_lost += 1;
                report.link_counters[msg.edge.index()].lost += 1;
                continue;
            }
            let dst = arc.dst.index();
            let p = &mut pending[msg.edge.index()];
            if p.credits > 0 {
                // A delivery retires one credit regardless of novelty:
                // the arc did its work, innovation is the field's job.
                // The arc proving alive also resets its backoff.
                p.credits -= 1;
                p.attempts = 0;
            }
            if bases[dst].absorb(msg.packet) {
                report.innovative_deliveries += 1;
                report.link_counters[msg.edge.index()].innovative += 1;
                if bases[dst].is_complete() && completion[dst].is_none() {
                    completion[dst] = Some(now);
                    spans.event("coded.rank_complete", dst as u64);
                }
            } else {
                report.redundant_deliveries += 1;
                report.link_counters[msg.edge.index()].redundant += 1;
            }
        }
        spans.close(phase);

        // Phase 2: control delivery.
        let phase = spans.open("coded.deliver_ctrl");
        while let Some((&key, _)) = ctrl_cal.range((now, 0)..=(now, u64::MAX)).next() {
            let msg = ctrl_cal.remove(&key).expect("keyed entry");
            activity = true;
            match msg {
                CtrlInFlight::Have { from, to, rank } => {
                    let cell = &mut believed_rank[to][from];
                    *cell = (*cell).max(rank);
                }
                CtrlInFlight::Request { edge, count } => {
                    serve_credits[edge.index()] += count;
                }
            }
        }
        spans.close(phase);

        // Phase 3: receiver decisions (pull mode): expire stale
        // credits, then spread the uncovered deficit over useful
        // in-arcs, least-granted first.
        let phase = spans.open("coded.receiver_decisions");
        if pull {
            for v in g.nodes() {
                let vi = v.index();
                if !receiver[vi] || bases[vi].is_complete() {
                    continue;
                }
                for e in g.in_edges(v) {
                    let p = &mut pending[e.index()];
                    if p.credits > 0 && p.deadline <= now {
                        report.request_timeouts += 1;
                        p.credits = 0;
                        p.attempts += 1;
                        activity = true;
                    }
                }
                let my_rank = bases[vi].rank();
                let outstanding: u32 = g.in_edges(v).map(|e| pending[e.index()].credits).sum();
                let want = ((bases[vi].deficit() as f64 * redundancy).ceil() as u32)
                    .saturating_sub(outstanding);
                if want == 0 {
                    continue;
                }
                // Useful in-arcs under scalar belief: the sender's
                // believed rank exceeds mine.
                let arcs: Vec<EdgeId> = g
                    .in_edges(v)
                    .filter(|&e| believed_rank[vi][g.edge(e).src.index()] > my_rank)
                    .collect();
                if arcs.is_empty() {
                    continue;
                }
                let mut grant = vec![0u32; arcs.len()];
                for _ in 0..want {
                    let slot = (0..arcs.len())
                        .min_by_key(|&i| (pending[arcs[i].index()].credits + grant[i], i))
                        .expect("non-empty");
                    grant[slot] += 1;
                }
                for (&e, &c) in arcs.iter().zip(&grant) {
                    if c == 0 {
                        continue;
                    }
                    let p = &mut pending[e.index()];
                    p.credits += c;
                    p.deadline = now + config.backoff_timeout(p.attempts);
                    report.ctrl_messages += 1;
                    report.request_messages += 1;
                    activity = true;
                    if config.control_loss > 0.0 && rng.random_bool(config.control_loss) {
                        continue;
                    }
                    if config.control_latency == 0 {
                        // Same-tick control plane: credits are
                        // servable this very tick (phase 4 follows).
                        serve_credits[e.index()] += c;
                    } else {
                        send_ctrl(
                            &mut ctrl_cal,
                            &mut seq,
                            now,
                            config.control_latency,
                            CtrlInFlight::Request { edge: e, count: c },
                        );
                    }
                }
            }
        }

        spans.close(phase);

        // Phase 4: sender decisions, ascending arc id. Every packet is
        // a fresh random combination of the sender's current basis.
        // Push mode shares one rank-deficit window per destination
        // across all of its in-arcs (in-flight packets count against
        // it), so parallel senders do not each re-cover the full
        // deficit — the coded analogue of the uncoded runtime's
        // cross-arc `Cancel` dedup.
        let phase = spans.open("coded.sender_decisions");
        let mut claimed = vec![0u32; n];
        let in_flight_to: Vec<u32> = if pull {
            Vec::new()
        } else {
            let mut acc = vec![0u32; n];
            for e in g.edge_ids() {
                acc[g.edge(e).dst.index()] += in_flight[e.index()];
            }
            acc
        };
        for e in g.edge_ids() {
            let arc = g.edge(e);
            let src = arc.src.index();
            if bases[src].rank() == 0 {
                continue;
            }
            let cap = g.capacity(e);
            let count = if pull {
                let served = serve_credits[e.index()].min(cap);
                serve_credits[e.index()] -= served;
                served
            } else {
                let dst = arc.dst.index();
                // A sender of rank r can contribute at most r
                // innovative packets no matter the deficit, so the
                // window is the believed deficit capped by own rank.
                let believed_deficit = k
                    .saturating_sub(believed_rank[src][dst])
                    .min(bases[src].rank());
                let window = (believed_deficit as f64 * redundancy).ceil() as u32;
                let budget = window
                    .saturating_sub(in_flight_to[dst] + claimed[dst])
                    .min(cap);
                claimed[dst] += budget;
                budget
            };
            for _ in 0..count {
                let packet = bases[src].random_packet(rng);
                report.packets_sent += 1;
                report.link_counters[e.index()].packets_sent += 1;
                report.bytes_sent += packet.wire_bytes();
                activity = true;
                let lost = config.loss > 0.0 && rng.random_bool(config.loss);
                let delay = u64::from(config.latency)
                    + if config.jitter > 0 {
                        u64::from(rng.random_range(0..=config.jitter))
                    } else {
                        0
                    };
                in_flight[e.index()] += 1;
                data_cal.insert(
                    (now + delay, seq),
                    DataInFlight {
                        edge: e,
                        packet,
                        lost,
                    },
                );
                seq += 1;
            }
        }

        spans.close(phase);

        // Phase 5: belief beacons. A rank is a single integer, so —
        // unlike the uncoded runtime's possession bitmaps — every
        // vertex re-announces it every tick (the piggyback feedback of
        // real RLNC transports). A lost beacon leaves a sender
        // over-pushing for one tick, not until the next bitmap
        // refresh.
        let phase = spans.open("coded.beacons");
        for v in g.nodes() {
            let vi = v.index();
            let rank = bases[vi].rank();
            // Announce to every graph neighbor (in- and out-), indexed
            // ascending for determinism.
            let mut peers: Vec<usize> = g
                .out_edges(v)
                .map(|e| g.edge(e).dst.index())
                .chain(g.in_edges(v).map(|e| g.edge(e).src.index()))
                .collect();
            peers.sort_unstable();
            peers.dedup();
            for to in peers {
                report.ctrl_messages += 1;
                report.have_messages += 1;
                if config.control_loss > 0.0 && rng.random_bool(config.control_loss) {
                    continue;
                }
                if config.control_latency == 0 {
                    // Same-tick control plane: the belief lands before
                    // next tick's decisions.
                    let cell = &mut believed_rank[to][vi];
                    *cell = (*cell).max(rank);
                } else {
                    send_ctrl(
                        &mut ctrl_cal,
                        &mut seq,
                        now,
                        config.control_latency,
                        CtrlInFlight::Have { from: vi, to, rank },
                    );
                }
            }
        }

        spans.close(phase);

        spans.attach(tick_span, "sent", report.packets_sent - sent_before);
        spans.attach(
            tick_span,
            "innovative",
            report.innovative_deliveries - innovative_before,
        );
        spans.close(tick_span);

        now += 1;
        report.ticks = now;
        // Fixpoint: nothing moved, nothing in flight, nothing pending —
        // further ticks are identical (unreachable receivers).
        let credits_pending = pull && pending.iter().any(|p| p.credits > 0);
        if !activity && data_cal.is_empty() && ctrl_cal.is_empty() && !credits_pending {
            break;
        }
    }

    report.packets_unresolved = data_cal.len() as u64;
    report.success = all_done(&bases);
    report.decode_ok =
        report.success && (0..n).all(|v| !receiver[v] || instance.decodes_correctly(&bases[v]));
    report.completion_ticks = completion;
    report
}

fn send_ctrl(
    cal: &mut BTreeMap<(u64, u64), CtrlInFlight>,
    seq: &mut u64,
    now: u64,
    latency: u32,
    msg: CtrlInFlight,
) {
    cal.insert((now + u64::from(latency), *seq), msg);
    *seq += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultPlan;
    use ocd_core::scenario::single_file;
    use ocd_graph::generate::classic;
    use rand::prelude::*;

    fn ring_instance(k: usize, len: usize) -> RlncInstance {
        RlncInstance::single_source(classic::cycle(6, 2, true), k, len, 0)
    }

    #[test]
    fn ideal_push_completes_and_decodes() {
        let inst = ring_instance(8, 16);
        let mut rng = StdRng::seed_from_u64(3);
        let report = run_coded_swarm(&inst, &NetConfig::default(), 1.0, &mut rng);
        assert!(report.success && report.decode_ok);
        assert!(report.accounts_for_every_packet());
        assert_eq!(report.packets_lost, 0);
        assert_eq!(report.bytes_sent, report.packets_sent * inst.packet_bytes());
        assert!(report.innovative_deliveries >= 8 * 5);
    }

    #[test]
    fn ideal_pull_completes_and_decodes() {
        let inst = ring_instance(8, 16);
        let config = NetConfig {
            policy: crate::NetPolicy::Local,
            ..NetConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let report = run_coded_swarm(&inst, &config, 1.0, &mut rng);
        assert!(report.success && report.decode_ok, "{report:?}");
        assert!(report.accounts_for_every_packet());
    }

    #[test]
    fn loss_costs_only_retransmits_of_innovative_combinations() {
        // The coded claim: under loss the swarm still completes, and
        // every repair packet is just *another* random combination —
        // no token identity is ever chased.
        let inst = ring_instance(10, 32);
        for policy in [crate::NetPolicy::Random, crate::NetPolicy::Local] {
            let config = NetConfig {
                policy,
                loss: 0.25,
                latency: 2,
                control_latency: 1,
                ..NetConfig::default()
            };
            let mut rng = StdRng::seed_from_u64(17);
            let report = run_coded_swarm(&inst, &config, 1.0, &mut rng);
            assert!(report.success && report.decode_ok, "{policy:?}: {report:?}");
            assert!(report.packets_lost > 0, "{policy:?}: loss must have fired");
            assert!(report.accounts_for_every_packet());
        }
    }

    #[test]
    fn metrics_snapshot_mirrors_report_counters() {
        let inst = ring_instance(8, 16);
        let config = NetConfig {
            policy: crate::NetPolicy::Local,
            loss: 0.2,
            latency: 2,
            control_latency: 1,
            ..NetConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let report = run_coded_swarm(&inst, &config, 1.0, &mut rng);
        assert!(report.success);
        assert_eq!(
            report.ctrl_messages,
            report.have_messages + report.request_messages,
            "per-kind counters partition the control total"
        );
        let per_arc_sent: u64 = report.link_counters.iter().map(|l| l.packets_sent).sum();
        assert_eq!(per_arc_sent, report.packets_sent);
        let per_arc_lost: u64 = report.link_counters.iter().map(|l| l.lost).sum();
        assert_eq!(per_arc_lost, report.packets_lost);

        let snap = report.metrics_snapshot();
        assert_eq!(
            snap.counter("coded.packets_sent"),
            Some(report.packets_sent)
        );
        assert_eq!(
            snap.counter("coded.innovative_deliveries"),
            Some(report.innovative_deliveries)
        );
        assert_eq!(
            snap.counter("coded.packets_lost"),
            Some(report.packets_lost)
        );
        assert_eq!(
            snap.counter("coded.msgs_sent.have"),
            Some(report.have_messages)
        );
        assert_eq!(
            snap.counter("coded.msgs_sent.request"),
            Some(report.request_messages)
        );
        assert_eq!(
            snap.counter("coded.msgs_sent.token"),
            Some(report.packets_sent)
        );
        let arc_sent = snap.series("coded.arc_packets_sent").unwrap();
        assert_eq!(arc_sent.len(), report.link_counters.len());
        assert_eq!(arc_sent.iter().sum::<u64>(), report.packets_sent);
        let completion = snap.histogram("coded.rank_completion_ticks").unwrap();
        assert_eq!(completion.count, 6, "every vertex completed");
        assert_eq!(snap.gauge("coded.unfinished_vertices"), Some(0));
        // Derived deterministically from the report: same seed,
        // byte-identical snapshot.
        let mut rng = StdRng::seed_from_u64(5);
        let again = run_coded_swarm(&inst, &config, 1.0, &mut rng);
        assert_eq!(again.metrics_snapshot().to_json(), snap.to_json());
    }

    #[test]
    fn spans_cover_every_tick_with_all_phases() {
        let inst = ring_instance(8, 16);
        let mut rng = StdRng::seed_from_u64(3);
        let mut spans = ocd_core::FlightRecorder::logical();
        let report =
            run_coded_swarm_with_spans(&inst, &NetConfig::default(), 1.0, &mut rng, &mut spans);
        assert!(report.success);
        assert!(spans.is_balanced());
        let ticks = spans.count("coded.tick");
        assert_eq!(ticks as u64, report.ticks);
        for name in [
            "coded.deliver_data",
            "coded.deliver_ctrl",
            "coded.receiver_decisions",
            "coded.sender_decisions",
            "coded.beacons",
        ] {
            assert_eq!(spans.count(name), ticks, "{name} runs once per tick");
        }
        for s in spans.spans() {
            match s.name {
                "coded.tick" => assert_eq!(s.depth, 0),
                _ => assert_eq!(s.depth, 1, "{} should nest under coded.tick", s.name),
            }
        }
        // Tick-span `sent` counters sum to the wire total, and every
        // receiver that completed fired a rank_complete event.
        let sent: u64 = spans
            .spans()
            .iter()
            .filter(|s| s.name == "coded.tick")
            .flat_map(|s| s.counters.iter())
            .filter(|(k, _)| *k == "sent")
            .map(|(_, v)| v)
            .sum();
        assert_eq!(sent, report.packets_sent);
        let completions = spans
            .events()
            .iter()
            .filter(|e| e.name == "coded.rank_complete")
            .count();
        assert_eq!(completions, 5, "five non-source receivers complete");
        // Recording spans must not perturb the simulation.
        let mut rng = StdRng::seed_from_u64(3);
        let plain = run_coded_swarm(&inst, &NetConfig::default(), 1.0, &mut rng);
        assert_eq!(plain, report);
    }

    #[test]
    fn equal_seed_span_exports_are_byte_identical() {
        let inst = ring_instance(7, 8);
        let config = NetConfig {
            loss: 0.2,
            jitter: 2,
            latency: 3,
            ..NetConfig::default()
        };
        let export = || {
            let mut rng = StdRng::seed_from_u64(41);
            let mut spans = ocd_core::FlightRecorder::logical();
            run_coded_swarm_with_spans(&inst, &config, 1.25, &mut rng, &mut spans);
            spans.to_chrome_json("coded")
        };
        assert_eq!(export(), export());
    }

    #[test]
    fn equal_seeds_are_bit_identical() {
        let inst = ring_instance(7, 8);
        let config = NetConfig {
            loss: 0.2,
            jitter: 2,
            latency: 3,
            control_latency: 1,
            control_loss: 0.1,
            ..NetConfig::default()
        };
        let run = || {
            let mut rng = StdRng::seed_from_u64(99);
            run_coded_swarm(&inst, &config, 1.25, &mut rng)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn unreachable_receiver_fails_at_fixpoint_not_max_ticks() {
        let mut g = ocd_graph::DiGraph::with_nodes(3);
        g.add_edge(g.node(0), g.node(1), 1).unwrap();
        let inst = RlncInstance::single_source(g, 4, 8, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let report = run_coded_swarm(&inst, &NetConfig::default(), 1.0, &mut rng);
        assert!(!report.success);
        assert!(report.ticks < 100, "fixpoint exit");
        assert_eq!(report.completion_ticks[2], None);
    }

    #[test]
    fn coded_beats_uncoded_random_under_heavy_loss_and_jitter() {
        // A small in-crate pre-run of the frontier claim: on long
        // lossy jittery links, RLNC beats uncoded Random on BOTH
        // makespan and wire bytes — the uncoded swarm's per-token
        // timeout/retransmit machinery stalls and duplicates, while
        // any coded combination repairs any loss.
        let k = 8;
        let len = 64usize;
        let g = classic::cycle(6, 2, true);
        let config = NetConfig {
            loss: 0.5,
            control_loss: 0.3,
            latency: 3,
            jitter: 3,
            ..NetConfig::default()
        };
        let (mut coded_bytes, mut coded_ticks) = (0u64, 0u64);
        let (mut uncoded_bytes, mut uncoded_ticks) = (0u64, 0u64);
        for seed in 0..5u64 {
            let coded_inst = RlncInstance::single_source(g.clone(), k, len, 0);
            let mut rng = StdRng::seed_from_u64(seed);
            let coded = run_coded_swarm(&coded_inst, &config, 1.0, &mut rng);
            assert!(coded.success && coded.decode_ok, "seed {seed}");
            coded_bytes += coded.bytes_sent;
            coded_ticks += coded.ticks;

            let uncoded_inst = single_file(g.clone(), k, 0);
            let mut rng = StdRng::seed_from_u64(seed);
            let uncoded = crate::run_swarm(&uncoded_inst, &config, &FaultPlan::none(), &mut rng);
            assert!(uncoded.success, "seed {seed}");
            uncoded_bytes += uncoded.bandwidth() * len as u64;
            uncoded_ticks += uncoded.ticks;
        }
        assert!(
            coded_bytes < uncoded_bytes,
            "coded {coded_bytes} >= uncoded {uncoded_bytes} bytes"
        );
        assert!(
            coded_ticks < uncoded_ticks,
            "coded {coded_ticks} >= uncoded {uncoded_ticks} ticks"
        );
    }
}
