//! The typed protocol messages actors exchange.
//!
//! Grammar (one message per line on the wire; all sets are token
//! bitmaps over the instance's universe):
//!
//! ```text
//! msg     ::= HAVE(have: TokenSet)          # full possession snapshot
//!           | REQUEST(want: TokenSet)       # "send me these on this arc"
//!           | TOKEN(payload: TokenSet)      # data: the tokens themselves
//!           | CANCEL(stale: TokenSet)       # "got these elsewhere, dequeue"
//! ```
//!
//! `Have` carries the sender's *entire* possession set rather than a
//! delta: snapshots are idempotent and order-insensitive, so reordered
//! or lost announcements can never corrupt a belief (possession only
//! grows, and beliefs merge by union). `Request`/`Cancel` address the
//! specific arc they were received on; `Token` is the only message that
//! consumes link (data) capacity.

use ocd_core::TokenSet;
use ocd_graph::{EdgeId, NodeId};

/// The four protocol message kinds, used to index per-kind counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind {
    /// A possession-bitmap announcement.
    Have,
    /// A request for tokens on the receiving arc.
    Request,
    /// A data payload.
    Token,
    /// A request withdrawal.
    Cancel,
}

impl MsgKind {
    /// All kinds, in counter-index order.
    pub const ALL: [MsgKind; 4] = [
        MsgKind::Have,
        MsgKind::Request,
        MsgKind::Token,
        MsgKind::Cancel,
    ];

    /// Stable index into per-kind counter arrays.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Lower-case wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MsgKind::Have => "have",
            MsgKind::Request => "request",
            MsgKind::Token => "token",
            MsgKind::Cancel => "cancel",
        }
    }
}

/// A data message in flight on an arc: the only message kind metered by
/// the arc's capacity.
#[derive(Debug, Clone)]
pub struct DataMsg {
    /// The arc being traversed.
    pub edge: EdgeId,
    /// The payload.
    pub tokens: TokenSet,
    /// Departure tick (the schedule step this transfer is recorded at).
    pub sent_at: u64,
}

/// The payload of a control message.
#[derive(Debug, Clone)]
pub enum CtrlPayload {
    /// Full possession snapshot of the sender.
    Have(TokenSet),
    /// Tokens requested on the data arc `sender → receiver`.
    Request(TokenSet),
    /// Tokens obtained elsewhere; drop them from the send queue.
    Cancel(TokenSet),
}

impl CtrlPayload {
    /// The counter kind of this payload.
    #[must_use]
    pub fn kind(&self) -> MsgKind {
        match self {
            CtrlPayload::Have(_) => MsgKind::Have,
            CtrlPayload::Request(_) => MsgKind::Request,
            CtrlPayload::Cancel(_) => MsgKind::Cancel,
        }
    }
}

/// A control message in flight between two vertices (unmetered: the
/// control plane models out-of-band coordination traffic).
#[derive(Debug, Clone)]
pub struct CtrlMsg {
    /// Originating vertex.
    pub from: NodeId,
    /// Destination vertex.
    pub to: NodeId,
    /// The payload.
    pub payload: CtrlPayload,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_indices_are_stable() {
        for (i, k) in MsgKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        assert_eq!(MsgKind::Token.name(), "token");
    }

    #[test]
    fn payload_kind_matches() {
        let s = TokenSet::new(4);
        assert_eq!(CtrlPayload::Have(s.clone()).kind(), MsgKind::Have);
        assert_eq!(CtrlPayload::Request(s.clone()).kind(), MsgKind::Request);
        assert_eq!(CtrlPayload::Cancel(s).kind(), MsgKind::Cancel);
    }
}
