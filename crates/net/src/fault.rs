//! Scripted vertex crash/restart fault injection.
//!
//! Faults are deterministic scripts, not random processes: the
//! differential and fault-injection tests need the exact same fault at
//! the exact same tick on every run. (Random churn belongs to the
//! lockstep engine's [`dynamics`](ocd_heuristics::dynamics) models; here
//! the point is reproducing a *specific* failure and watching the
//! retry/backoff machinery recover.)

use ocd_graph::NodeId;

/// One scripted fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// The vertex stops: in-flight messages to it are dropped on
    /// arrival, its volatile state (beliefs, queues, outstanding
    /// requests) is lost. Its possession survives (durable store).
    Crash(NodeId),
    /// The vertex comes back: volatile state empty, possession intact;
    /// it re-announces its possession to all neighbors.
    Restart(NodeId),
}

impl FaultEvent {
    /// The vertex the fault applies to.
    #[must_use]
    pub fn vertex(self) -> NodeId {
        match self {
            FaultEvent::Crash(v) | FaultEvent::Restart(v) => v,
        }
    }
}

/// A time-ordered script of faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<(u64, FaultEvent)>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Schedules a crash of `v` at `tick`.
    #[must_use]
    pub fn crash_at(mut self, tick: u64, v: NodeId) -> Self {
        self.events.push((tick, FaultEvent::Crash(v)));
        self
    }

    /// Schedules a restart of `v` at `tick`.
    #[must_use]
    pub fn restart_at(mut self, tick: u64, v: NodeId) -> Self {
        self.events.push((tick, FaultEvent::Restart(v)));
        self
    }

    /// Convenience: crash `v` at `down` and restart it at `up`.
    ///
    /// # Panics
    ///
    /// Panics if `up <= down`.
    #[must_use]
    pub fn crash_between(self, v: NodeId, down: u64, up: u64) -> Self {
        assert!(up > down, "restart must come after the crash");
        self.crash_at(down, v).restart_at(up, v)
    }

    /// Whether any fault remains at or after `tick`.
    #[must_use]
    pub fn pending_after(&self, tick: u64) -> bool {
        self.events.iter().any(|&(t, _)| t >= tick)
    }

    /// The faults scheduled for exactly `tick`, in insertion order.
    pub fn at(&self, tick: u64) -> impl Iterator<Item = FaultEvent> + '_ {
        self.events
            .iter()
            .filter(move |&&(t, _)| t == tick)
            .map(|&(_, e)| e)
    }

    /// Total scripted faults.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builders_and_lookup() {
        let v = NodeId::new(3);
        let plan = FaultPlan::none().crash_between(v, 5, 9);
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        assert_eq!(plan.at(5).collect::<Vec<_>>(), vec![FaultEvent::Crash(v)]);
        assert_eq!(plan.at(9).collect::<Vec<_>>(), vec![FaultEvent::Restart(v)]);
        assert_eq!(plan.at(7).count(), 0);
        assert!(plan.pending_after(6));
        assert!(!plan.pending_after(10));
        assert_eq!(FaultEvent::Crash(v).vertex(), v);
    }

    #[test]
    #[should_panic(expected = "restart must come after")]
    fn crash_between_rejects_inverted_window() {
        let _ = FaultPlan::none().crash_between(NodeId::new(0), 9, 5);
    }
}
