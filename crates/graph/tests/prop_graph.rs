//! Property-based tests of the graph algorithms against brute-force
//! oracles on random small graphs.
#![allow(clippy::needless_range_loop)]

use ocd_graph::algo::{
    bfs_distances, diameter, dijkstra, eccentricity, is_strongly_connected, nodes_within,
    strongly_connected_components, weakly_connected_components, PathCost, UNREACHABLE,
};
use ocd_graph::{DiGraph, NodeId};
use proptest::prelude::*;
use rand::prelude::*;

/// Random digraph from a seed, up to 10 nodes.
fn digraph(seed: u64, n: usize, p: f64) -> DiGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::with_nodes(n);
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.random_bool(p) {
                g.add_edge(g.node(u), g.node(v), rng.random_range(1..8))
                    .unwrap();
            }
        }
    }
    g
}

/// Floyd–Warshall hop distances as the oracle.
fn oracle_distances(g: &DiGraph) -> Vec<Vec<u64>> {
    let n = g.node_count();
    const INF: u64 = u64::MAX / 4;
    let mut d = vec![vec![INF; n]; n];
    for v in 0..n {
        d[v][v] = 0;
    }
    for e in g.edges() {
        d[e.src.index()][e.dst.index()] = 1;
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                d[i][j] = d[i][j].min(d[i][k] + d[k][j]);
            }
        }
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bfs_matches_floyd_warshall(seed in 0u64..10_000, n in 1usize..9, p in 0.0f64..0.9) {
        let g = digraph(seed, n, p);
        let oracle = oracle_distances(&g);
        for s in g.nodes() {
            let bfs = bfs_distances(&g, s);
            for t in g.nodes() {
                let expected = oracle[s.index()][t.index()];
                if expected >= u64::MAX / 4 {
                    prop_assert_eq!(bfs[t.index()], UNREACHABLE);
                } else {
                    prop_assert_eq!(u64::from(bfs[t.index()]), expected);
                }
            }
        }
    }

    #[test]
    fn dijkstra_hop_cost_equals_bfs(seed in 0u64..10_000, n in 1usize..9, p in 0.0f64..0.9) {
        let g = digraph(seed, n, p);
        for s in g.nodes() {
            let bfs = bfs_distances(&g, s);
            let (dist, _) = dijkstra(&g, s, PathCost::Hop);
            for t in g.nodes() {
                if bfs[t.index()] == UNREACHABLE {
                    prop_assert_eq!(dist[t.index()], u64::MAX);
                } else {
                    prop_assert_eq!(dist[t.index()], u64::from(bfs[t.index()]));
                }
            }
        }
    }

    #[test]
    fn scc_matches_mutual_reachability(seed in 0u64..10_000, n in 1usize..8, p in 0.0f64..0.8) {
        let g = digraph(seed, n, p);
        let oracle = oracle_distances(&g);
        let reach = |a: usize, b: usize| oracle[a][b] < u64::MAX / 4;
        let sccs = strongly_connected_components(&g);
        // Partition check.
        let mut seen = vec![0u32; n];
        for comp in &sccs {
            for v in comp {
                seen[v.index()] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "SCCs must partition the nodes");
        // Same component ⟺ mutually reachable.
        let mut comp_of = vec![usize::MAX; n];
        for (ci, comp) in sccs.iter().enumerate() {
            for v in comp {
                comp_of[v.index()] = ci;
            }
        }
        for a in 0..n {
            for b in 0..n {
                let mutual = reach(a, b) && reach(b, a);
                prop_assert_eq!(comp_of[a] == comp_of[b], mutual, "{} vs {}", a, b);
            }
        }
        prop_assert_eq!(is_strongly_connected(&g), sccs.len() <= 1);
    }

    #[test]
    fn weak_components_ignore_direction(seed in 0u64..10_000, n in 1usize..8, p in 0.0f64..0.5) {
        let g = digraph(seed, n, p);
        let comps = weakly_connected_components(&g);
        let total: usize = comps.iter().map(Vec::len).sum();
        prop_assert_eq!(total, n);
        // Symmetrizing the graph must not change the weak components.
        let mut sym = g.clone();
        for e in g.edges() {
            let _ = sym.add_edge(e.dst, e.src, e.capacity);
        }
        prop_assert_eq!(weakly_connected_components(&sym).len(), comps.len());
    }

    #[test]
    fn diameter_is_max_eccentricity(seed in 0u64..10_000, n in 1usize..8) {
        // Dense graphs are usually strongly connected; skip when not.
        let g = digraph(seed, n, 0.7);
        if let Some(d) = diameter(&g) {
            let max_ecc = g
                .nodes()
                .map(|v| eccentricity(&g, v).expect("diameter implies connectivity"))
                .max()
                .unwrap_or(0);
            prop_assert_eq!(d, max_ecc);
        }
    }

    #[test]
    fn nodes_within_is_monotone_in_radius(seed in 0u64..10_000, n in 1usize..9, p in 0.0f64..0.6) {
        let g = digraph(seed, n, p);
        for v in g.nodes() {
            let mut prev: Vec<NodeId> = Vec::new();
            for radius in 0..n as u32 {
                let cur = nodes_within(&g, v, radius);
                prop_assert!(cur.len() >= prev.len(), "closures must grow");
                for x in &prev {
                    prop_assert!(cur.contains(x), "closures must nest");
                }
                prop_assert!(cur.contains(&v));
                prev = cur;
            }
        }
    }

    #[test]
    fn reversed_swaps_all_distances(seed in 0u64..10_000, n in 1usize..8, p in 0.0f64..0.8) {
        let g = digraph(seed, n, p);
        let r = g.reversed();
        let og = oracle_distances(&g);
        let or = oracle_distances(&r);
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(og[a][b], or[b][a]);
            }
        }
    }
}
