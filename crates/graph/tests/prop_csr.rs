//! Differential property test for the CSR-backed [`DiGraph`]: random
//! interleavings of mutations and queries against a naive
//! `Vec<Vec<EdgeId>>` adjacency model (the representation the CSR
//! rewrite replaced).
//!
//! The queries are interleaved *between* mutations on purpose — each
//! query may warm the lazily built CSR index, and the next mutation must
//! invalidate it — so this exercises the build/invalidate/rebuild cycle
//! far more densely than unit tests do.

use ocd_graph::{DiGraph, EdgeId, NodeId};
use proptest::prelude::*;
use rand::prelude::*;

/// The old representation, kept as an executable oracle: per-node
/// insertion-ordered adjacency lists plus a flat arc table.
#[derive(Default)]
struct NaiveGraph {
    arcs: Vec<(usize, usize, u32)>,
    out: Vec<Vec<EdgeId>>,
    incoming: Vec<Vec<EdgeId>>,
}

impl NaiveGraph {
    fn with_nodes(n: usize) -> Self {
        NaiveGraph {
            arcs: Vec::new(),
            out: vec![Vec::new(); n],
            incoming: vec![Vec::new(); n],
        }
    }

    fn find(&self, src: usize, dst: usize) -> Option<EdgeId> {
        self.out
            .get(src)?
            .iter()
            .copied()
            .find(|&e| self.arcs[e.index()].1 == dst)
    }

    /// Mirrors `DiGraph::add_edge`: parallel arcs merge by summing
    /// capacity, new arcs append to both endpoint lists.
    fn add_edge(&mut self, src: usize, dst: usize, cap: u32) {
        if let Some(e) = self.find(src, dst) {
            self.arcs[e.index()].2 += cap;
        } else {
            let e = EdgeId::new(self.arcs.len());
            self.arcs.push((src, dst, cap));
            self.out[src].push(e);
            self.incoming[dst].push(e);
        }
    }
}

/// One random mutate-then-query episode; returns both graphs for final
/// whole-structure comparison.
fn build_pair(seed: u64, n: usize, ops: usize) -> Result<(DiGraph, NaiveGraph), TestCaseError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::with_nodes(n);
    let mut model = NaiveGraph::with_nodes(n);
    for _ in 0..ops {
        let src = rng.random_range(0..n);
        let dst = rng.random_range(0..n);
        let cap = rng.random_range(1..20u32);
        if src == dst {
            prop_assert!(g.add_edge(g.node(src), g.node(dst), cap).is_err());
            continue;
        }
        g.add_edge(g.node(src), g.node(dst), cap).unwrap();
        model.add_edge(src, dst, cap);
        // Interleaved queries: warm the CSR so the *next* mutation must
        // invalidate it.
        let probe = g.node(rng.random_range(0..n));
        let out: Vec<EdgeId> = g.out_edges(probe).collect();
        prop_assert_eq!(&out, &model.out[probe.index()], "out order diverged");
        let inc: Vec<EdgeId> = g.in_edges(probe).collect();
        prop_assert_eq!(&inc, &model.incoming[probe.index()], "in order diverged");
        let (qs, qd) = (rng.random_range(0..n), rng.random_range(0..n));
        prop_assert_eq!(g.find_edge(g.node(qs), g.node(qd)), model.find(qs, qd));
    }
    Ok((g, model))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_graph_matches_naive_adjacency_model(
        seed in 0u64..10_000,
        n in 2usize..12,
        ops in 1usize..60,
    ) {
        let (g, model) = build_pair(seed, n, ops)?;
        prop_assert_eq!(g.edge_count(), model.arcs.len());
        for v in 0..n {
            let v = NodeId::new(v);
            prop_assert_eq!(g.out_degree(v), model.out[v.index()].len());
            prop_assert_eq!(g.in_degree(v), model.incoming[v.index()].len());
            let out: Vec<EdgeId> = g.out_edges(v).collect();
            prop_assert_eq!(&out, &model.out[v.index()]);
            let inc: Vec<EdgeId> = g.in_edges(v).collect();
            prop_assert_eq!(&inc, &model.incoming[v.index()]);
        }
        for (i, &(src, dst, cap)) in model.arcs.iter().enumerate() {
            let arc = g.edge(EdgeId::new(i));
            prop_assert_eq!(arc.src.index(), src);
            prop_assert_eq!(arc.dst.index(), dst);
            prop_assert_eq!(arc.capacity, cap);
        }
    }

    #[test]
    fn bulk_and_incremental_construction_agree(
        seed in 0u64..10_000,
        n in 2usize..12,
        ops in 1usize..60,
    ) {
        // A graph rebuilt from its own edge list via the bulk
        // constructor must compare equal and iterate identically —
        // `from_edges` is what serde deserialization runs through.
        let (g, _) = build_pair(seed, n, ops)?;
        let edges: Vec<ocd_graph::Edge> = g.edges().collect();
        let bulk = DiGraph::from_edges(n, edges).unwrap();
        prop_assert_eq!(&bulk, &g);
        for v in g.nodes() {
            let a: Vec<EdgeId> = g.out_edges(v).collect();
            let b: Vec<EdgeId> = bulk.out_edges(v).collect();
            prop_assert_eq!(a, b);
            let a: Vec<EdgeId> = g.in_edges(v).collect();
            let b: Vec<EdgeId> = bulk.in_edges(v).collect();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn serde_round_trip_preserves_structure_and_order(
        seed in 0u64..10_000,
        n in 2usize..10,
        ops in 1usize..40,
    ) {
        let (g, _) = build_pair(seed, n, ops)?;
        let json = serde_json::to_string(&g).unwrap();
        let back: DiGraph = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &g);
        for v in g.nodes() {
            let a: Vec<EdgeId> = g.out_edges(v).collect();
            let b: Vec<EdgeId> = back.out_edges(v).collect();
            prop_assert_eq!(a, b, "iteration order must survive serde");
        }
    }
}
