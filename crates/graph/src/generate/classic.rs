//! Deterministic graph families with closed-form properties, used heavily
//! by tests and by the hardness/competitiveness constructions.

use crate::DiGraph;

/// Path `0 → 1 → … → n-1` with uniform capacity. If `symmetric`, arcs go
/// both ways.
///
/// # Examples
///
/// ```
/// let g = ocd_graph::generate::classic::path(4, 2, true);
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 6);
/// ```
#[must_use]
pub fn path(n: usize, capacity: u32, symmetric: bool) -> DiGraph {
    let mut g = DiGraph::with_nodes(n);
    for i in 1..n {
        let (u, v) = (g.node(i - 1), g.node(i));
        if symmetric {
            g.add_edge_symmetric(u, v, capacity)
                .expect("valid path edge");
        } else {
            g.add_edge(u, v, capacity).expect("valid path edge");
        }
    }
    g
}

/// Cycle `0 → 1 → … → n-1 → 0` with uniform capacity. If `symmetric`,
/// arcs go both ways.
///
/// # Panics
///
/// Panics if `n < 3` (smaller cycles would need self-loops or parallel
/// arcs, which the simple graph forbids).
#[must_use]
pub fn cycle(n: usize, capacity: u32, symmetric: bool) -> DiGraph {
    assert!(n >= 3, "cycle needs at least 3 nodes, got {n}");
    let mut g = path(n, capacity, symmetric);
    let (last, first) = (g.node(n - 1), g.node(0));
    if symmetric {
        g.add_edge_symmetric(last, first, capacity)
            .expect("valid cycle edge");
    } else {
        g.add_edge(last, first, capacity).expect("valid cycle edge");
    }
    g
}

/// Star with center 0 and leaves `1..n`, uniform capacity. If
/// `symmetric`, arcs go both ways; otherwise arcs point outward from the
/// center.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn star(n: usize, capacity: u32, symmetric: bool) -> DiGraph {
    assert!(n >= 1, "star needs at least the center node");
    let mut g = DiGraph::with_nodes(n);
    for i in 1..n {
        let (c, leaf) = (g.node(0), g.node(i));
        if symmetric {
            g.add_edge_symmetric(c, leaf, capacity)
                .expect("valid star edge");
        } else {
            g.add_edge(c, leaf, capacity).expect("valid star edge");
        }
    }
    g
}

/// Complete symmetric graph on `n` nodes with uniform capacity.
#[must_use]
pub fn complete(n: usize, capacity: u32) -> DiGraph {
    let mut g = DiGraph::with_nodes(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge_symmetric(g.node(u), g.node(v), capacity)
                .expect("valid complete-graph edge");
        }
    }
    g
}

/// Symmetric 2-D grid of `rows × cols` nodes with uniform capacity. Node
/// `(r, c)` has index `r * cols + c`.
#[must_use]
pub fn grid(rows: usize, cols: usize, capacity: u32) -> DiGraph {
    let mut g = DiGraph::with_nodes(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = g.node(r * cols + c);
            if c + 1 < cols {
                g.add_edge_symmetric(v, g.node(r * cols + c + 1), capacity)
                    .expect("valid grid edge");
            }
            if r + 1 < rows {
                g.add_edge_symmetric(v, g.node((r + 1) * cols + c), capacity)
                    .expect("valid grid edge");
            }
        }
    }
    g
}

/// Balanced `arity`-ary tree with `depth` levels below the root (depth 0
/// is a single node), symmetric arcs, uniform capacity. Nodes are in BFS
/// order with the root at index 0.
///
/// # Panics
///
/// Panics if `arity == 0`.
#[must_use]
pub fn balanced_tree(arity: usize, depth: u32, capacity: u32) -> DiGraph {
    assert!(arity >= 1, "tree arity must be at least 1");
    let mut g = DiGraph::new();
    let root = g.add_node();
    let mut frontier = vec![root];
    for _ in 0..depth {
        let mut next = Vec::new();
        for parent in frontier {
            for _ in 0..arity {
                let child = g.add_node();
                g.add_edge_symmetric(parent, child, capacity)
                    .expect("valid tree edge");
                next.push(child);
            }
        }
        frontier = next;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{diameter, is_strongly_connected, is_weakly_connected};

    #[test]
    fn path_shape() {
        let g = path(5, 3, false);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert!(is_weakly_connected(&g));
        assert!(!is_strongly_connected(&g));
        let s = path(5, 3, true);
        assert_eq!(s.edge_count(), 8);
        assert!(is_strongly_connected(&s));
    }

    #[test]
    fn singleton_and_empty_paths() {
        assert_eq!(path(0, 1, true).node_count(), 0);
        let g = path(1, 1, true);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(4, 1, false);
        assert_eq!(g.edge_count(), 4);
        assert!(is_strongly_connected(&g));
        assert_eq!(diameter(&g), Some(3));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_cycle_panics() {
        let _ = cycle(2, 1, true);
    }

    #[test]
    fn star_shape() {
        let g = star(5, 2, false);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_degree(g.node(0)), 4);
        assert_eq!(g.in_degree(g.node(0)), 0);
    }

    #[test]
    fn complete_shape() {
        let g = complete(4, 1);
        assert_eq!(g.edge_count(), 12); // n(n-1) arcs
        assert_eq!(diameter(&g), Some(1));
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4, 1);
        assert_eq!(g.node_count(), 12);
        // Undirected edges: 3*3 horizontal + 2*4 vertical = 17 → 34 arcs.
        assert_eq!(g.edge_count(), 34);
        assert_eq!(diameter(&g), Some(5)); // (3-1)+(4-1)
    }

    #[test]
    fn balanced_tree_shape() {
        let g = balanced_tree(2, 3, 1);
        assert_eq!(g.node_count(), 15); // 1+2+4+8
        assert_eq!(g.edge_count(), 28); // 14 undirected edges
        assert_eq!(diameter(&g), Some(6));
        let single = balanced_tree(3, 0, 1);
        assert_eq!(single.node_count(), 1);
    }
}
