//! Topology generators.
//!
//! Three families, matching the paper's evaluation (§5):
//!
//! - [`classic`]: deterministic families (paths, cycles, stars, complete
//!   graphs, grids, balanced trees) used for closed-form tests.
//! - [`gnp`]: Erdős–Rényi `G(n, p)` random graphs, including the paper's
//!   regime `p = 2 ln n / n` with capacities drawn uniformly from
//!   `3..=15` ("edge weights chosen randomly between 3 and 15 tokens").
//! - [`transit_stub`]: a GT-ITM-style hierarchical Internet topology
//!   (transit domains with attached stub domains) standing in for the
//!   paper's GT-ITM generator.
//!
//! All random generators take an explicit `Rng` so experiments are
//! reproducible from seeds.

pub mod classic;
mod gnp_impl;
mod transit_stub_impl;

pub use gnp_impl::{gnp, paper_random, GnpConfig, GnpSampler};
pub use transit_stub_impl::{transit_stub, TransitStubConfig};

use crate::algo::UnionFind;
use crate::DiGraph;
use rand::Rng;

/// The paper's edge-capacity range: "edge weights chosen randomly between
/// 3 and 15 tokens" (§5.2).
pub const PAPER_CAPACITY_RANGE: std::ops::RangeInclusive<u32> = 3..=15;

/// Adds symmetric edges between weakly connected components until the
/// graph is connected, drawing endpoints uniformly from distinct
/// components and capacities from `capacity`.
///
/// Random `G(n, p)` draws occasionally come out disconnected even in the
/// paper's `2 ln n / n` regime; a disconnected OCD instance is
/// unsatisfiable, so generators call this to guarantee usable topologies
/// (the added edges are a vanishing fraction of the graph).
pub(crate) fn stitch_connected<R: Rng + ?Sized>(
    g: &mut DiGraph,
    rng: &mut R,
    capacity: std::ops::RangeInclusive<u32>,
) {
    let n = g.node_count();
    if n <= 1 {
        return;
    }
    let mut uf = UnionFind::new(n);
    for e in g.edges() {
        uf.union(e.src.index(), e.dst.index());
    }
    while uf.component_count() > 1 {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if !uf.same(u, v) {
            let cap = rng.random_range(capacity.clone());
            g.add_edge_symmetric(g.node(u), g.node(v), cap)
                .expect("distinct in-bounds endpoints");
            uf.union(u, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::is_weakly_connected;
    use rand::prelude::*;

    #[test]
    fn stitch_connects_empty_edge_set() {
        let mut g = DiGraph::with_nodes(10);
        let mut rng = StdRng::seed_from_u64(1);
        stitch_connected(&mut g, &mut rng, 3..=15);
        assert!(is_weakly_connected(&g));
        for e in g.edges() {
            assert!((3..=15).contains(&e.capacity));
        }
    }

    #[test]
    fn stitch_is_noop_on_connected_graph() {
        let mut g = classic::cycle(5, 1, true);
        let before = g.edge_count();
        let mut rng = StdRng::seed_from_u64(2);
        stitch_connected(&mut g, &mut rng, 3..=15);
        assert_eq!(g.edge_count(), before);
    }

    #[test]
    fn stitch_handles_tiny_graphs() {
        for n in 0..=1 {
            let mut g = DiGraph::with_nodes(n);
            let mut rng = StdRng::seed_from_u64(3);
            stitch_connected(&mut g, &mut rng, 1..=1);
            assert_eq!(g.edge_count(), 0);
        }
    }
}
