//! Erdős–Rényi random graphs, including the paper's `2 ln n / n` regime.

use super::stitch_connected;
use crate::DiGraph;
use rand::Rng;
use std::ops::RangeInclusive;

/// Configuration for [`gnp`].
#[derive(Debug, Clone)]
pub struct GnpConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Probability of each undirected node pair being linked.
    pub edge_probability: f64,
    /// Arc capacities are drawn uniformly from this range (inclusive).
    pub capacity: RangeInclusive<u32>,
    /// If true, each sampled link becomes a symmetric pair of arcs with
    /// the same capacity (the paper's overlay links); if false, each
    /// ordered pair is sampled independently.
    pub symmetric: bool,
    /// If true, extra symmetric links are stitched in afterwards until
    /// the graph is weakly connected (a disconnected OCD instance is
    /// unsatisfiable).
    pub ensure_connected: bool,
}

impl GnpConfig {
    /// The paper's §5.2 configuration: `p = 2 ln n / n`, capacities
    /// `3..=15`, symmetric links, connectivity guaranteed.
    #[must_use]
    pub fn paper(nodes: usize) -> Self {
        let n = nodes.max(2) as f64;
        GnpConfig {
            nodes,
            edge_probability: (2.0 * n.ln() / n).min(1.0),
            capacity: super::PAPER_CAPACITY_RANGE,
            symmetric: true,
            ensure_connected: true,
        }
    }
}

/// Samples a `G(n, p)` graph according to `config`.
///
/// # Panics
///
/// Panics if `edge_probability` is not within `[0, 1]` or the capacity
/// range is empty.
#[must_use]
pub fn gnp<R: Rng + ?Sized>(config: &GnpConfig, rng: &mut R) -> DiGraph {
    assert!(
        (0.0..=1.0).contains(&config.edge_probability),
        "edge probability {} outside [0, 1]",
        config.edge_probability
    );
    assert!(
        !config.capacity.is_empty(),
        "capacity range must be non-empty"
    );
    let n = config.nodes;
    let mut g = DiGraph::with_nodes(n);
    if config.symmetric {
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.random_bool(config.edge_probability) {
                    let cap = rng.random_range(config.capacity.clone());
                    g.add_edge_symmetric(g.node(u), g.node(v), cap)
                        .expect("valid gnp edge");
                }
            }
        }
    } else {
        for u in 0..n {
            for v in 0..n {
                if u != v && rng.random_bool(config.edge_probability) {
                    let cap = rng.random_range(config.capacity.clone());
                    g.add_edge(g.node(u), g.node(v), cap)
                        .expect("valid gnp edge");
                }
            }
        }
    }
    if config.ensure_connected {
        stitch_connected(&mut g, rng, config.capacity.clone());
    }
    g
}

/// Convenience wrapper sampling the paper's random topology for `n`
/// nodes: `G(n, 2 ln n / n)` with symmetric capacities in `3..=15`,
/// guaranteed connected.
#[must_use]
pub fn paper_random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> DiGraph {
    gnp(&GnpConfig::paper(n), rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::is_weakly_connected;
    use rand::prelude::*;

    #[test]
    fn paper_graph_is_connected_and_in_capacity_range() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [2, 20, 100] {
            let g = paper_random(n, &mut rng);
            assert_eq!(g.node_count(), n);
            assert!(is_weakly_connected(&g), "n = {n}");
            assert!(g.is_symmetric());
            for e in g.edges() {
                assert!((3..=15).contains(&e.capacity));
            }
        }
    }

    #[test]
    fn edge_density_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200;
        let config = GnpConfig {
            nodes: n,
            edge_probability: 0.1,
            capacity: 1..=1,
            symmetric: true,
            ensure_connected: false,
        };
        let g = gnp(&config, &mut rng);
        let pairs = (n * (n - 1) / 2) as f64;
        let undirected_edges = g.edge_count() as f64 / 2.0;
        let observed = undirected_edges / pairs;
        assert!(
            (observed - 0.1).abs() < 0.02,
            "observed density {observed} far from 0.1"
        );
    }

    #[test]
    fn p_zero_yields_edgeless_unless_stitched() {
        let mut rng = StdRng::seed_from_u64(1);
        let config = GnpConfig {
            nodes: 10,
            edge_probability: 0.0,
            capacity: 2..=2,
            symmetric: true,
            ensure_connected: false,
        };
        assert_eq!(gnp(&config, &mut rng).edge_count(), 0);
        let stitched = gnp(
            &GnpConfig {
                ensure_connected: true,
                ..config
            },
            &mut rng,
        );
        assert!(is_weakly_connected(&stitched));
        assert_eq!(
            stitched.edge_count(),
            18,
            "spanning tree of 10 nodes = 9 links"
        );
    }

    #[test]
    fn p_one_yields_complete() {
        let mut rng = StdRng::seed_from_u64(1);
        let config = GnpConfig {
            nodes: 6,
            edge_probability: 1.0,
            capacity: 1..=1,
            symmetric: true,
            ensure_connected: false,
        };
        assert_eq!(gnp(&config, &mut rng).edge_count(), 30);
    }

    #[test]
    fn asymmetric_mode_samples_ordered_pairs() {
        let mut rng = StdRng::seed_from_u64(9);
        let config = GnpConfig {
            nodes: 50,
            edge_probability: 1.0,
            capacity: 1..=1,
            symmetric: false,
            ensure_connected: false,
        };
        let g = gnp(&config, &mut rng);
        assert_eq!(g.edge_count(), 50 * 49);
    }

    #[test]
    fn deterministic_under_seed() {
        let g1 = paper_random(30, &mut StdRng::seed_from_u64(5));
        let g2 = paper_random(30, &mut StdRng::seed_from_u64(5));
        assert_eq!(g1, g2);
        let g3 = paper_random(30, &mut StdRng::seed_from_u64(6));
        assert_ne!(g1, g3, "different seeds should virtually always differ");
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_probability_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let config = GnpConfig {
            nodes: 3,
            edge_probability: 1.5,
            capacity: 1..=1,
            symmetric: true,
            ensure_connected: false,
        };
        let _ = gnp(&config, &mut rng);
    }
}
