//! Erdős–Rényi random graphs, including the paper's `2 ln n / n` regime.

use super::stitch_connected;
use crate::DiGraph;
use rand::Rng;
use std::ops::RangeInclusive;

/// How [`gnp`] iterates the candidate node pairs.
///
/// Both samplers draw an exact `G(n, p)` graph; they differ only in RNG
/// call count and draw sequence, so equal seeds produce *different*
/// (equally distributed) graphs across samplers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GnpSampler {
    /// One Bernoulli draw per node pair — `O(n²)` RNG calls. This is the
    /// committed experiment path: its draw sequence is pinned by the
    /// equal-seed artifacts, so it must never change.
    #[default]
    PairLoop,
    /// Batagelj–Brandes geometric skip-length sampling — `O(n + m)`
    /// expected RNG calls, the only tractable path in the sparse
    /// large-`n` regime (`table_scale` runs `n = 10⁶`, where the pair
    /// loop would need ~10¹² draws).
    GeometricSkip,
}

/// Configuration for [`gnp`].
#[derive(Debug, Clone)]
pub struct GnpConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Probability of each undirected node pair being linked.
    pub edge_probability: f64,
    /// Arc capacities are drawn uniformly from this range (inclusive).
    pub capacity: RangeInclusive<u32>,
    /// If true, each sampled link becomes a symmetric pair of arcs with
    /// the same capacity (the paper's overlay links); if false, each
    /// ordered pair is sampled independently.
    pub symmetric: bool,
    /// If true, extra symmetric links are stitched in afterwards until
    /// the graph is weakly connected (a disconnected OCD instance is
    /// unsatisfiable).
    pub ensure_connected: bool,
    /// Pair-enumeration strategy; see [`GnpSampler`].
    pub sampler: GnpSampler,
}

impl GnpConfig {
    /// The paper's §5.2 configuration: `p = 2 ln n / n`, capacities
    /// `3..=15`, symmetric links, connectivity guaranteed.
    #[must_use]
    pub fn paper(nodes: usize) -> Self {
        let n = nodes.max(2) as f64;
        GnpConfig {
            nodes,
            edge_probability: (2.0 * n.ln() / n).min(1.0),
            capacity: super::PAPER_CAPACITY_RANGE,
            symmetric: true,
            ensure_connected: true,
            sampler: GnpSampler::PairLoop,
        }
    }

    /// The paper configuration with the [`GnpSampler::GeometricSkip`]
    /// sampler: the same distribution as [`GnpConfig::paper`] at
    /// generation cost `O(n + m)`. Used by the scale experiments; note
    /// the draw sequence (hence the sampled graph at a given seed)
    /// differs from the pair loop.
    #[must_use]
    pub fn fast(nodes: usize) -> Self {
        GnpConfig {
            sampler: GnpSampler::GeometricSkip,
            ..GnpConfig::paper(nodes)
        }
    }
}

/// Samples a `G(n, p)` graph according to `config`.
///
/// # Panics
///
/// Panics if `edge_probability` is not within `[0, 1]` or the capacity
/// range is empty.
#[must_use]
pub fn gnp<R: Rng + ?Sized>(config: &GnpConfig, rng: &mut R) -> DiGraph {
    assert!(
        (0.0..=1.0).contains(&config.edge_probability),
        "edge probability {} outside [0, 1]",
        config.edge_probability
    );
    assert!(
        !config.capacity.is_empty(),
        "capacity range must be non-empty"
    );
    let n = config.nodes;
    let mut g = DiGraph::with_nodes(n);
    match config.sampler {
        GnpSampler::PairLoop => pair_loop(config, &mut g, rng),
        GnpSampler::GeometricSkip => geometric_skip(config, &mut g, rng),
    }
    if config.ensure_connected {
        stitch_connected(&mut g, rng, config.capacity.clone());
    }
    g
}

/// The classic sampler: one Bernoulli draw per pair. Frozen — committed
/// equal-seed artifacts replay this exact draw sequence.
fn pair_loop<R: Rng + ?Sized>(config: &GnpConfig, g: &mut DiGraph, rng: &mut R) {
    let n = config.nodes;
    if config.symmetric {
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.random_bool(config.edge_probability) {
                    let cap = rng.random_range(config.capacity.clone());
                    g.add_edge_symmetric(g.node(u), g.node(v), cap)
                        .expect("valid gnp edge");
                }
            }
        }
    } else {
        for u in 0..n {
            for v in 0..n {
                if u != v && rng.random_bool(config.edge_probability) {
                    let cap = rng.random_range(config.capacity.clone());
                    g.add_edge(g.node(u), g.node(v), cap)
                        .expect("valid gnp edge");
                }
            }
        }
    }
}

/// Batagelj–Brandes sampling ("Efficient generation of large random
/// networks", Phys. Rev. E 71, 2005): instead of tossing a coin per pair,
/// draw the *gap* to the next success directly. A Bernoulli(p) process
/// has geometrically distributed gaps, so `skip = ⌊ln(1−r) / ln(1−p)⌋`
/// with `r` uniform in `[0, 1)` jumps straight to the next linked pair.
/// Expected cost is `O(n + m)` RNG draws over a linearization of the
/// candidate pairs.
fn geometric_skip<R: Rng + ?Sized>(config: &GnpConfig, g: &mut DiGraph, rng: &mut R) {
    let n = config.nodes;
    let p = config.edge_probability;
    if p <= 0.0 || n < 2 {
        return;
    }
    // ln(1−p) is −∞ at p = 1; the division then yields −0.0 and every
    // skip is 0, i.e. the complete graph falls out without special-casing.
    let log_q = (1.0 - p).ln();
    let skip = |rng: &mut R| -> u64 {
        let r: f64 = rng.random();
        let s = ((1.0 - r).ln() / log_q).floor();
        // At p = 1 the quotient is −0.0; elsewhere it is finite and ≥ 0.
        // Clamp far below i64::MAX so cursor arithmetic cannot overflow
        // even for astronomically unlikely draws at vanishing p.
        if s.is_finite() && s > 0.0 {
            (s as u64).min(1 << 62)
        } else {
            0
        }
    };
    if config.symmetric {
        // Enumerate the upper triangle row by row: pair index within row
        // `v` runs over `w ∈ 0..v`, rows in ascending `v`. The standard
        // Batagelj–Brandes walk advances `w` by the sampled gap and
        // wraps into following rows.
        let mut v: usize = 1;
        let mut w: i64 = -1;
        while v < n {
            w += 1 + skip(rng) as i64;
            while v < n && w >= v as i64 {
                w -= v as i64;
                v += 1;
            }
            if v < n {
                let cap = rng.random_range(config.capacity.clone());
                g.add_edge_symmetric(g.node(v), g.node(w as usize), cap)
                    .expect("valid gnp edge");
            }
        }
    } else {
        // Linearize the n·(n−1) ordered pairs without the diagonal:
        // index i ↦ (u, v) with u = i / (n−1) and v skipping u.
        let row = (n - 1) as u64;
        let total = n as u64 * row;
        let mut i: u64 = skip(rng);
        while i < total {
            let u = (i / row) as usize;
            let j = (i % row) as usize;
            let v = if j >= u { j + 1 } else { j };
            let cap = rng.random_range(config.capacity.clone());
            g.add_edge(g.node(u), g.node(v), cap)
                .expect("valid gnp edge");
            i += 1 + skip(rng);
        }
    }
}

/// Convenience wrapper sampling the paper's random topology for `n`
/// nodes: `G(n, 2 ln n / n)` with symmetric capacities in `3..=15`,
/// guaranteed connected.
#[must_use]
pub fn paper_random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> DiGraph {
    gnp(&GnpConfig::paper(n), rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::is_weakly_connected;
    use rand::prelude::*;

    #[test]
    fn paper_graph_is_connected_and_in_capacity_range() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [2, 20, 100] {
            let g = paper_random(n, &mut rng);
            assert_eq!(g.node_count(), n);
            assert!(is_weakly_connected(&g), "n = {n}");
            assert!(g.is_symmetric());
            for e in g.edges() {
                assert!((3..=15).contains(&e.capacity));
            }
        }
    }

    #[test]
    fn edge_density_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200;
        let config = GnpConfig {
            nodes: n,
            edge_probability: 0.1,
            capacity: 1..=1,
            symmetric: true,
            ensure_connected: false,
            sampler: GnpSampler::PairLoop,
        };
        let g = gnp(&config, &mut rng);
        let pairs = (n * (n - 1) / 2) as f64;
        let undirected_edges = g.edge_count() as f64 / 2.0;
        let observed = undirected_edges / pairs;
        assert!(
            (observed - 0.1).abs() < 0.02,
            "observed density {observed} far from 0.1"
        );
    }

    #[test]
    fn p_zero_yields_edgeless_unless_stitched() {
        let mut rng = StdRng::seed_from_u64(1);
        let config = GnpConfig {
            nodes: 10,
            edge_probability: 0.0,
            capacity: 2..=2,
            symmetric: true,
            ensure_connected: false,
            sampler: GnpSampler::PairLoop,
        };
        assert_eq!(gnp(&config, &mut rng).edge_count(), 0);
        let stitched = gnp(
            &GnpConfig {
                ensure_connected: true,
                ..config
            },
            &mut rng,
        );
        assert!(is_weakly_connected(&stitched));
        assert_eq!(
            stitched.edge_count(),
            18,
            "spanning tree of 10 nodes = 9 links"
        );
    }

    #[test]
    fn p_one_yields_complete() {
        let mut rng = StdRng::seed_from_u64(1);
        let config = GnpConfig {
            nodes: 6,
            edge_probability: 1.0,
            capacity: 1..=1,
            symmetric: true,
            ensure_connected: false,
            sampler: GnpSampler::PairLoop,
        };
        assert_eq!(gnp(&config, &mut rng).edge_count(), 30);
    }

    #[test]
    fn asymmetric_mode_samples_ordered_pairs() {
        let mut rng = StdRng::seed_from_u64(9);
        let config = GnpConfig {
            nodes: 50,
            edge_probability: 1.0,
            capacity: 1..=1,
            symmetric: false,
            ensure_connected: false,
            sampler: GnpSampler::PairLoop,
        };
        let g = gnp(&config, &mut rng);
        assert_eq!(g.edge_count(), 50 * 49);
    }

    #[test]
    fn deterministic_under_seed() {
        let g1 = paper_random(30, &mut StdRng::seed_from_u64(5));
        let g2 = paper_random(30, &mut StdRng::seed_from_u64(5));
        assert_eq!(g1, g2);
        let g3 = paper_random(30, &mut StdRng::seed_from_u64(6));
        assert_ne!(g1, g3, "different seeds should virtually always differ");
    }

    /// Both samplers must track the analytic expected edge count
    /// `p · n(n−1)/2` (undirected) — the regression guard for the
    /// geometric-skip bugfix and for any accidental change to the frozen
    /// pair loop.
    #[test]
    fn both_samplers_match_expected_density() {
        let n = 600;
        let p = 0.05;
        let expected = p * (n * (n - 1) / 2) as f64; // 8985 undirected links
        for sampler in [GnpSampler::PairLoop, GnpSampler::GeometricSkip] {
            let config = GnpConfig {
                nodes: n,
                edge_probability: p,
                capacity: 1..=1,
                symmetric: true,
                ensure_connected: false,
                sampler,
            };
            let g = gnp(&config, &mut StdRng::seed_from_u64(11));
            let undirected = g.edge_count() as f64 / 2.0;
            // σ = √(N·p·(1−p)) ≈ 92; allow ~5σ.
            assert!(
                (undirected - expected).abs() < 500.0,
                "{sampler:?}: {undirected} links vs expected {expected}"
            );
        }
    }

    #[test]
    fn geometric_skip_matches_density_in_asymmetric_mode() {
        let n = 500;
        let p = 0.02;
        let config = GnpConfig {
            nodes: n,
            edge_probability: p,
            capacity: 1..=1,
            symmetric: false,
            ensure_connected: false,
            sampler: GnpSampler::GeometricSkip,
        };
        let g = gnp(&config, &mut StdRng::seed_from_u64(13));
        let expected = p * (n * (n - 1)) as f64; // 4990 ordered pairs
        assert!(
            (g.edge_count() as f64 - expected).abs() < 400.0,
            "{} arcs vs expected {expected}",
            g.edge_count()
        );
        for e in g.edges() {
            assert_ne!(e.src, e.dst, "diagonal must be skipped");
        }
    }

    #[test]
    fn geometric_skip_handles_probability_extremes() {
        let zero = GnpConfig {
            nodes: 10,
            edge_probability: 0.0,
            capacity: 1..=1,
            symmetric: true,
            ensure_connected: false,
            sampler: GnpSampler::GeometricSkip,
        };
        assert_eq!(gnp(&zero, &mut StdRng::seed_from_u64(1)).edge_count(), 0);
        let one = GnpConfig {
            nodes: 6,
            edge_probability: 1.0,
            ..zero.clone()
        };
        assert_eq!(
            gnp(&one, &mut StdRng::seed_from_u64(1)).edge_count(),
            30,
            "p = 1 must yield the complete graph"
        );
        let one_directed = GnpConfig {
            symmetric: false,
            ..one
        };
        assert_eq!(
            gnp(&one_directed, &mut StdRng::seed_from_u64(1)).edge_count(),
            30,
            "6 · 5 ordered pairs"
        );
    }

    #[test]
    fn fast_config_is_deterministic_and_connected() {
        let sample = |seed| gnp(&GnpConfig::fast(200), &mut StdRng::seed_from_u64(seed));
        let g1 = sample(5);
        assert_eq!(g1, sample(5));
        assert_ne!(g1, sample(6));
        assert!(is_weakly_connected(&g1));
        assert!(g1.is_symmetric());
        for e in g1.edges() {
            assert!((3..=15).contains(&e.capacity));
        }
    }

    #[test]
    fn pair_loop_draw_sequence_is_frozen() {
        // Committed artifacts depend on the pair loop consuming the RNG in
        // exactly this order; pin a small sample so any change is loud.
        let g = paper_random(8, &mut StdRng::seed_from_u64(42));
        let fingerprint: Vec<(usize, usize, u32)> = g
            .edges()
            .map(|e| (e.src.index(), e.dst.index(), e.capacity))
            .collect();
        assert_eq!(
            fingerprint,
            vec![
                (0, 2, 9),
                (2, 0, 9),
                (0, 6, 6),
                (6, 0, 6),
                (0, 7, 12),
                (7, 0, 12),
                (1, 5, 9),
                (5, 1, 9),
                (1, 7, 14),
                (7, 1, 14),
                (2, 4, 3),
                (4, 2, 3),
                (3, 5, 13),
                (5, 3, 13),
                (4, 6, 6),
                (6, 4, 6),
                (5, 6, 12),
                (6, 5, 12),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_probability_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let config = GnpConfig {
            nodes: 3,
            edge_probability: 1.5,
            capacity: 1..=1,
            symmetric: true,
            ensure_connected: false,
            sampler: GnpSampler::PairLoop,
        };
        let _ = gnp(&config, &mut rng);
    }
}
