//! The core directed graph data structure.

use crate::{EdgeId, GraphError, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A directed edge (arc) with an integer capacity.
///
/// Capacity is the number of tokens the arc can carry in a single timestep
/// (paper §3.1: "any number of tokens, up to the capacity of the link, can
/// be transferred across a link in unit time").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Source node of the arc.
    pub src: NodeId,
    /// Destination node of the arc.
    pub dst: NodeId,
    /// Tokens per timestep the arc can carry. Always at least 1.
    pub capacity: u32,
}

/// A simple, weighted, directed graph.
///
/// Nodes and edges are identified by dense indices ([`NodeId`], [`EdgeId`])
/// assigned in insertion order. The graph maintains both out- and
/// in-adjacency lists so that senders and receivers can be enumerated in
/// `O(degree)`.
///
/// Invariants:
///
/// - No self-loops (the OCD base graph is simple; self-arcs appear only in
///   the integer-program extension handled by `ocd-solver`).
/// - No parallel arcs: re-adding an arc sums its capacity into the existing
///   one and returns the existing [`EdgeId`].
/// - Every arc has capacity ≥ 1.
///
/// # Examples
///
/// ```
/// use ocd_graph::DiGraph;
///
/// let mut g = DiGraph::with_nodes(3);
/// let (a, b, c) = (g.node(0), g.node(1), g.node(2));
/// g.add_edge(a, b, 2).unwrap();
/// g.add_edge_symmetric(b, c, 5).unwrap();
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 3);
/// assert_eq!(g.in_capacity(c), 5);
/// assert_eq!(g.out_degree(b), 1);
/// ```
#[derive(Clone, Default)]
pub struct DiGraph {
    edges: Vec<Edge>,
    out_adj: Vec<Vec<EdgeId>>,
    in_adj: Vec<Vec<EdgeId>>,
    edge_lookup: HashMap<(NodeId, NodeId), EdgeId>,
}

/// Serialized form: node count plus the edge list. Adjacency and the
/// lookup table are derived, so deserialization rebuilds them (and
/// re-validates the invariants through [`DiGraph::add_edge`]).
#[derive(Serialize, Deserialize)]
struct DiGraphRepr {
    node_count: usize,
    edges: Vec<Edge>,
}

impl Serialize for DiGraph {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        DiGraphRepr {
            node_count: self.node_count(),
            edges: self.edges.clone(),
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for DiGraph {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::de::Error as _;
        let repr = DiGraphRepr::deserialize(deserializer)?;
        let mut g = DiGraph::with_nodes(repr.node_count);
        for e in repr.edges {
            g.add_edge(e.src, e.dst, e.capacity)
                .map_err(|err| D::Error::custom(err.to_string()))?;
        }
        Ok(g)
    }
}

impl DiGraph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        DiGraph::default()
    }

    /// Creates a graph with `n` nodes and no edges.
    #[must_use]
    pub fn with_nodes(n: usize) -> Self {
        DiGraph {
            edges: Vec::new(),
            out_adj: vec![Vec::new(); n],
            in_adj: vec![Vec::new(); n],
            edge_lookup: HashMap::new(),
        }
    }

    /// Adds a new isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::new(self.out_adj.len());
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Adds `n` new isolated nodes and returns their ids in order.
    pub fn add_nodes(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_node()).collect()
    }

    /// Returns the id of the node with raw index `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.node_count()`.
    #[must_use]
    pub fn node(&self, index: usize) -> NodeId {
        assert!(
            index < self.node_count(),
            "node index {index} out of bounds (graph has {} nodes)",
            self.node_count()
        );
        NodeId::new(index)
    }

    /// Returns whether `node` is a valid id for this graph.
    #[must_use]
    pub fn contains_node(&self, node: NodeId) -> bool {
        node.index() < self.node_count()
    }

    fn check_node(&self, node: NodeId) -> Result<(), GraphError> {
        if self.contains_node(node) {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfBounds {
                node,
                node_count: self.node_count(),
            })
        }
    }

    /// Adds a directed arc from `src` to `dst` with the given capacity.
    ///
    /// If the arc already exists, the capacities are summed (the paper's
    /// §3.1 rule for multi-arcs) and the existing id is returned.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if either endpoint does not
    /// exist, [`GraphError::SelfLoop`] if `src == dst`, and
    /// [`GraphError::ZeroCapacity`] if `capacity == 0`.
    pub fn add_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        capacity: u32,
    ) -> Result<EdgeId, GraphError> {
        self.check_node(src)?;
        self.check_node(dst)?;
        if src == dst {
            return Err(GraphError::SelfLoop { node: src });
        }
        if capacity == 0 {
            return Err(GraphError::ZeroCapacity { src, dst });
        }
        if let Some(&id) = self.edge_lookup.get(&(src, dst)) {
            self.edges[id.index()].capacity += capacity;
            return Ok(id);
        }
        let id = EdgeId::new(self.edges.len());
        self.edges.push(Edge { src, dst, capacity });
        self.out_adj[src.index()].push(id);
        self.in_adj[dst.index()].push(id);
        self.edge_lookup.insert((src, dst), id);
        Ok(id)
    }

    /// Adds both `(u, v)` and `(v, u)` with the same capacity, modelling an
    /// undirected overlay link. Returns the two arc ids `(u→v, v→u)`.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`DiGraph::add_edge`].
    pub fn add_edge_symmetric(
        &mut self,
        u: NodeId,
        v: NodeId,
        capacity: u32,
    ) -> Result<(EdgeId, EdgeId), GraphError> {
        let forward = self.add_edge(u, v, capacity)?;
        let backward = self.add_edge(v, u, capacity)?;
        Ok((forward, backward))
    }

    /// Number of nodes in the graph.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.out_adj.len()
    }

    /// Number of directed arcs in the graph.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns the edge record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    #[must_use]
    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id.index()]
    }

    /// Capacity of arc `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    #[must_use]
    pub fn capacity(&self, id: EdgeId) -> u32 {
        self.edges[id.index()].capacity
    }

    /// Overwrites the capacity of arc `id`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::ZeroCapacity`] if `capacity == 0`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn set_capacity(&mut self, id: EdgeId, capacity: u32) -> Result<(), GraphError> {
        let edge = self.edges[id.index()];
        if capacity == 0 {
            return Err(GraphError::ZeroCapacity {
                src: edge.src,
                dst: edge.dst,
            });
        }
        self.edges[id.index()].capacity = capacity;
        Ok(())
    }

    /// Looks up the arc from `src` to `dst`, if present.
    #[must_use]
    pub fn find_edge(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        self.edge_lookup.get(&(src, dst)).copied()
    }

    /// Returns whether an arc from `src` to `dst` exists.
    #[must_use]
    pub fn has_edge(&self, src: NodeId, dst: NodeId) -> bool {
        self.find_edge(src, dst).is_some()
    }

    /// Iterates over all node ids in index order.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::new)
    }

    /// Iterates over all edge ids in insertion order.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        (0..self.edge_count()).map(EdgeId::new)
    }

    /// Iterates over all edges in insertion order.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = Edge> + '_ {
        self.edges.iter().copied()
    }

    /// Ids of arcs leaving `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn out_edges(&self, v: NodeId) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        self.out_adj[v.index()].iter().copied()
    }

    /// Ids of arcs entering `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn in_edges(&self, v: NodeId) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        self.in_adj[v.index()].iter().copied()
    }

    /// Nodes reachable from `v` along a single arc.
    pub fn out_neighbors(&self, v: NodeId) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        self.out_adj[v.index()]
            .iter()
            .map(|&e| self.edges[e.index()].dst)
    }

    /// Nodes with a single arc into `v`.
    pub fn in_neighbors(&self, v: NodeId) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        self.in_adj[v.index()]
            .iter()
            .map(|&e| self.edges[e.index()].src)
    }

    /// Nodes adjacent to `v` in either direction, deduplicated, in
    /// ascending id order. This is the neighbour set used by the LOCD
    /// knowledge model (§4.1: information travels bidirectionally).
    #[must_use]
    pub fn neighbors_undirected(&self, v: NodeId) -> Vec<NodeId> {
        let mut all: Vec<NodeId> = self.out_neighbors(v).chain(self.in_neighbors(v)).collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// Number of arcs leaving `v`.
    #[must_use]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_adj[v.index()].len()
    }

    /// Number of arcs entering `v`.
    #[must_use]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_adj[v.index()].len()
    }

    /// Total capacity of arcs entering `v` (tokens per timestep that `v`
    /// can receive). Used by the paper's `M_i(v)` lower bound (§5.1).
    #[must_use]
    pub fn in_capacity(&self, v: NodeId) -> u64 {
        self.in_adj[v.index()]
            .iter()
            .map(|&e| u64::from(self.edges[e.index()].capacity))
            .sum()
    }

    /// Total capacity of arcs leaving `v`.
    #[must_use]
    pub fn out_capacity(&self, v: NodeId) -> u64 {
        self.out_adj[v.index()]
            .iter()
            .map(|&e| u64::from(self.edges[e.index()].capacity))
            .sum()
    }

    /// Sum of all arc capacities.
    #[must_use]
    pub fn total_capacity(&self) -> u64 {
        self.edges.iter().map(|e| u64::from(e.capacity)).sum()
    }

    /// Returns the graph with every arc reversed (capacities preserved).
    #[must_use]
    pub fn reversed(&self) -> DiGraph {
        let mut g = DiGraph::with_nodes(self.node_count());
        for e in &self.edges {
            g.add_edge(e.dst, e.src, e.capacity)
                .expect("reversing a valid edge cannot fail");
        }
        g
    }

    /// Returns whether for every arc `(u, v)` the reverse arc `(v, u)` also
    /// exists (capacities may differ).
    #[must_use]
    pub fn is_symmetric(&self) -> bool {
        self.edges.iter().all(|e| self.has_edge(e.dst, e.src))
    }
}

impl fmt::Debug for DiGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DiGraph {{ nodes: {}, edges: [", self.node_count())?;
        for e in &self.edges {
            writeln!(f, "  {} -> {} (cap {}),", e.src, e.dst, e.capacity)?;
        }
        write!(f, "] }}")
    }
}

impl PartialEq for DiGraph {
    fn eq(&self, other: &Self) -> bool {
        self.node_count() == other.node_count() && self.edges == other.edges
    }
}

impl Eq for DiGraph {}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (DiGraph, NodeId, NodeId, NodeId) {
        let mut g = DiGraph::with_nodes(3);
        let (a, b, c) = (g.node(0), g.node(1), g.node(2));
        g.add_edge(a, b, 1).unwrap();
        g.add_edge(b, c, 2).unwrap();
        g.add_edge(c, a, 3).unwrap();
        (g, a, b, c)
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::new();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.total_capacity(), 0);
    }

    #[test]
    fn add_nodes_assigns_dense_ids() {
        let mut g = DiGraph::new();
        let ids = g.add_nodes(4);
        assert_eq!(
            ids.iter().map(|n| n.index()).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(g.node_count(), 4);
    }

    #[test]
    fn parallel_arc_merges_capacity() {
        let mut g = DiGraph::with_nodes(2);
        let e1 = g.add_edge(g.node(0), g.node(1), 3).unwrap();
        let e2 = g.add_edge(g.node(0), g.node(1), 4).unwrap();
        assert_eq!(e1, e2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.capacity(e1), 7);
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = DiGraph::with_nodes(1);
        let v = g.node(0);
        assert_eq!(g.add_edge(v, v, 1), Err(GraphError::SelfLoop { node: v }));
    }

    #[test]
    fn zero_capacity_rejected() {
        let mut g = DiGraph::with_nodes(2);
        let err = g.add_edge(g.node(0), g.node(1), 0).unwrap_err();
        assert!(matches!(err, GraphError::ZeroCapacity { .. }));
    }

    #[test]
    fn out_of_bounds_node_rejected() {
        let mut g = DiGraph::with_nodes(2);
        let bogus = NodeId::new(5);
        let err = g.add_edge(g.node(0), bogus, 1).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfBounds { .. }));
    }

    #[test]
    fn adjacency_is_consistent() {
        let (g, a, b, c) = triangle();
        assert_eq!(g.out_neighbors(a).collect::<Vec<_>>(), vec![b]);
        assert_eq!(g.in_neighbors(a).collect::<Vec<_>>(), vec![c]);
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.in_degree(a), 1);
        assert_eq!(g.in_capacity(c), 2);
        assert_eq!(g.out_capacity(c), 3);
        assert_eq!(g.total_capacity(), 6);
    }

    #[test]
    fn neighbors_undirected_deduplicates() {
        let mut g = DiGraph::with_nodes(2);
        let (a, b) = (g.node(0), g.node(1));
        g.add_edge_symmetric(a, b, 1).unwrap();
        assert_eq!(g.neighbors_undirected(a), vec![b]);
    }

    #[test]
    fn find_edge_and_has_edge() {
        let (g, a, b, _) = triangle();
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a));
        let e = g.find_edge(a, b).unwrap();
        assert_eq!(g.edge(e).src, a);
        assert_eq!(g.edge(e).dst, b);
    }

    #[test]
    fn reversed_swaps_direction() {
        let (g, a, b, _) = triangle();
        let r = g.reversed();
        assert!(r.has_edge(b, a));
        assert!(!r.has_edge(a, b));
        assert_eq!(r.edge_count(), g.edge_count());
        assert_eq!(r.total_capacity(), g.total_capacity());
    }

    #[test]
    fn symmetric_detection() {
        let (g, ..) = triangle();
        assert!(!g.is_symmetric());
        let mut s = DiGraph::with_nodes(2);
        s.add_edge_symmetric(s.node(0), s.node(1), 2).unwrap();
        assert!(s.is_symmetric());
    }

    #[test]
    fn set_capacity_updates_and_validates() {
        let (mut g, a, b, _) = triangle();
        let e = g.find_edge(a, b).unwrap();
        g.set_capacity(e, 9).unwrap();
        assert_eq!(g.capacity(e), 9);
        assert!(g.set_capacity(e, 0).is_err());
        assert_eq!(g.capacity(e), 9, "failed update must not clobber capacity");
    }

    #[test]
    fn serde_round_trip_preserves_lookup() {
        let (g, a, b, _) = triangle();
        let json = serde_json::to_string(&g).unwrap();
        let g2: DiGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, g2);
        assert_eq!(g2.find_edge(a, b), g.find_edge(a, b));
        assert_eq!(g2.out_neighbors(a).count(), g.out_neighbors(a).count());
    }

    #[test]
    fn serde_rejects_invalid_graphs() {
        // Self-loop smuggled into the serialized form.
        let bad = r#"{"node_count": 2, "edges": [{"src": 0, "dst": 0, "capacity": 1}]}"#;
        let err = serde_json::from_str::<DiGraph>(bad).unwrap_err();
        assert!(err.to_string().contains("self-loop"));
        let oob = r#"{"node_count": 1, "edges": [{"src": 0, "dst": 5, "capacity": 1}]}"#;
        assert!(serde_json::from_str::<DiGraph>(oob).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn node_accessor_panics_out_of_bounds() {
        let g = DiGraph::with_nodes(1);
        let _ = g.node(1);
    }
}
