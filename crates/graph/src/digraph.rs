//! The core directed graph data structure, stored in CSR form.

use crate::{EdgeId, GraphError, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;

/// A directed edge (arc) with an integer capacity.
///
/// Capacity is the number of tokens the arc can carry in a single timestep
/// (paper §3.1: "any number of tokens, up to the capacity of the link, can
/// be transferred across a link in unit time").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Source node of the arc.
    pub src: NodeId,
    /// Destination node of the arc.
    pub dst: NodeId,
    /// Tokens per timestep the arc can carry. Always at least 1.
    pub capacity: u32,
}

/// Sentinel terminating the intrusive adjacency lists. An arc id of
/// `u32::MAX` is unreachable in practice (the arc arrays alone would need
/// > 48 GiB), so the sentinel cannot collide with a real arc.
const NIL: u32 = u32::MAX;

/// The lazily built compressed-sparse-row index: all arcs sorted by
/// endpoint with per-node offset ranges, in both directions. Within a
/// node's range, arcs appear in insertion order (the build is a stable
/// counting sort over ascending arc ids), matching the iteration order of
/// the old per-node `Vec<EdgeId>` adjacency exactly.
#[derive(Debug)]
struct CsrIndex {
    /// `out_start[v]..out_start[v + 1]` indexes `out_arcs` for node `v`.
    out_start: Vec<u32>,
    /// Arc ids grouped by source node, insertion order within a node.
    out_arcs: Vec<EdgeId>,
    /// `in_start[v]..in_start[v + 1]` indexes `in_arcs` for node `v`.
    in_start: Vec<u32>,
    /// Arc ids grouped by destination node, insertion order within a node.
    in_arcs: Vec<EdgeId>,
}

impl CsrIndex {
    fn out_range(&self, v: NodeId) -> std::ops::Range<usize> {
        self.out_start[v.index()] as usize..self.out_start[v.index() + 1] as usize
    }

    fn in_range(&self, v: NodeId) -> std::ops::Range<usize> {
        self.in_start[v.index()] as usize..self.in_start[v.index() + 1] as usize
    }
}

/// A simple, weighted, directed graph.
///
/// Nodes and edges are identified by dense indices ([`NodeId`], [`EdgeId`])
/// assigned in insertion order.
///
/// # Representation
///
/// Arcs live in flat struct-of-arrays storage (`arc_src` / `arc_dst` /
/// `arc_cap`, indexed by [`EdgeId`]) so capacity scans touch one dense
/// array. Adjacency queries are served from a compressed-sparse-row index
/// — all arc ids counting-sorted by endpoint, with per-node offset ranges
/// — built lazily on first query and cached until the next structural
/// mutation. During construction bursts the cache stays cold and duplicate
/// detection walks small intrusive linked lists threaded through the arc
/// arrays instead, so interleaving `add_edge` with `has_edge` (as the
/// generators do) never pays for an index rebuild.
///
/// Invariants:
///
/// - No self-loops (the OCD base graph is simple; self-arcs appear only in
///   the integer-program extension handled by `ocd-solver`).
/// - No parallel arcs: re-adding an arc sums its capacity into the existing
///   one and returns the existing [`EdgeId`].
/// - Every arc has capacity ≥ 1.
///
/// # Examples
///
/// ```
/// use ocd_graph::DiGraph;
///
/// let mut g = DiGraph::with_nodes(3);
/// let (a, b, c) = (g.node(0), g.node(1), g.node(2));
/// g.add_edge(a, b, 2).unwrap();
/// g.add_edge_symmetric(b, c, 5).unwrap();
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 3);
/// assert_eq!(g.in_capacity(c), 5);
/// assert_eq!(g.out_degree(b), 1);
/// ```
#[derive(Default)]
pub struct DiGraph {
    /// Source node of each arc, indexed by [`EdgeId`].
    arc_src: Vec<NodeId>,
    /// Destination node of each arc, indexed by [`EdgeId`].
    arc_dst: Vec<NodeId>,
    /// Capacity of each arc, indexed by [`EdgeId`].
    arc_cap: Vec<u32>,
    /// Head of each node's out-arc list (`NIL` = empty), newest first.
    first_out: Vec<u32>,
    /// Head of each node's in-arc list (`NIL` = empty), newest first.
    first_in: Vec<u32>,
    /// Next arc in the source node's out-list, indexed by arc.
    next_out: Vec<u32>,
    /// Next arc in the destination node's in-list, indexed by arc.
    next_in: Vec<u32>,
    /// Out-degree per node, maintained incrementally so degree queries and
    /// shorter-side duplicate scans never force an index build.
    out_deg: Vec<u32>,
    /// In-degree per node.
    in_deg: Vec<u32>,
    /// Lazily built CSR index; cleared by structural mutations. Capacity
    /// updates do not clear it (the index stores no capacities).
    csr: OnceLock<CsrIndex>,
}

/// Serialized form: node count plus the edge list. Adjacency and the CSR
/// index are derived, so deserialization rebuilds them — re-validating the
/// invariants and rejecting duplicate arcs outright (a duplicated arc in a
/// hand-edited file is a data error, not a request to merge capacities).
#[derive(Serialize, Deserialize)]
struct DiGraphRepr {
    node_count: usize,
    edges: Vec<Edge>,
}

impl Serialize for DiGraph {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        DiGraphRepr {
            node_count: self.node_count(),
            edges: self.edges().collect(),
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for DiGraph {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::de::Error as _;
        let repr = DiGraphRepr::deserialize(deserializer)?;
        DiGraph::from_edges(repr.node_count, repr.edges)
            .map_err(|err| D::Error::custom(err.to_string()))
    }
}

impl Clone for DiGraph {
    fn clone(&self) -> Self {
        // The CSR cache is intentionally not cloned: the clone rebuilds it
        // on first query, keeping clones cheap and the cache un-shared.
        DiGraph {
            arc_src: self.arc_src.clone(),
            arc_dst: self.arc_dst.clone(),
            arc_cap: self.arc_cap.clone(),
            first_out: self.first_out.clone(),
            first_in: self.first_in.clone(),
            next_out: self.next_out.clone(),
            next_in: self.next_in.clone(),
            out_deg: self.out_deg.clone(),
            in_deg: self.in_deg.clone(),
            csr: OnceLock::new(),
        }
    }
}

impl DiGraph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        DiGraph::default()
    }

    /// Creates a graph with `n` nodes and no edges.
    #[must_use]
    pub fn with_nodes(n: usize) -> Self {
        DiGraph {
            first_out: vec![NIL; n],
            first_in: vec![NIL; n],
            out_deg: vec![0; n],
            in_deg: vec![0; n],
            ..DiGraph::default()
        }
    }

    /// Builds a graph from a node count and an edge list, validating every
    /// arc and rejecting duplicates (unlike [`DiGraph::add_edge`], which
    /// merges them). Storage is reserved up front, so construction is
    /// `O(n + Σ min-degree)` with no reallocation.
    ///
    /// # Errors
    ///
    /// Returns the usual per-arc errors (out-of-bounds, self-loop, zero
    /// capacity) and [`GraphError::DuplicateArc`] if the same `(src, dst)`
    /// pair appears twice.
    pub fn from_edges(
        node_count: usize,
        edges: impl IntoIterator<Item = Edge>,
    ) -> Result<Self, GraphError> {
        let edges = edges.into_iter();
        let mut g = DiGraph::with_nodes(node_count);
        let (lower, _) = edges.size_hint();
        g.reserve_edges(lower);
        for e in edges {
            g.check_arc(e.src, e.dst, e.capacity)?;
            if g.find_edge(e.src, e.dst).is_some() {
                return Err(GraphError::DuplicateArc {
                    src: e.src,
                    dst: e.dst,
                });
            }
            g.push_arc(e.src, e.dst, e.capacity);
        }
        Ok(g)
    }

    /// Reserves storage for at least `additional` more arcs.
    pub fn reserve_edges(&mut self, additional: usize) {
        self.arc_src.reserve(additional);
        self.arc_dst.reserve(additional);
        self.arc_cap.reserve(additional);
        self.next_out.reserve(additional);
        self.next_in.reserve(additional);
    }

    /// Adds a new isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::new(self.first_out.len());
        self.first_out.push(NIL);
        self.first_in.push(NIL);
        self.out_deg.push(0);
        self.in_deg.push(0);
        self.csr.take();
        id
    }

    /// Adds `n` new isolated nodes and returns their ids in order.
    pub fn add_nodes(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_node()).collect()
    }

    /// Returns the id of the node with raw index `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.node_count()`.
    #[must_use]
    pub fn node(&self, index: usize) -> NodeId {
        assert!(
            index < self.node_count(),
            "node index {index} out of bounds (graph has {} nodes)",
            self.node_count()
        );
        NodeId::new(index)
    }

    /// Returns whether `node` is a valid id for this graph.
    #[must_use]
    pub fn contains_node(&self, node: NodeId) -> bool {
        node.index() < self.node_count()
    }

    fn check_node(&self, node: NodeId) -> Result<(), GraphError> {
        if self.contains_node(node) {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfBounds {
                node,
                node_count: self.node_count(),
            })
        }
    }

    fn check_arc(&self, src: NodeId, dst: NodeId, capacity: u32) -> Result<(), GraphError> {
        self.check_node(src)?;
        self.check_node(dst)?;
        if src == dst {
            return Err(GraphError::SelfLoop { node: src });
        }
        if capacity == 0 {
            return Err(GraphError::ZeroCapacity { src, dst });
        }
        Ok(())
    }

    /// Appends a pre-validated, known-absent arc.
    fn push_arc(&mut self, src: NodeId, dst: NodeId, capacity: u32) -> EdgeId {
        let id = EdgeId::new(self.arc_src.len());
        self.arc_src.push(src);
        self.arc_dst.push(dst);
        self.arc_cap.push(capacity);
        self.next_out.push(self.first_out[src.index()]);
        self.first_out[src.index()] = id.0;
        self.next_in.push(self.first_in[dst.index()]);
        self.first_in[dst.index()] = id.0;
        self.out_deg[src.index()] += 1;
        self.in_deg[dst.index()] += 1;
        self.csr.take();
        id
    }

    /// Adds a directed arc from `src` to `dst` with the given capacity.
    ///
    /// If the arc already exists, the capacities are summed (the paper's
    /// §3.1 rule for multi-arcs) and the existing id is returned.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if either endpoint does not
    /// exist, [`GraphError::SelfLoop`] if `src == dst`, and
    /// [`GraphError::ZeroCapacity`] if `capacity == 0`.
    pub fn add_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        capacity: u32,
    ) -> Result<EdgeId, GraphError> {
        self.check_arc(src, dst, capacity)?;
        if let Some(id) = self.find_edge(src, dst) {
            self.arc_cap[id.index()] += capacity;
            return Ok(id);
        }
        Ok(self.push_arc(src, dst, capacity))
    }

    /// Adds both `(u, v)` and `(v, u)` with the same capacity, modelling an
    /// undirected overlay link. Returns the two arc ids `(u→v, v→u)`.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`DiGraph::add_edge`].
    pub fn add_edge_symmetric(
        &mut self,
        u: NodeId,
        v: NodeId,
        capacity: u32,
    ) -> Result<(EdgeId, EdgeId), GraphError> {
        let forward = self.add_edge(u, v, capacity)?;
        let backward = self.add_edge(v, u, capacity)?;
        Ok((forward, backward))
    }

    /// Number of nodes in the graph.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.first_out.len()
    }

    /// Number of directed arcs in the graph.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.arc_src.len()
    }

    /// Returns the edge record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    #[must_use]
    pub fn edge(&self, id: EdgeId) -> Edge {
        Edge {
            src: self.arc_src[id.index()],
            dst: self.arc_dst[id.index()],
            capacity: self.arc_cap[id.index()],
        }
    }

    /// Capacity of arc `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    #[must_use]
    pub fn capacity(&self, id: EdgeId) -> u32 {
        self.arc_cap[id.index()]
    }

    /// Overwrites the capacity of arc `id`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::ZeroCapacity`] if `capacity == 0`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn set_capacity(&mut self, id: EdgeId, capacity: u32) -> Result<(), GraphError> {
        if capacity == 0 {
            return Err(GraphError::ZeroCapacity {
                src: self.arc_src[id.index()],
                dst: self.arc_dst[id.index()],
            });
        }
        self.arc_cap[id.index()] = capacity;
        Ok(())
    }

    /// The CSR index, built on first use after a structural mutation.
    fn csr(&self) -> &CsrIndex {
        self.csr.get_or_init(|| {
            let n = self.node_count();
            let (out_start, out_arcs) = Self::build_index(n, &self.arc_src);
            let (in_start, in_arcs) = Self::build_index(n, &self.arc_dst);
            CsrIndex {
                out_start,
                out_arcs,
                in_start,
                in_arcs,
            }
        })
    }

    /// Stable counting sort of all arc ids by `endpoints[arc]`: ascending
    /// arc id within each node, i.e. insertion order.
    fn build_index(n: usize, endpoints: &[NodeId]) -> (Vec<u32>, Vec<EdgeId>) {
        let mut start = vec![0u32; n + 1];
        for v in endpoints {
            start[v.index() + 1] += 1;
        }
        for i in 0..n {
            start[i + 1] += start[i];
        }
        let mut arcs = vec![EdgeId(0); endpoints.len()];
        let mut cursor: Vec<u32> = start[..n].to_vec();
        for (a, v) in endpoints.iter().enumerate() {
            arcs[cursor[v.index()] as usize] = EdgeId::new(a);
            cursor[v.index()] += 1;
        }
        (start, arcs)
    }

    /// Looks up the arc from `src` to `dst`, if present. Scans the sparser
    /// endpoint's adjacency (`O(min(out-degree, in-degree))`), through the
    /// CSR index when it is warm or the intrusive lists while mutating.
    #[must_use]
    pub fn find_edge(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        if !self.contains_node(src) || !self.contains_node(dst) {
            return None;
        }
        if self.out_deg[src.index()] <= self.in_deg[dst.index()] {
            if let Some(csr) = self.csr.get() {
                csr.out_arcs[csr.out_range(src)]
                    .iter()
                    .copied()
                    .find(|&e| self.arc_dst[e.index()] == dst)
            } else {
                let mut a = self.first_out[src.index()];
                while a != NIL {
                    if self.arc_dst[a as usize] == dst {
                        return Some(EdgeId(a));
                    }
                    a = self.next_out[a as usize];
                }
                None
            }
        } else if let Some(csr) = self.csr.get() {
            csr.in_arcs[csr.in_range(dst)]
                .iter()
                .copied()
                .find(|&e| self.arc_src[e.index()] == src)
        } else {
            let mut a = self.first_in[dst.index()];
            while a != NIL {
                if self.arc_src[a as usize] == src {
                    return Some(EdgeId(a));
                }
                a = self.next_in[a as usize];
            }
            None
        }
    }

    /// Returns whether an arc from `src` to `dst` exists.
    #[must_use]
    pub fn has_edge(&self, src: NodeId, dst: NodeId) -> bool {
        self.find_edge(src, dst).is_some()
    }

    /// Iterates over all node ids in index order.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::new)
    }

    /// Iterates over all edge ids in insertion order.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        (0..self.edge_count()).map(EdgeId::new)
    }

    /// Iterates over all edges in insertion order.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = Edge> + '_ {
        self.edge_ids().map(|e| self.edge(e))
    }

    /// Ids of arcs leaving `v`, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn out_edges(&self, v: NodeId) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        let csr = self.csr();
        csr.out_arcs[csr.out_range(v)].iter().copied()
    }

    /// Ids of arcs entering `v`, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn in_edges(&self, v: NodeId) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        let csr = self.csr();
        csr.in_arcs[csr.in_range(v)].iter().copied()
    }

    /// Nodes reachable from `v` along a single arc.
    pub fn out_neighbors(&self, v: NodeId) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        self.out_edges(v).map(|e| self.arc_dst[e.index()])
    }

    /// Nodes with a single arc into `v`.
    pub fn in_neighbors(&self, v: NodeId) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        self.in_edges(v).map(|e| self.arc_src[e.index()])
    }

    /// Nodes adjacent to `v` in either direction, deduplicated, in
    /// ascending id order. This is the neighbour set used by the LOCD
    /// knowledge model (§4.1: information travels bidirectionally).
    #[must_use]
    pub fn neighbors_undirected(&self, v: NodeId) -> Vec<NodeId> {
        let mut all: Vec<NodeId> = self.out_neighbors(v).chain(self.in_neighbors(v)).collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// Number of arcs leaving `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[must_use]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_deg[v.index()] as usize
    }

    /// Number of arcs entering `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[must_use]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_deg[v.index()] as usize
    }

    /// Total capacity of arcs entering `v` (tokens per timestep that `v`
    /// can receive). Used by the paper's `M_i(v)` lower bound (§5.1).
    #[must_use]
    pub fn in_capacity(&self, v: NodeId) -> u64 {
        self.in_edges(v)
            .map(|e| u64::from(self.arc_cap[e.index()]))
            .sum()
    }

    /// Total capacity of arcs leaving `v`.
    #[must_use]
    pub fn out_capacity(&self, v: NodeId) -> u64 {
        self.out_edges(v)
            .map(|e| u64::from(self.arc_cap[e.index()]))
            .sum()
    }

    /// Sum of all arc capacities.
    #[must_use]
    pub fn total_capacity(&self) -> u64 {
        self.arc_cap.iter().map(|&c| u64::from(c)).sum()
    }

    /// Estimated heap usage of the graph in bytes: arc storage, intrusive
    /// lists, degree arrays, and the CSR index if currently built. Used by
    /// the scale experiments' bytes-per-vertex column.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let arcs = self.arc_src.capacity() * size_of::<NodeId>()
            + self.arc_dst.capacity() * size_of::<NodeId>()
            + self.arc_cap.capacity() * size_of::<u32>()
            + self.next_out.capacity() * size_of::<u32>()
            + self.next_in.capacity() * size_of::<u32>();
        let nodes = self.first_out.capacity() * size_of::<u32>()
            + self.first_in.capacity() * size_of::<u32>()
            + self.out_deg.capacity() * size_of::<u32>()
            + self.in_deg.capacity() * size_of::<u32>();
        let csr = self.csr.get().map_or(0, |c| {
            c.out_start.capacity() * size_of::<u32>()
                + c.in_start.capacity() * size_of::<u32>()
                + c.out_arcs.capacity() * size_of::<EdgeId>()
                + c.in_arcs.capacity() * size_of::<EdgeId>()
        });
        arcs + nodes + csr
    }

    /// Returns the graph with every arc reversed (capacities preserved).
    #[must_use]
    pub fn reversed(&self) -> DiGraph {
        let mut g = DiGraph::with_nodes(self.node_count());
        g.reserve_edges(self.edge_count());
        for e in self.edges() {
            g.add_edge(e.dst, e.src, e.capacity)
                .expect("reversing a valid edge cannot fail");
        }
        g
    }

    /// Returns whether for every arc `(u, v)` the reverse arc `(v, u)` also
    /// exists (capacities may differ).
    #[must_use]
    pub fn is_symmetric(&self) -> bool {
        self.edges().all(|e| self.has_edge(e.dst, e.src))
    }
}

impl fmt::Debug for DiGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DiGraph {{ nodes: {}, edges: [", self.node_count())?;
        for e in self.edges() {
            writeln!(f, "  {} -> {} (cap {}),", e.src, e.dst, e.capacity)?;
        }
        write!(f, "] }}")
    }
}

impl PartialEq for DiGraph {
    fn eq(&self, other: &Self) -> bool {
        self.node_count() == other.node_count()
            && self.arc_src == other.arc_src
            && self.arc_dst == other.arc_dst
            && self.arc_cap == other.arc_cap
    }
}

impl Eq for DiGraph {}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (DiGraph, NodeId, NodeId, NodeId) {
        let mut g = DiGraph::with_nodes(3);
        let (a, b, c) = (g.node(0), g.node(1), g.node(2));
        g.add_edge(a, b, 1).unwrap();
        g.add_edge(b, c, 2).unwrap();
        g.add_edge(c, a, 3).unwrap();
        (g, a, b, c)
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::new();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.total_capacity(), 0);
    }

    #[test]
    fn add_nodes_assigns_dense_ids() {
        let mut g = DiGraph::new();
        let ids = g.add_nodes(4);
        assert_eq!(
            ids.iter().map(|n| n.index()).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(g.node_count(), 4);
    }

    #[test]
    fn parallel_arc_merges_capacity() {
        let mut g = DiGraph::with_nodes(2);
        let e1 = g.add_edge(g.node(0), g.node(1), 3).unwrap();
        let e2 = g.add_edge(g.node(0), g.node(1), 4).unwrap();
        assert_eq!(e1, e2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.capacity(e1), 7);
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = DiGraph::with_nodes(1);
        let v = g.node(0);
        assert_eq!(g.add_edge(v, v, 1), Err(GraphError::SelfLoop { node: v }));
    }

    #[test]
    fn zero_capacity_rejected() {
        let mut g = DiGraph::with_nodes(2);
        let err = g.add_edge(g.node(0), g.node(1), 0).unwrap_err();
        assert!(matches!(err, GraphError::ZeroCapacity { .. }));
    }

    #[test]
    fn out_of_bounds_node_rejected() {
        let mut g = DiGraph::with_nodes(2);
        let bogus = NodeId::new(5);
        let err = g.add_edge(g.node(0), bogus, 1).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfBounds { .. }));
    }

    #[test]
    fn adjacency_is_consistent() {
        let (g, a, b, c) = triangle();
        assert_eq!(g.out_neighbors(a).collect::<Vec<_>>(), vec![b]);
        assert_eq!(g.in_neighbors(a).collect::<Vec<_>>(), vec![c]);
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.in_degree(a), 1);
        assert_eq!(g.in_capacity(c), 2);
        assert_eq!(g.out_capacity(c), 3);
        assert_eq!(g.total_capacity(), 6);
    }

    #[test]
    fn csr_survives_interleaved_mutation() {
        // Query (forcing an index build), then mutate, then query again:
        // the rebuilt index must reflect the mutation.
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(g.node(0), g.node(1), 1).unwrap();
        assert_eq!(g.out_degree(g.node(0)), 1);
        assert_eq!(g.out_edges(g.node(0)).count(), 1);
        g.add_edge(g.node(0), g.node(2), 1).unwrap();
        g.add_edge(g.node(3), g.node(0), 1).unwrap();
        assert_eq!(
            g.out_neighbors(g.node(0)).collect::<Vec<_>>(),
            vec![g.node(1), g.node(2)],
            "insertion order within a node"
        );
        assert_eq!(
            g.in_neighbors(g.node(0)).collect::<Vec<_>>(),
            vec![g.node(3)]
        );
        assert_eq!(g.find_edge(g.node(0), g.node(2)), Some(EdgeId::new(1)));
    }

    #[test]
    fn out_edges_iterate_in_insertion_order() {
        let mut g = DiGraph::with_nodes(5);
        // Interleave sources so CSR grouping has to reorder arc ids.
        g.add_edge(g.node(2), g.node(0), 1).unwrap();
        g.add_edge(g.node(1), g.node(3), 1).unwrap();
        g.add_edge(g.node(2), g.node(4), 1).unwrap();
        g.add_edge(g.node(1), g.node(0), 1).unwrap();
        g.add_edge(g.node(2), g.node(3), 1).unwrap();
        let out2: Vec<usize> = g.out_edges(g.node(2)).map(|e| e.index()).collect();
        assert_eq!(out2, vec![0, 2, 4]);
        let out1: Vec<usize> = g.out_edges(g.node(1)).map(|e| e.index()).collect();
        assert_eq!(out1, vec![1, 3]);
        let in0: Vec<usize> = g.in_edges(g.node(0)).map(|e| e.index()).collect();
        assert_eq!(in0, vec![0, 3]);
    }

    #[test]
    fn neighbors_undirected_deduplicates() {
        let mut g = DiGraph::with_nodes(2);
        let (a, b) = (g.node(0), g.node(1));
        g.add_edge_symmetric(a, b, 1).unwrap();
        assert_eq!(g.neighbors_undirected(a), vec![b]);
    }

    #[test]
    fn find_edge_and_has_edge() {
        let (g, a, b, _) = triangle();
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a));
        let e = g.find_edge(a, b).unwrap();
        assert_eq!(g.edge(e).src, a);
        assert_eq!(g.edge(e).dst, b);
        assert_eq!(g.find_edge(a, NodeId::new(99)), None, "oob lookup is None");
    }

    #[test]
    fn reversed_swaps_direction() {
        let (g, a, b, _) = triangle();
        let r = g.reversed();
        assert!(r.has_edge(b, a));
        assert!(!r.has_edge(a, b));
        assert_eq!(r.edge_count(), g.edge_count());
        assert_eq!(r.total_capacity(), g.total_capacity());
    }

    #[test]
    fn symmetric_detection() {
        let (g, ..) = triangle();
        assert!(!g.is_symmetric());
        let mut s = DiGraph::with_nodes(2);
        s.add_edge_symmetric(s.node(0), s.node(1), 2).unwrap();
        assert!(s.is_symmetric());
    }

    #[test]
    fn set_capacity_updates_and_validates() {
        let (mut g, a, b, _) = triangle();
        let e = g.find_edge(a, b).unwrap();
        g.set_capacity(e, 9).unwrap();
        assert_eq!(g.capacity(e), 9);
        assert!(g.set_capacity(e, 0).is_err());
        assert_eq!(g.capacity(e), 9, "failed update must not clobber capacity");
    }

    #[test]
    fn memory_bytes_tracks_growth() {
        let empty = DiGraph::with_nodes(100);
        let mut g = DiGraph::with_nodes(100);
        for i in 1..100 {
            g.add_edge(g.node(0), g.node(i), 1).unwrap();
        }
        let _ = g.out_edges(g.node(0)); // build the CSR index too
        assert!(g.memory_bytes() > empty.memory_bytes());
    }

    #[test]
    fn serde_round_trip_preserves_lookup() {
        let (g, a, b, _) = triangle();
        let json = serde_json::to_string(&g).unwrap();
        let g2: DiGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, g2);
        assert_eq!(g2.find_edge(a, b), g.find_edge(a, b));
        assert_eq!(g2.out_neighbors(a).count(), g.out_neighbors(a).count());
    }

    #[test]
    fn serde_rejects_invalid_graphs() {
        // Self-loop smuggled into the serialized form.
        let bad = r#"{"node_count": 2, "edges": [{"src": 0, "dst": 0, "capacity": 1}]}"#;
        let err = serde_json::from_str::<DiGraph>(bad).unwrap_err();
        assert!(err.to_string().contains("self-loop"));
        let oob = r#"{"node_count": 1, "edges": [{"src": 0, "dst": 5, "capacity": 1}]}"#;
        assert!(serde_json::from_str::<DiGraph>(oob).is_err());
    }

    #[test]
    fn serde_rejects_duplicate_arcs() {
        // add_edge would merge these into capacity 3; a serialized file
        // carrying a duplicate arc is malformed and must be rejected.
        let dup = r#"{"node_count": 2, "edges": [
            {"src": 0, "dst": 1, "capacity": 1},
            {"src": 0, "dst": 1, "capacity": 2}
        ]}"#;
        let err = serde_json::from_str::<DiGraph>(dup).unwrap_err();
        assert!(err.to_string().contains("duplicate arc"), "{err}");
        // The reverse direction is a different arc, not a duplicate.
        let ok = r#"{"node_count": 2, "edges": [
            {"src": 0, "dst": 1, "capacity": 1},
            {"src": 1, "dst": 0, "capacity": 2}
        ]}"#;
        assert!(serde_json::from_str::<DiGraph>(ok).is_ok());
    }

    #[test]
    fn from_edges_validates_and_preserves_order() {
        let edges = vec![
            Edge {
                src: NodeId::new(0),
                dst: NodeId::new(1),
                capacity: 2,
            },
            Edge {
                src: NodeId::new(1),
                dst: NodeId::new(2),
                capacity: 3,
            },
        ];
        let g = DiGraph::from_edges(3, edges.clone()).unwrap();
        assert_eq!(g.edges().collect::<Vec<_>>(), edges);
        let dup = DiGraph::from_edges(3, edges.iter().copied().chain([edges[0]]));
        assert_eq!(
            dup.unwrap_err(),
            GraphError::DuplicateArc {
                src: NodeId::new(0),
                dst: NodeId::new(1),
            }
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn node_accessor_panics_out_of_bounds() {
        let g = DiGraph::with_nodes(1);
        let _ = g.node(1);
    }
}
