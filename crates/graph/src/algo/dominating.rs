//! Dominating sets: validity checking, the classic greedy approximation,
//! and an exact branch-and-bound search.
//!
//! The paper's NP-hardness proof (Theorem 5, Appendix) reduces Dominating
//! Set to FOCD; `ocd-solver::reduction` builds the corresponding FOCD
//! instance and the experiments cross-check it against the exact searches
//! here. Domination is with respect to the *undirected* view of the graph
//! (a vertex dominates itself and every vertex adjacent to it in either
//! direction), matching the undirected graphs of the classical problem.

use crate::{DiGraph, NodeId};

/// Returns whether `set` is a dominating set of the undirected view of
/// `g`: every vertex is in `set` or adjacent (ignoring direction) to a
/// member of `set`.
#[must_use]
pub fn is_dominating_set(g: &DiGraph, set: &[NodeId]) -> bool {
    let mut dominated = vec![false; g.node_count()];
    for &d in set {
        dominated[d.index()] = true;
        for v in g.out_neighbors(d).chain(g.in_neighbors(d)) {
            dominated[v.index()] = true;
        }
    }
    dominated.into_iter().all(|b| b)
}

/// Closed undirected neighborhood masks for graphs of ≤ 64 nodes.
fn closed_neighborhoods(g: &DiGraph) -> Vec<u64> {
    assert!(
        g.node_count() <= 64,
        "exact dominating-set search supports at most 64 nodes, got {}",
        g.node_count()
    );
    g.nodes()
        .map(|v| {
            let mut mask = 1u64 << v.index();
            for u in g.out_neighbors(v).chain(g.in_neighbors(v)) {
                mask |= 1 << u.index();
            }
            mask
        })
        .collect()
}

/// Greedy dominating set: repeatedly pick the vertex covering the most
/// still-undominated vertices. Classic `O(log n)`-approximation.
#[must_use]
pub fn dominating_set_greedy(g: &DiGraph) -> Vec<NodeId> {
    let n = g.node_count();
    let mut dominated = vec![false; n];
    let mut remaining = n;
    let mut set = Vec::new();
    while remaining > 0 {
        let mut best = None;
        let mut best_gain = 0usize;
        for v in g.nodes() {
            let gain = std::iter::once(v)
                .chain(g.out_neighbors(v))
                .chain(g.in_neighbors(v))
                .filter(|u| !dominated[u.index()])
                .collect::<std::collections::HashSet<_>>()
                .len();
            if gain > best_gain {
                best_gain = gain;
                best = Some(v);
            }
        }
        let v = best.expect("some vertex must cover an undominated vertex (itself)");
        set.push(v);
        for u in std::iter::once(v)
            .chain(g.out_neighbors(v))
            .chain(g.in_neighbors(v))
        {
            if !dominated[u.index()] {
                dominated[u.index()] = true;
                remaining -= 1;
            }
        }
    }
    set.sort_unstable();
    set
}

/// Exact minimum dominating set via branch and bound on covering masks.
///
/// Branches on the undominated vertex with the fewest candidate
/// dominators; practical for graphs of a few dozen nodes.
///
/// # Panics
///
/// Panics if the graph has more than 64 nodes.
#[must_use]
pub fn dominating_set_exact(g: &DiGraph) -> Vec<NodeId> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let hoods = closed_neighborhoods(g);
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let greedy = dominating_set_greedy(g);
    let mut best: Vec<usize> = greedy.iter().map(|v| v.index()).collect();
    let mut current = Vec::new();
    search(&hoods, full, 0, &mut current, &mut best);
    best.sort_unstable();
    best.into_iter().map(NodeId::new).collect()
}

/// Returns whether the graph has a dominating set of size at most `k`.
///
/// # Panics
///
/// Panics if the graph has more than 64 nodes.
#[must_use]
pub fn has_dominating_set_of_size(g: &DiGraph, k: usize) -> bool {
    dominating_set_exact(g).len() <= k
}

fn search(
    hoods: &[u64],
    uncovered: u64,
    covered_by: u64,
    current: &mut Vec<usize>,
    best: &mut Vec<usize>,
) {
    if uncovered == 0 {
        if current.len() < best.len() {
            *best = current.clone();
        }
        return;
    }
    // Uncovered vertices remain, so any completion has at least
    // current.len() + 1 picks; prune if that cannot beat the incumbent.
    if current.len() + 1 >= best.len() {
        return;
    }
    let _ = covered_by;
    // Pick the uncovered vertex with the fewest candidate dominators.
    let n = hoods.len();
    let mut pick = usize::MAX;
    let mut pick_count = usize::MAX;
    let mut v = uncovered;
    while v != 0 {
        let i = v.trailing_zeros() as usize;
        v &= v - 1;
        let count = (0..n).filter(|&d| hoods[d] & (1 << i) != 0).count();
        if count < pick_count {
            pick_count = count;
            pick = i;
        }
    }
    // Every dominator candidate for `pick` is a branch.
    for d in 0..n {
        if hoods[d] & (1 << pick) != 0 {
            current.push(d);
            search(hoods, uncovered & !hoods[d], covered_by, current, best);
            current.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::classic;

    #[test]
    fn star_center_dominates() {
        let g = classic::star(6, 1, true);
        assert!(is_dominating_set(&g, &[g.node(0)]));
        assert_eq!(dominating_set_exact(&g), vec![g.node(0)]);
        assert!(has_dominating_set_of_size(&g, 1));
        assert!(!has_dominating_set_of_size(&g, 0));
    }

    #[test]
    fn empty_set_dominates_nothing() {
        let g = classic::path(3, 1, true);
        assert!(!is_dominating_set(&g, &[]));
        let empty = DiGraph::new();
        assert!(is_dominating_set(&empty, &[]));
        assert_eq!(dominating_set_exact(&empty), Vec::<NodeId>::new());
    }

    #[test]
    fn path_domination_number() {
        // Domination number of P_n is ceil(n/3).
        for n in 1..=10usize {
            let g = classic::path(n, 1, true);
            let exact = dominating_set_exact(&g);
            assert_eq!(exact.len(), n.div_ceil(3), "P_{n}");
            assert!(is_dominating_set(&g, &exact));
        }
    }

    #[test]
    fn cycle_domination_number() {
        for n in 3..=9usize {
            let g = classic::cycle(n, 1, true);
            let exact = dominating_set_exact(&g);
            assert_eq!(exact.len(), n.div_ceil(3), "C_{n}");
        }
    }

    #[test]
    fn greedy_is_valid_and_never_smaller_than_exact() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let n = rng.random_range(1..12);
            let mut g = DiGraph::with_nodes(n);
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.random_bool(0.3) {
                        g.add_edge_symmetric(g.node(u), g.node(v), 1).unwrap();
                    }
                }
            }
            let greedy = dominating_set_greedy(&g);
            let exact = dominating_set_exact(&g);
            assert!(is_dominating_set(&g, &greedy));
            assert!(is_dominating_set(&g, &exact));
            assert!(exact.len() <= greedy.len());
            // Exact is minimal: cross-check against brute force.
            let brute = brute_force_min(&g);
            assert_eq!(exact.len(), brute, "graph {g:?}");
        }
    }

    fn brute_force_min(g: &DiGraph) -> usize {
        let n = g.node_count();
        for k in 0..=n {
            if combinations(n, k).any(|set| {
                let ids: Vec<NodeId> = set.iter().map(|&i| NodeId::new(i)).collect();
                is_dominating_set(g, &ids)
            }) {
                return k;
            }
        }
        n
    }

    fn combinations(n: usize, k: usize) -> impl Iterator<Item = Vec<usize>> {
        (0u32..(1 << n)).filter_map(move |mask| {
            if mask.count_ones() as usize == k {
                Some((0..n).filter(|&i| mask & (1 << i) != 0).collect())
            } else {
                None
            }
        })
    }

    #[test]
    fn domination_respects_undirected_view() {
        // Arc 0 -> 1 only: 0 dominates 1 AND 1 dominates 0 (undirected view).
        let mut g = DiGraph::with_nodes(2);
        g.add_edge(g.node(0), g.node(1), 1).unwrap();
        assert!(is_dominating_set(&g, &[g.node(0)]));
        assert!(is_dominating_set(&g, &[g.node(1)]));
    }
}
