//! Dijkstra shortest paths with pluggable arc costs.

use crate::{DiGraph, EdgeId, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Cost model for [`dijkstra`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PathCost {
    /// Every arc costs 1; equivalent to BFS but exercised through the same
    /// machinery so that cost models can be swapped uniformly.
    Hop,
    /// Every arc costs its capacity. Used by bandwidth-flavoured Steiner
    /// heuristics where capacity is spent per traversal.
    Capacity,
    /// Every arc costs the *reciprocal rank* `ceil(K / capacity)` for a
    /// scale constant K=64: high-capacity arcs are cheap. A crude latency
    /// proxy for capacity-aware routing experiments.
    InverseCapacity,
}

impl PathCost {
    fn arc_cost(self, g: &DiGraph, e: EdgeId) -> u64 {
        match self {
            PathCost::Hop => 1,
            PathCost::Capacity => u64::from(g.capacity(e)),
            PathCost::InverseCapacity => 64u64.div_ceil(u64::from(g.capacity(e))),
        }
    }
}

/// Single-source shortest path costs from `source` under the given cost
/// model. Returns `(dist, pred)` where unreachable nodes have
/// `dist == u64::MAX` and `pred == None`.
#[must_use]
pub fn dijkstra(g: &DiGraph, source: NodeId, cost: PathCost) -> (Vec<u64>, Vec<Option<EdgeId>>) {
    let mut dist = vec![u64::MAX; g.node_count()];
    let mut pred: Vec<Option<EdgeId>> = vec![None; g.node_count()];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0;
    heap.push(Reverse((0u64, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u.index()] {
            continue;
        }
        for e in g.out_edges(u) {
            let v = g.edge(e).dst;
            let nd = d + cost.arc_cost(g, e);
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                pred[v.index()] = Some(e);
                heap.push(Reverse((nd, v)));
            }
        }
    }
    (dist, pred)
}

/// Shortest path from `source` to `target` as a list of edge ids, or
/// `None` if `target` is unreachable.
#[must_use]
pub fn shortest_path(
    g: &DiGraph,
    source: NodeId,
    target: NodeId,
    cost: PathCost,
) -> Option<Vec<EdgeId>> {
    let (dist, pred) = dijkstra(g, source, cost);
    if dist[target.index()] == u64::MAX {
        return None;
    }
    let mut path = Vec::new();
    let mut cur = target;
    while cur != source {
        let e = pred[cur.index()].expect("reachable node must have a predecessor");
        path.push(e);
        cur = g.edge(e).src;
    }
    path.reverse();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::bfs_distances;
    use crate::generate::classic;
    use crate::DiGraph;

    #[test]
    fn hop_cost_matches_bfs() {
        let g = classic::cycle(7, 3, true);
        let (d, _) = dijkstra(&g, g.node(0), PathCost::Hop);
        let b = bfs_distances(&g, g.node(0));
        for v in g.nodes() {
            assert_eq!(d[v.index()], u64::from(b[v.index()]));
        }
    }

    #[test]
    fn capacity_cost_prefers_light_arcs() {
        // 0 -> 1 with capacity 10, or 0 -> 2 -> 1 with capacities 1, 1.
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(g.node(0), g.node(1), 10).unwrap();
        g.add_edge(g.node(0), g.node(2), 1).unwrap();
        g.add_edge(g.node(2), g.node(1), 1).unwrap();
        let (d, _) = dijkstra(&g, g.node(0), PathCost::Capacity);
        assert_eq!(d[1], 2, "two unit-capacity hops beat one capacity-10 hop");
    }

    #[test]
    fn inverse_capacity_prefers_fat_arcs() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(g.node(0), g.node(1), 1).unwrap(); // direct, thin
        g.add_edge(g.node(0), g.node(2), 64).unwrap();
        g.add_edge(g.node(2), g.node(1), 64).unwrap();
        let (d, _) = dijkstra(&g, g.node(0), PathCost::InverseCapacity);
        assert_eq!(
            d[1], 2,
            "two fat hops (cost 1+1) beat one thin hop (cost 64)"
        );
    }

    #[test]
    fn shortest_path_reconstructs_edges() {
        let g = classic::path(4, 1, true);
        let p = shortest_path(&g, g.node(0), g.node(3), PathCost::Hop).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(g.edge(p[0]).src, g.node(0));
        assert_eq!(g.edge(p[2]).dst, g.node(3));
        // Consecutive edges chain.
        for w in p.windows(2) {
            assert_eq!(g.edge(w[0]).dst, g.edge(w[1]).src);
        }
    }

    #[test]
    fn unreachable_target_yields_none() {
        let mut g = DiGraph::with_nodes(2);
        g.add_edge(g.node(1), g.node(0), 1).unwrap();
        assert!(shortest_path(&g, g.node(0), g.node(1), PathCost::Hop).is_none());
    }

    #[test]
    fn path_to_self_is_empty() {
        let g = classic::path(3, 1, true);
        let p = shortest_path(&g, g.node(1), g.node(1), PathCost::Hop).unwrap();
        assert!(p.is_empty());
    }
}
