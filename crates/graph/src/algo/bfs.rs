//! Breadth-first search: hop distances, BFS trees, and radius queries.

use super::UNREACHABLE;
use crate::{DiGraph, NodeId};
use std::collections::VecDeque;

/// Hop distances from `source` to every node, following arc directions.
///
/// Unreachable nodes get [`UNREACHABLE`].
///
/// # Examples
///
/// ```
/// use ocd_graph::{DiGraph, algo};
///
/// let mut g = DiGraph::with_nodes(3);
/// g.add_edge(g.node(0), g.node(1), 1).unwrap();
/// g.add_edge(g.node(1), g.node(2), 1).unwrap();
/// let d = algo::bfs_distances(&g, g.node(0));
/// assert_eq!(d, vec![0, 1, 2]);
/// ```
#[must_use]
pub fn bfs_distances(g: &DiGraph, source: NodeId) -> Vec<u32> {
    bfs_distances_multi(g, std::iter::once(source))
}

/// Hop distances from the *nearest* of several sources, following arc
/// directions. This is the distance a token held by any of `sources` must
/// travel to reach each node, used by reachability checks and the radius
/// lower bound.
#[must_use]
pub fn bfs_distances_multi(g: &DiGraph, sources: impl IntoIterator<Item = NodeId>) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut queue = VecDeque::new();
    for s in sources {
        if dist[s.index()] != 0 {
            dist[s.index()] = 0;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for v in g.out_neighbors(u) {
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// BFS tree from `source`: for each node, the predecessor on a shortest
/// hop path from `source` (`None` for the source itself and for
/// unreachable nodes).
#[must_use]
pub fn bfs_tree(g: &DiGraph, source: NodeId) -> Vec<Option<NodeId>> {
    let mut pred = vec![None; g.node_count()];
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for v in g.out_neighbors(u) {
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = dist[u.index()] + 1;
                pred[v.index()] = Some(u);
                queue.push_back(v);
            }
        }
    }
    pred
}

/// The set of nodes whose hop distance *to* `center` is at most `radius`,
/// i.e. the in-closure used by the paper's `M_i(v)` bound ("all tokens
/// within a radius of `i` could be retrieved in `i` timesteps").
///
/// Follows arcs backwards: a node `u` is in the result iff there is a
/// directed path `u → … → center` of length ≤ `radius`.
#[must_use]
pub fn nodes_within(g: &DiGraph, center: NodeId, radius: u32) -> Vec<NodeId> {
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut queue = VecDeque::new();
    dist[center.index()] = 0;
    queue.push_back(center);
    let mut result = vec![center];
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        if du == radius {
            continue;
        }
        for v in g.in_neighbors(u) {
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = du + 1;
                result.push(v);
                queue.push_back(v);
            }
        }
    }
    result.sort_unstable();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::classic;

    #[test]
    fn distances_on_path() {
        let g = classic::path(5, 1, true);
        let d = bfs_distances(&g, g.node(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn unreachable_is_sentinel() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(g.node(0), g.node(1), 1).unwrap();
        let d = bfs_distances(&g, g.node(0));
        assert_eq!(d[2], UNREACHABLE);
    }

    #[test]
    fn directed_path_not_reversible() {
        let mut g = DiGraph::with_nodes(2);
        g.add_edge(g.node(0), g.node(1), 1).unwrap();
        let d = bfs_distances(&g, g.node(1));
        assert_eq!(d[0], UNREACHABLE);
        assert_eq!(d[1], 0);
    }

    #[test]
    fn multi_source_takes_nearest() {
        let g = classic::path(6, 1, false);
        let d = bfs_distances_multi(&g, [g.node(0), g.node(4)]);
        assert_eq!(d, vec![0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn bfs_tree_predecessors_form_shortest_paths() {
        let g = classic::cycle(5, 1, false);
        let pred = bfs_tree(&g, g.node(0));
        assert_eq!(pred[0], None);
        assert_eq!(pred[1], Some(g.node(0)));
        assert_eq!(pred[4], Some(g.node(3)));
    }

    #[test]
    fn nodes_within_uses_incoming_paths() {
        // 0 -> 1 -> 2, plus 3 isolated.
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(g.node(0), g.node(1), 1).unwrap();
        g.add_edge(g.node(1), g.node(2), 1).unwrap();
        assert_eq!(nodes_within(&g, g.node(2), 0), vec![g.node(2)]);
        assert_eq!(nodes_within(&g, g.node(2), 1), vec![g.node(1), g.node(2)]);
        assert_eq!(
            nodes_within(&g, g.node(2), 2),
            vec![g.node(0), g.node(1), g.node(2)]
        );
        // Radius larger than the graph changes nothing.
        assert_eq!(nodes_within(&g, g.node(2), 99).len(), 3);
    }
}
