//! Graph algorithms used throughout the OCD suite.
//!
//! Distances in this module are *hop counts* unless stated otherwise: the
//! OCD model (§3.1) transfers any number of tokens up to capacity in unit
//! time, so the time-relevant metric between vertices is the number of
//! overlay hops, not the capacity. Capacity-aware reasoning lives in the
//! bounds of `ocd-core` and in the solvers.

mod bfs;
mod connectivity;
mod diameter;
mod dijkstra;
mod dominating;
mod mst;
mod steiner;
mod union_find;

pub use bfs::{bfs_distances, bfs_distances_multi, bfs_tree, nodes_within};
pub use connectivity::{
    is_strongly_connected, is_weakly_connected, strongly_connected_components,
    weakly_connected_components,
};
pub use diameter::{diameter, eccentricity, radius};
pub use dijkstra::{dijkstra, shortest_path, PathCost};
pub use dominating::{
    dominating_set_exact, dominating_set_greedy, has_dominating_set_of_size, is_dominating_set,
};
pub use mst::{minimum_spanning_arborescence_cost, minimum_spanning_tree_undirected};
pub use steiner::{steiner_tree_approx, SteinerTree};
pub use union_find::UnionFind;

/// Sentinel distance for "unreachable" in dense distance vectors.
pub const UNREACHABLE: u32 = u32::MAX;
