//! Disjoint-set forest with union by rank and path halving.

/// A union-find (disjoint-set) structure over `0..n`.
///
/// Used by Kruskal's MST and by generators that must stitch a sampled
/// graph into a connected one.
///
/// # Examples
///
/// ```
/// use ocd_graph::algo::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(uf.union(2, 3));
/// assert!(!uf.same(0, 2));
/// assert!(uf.union(1, 3));
/// assert!(uf.same(0, 2));
/// assert_eq!(uf.component_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    #[must_use]
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of the set containing `x`, with path halving.
    ///
    /// # Panics
    ///
    /// Panics if `x >= self.len()`.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets containing `a` and `b`. Returns `true` if they were
    /// previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.rank[ra] < self.rank[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        if self.rank[ra] == self.rank[rb] {
            self.rank[ra] += 1;
        }
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of distinct sets remaining.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_sets_are_disjoint() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.component_count(), 3);
        assert!(!uf.same(0, 1));
        assert_eq!(uf.find(2), 2);
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0), "repeat union is a no-op");
        assert_eq!(uf.component_count(), 4);
        uf.union(2, 3);
        uf.union(3, 4);
        assert_eq!(uf.component_count(), 2);
        assert!(uf.same(2, 4));
        uf.union(0, 4);
        assert_eq!(uf.component_count(), 1);
        for i in 0..5 {
            assert!(uf.same(0, i));
        }
    }

    #[test]
    fn empty_union_find() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
    }

    #[test]
    fn long_chain_flattens() {
        let mut uf = UnionFind::new(1000);
        for i in 0..999 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.component_count(), 1);
        assert!(uf.same(0, 999));
    }
}
