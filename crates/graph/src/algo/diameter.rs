//! Eccentricity, diameter, and radius in hop distance.

use super::{bfs_distances, UNREACHABLE};
use crate::{DiGraph, NodeId};

/// Eccentricity of `v`: the maximum hop distance from `v` to any node
/// reachable from it, or `None` if some node is unreachable.
///
/// Theorem 4's additive bound for on-line algorithms is phrased in terms
/// of the graph diameter, which is the maximum eccentricity.
#[must_use]
pub fn eccentricity(g: &DiGraph, v: NodeId) -> Option<u32> {
    let dist = bfs_distances(g, v);
    let mut max = 0;
    for d in dist {
        if d == UNREACHABLE {
            return None;
        }
        max = max.max(d);
    }
    Some(max)
}

/// Directed diameter: maximum over all ordered pairs of the hop distance,
/// or `None` if the graph is not strongly connected. The empty graph has
/// diameter 0.
#[must_use]
pub fn diameter(g: &DiGraph) -> Option<u32> {
    let mut max = 0;
    for v in g.nodes() {
        max = max.max(eccentricity(g, v)?);
    }
    Some(max)
}

/// Directed radius: minimum eccentricity over all nodes, or `None` if the
/// graph is not strongly connected. The empty graph has radius 0.
#[must_use]
pub fn radius(g: &DiGraph) -> Option<u32> {
    let mut min: Option<u32> = None;
    for v in g.nodes() {
        let e = eccentricity(g, v)?;
        min = Some(min.map_or(e, |m| m.min(e)));
    }
    Some(min.unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::classic;

    #[test]
    fn path_diameter() {
        let g = classic::path(5, 1, true);
        assert_eq!(diameter(&g), Some(4));
        assert_eq!(radius(&g), Some(2));
        assert_eq!(eccentricity(&g, g.node(0)), Some(4));
        assert_eq!(eccentricity(&g, g.node(2)), Some(2));
    }

    #[test]
    fn directed_cycle_diameter() {
        let g = classic::cycle(6, 1, false);
        assert_eq!(diameter(&g), Some(5));
        assert_eq!(radius(&g), Some(5));
    }

    #[test]
    fn star_diameter() {
        let g = classic::star(5, 1, true);
        assert_eq!(diameter(&g), Some(2));
        assert_eq!(radius(&g), Some(1));
    }

    #[test]
    fn disconnected_yields_none() {
        let g = DiGraph::with_nodes(2);
        assert_eq!(diameter(&g), None);
        assert_eq!(eccentricity(&g, g.node(0)), None);
        assert_eq!(radius(&g), None);
    }

    #[test]
    fn empty_graph_has_zero_diameter() {
        let g = DiGraph::new();
        assert_eq!(diameter(&g), Some(0));
        assert_eq!(radius(&g), Some(0));
    }
}
