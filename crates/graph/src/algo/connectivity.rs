//! Weak and strong connectivity.

use super::UNREACHABLE;
use crate::{DiGraph, NodeId};
use std::collections::VecDeque;

/// Returns whether the graph is weakly connected (connected when arc
/// directions are ignored). The empty graph counts as connected.
#[must_use]
pub fn is_weakly_connected(g: &DiGraph) -> bool {
    weakly_connected_components(g).len() <= 1
}

/// Weakly connected components, each sorted ascending; components are
/// ordered by their smallest node.
#[must_use]
pub fn weakly_connected_components(g: &DiGraph) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut components = Vec::new();
    for start in g.nodes() {
        if comp[start.index()] != usize::MAX {
            continue;
        }
        let id = components.len();
        let mut members = Vec::new();
        let mut queue = VecDeque::from([start]);
        comp[start.index()] = id;
        while let Some(u) = queue.pop_front() {
            members.push(u);
            for v in g.out_neighbors(u).chain(g.in_neighbors(u)) {
                if comp[v.index()] == usize::MAX {
                    comp[v.index()] = id;
                    queue.push_back(v);
                }
            }
        }
        members.sort_unstable();
        components.push(members);
    }
    components
}

/// Returns whether every node can reach every other node along directed
/// paths. The empty graph and singleton graphs count as strongly
/// connected.
#[must_use]
pub fn is_strongly_connected(g: &DiGraph) -> bool {
    strongly_connected_components(g).len() <= 1
}

/// Strongly connected components via Tarjan's algorithm (iterative, so
/// deep graphs cannot overflow the call stack). Components are emitted in
/// reverse topological order of the condensation; members sorted
/// ascending.
#[must_use]
pub fn strongly_connected_components(g: &DiGraph) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    let mut index = vec![UNREACHABLE; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0u32;
    let mut components = Vec::new();

    // Explicit DFS state machine: (node, iterator position over neighbors).
    for root in g.nodes() {
        if index[root.index()] != UNREACHABLE {
            continue;
        }
        let mut call_stack: Vec<(NodeId, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut pos)) = call_stack.last_mut() {
            if *pos == 0 {
                index[v.index()] = next_index;
                lowlink[v.index()] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v.index()] = true;
            }
            let neighbors: Vec<NodeId> = g.out_neighbors(v).collect();
            if *pos < neighbors.len() {
                let w = neighbors[*pos];
                *pos += 1;
                if index[w.index()] == UNREACHABLE {
                    call_stack.push((w, 0));
                } else if on_stack[w.index()] {
                    lowlink[v.index()] = lowlink[v.index()].min(index[w.index()]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    lowlink[parent.index()] = lowlink[parent.index()].min(lowlink[v.index()]);
                }
                if lowlink[v.index()] == index[v.index()] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("SCC stack underflow");
                        on_stack[w.index()] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    components.push(comp);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::classic;

    #[test]
    fn empty_graph_is_connected() {
        let g = DiGraph::new();
        assert!(is_weakly_connected(&g));
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn directed_path_weak_not_strong() {
        let g = classic::path(4, 1, false);
        assert!(is_weakly_connected(&g));
        assert!(!is_strongly_connected(&g));
    }

    #[test]
    fn symmetric_path_is_strong() {
        let g = classic::path(4, 1, true);
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn directed_cycle_is_strong() {
        let g = classic::cycle(5, 1, false);
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn components_partition_nodes() {
        // Two directed 2-cycles plus an isolated node.
        let mut g = DiGraph::with_nodes(5);
        g.add_edge_symmetric(g.node(0), g.node(1), 1).unwrap();
        g.add_edge_symmetric(g.node(2), g.node(3), 1).unwrap();
        let weak = weakly_connected_components(&g);
        assert_eq!(weak.len(), 3);
        let total: usize = weak.iter().map(Vec::len).sum();
        assert_eq!(total, 5);
        let strong = strongly_connected_components(&g);
        assert_eq!(strong.len(), 3);
    }

    #[test]
    fn scc_splits_one_way_bridge() {
        // Cycle {0,1} -> bridge -> cycle {2,3}.
        let mut g = DiGraph::with_nodes(4);
        g.add_edge_symmetric(g.node(0), g.node(1), 1).unwrap();
        g.add_edge_symmetric(g.node(2), g.node(3), 1).unwrap();
        g.add_edge(g.node(1), g.node(2), 1).unwrap();
        assert!(is_weakly_connected(&g));
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 2);
        assert!(sccs.contains(&vec![g.node(0), g.node(1)]));
        assert!(sccs.contains(&vec![g.node(2), g.node(3)]));
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        let g = classic::path(50_000, 1, false);
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 50_000);
    }
}
