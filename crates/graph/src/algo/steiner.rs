//! Directed Steiner tree heuristic.
//!
//! EOCD reduces to a series of (generalized) Steiner tree problems
//! (paper §3.3): distributing one token with minimum bandwidth is exactly
//! a minimum-cost directed Steiner tree with unit arc costs from the
//! token's sources to all vertices that want it, where multiple sources
//! are merged by 0-cost arcs. Directed Steiner tree is NP-hard, so we use
//! the classical *shortest-path heuristic*: repeatedly connect the nearest
//! unconnected terminal to the tree along a shortest path. The result is
//! an upper bound on the optimal bandwidth for that token; the number of
//! terminals outside the source set is a lower bound.

use crate::{DiGraph, EdgeId, NodeId};
use std::collections::VecDeque;

/// Result of [`steiner_tree_approx`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SteinerTree {
    /// Arcs of the tree, in the order they were added.
    pub edges: Vec<EdgeId>,
    /// Total cost = number of arcs (unit arc costs, per the paper).
    pub cost: u64,
    /// All vertices touched by the tree, sorted (sources that were used,
    /// relays, and terminals).
    pub vertices: Vec<NodeId>,
}

/// Shortest-path heuristic for the directed Steiner tree from the vertex
/// set `sources` to every vertex in `terminals`, with unit arc costs.
///
/// Returns `None` if some terminal is unreachable from every source.
/// Terminals that are themselves sources cost nothing. The heuristic is
/// not optimal in general, but on trees and in the single-terminal case
/// it is exact, and it never reports less than the true optimum's lower
/// bound `#terminals \ sources` arcs (each needy terminal needs at least
/// one incoming arc).
///
/// # Examples
///
/// ```
/// use ocd_graph::{DiGraph, algo::steiner_tree_approx};
///
/// // path 0 -> 1 -> 2
/// let mut g = DiGraph::with_nodes(3);
/// g.add_edge(g.node(0), g.node(1), 1).unwrap();
/// g.add_edge(g.node(1), g.node(2), 1).unwrap();
/// let t = steiner_tree_approx(&g, &[g.node(0)], &[g.node(2)]).unwrap();
/// assert_eq!(t.cost, 2);
/// ```
#[must_use]
pub fn steiner_tree_approx(
    g: &DiGraph,
    sources: &[NodeId],
    terminals: &[NodeId],
) -> Option<SteinerTree> {
    assert!(
        !sources.is_empty(),
        "steiner tree needs at least one source"
    );
    let n = g.node_count();
    let mut in_tree = vec![false; n];
    for &s in sources {
        in_tree[s.index()] = true;
    }
    let mut pending: Vec<NodeId> = terminals
        .iter()
        .copied()
        .filter(|t| !in_tree[t.index()])
        .collect();
    pending.sort_unstable();
    pending.dedup();
    let mut edges = Vec::new();
    while !pending.is_empty() {
        // Multi-source BFS from the current tree.
        let mut dist = vec![u32::MAX; n];
        let mut pred: Vec<Option<EdgeId>> = vec![None; n];
        let mut queue = VecDeque::new();
        for v in 0..n {
            if in_tree[v] {
                dist[v] = 0;
                queue.push_back(NodeId::new(v));
            }
        }
        while let Some(u) = queue.pop_front() {
            for e in g.out_edges(u) {
                let v = g.edge(e).dst;
                if dist[v.index()] == u32::MAX {
                    dist[v.index()] = dist[u.index()] + 1;
                    pred[v.index()] = Some(e);
                    queue.push_back(v);
                }
            }
        }
        // Nearest pending terminal.
        let (pos, &t) = pending
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| dist[t.index()])?;
        if dist[t.index()] == u32::MAX {
            return None;
        }
        pending.swap_remove(pos);
        // Graft the path into the tree.
        let mut cur = t;
        while !in_tree[cur.index()] {
            let e = pred[cur.index()].expect("reachable node has predecessor");
            edges.push(e);
            in_tree[cur.index()] = true;
            cur = g.edge(e).src;
        }
        // Newly grafted relays may contain other pending terminals.
        pending.retain(|p| !in_tree[p.index()]);
    }
    let vertices: Vec<NodeId> = in_tree
        .iter()
        .enumerate()
        .filter(|(_, &inside)| inside)
        .map(|(v, _)| NodeId::new(v))
        .collect();
    // Restrict to vertices actually touched by edges plus sources/terminals
    // (isolated sources are kept; they are legitimately part of the tree).
    let cost = edges.len() as u64;
    Some(SteinerTree {
        edges,
        cost,
        vertices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::classic;

    #[test]
    fn terminal_equal_to_source_costs_nothing() {
        let g = classic::path(3, 1, true);
        let t = steiner_tree_approx(&g, &[g.node(0)], &[g.node(0)]).unwrap();
        assert_eq!(t.cost, 0);
        assert!(t.edges.is_empty());
    }

    #[test]
    fn path_cost_is_distance() {
        let g = classic::path(6, 1, true);
        let t = steiner_tree_approx(&g, &[g.node(0)], &[g.node(5)]).unwrap();
        assert_eq!(t.cost, 5);
    }

    #[test]
    fn branching_shares_prefix() {
        // Star out of 0: terminals are all leaves; each costs one arc.
        let g = classic::star(5, 1, true);
        let leaves: Vec<NodeId> = (1..5).map(|i| g.node(i)).collect();
        let t = steiner_tree_approx(&g, &[g.node(0)], &leaves).unwrap();
        assert_eq!(t.cost, 4);
    }

    #[test]
    fn path_through_terminal_not_double_counted() {
        // 0 -> 1 -> 2 with terminals {1, 2}: the path to 2 passes through 1.
        let g = classic::path(3, 1, false);
        let t = steiner_tree_approx(&g, &[g.node(0)], &[g.node(1), g.node(2)]).unwrap();
        assert_eq!(t.cost, 2);
    }

    #[test]
    fn multiple_sources_merge_free() {
        // Sources at both ends of a symmetric path; terminal in the middle.
        let g = classic::path(5, 1, true);
        let t = steiner_tree_approx(&g, &[g.node(0), g.node(4)], &[g.node(3)]).unwrap();
        assert_eq!(t.cost, 1, "terminal 3 is one hop from source 4");
    }

    #[test]
    fn unreachable_terminal_is_none() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(g.node(0), g.node(1), 1).unwrap();
        assert!(steiner_tree_approx(&g, &[g.node(0)], &[g.node(2)]).is_none());
    }

    #[test]
    fn cost_at_least_needy_terminal_count() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let n = rng.random_range(3..15);
            let mut g = DiGraph::with_nodes(n);
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.random_bool(0.4) {
                        g.add_edge_symmetric(g.node(u), g.node(v), 1).unwrap();
                    }
                }
            }
            let terminals: Vec<NodeId> = (1..n)
                .filter(|_| rng.random_bool(0.5))
                .map(|i| g.node(i))
                .collect();
            if let Some(t) = steiner_tree_approx(&g, &[g.node(0)], &terminals) {
                assert!(
                    t.cost
                        >= terminals.len() as u64
                            - terminals.iter().filter(|t| t.index() == 0).count() as u64
                );
                assert!(
                    t.cost < n as u64,
                    "a Steiner tree never needs n or more arcs"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn empty_sources_panics() {
        let g = classic::path(2, 1, true);
        let _ = steiner_tree_approx(&g, &[], &[g.node(1)]);
    }
}
