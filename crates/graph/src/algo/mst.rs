//! Minimum spanning trees (undirected view) and minimum spanning
//! arborescences (directed, Chu-Liu/Edmonds).
//!
//! Several related overlay systems surveyed by the paper (Young et al.,
//! Narada) build content distribution meshes out of minimum-cost spanning
//! trees, so the suite provides both the undirected and directed variants
//! as baselines for tree-based dissemination.

use super::UnionFind;
use crate::{DiGraph, EdgeId, NodeId};

/// Minimum spanning tree of the undirected view of `g` under the given
/// per-arc weight function (Kruskal). Anti-parallel arcs `(u,v)` and
/// `(v,u)` are treated as one undirected edge of weight
/// `min(weight(u→v), weight(v→u))`.
///
/// Returns `(total_weight, chosen_arcs)` or `None` if the undirected view
/// is disconnected. For the empty graph returns `Some((0, []))`.
pub fn minimum_spanning_tree_undirected(
    g: &DiGraph,
    weight: impl Fn(EdgeId) -> u64,
) -> Option<(u64, Vec<EdgeId>)> {
    let n = g.node_count();
    if n == 0 {
        return Some((0, Vec::new()));
    }
    // Collapse anti-parallel arcs, keeping the lighter one.
    let mut best: std::collections::HashMap<(NodeId, NodeId), (u64, EdgeId)> =
        std::collections::HashMap::new();
    for id in g.edge_ids() {
        let e = g.edge(id);
        let key = if e.src < e.dst {
            (e.src, e.dst)
        } else {
            (e.dst, e.src)
        };
        let w = weight(id);
        match best.get(&key) {
            Some(&(bw, _)) if bw <= w => {}
            _ => {
                best.insert(key, (w, id));
            }
        }
    }
    let mut candidates: Vec<(u64, EdgeId)> = best.into_values().collect();
    candidates.sort_unstable();
    let mut uf = UnionFind::new(n);
    let mut total = 0;
    let mut chosen = Vec::new();
    for (w, id) in candidates {
        let e = g.edge(id);
        if uf.union(e.src.index(), e.dst.index()) {
            total += w;
            chosen.push(id);
        }
    }
    if uf.component_count() == 1 {
        Some((total, chosen))
    } else {
        None
    }
}

/// Cost of the minimum spanning arborescence rooted at `root`
/// (Chu-Liu/Edmonds), under the given per-arc weight function.
///
/// Returns `None` if some node is unreachable from `root`.
pub fn minimum_spanning_arborescence_cost(
    g: &DiGraph,
    root: NodeId,
    weight: impl Fn(EdgeId) -> u64,
) -> Option<u64> {
    let n = g.node_count();
    if n == 0 {
        return Some(0);
    }
    let arcs: Vec<(usize, usize, u64)> = g
        .edge_ids()
        .map(|id| {
            let e = g.edge(id);
            (e.src.index(), e.dst.index(), weight(id))
        })
        .collect();
    edmonds(n, root.index(), &arcs)
}

/// Chu-Liu/Edmonds on an arc list; iterative contraction formulation.
fn edmonds(n: usize, root: usize, arcs: &[(usize, usize, u64)]) -> Option<u64> {
    let mut n = n;
    let mut root = root;
    let mut arcs: Vec<(usize, usize, u64)> = arcs.to_vec();
    let mut total: u64 = 0;
    loop {
        // Cheapest incoming arc per non-root node.
        let mut min_in: Vec<Option<(usize, u64)>> = vec![None; n];
        for &(u, v, w) in &arcs {
            if u == v || v == root {
                continue;
            }
            if min_in[v].is_none_or(|(_, bw)| w < bw) {
                min_in[v] = Some((u, w));
            }
        }
        for (v, entry) in min_in.iter().enumerate() {
            if v != root && entry.is_none() {
                return None; // unreachable
            }
        }
        // Detect a cycle in the cheapest-in-arc graph.
        let mut id = vec![usize::MAX; n]; // contracted component id
        let mut visit = vec![usize::MAX; n]; // walk marker
        let mut components = 0;
        for start in 0..n {
            let mut v = start;
            while v != root && id[v] == usize::MAX && visit[v] != start {
                visit[v] = start;
                v = min_in[v].expect("non-root has an in-arc").0;
            }
            if v != root && id[v] == usize::MAX {
                // Found a new cycle through `v`: contract it.
                let mut u = min_in[v].expect("cycle node has in-arc").0;
                id[v] = components;
                while u != v {
                    id[u] = components;
                    u = min_in[u].expect("cycle node has in-arc").0;
                }
                components += 1;
            }
        }
        if components == 0 {
            // No cycles: the cheapest in-arcs form the arborescence.
            for (v, entry) in min_in.iter().enumerate() {
                if v != root {
                    total += entry.expect("checked above").1;
                }
            }
            return Some(total);
        }
        // Assign ids to the remaining (non-cycle) nodes.
        for slot in id.iter_mut() {
            if *slot == usize::MAX {
                *slot = components;
                components += 1;
            }
        }
        // Cycle arcs' weights are committed; reweight arcs entering cycles.
        let mut cycle_cost = 0u64;
        let mut in_cycle = vec![false; n];
        {
            // Mark nodes that belong to some contracted cycle: a component
            // with more than one member, or a single node whose cheapest
            // in-arc stays inside its component (self-cycle after prior
            // contractions cannot happen since u == v arcs are skipped).
            let mut count = vec![0usize; components];
            for v in 0..n {
                count[id[v]] += 1;
            }
            for v in 0..n {
                if v != root && count[id[v]] > 1 {
                    in_cycle[v] = true;
                    cycle_cost += min_in[v].expect("non-root in-arc").1;
                }
            }
        }
        total += cycle_cost;
        let mut new_arcs = Vec::with_capacity(arcs.len());
        for &(u, v, w) in &arcs {
            if id[u] == id[v] {
                continue;
            }
            let adjusted = if in_cycle[v] {
                // Entering a contracted cycle: credit back the cycle arc we
                // no longer need at v.
                w - min_in[v].expect("cycle node in-arc").1
            } else {
                w
            };
            new_arcs.push((id[u], id[v], adjusted));
        }
        root = id[root];
        n = components;
        arcs = new_arcs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::classic;
    use crate::DiGraph;

    #[test]
    fn mst_of_path_takes_all_edges() {
        let g = classic::path(4, 2, true);
        let (w, edges) =
            minimum_spanning_tree_undirected(&g, |e| u64::from(g.capacity(e))).unwrap();
        assert_eq!(edges.len(), 3);
        assert_eq!(w, 6);
    }

    #[test]
    fn mst_picks_cheap_edges() {
        // Triangle with one heavy edge.
        let mut g = DiGraph::with_nodes(3);
        g.add_edge_symmetric(g.node(0), g.node(1), 1).unwrap();
        g.add_edge_symmetric(g.node(1), g.node(2), 1).unwrap();
        g.add_edge_symmetric(g.node(0), g.node(2), 10).unwrap();
        let (w, edges) =
            minimum_spanning_tree_undirected(&g, |e| u64::from(g.capacity(e))).unwrap();
        assert_eq!(w, 2);
        assert_eq!(edges.len(), 2);
    }

    #[test]
    fn mst_disconnected_is_none() {
        let g = DiGraph::with_nodes(3);
        assert!(minimum_spanning_tree_undirected(&g, |_| 1).is_none());
    }

    #[test]
    fn mst_empty_graph() {
        let g = DiGraph::new();
        assert_eq!(
            minimum_spanning_tree_undirected(&g, |_| 1),
            Some((0, vec![]))
        );
    }

    #[test]
    fn arborescence_of_out_path() {
        let g = classic::path(4, 3, false);
        let cost = minimum_spanning_arborescence_cost(&g, g.node(0), |e| u64::from(g.capacity(e)));
        assert_eq!(cost, Some(9));
    }

    #[test]
    fn arborescence_unreachable_is_none() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(g.node(0), g.node(1), 1).unwrap();
        // node 2 unreachable from 0.
        assert_eq!(
            minimum_spanning_arborescence_cost(&g, g.node(0), |_| 1),
            None
        );
    }

    #[test]
    fn arborescence_resolves_cycle() {
        // root 0 -> 1 (w 10); cycle 1 <-> 2 (w 1 each); 0 -> 2 (w 3).
        let mut g = DiGraph::with_nodes(3);
        let w = |g: &DiGraph, e| u64::from(g.capacity(e));
        g.add_edge(g.node(0), g.node(1), 10).unwrap();
        g.add_edge(g.node(1), g.node(2), 1).unwrap();
        g.add_edge(g.node(2), g.node(1), 1).unwrap();
        g.add_edge(g.node(0), g.node(2), 3).unwrap();
        // Best: 0->2 (3) + 2->1 (1) = 4, beating 0->1 (10) + 1->2 (1) = 11.
        let cost = minimum_spanning_arborescence_cost(&g, g.node(0), |e| w(&g, e));
        assert_eq!(cost, Some(4));
    }

    #[test]
    fn arborescence_matches_bruteforce_on_random_graphs() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..30 {
            let n = rng.random_range(2..6);
            let mut g = DiGraph::with_nodes(n);
            for u in 0..n {
                for v in 0..n {
                    if u != v && rng.random_bool(0.6) {
                        g.add_edge(g.node(u), g.node(v), rng.random_range(1..10))
                            .unwrap();
                    }
                }
            }
            let got =
                minimum_spanning_arborescence_cost(&g, g.node(0), |e| u64::from(g.capacity(e)));
            let want = brute_force_arborescence(&g, 0);
            assert_eq!(got, want, "trial {trial} graph {g:?}");
        }
    }

    /// Exhaustively choose one in-arc per non-root node and keep the
    /// cheapest acyclic (rooted-tree) combination.
    fn brute_force_arborescence(g: &DiGraph, root: usize) -> Option<u64> {
        let n = g.node_count();
        let mut choices: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
        for id in g.edge_ids() {
            let e = g.edge(id);
            choices[e.dst.index()].push((e.src.index(), u64::from(g.capacity(id))));
        }
        let non_root: Vec<usize> = (0..n).filter(|&v| v != root).collect();
        let mut best: Option<u64> = None;
        #[allow(clippy::too_many_arguments)]
        fn recurse(
            non_root: &[usize],
            idx: usize,
            choices: &[Vec<(usize, u64)>],
            parent: &mut Vec<usize>,
            cost: u64,
            root: usize,
            n: usize,
            best: &mut Option<u64>,
        ) {
            if idx == non_root.len() {
                // Check all nodes reach root via parent pointers.
                for v in 0..n {
                    let mut cur = v;
                    let mut steps = 0;
                    while cur != root {
                        cur = parent[cur];
                        steps += 1;
                        if steps > n {
                            return; // cycle
                        }
                    }
                }
                if best.is_none() || cost < best.unwrap() {
                    *best = Some(cost);
                }
                return;
            }
            let v = non_root[idx];
            for &(u, w) in &choices[v] {
                parent[v] = u;
                recurse(non_root, idx + 1, choices, parent, cost + w, root, n, best);
            }
        }
        let mut parent = vec![root; n];
        recurse(&non_root, 0, &choices, &mut parent, 0, root, n, &mut best);
        best
    }
}
