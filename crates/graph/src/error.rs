//! Error type for graph construction and queries.

use crate::NodeId;
use std::error::Error;
use std::fmt;

/// Errors produced by [`DiGraph`](crate::DiGraph) operations and by the
/// parsers in [`io`](crate::io).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A referenced node does not exist in the graph.
    NodeOutOfBounds {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes in the graph.
        node_count: usize,
    },
    /// Attempted to add a self-loop `(v, v)`.
    ///
    /// The OCD base graph is *simple* (§3.1); self-arcs exist only in the
    /// extended graph `E'` used by the integer-program formulation, which is
    /// handled by the solver, not the base graph.
    SelfLoop {
        /// The node on which the self-loop was attempted.
        node: NodeId,
    },
    /// Attempted to add an edge with zero capacity.
    ///
    /// A zero-capacity arc can never carry a token and is indistinguishable
    /// from an absent arc; rejecting it keeps instances canonical.
    ZeroCapacity {
        /// Source of the rejected arc.
        src: NodeId,
        /// Destination of the rejected arc.
        dst: NodeId,
    },
    /// A serialized edge list contains the same `(src, dst)` arc twice.
    ///
    /// Incremental construction merges parallel arcs by summing their
    /// capacities, but a duplicate in a serialized or hand-edited file is
    /// almost certainly a data error, and silently merging would change
    /// instance semantics without a diagnostic — so bulk loading rejects
    /// it.
    DuplicateArc {
        /// Source of the duplicated arc.
        src: NodeId,
        /// Destination of the duplicated arc.
        dst: NodeId,
    },
    /// A text representation could not be parsed.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, node_count } => write!(
                f,
                "node {node} is out of bounds for a graph with {node_count} nodes"
            ),
            GraphError::SelfLoop { node } => {
                write!(
                    f,
                    "self-loop ({node}, {node}) is not allowed in a simple graph"
                )
            }
            GraphError::ZeroCapacity { src, dst } => {
                write!(f, "arc ({src}, {dst}) must have capacity of at least 1")
            }
            GraphError::DuplicateArc { src, dst } => {
                write!(
                    f,
                    "duplicate arc ({src}, {dst}): parallel arcs must be merged before export"
                )
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfBounds {
            node: NodeId::new(9),
            node_count: 3,
        };
        assert_eq!(
            e.to_string(),
            "node 9 is out of bounds for a graph with 3 nodes"
        );
        let e = GraphError::SelfLoop {
            node: NodeId::new(2),
        };
        assert!(e.to_string().contains("self-loop"));
        let e = GraphError::ZeroCapacity {
            src: NodeId::new(0),
            dst: NodeId::new(1),
        };
        assert!(e.to_string().contains("capacity"));
        let e = GraphError::DuplicateArc {
            src: NodeId::new(0),
            dst: NodeId::new(1),
        };
        assert!(e.to_string().contains("duplicate arc"));
        let e = GraphError::Parse {
            line: 4,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 4"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: Error>(_: &E) {}
        assert_error(&GraphError::SelfLoop {
            node: NodeId::new(0),
        });
    }
}
