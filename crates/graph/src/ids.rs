//! Index newtypes for graph nodes and edges.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (vertex) in a [`DiGraph`](crate::DiGraph).
///
/// Node ids are dense indices assigned in insertion order, starting at 0.
/// They are only meaningful with respect to the graph that created them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(pub(crate) u32);

/// Identifier of a directed edge (arc) in a [`DiGraph`](crate::DiGraph).
///
/// Edge ids are dense indices assigned in insertion order, starting at 0.
/// Because parallel arcs are merged, re-adding an existing arc returns the
/// original id rather than allocating a new one.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct EdgeId(pub(crate) u32);

impl NodeId {
    /// Creates a node id from a raw index.
    ///
    /// This does not check that the index is in bounds for any particular
    /// graph; out-of-range ids cause graph methods to return errors or
    /// panic, per their documentation.
    #[must_use]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Returns the raw index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Creates an edge id from a raw index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        EdgeId(u32::try_from(index).expect("edge index exceeds u32::MAX"))
    }

    /// Returns the raw index of this edge.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

impl From<EdgeId> for usize {
    fn from(id: EdgeId) -> usize {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_index() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
    }

    #[test]
    fn edge_id_round_trips_index() {
        let id = EdgeId::new(7);
        assert_eq!(id.index(), 7);
        assert_eq!(usize::from(id), 7);
    }

    #[test]
    fn debug_and_display_formats() {
        assert_eq!(format!("{:?}", NodeId::new(3)), "n3");
        assert_eq!(format!("{}", NodeId::new(3)), "3");
        assert_eq!(format!("{:?}", EdgeId::new(5)), "e5");
        assert_eq!(format!("{}", EdgeId::new(5)), "5");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(EdgeId::new(0) < EdgeId::new(9));
    }
}
