//! Text formats: Graphviz DOT export and a line-oriented edge list.
//!
//! The edge-list format is one directive per line:
//!
//! ```text
//! # comment
//! nodes 5
//! edge 0 1 3     # arc 0 -> 1 with capacity 3
//! ```

use crate::{DiGraph, GraphError, NodeId};
use std::fmt::Write as _;

/// Renders the graph in Graphviz DOT syntax with capacities as edge
/// labels.
///
/// # Examples
///
/// ```
/// let mut g = ocd_graph::DiGraph::with_nodes(2);
/// g.add_edge(g.node(0), g.node(1), 3).unwrap();
/// let dot = ocd_graph::io::to_dot(&g, "demo");
/// assert!(dot.contains("0 -> 1 [label=\"3\"];"));
/// ```
#[must_use]
pub fn to_dot(g: &DiGraph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    for v in g.nodes() {
        let _ = writeln!(out, "  {v};");
    }
    for e in g.edges() {
        let _ = writeln!(out, "  {} -> {} [label=\"{}\"];", e.src, e.dst, e.capacity);
    }
    out.push_str("}\n");
    out
}

/// Serializes the graph to the edge-list text format.
#[must_use]
pub fn to_edge_list(g: &DiGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "nodes {}", g.node_count());
    for e in g.edges() {
        let _ = writeln!(out, "edge {} {} {}", e.src, e.dst, e.capacity);
    }
    out
}

/// Parses a graph from the edge-list text format. Lines may carry `#`
/// comments; blank lines are ignored. A `nodes N` directive must appear
/// before any `edge` line that references a node ≥ the current count;
/// multiple `nodes` directives take the maximum.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed input and the usual graph
/// errors (out-of-bounds, self-loop, zero capacity) tagged with the line
/// number.
pub fn from_edge_list(text: &str) -> Result<DiGraph, GraphError> {
    let mut g = DiGraph::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().expect("non-empty line has a first token");
        match keyword {
            "nodes" => {
                let n: usize = parse_field(parts.next(), line_no, "node count")?;
                while g.node_count() < n {
                    g.add_node();
                }
            }
            "edge" => {
                let src: usize = parse_field(parts.next(), line_no, "source")?;
                let dst: usize = parse_field(parts.next(), line_no, "destination")?;
                let cap: u32 = parse_field(parts.next(), line_no, "capacity")?;
                g.add_edge(NodeId::new(src), NodeId::new(dst), cap)
                    .map_err(|e| GraphError::Parse {
                        line: line_no,
                        message: e.to_string(),
                    })?;
            }
            other => {
                return Err(GraphError::Parse {
                    line: line_no,
                    message: format!("unknown directive `{other}`"),
                });
            }
        }
        if let Some(extra) = parts.next() {
            return Err(GraphError::Parse {
                line: line_no,
                message: format!("unexpected trailing token `{extra}`"),
            });
        }
    }
    Ok(g)
}

fn parse_field<T: std::str::FromStr>(
    field: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, GraphError> {
    let raw = field.ok_or_else(|| GraphError::Parse {
        line,
        message: format!("missing {what}"),
    })?;
    raw.parse().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid {what} `{raw}`"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::classic;

    #[test]
    fn dot_contains_all_edges() {
        let g = classic::cycle(3, 2, false);
        let dot = to_dot(&g, "c3");
        assert!(dot.starts_with("digraph c3 {"));
        assert!(dot.contains("0 -> 1 [label=\"2\"];"));
        assert!(dot.contains("2 -> 0 [label=\"2\"];"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn edge_list_round_trip() {
        let g = classic::grid(2, 3, 4);
        let text = to_edge_list(&g);
        let g2 = from_edge_list(&text).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn parses_comments_and_blanks() {
        let text = "# header\n\nnodes 3 # three\nedge 0 1 5\nedge 1 2 6 # last\n";
        let g = from_edge_list(text).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.capacity(g.find_edge(g.node(1), g.node(2)).unwrap()), 6);
    }

    #[test]
    fn rejects_unknown_directive() {
        let err = from_edge_list("vertex 3").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        assert!(err.to_string().contains("vertex"));
    }

    #[test]
    fn rejects_missing_and_invalid_fields() {
        assert!(from_edge_list("edge 0 1")
            .unwrap_err()
            .to_string()
            .contains("missing capacity"));
        assert!(from_edge_list("nodes x")
            .unwrap_err()
            .to_string()
            .contains("invalid node count"));
        assert!(from_edge_list("nodes 2\nedge 0 1 3 9")
            .unwrap_err()
            .to_string()
            .contains("trailing"));
    }

    #[test]
    fn rejects_graph_violations_with_line_numbers() {
        let err = from_edge_list("nodes 2\nedge 0 0 1").unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("self-loop"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        let err = from_edge_list("nodes 1\nedge 0 5 1").unwrap_err();
        assert!(err.to_string().contains("out of bounds"));
    }

    #[test]
    fn multiple_nodes_directives_take_max() {
        let g = from_edge_list("nodes 2\nnodes 5\nnodes 3").unwrap();
        assert_eq!(g.node_count(), 5);
    }
}
