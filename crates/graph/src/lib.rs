//! Directed weighted graph library and topology generators for the OCD
//! problem suite.
//!
//! This crate is the graph substrate of the
//! [Overlay Network Content Distribution](https://escholarship.org/uc/item/5459z1cr)
//! (OCD) reproduction. It provides:
//!
//! - [`DiGraph`]: a simple, weighted, directed graph where arc weights are
//!   interpreted as *capacities* (tokens per timestep), per the paper's
//!   §3.1. Adding a parallel arc merges it into the existing arc by summing
//!   capacities, exactly as the paper prescribes for multi-arcs.
//! - Algorithms ([`algo`]): BFS distances, Dijkstra, connectivity,
//!   diameter/eccentricity, minimum spanning trees, union-find, dominating
//!   sets (greedy and exact), and a directed Steiner-tree heuristic.
//! - Generators ([`generate`]): classic families, `G(n, p)` random graphs in
//!   the paper's `p = 2 ln n / n` regime, and a GT-ITM-style transit-stub
//!   generator standing in for the paper's GT-ITM topologies.
//! - I/O ([`io`]): Graphviz DOT export and a line-oriented edge-list format.
//!
//! # Examples
//!
//! ```
//! use ocd_graph::DiGraph;
//!
//! let mut g = DiGraph::new();
//! let a = g.add_node();
//! let b = g.add_node();
//! let e = g.add_edge(a, b, 3).unwrap();
//! assert_eq!(g.capacity(e), 3);
//! // Parallel arcs merge by summing capacities (paper §3.1).
//! let e2 = g.add_edge(a, b, 4).unwrap();
//! assert_eq!(e, e2);
//! assert_eq!(g.capacity(e), 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod algo;
mod digraph;
mod error;
pub mod generate;
mod ids;
pub mod io;
pub mod underlay;

pub use digraph::{DiGraph, Edge};
pub use error::GraphError;
pub use ids::{EdgeId, NodeId};
