//! Physical-underlay modeling (paper §6, "open problems").
//!
//! "In our work, we consider only the overlay topology, and not the
//! physical links making up our logical links. We are likely ignoring
//! the reality that many of our logical links share the same physical
//! link, hence their capacities are not independent. To properly model
//! this, we need to take into account physical links and routers, which
//! do not participate in overlay forwarding, instead simply forwarding
//! the packets along to a specified overlay node."
//!
//! An [`Underlay`] is a physical graph (routers + hosts) with a set of
//! *host* vertices that participate in the overlay.
//! [`Underlay::map_overlay`] routes every overlay arc over the physical
//! shortest path between its endpoint hosts, producing an
//! [`OverlayMapping`] that records, per overlay arc, the physical arcs
//! it rides — the data the capacity-sharing admission control in
//! `ocd-heuristics::underlay` needs.

use crate::algo::{dijkstra, PathCost};
use crate::{DiGraph, EdgeId, GraphError, NodeId};

/// A physical network hosting an overlay.
#[derive(Debug, Clone)]
pub struct Underlay {
    /// The physical topology (hosts and routers).
    pub physical: DiGraph,
    /// Physical vertices that run overlay software, in overlay-node
    /// order: overlay node `i` lives on `hosts[i]`.
    pub hosts: Vec<NodeId>,
}

/// The result of routing an overlay over an underlay.
#[derive(Debug, Clone)]
pub struct OverlayMapping {
    /// `paths[e]` = physical arcs carrying overlay arc `e`, in path
    /// order.
    pub paths: Vec<Vec<EdgeId>>,
    /// The *naive* per-overlay-arc capacity: the minimum physical
    /// capacity along its path — what an overlay believes it has when
    /// it treats links as independent.
    pub naive_capacities: Vec<u32>,
}

impl Underlay {
    /// Creates an underlay.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if a host is not a
    /// physical vertex.
    pub fn new(physical: DiGraph, hosts: Vec<NodeId>) -> Result<Self, GraphError> {
        for &h in &hosts {
            if !physical.contains_node(h) {
                return Err(GraphError::NodeOutOfBounds {
                    node: h,
                    node_count: physical.node_count(),
                });
            }
        }
        Ok(Underlay { physical, hosts })
    }

    /// Routes every arc of `overlay` (whose node `i` is `hosts[i]`) over
    /// the physical shortest path (fewest hops; ties broken by Dijkstra
    /// order). Returns `None` for an overlay arc whose endpoints are
    /// physically disconnected.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if the overlay has more
    /// nodes than there are hosts, and [`GraphError::Parse`]-free errors
    /// otherwise; unroutable arcs produce an error naming the arc.
    pub fn map_overlay(&self, overlay: &DiGraph) -> Result<OverlayMapping, GraphError> {
        if overlay.node_count() > self.hosts.len() {
            return Err(GraphError::NodeOutOfBounds {
                node: NodeId::new(self.hosts.len()),
                node_count: overlay.node_count(),
            });
        }
        let mut paths = Vec::with_capacity(overlay.edge_count());
        let mut naive = Vec::with_capacity(overlay.edge_count());
        // Cache Dijkstra per source host.
        let mut cache: std::collections::HashMap<NodeId, Vec<Option<EdgeId>>> =
            std::collections::HashMap::new();
        for e in overlay.edge_ids() {
            let arc = overlay.edge(e);
            let src = self.hosts[arc.src.index()];
            let dst = self.hosts[arc.dst.index()];
            let pred = cache
                .entry(src)
                .or_insert_with(|| dijkstra(&self.physical, src, PathCost::Hop).1);
            // Rebuild the path dst ← src.
            let mut path = Vec::new();
            let mut cur = dst;
            while cur != src {
                let Some(pe) = pred[cur.index()] else {
                    return Err(GraphError::NodeOutOfBounds {
                        node: cur,
                        node_count: self.physical.node_count(),
                    });
                };
                path.push(pe);
                cur = self.physical.edge(pe).src;
            }
            path.reverse();
            let cap = path
                .iter()
                .map(|&pe| self.physical.capacity(pe))
                .min()
                .unwrap_or(u32::MAX);
            naive.push(cap);
            paths.push(path);
        }
        Ok(OverlayMapping {
            paths,
            naive_capacities: naive,
        })
    }
}

impl OverlayMapping {
    /// How many overlay arcs ride each physical arc — the link-stress
    /// metric of overlay evaluation literature.
    #[must_use]
    pub fn link_stress(&self, physical_edges: usize) -> Vec<u32> {
        let mut stress = vec![0u32; physical_edges];
        for path in &self.paths {
            for &pe in path {
                stress[pe.index()] += 1;
            }
        }
        stress
    }

    /// The largest link stress, or 0 with no paths.
    #[must_use]
    pub fn max_stress(&self, physical_edges: usize) -> u32 {
        self.link_stress(physical_edges)
            .into_iter()
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::classic;

    /// Physical: path r0 - r1 - r2 (symmetric, cap 4); hosts at ends.
    fn line_underlay() -> (Underlay, DiGraph) {
        let physical = classic::path(3, 4, true);
        let hosts = vec![physical.node(0), physical.node(2)];
        let mut overlay = DiGraph::with_nodes(2);
        overlay
            .add_edge_symmetric(overlay.node(0), overlay.node(1), 4)
            .unwrap();
        (Underlay::new(physical, hosts).unwrap(), overlay)
    }

    #[test]
    fn maps_paths_and_naive_capacity() {
        let (underlay, overlay) = line_underlay();
        let mapping = underlay.map_overlay(&overlay).unwrap();
        assert_eq!(mapping.paths.len(), 2);
        assert_eq!(mapping.paths[0].len(), 2, "two physical hops");
        assert_eq!(mapping.naive_capacities, vec![4, 4]);
    }

    #[test]
    fn shared_links_show_up_as_stress() {
        // Physical star: center router 0, hosts 1..=3 (symmetric cap 2).
        let physical = classic::star(4, 2, true);
        let hosts: Vec<NodeId> = (1..4).map(|i| physical.node(i)).collect();
        let overlay = classic::complete(3, 2);
        let underlay = Underlay::new(physical.clone(), hosts).unwrap();
        let mapping = underlay.map_overlay(&overlay).unwrap();
        // Every overlay arc crosses two physical arcs through the hub;
        // each host's access link carries multiple overlay arcs.
        let stress = mapping.link_stress(physical.edge_count());
        assert_eq!(
            stress.iter().sum::<u32>() as usize,
            2 * overlay.edge_count()
        );
        assert!(mapping.max_stress(physical.edge_count()) >= 2);
    }

    #[test]
    fn rejects_bad_hosts() {
        let physical = classic::path(2, 1, true);
        let err = Underlay::new(physical.clone(), vec![NodeId::new(9)]).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfBounds { .. }));
        let underlay = Underlay::new(physical, vec![NodeId::new(0)]).unwrap();
        let overlay = classic::path(2, 1, true); // 2 overlay nodes, 1 host
        assert!(underlay.map_overlay(&overlay).is_err());
    }

    #[test]
    fn unroutable_arc_errors() {
        let physical = DiGraph::with_nodes(2); // no physical links at all
        let hosts = vec![physical.node(0), physical.node(1)];
        let mut overlay = DiGraph::with_nodes(2);
        overlay
            .add_edge(overlay.node(0), overlay.node(1), 1)
            .unwrap();
        let underlay = Underlay::new(physical, hosts).unwrap();
        assert!(underlay.map_overlay(&overlay).is_err());
    }

    #[test]
    fn same_host_arcs_route_zero_hops() {
        // Overlay arc between two overlay nodes on... distinct hosts is
        // required by the simple-graph rule; a 1-hop physical adjacency
        // routes as a single physical arc.
        let physical = classic::path(2, 3, true);
        let hosts = vec![physical.node(0), physical.node(1)];
        let mut overlay = DiGraph::with_nodes(2);
        overlay
            .add_edge(overlay.node(0), overlay.node(1), 3)
            .unwrap();
        let underlay = Underlay::new(physical, hosts).unwrap();
        let mapping = underlay.map_overlay(&overlay).unwrap();
        assert_eq!(mapping.paths[0].len(), 1);
    }
}
