//! Command execution for the `ocd` tool.

use crate::opts::{Command, USAGE};
use ocd_core::span::{FlightRecorder, SpanRecorder};
use ocd_core::{bounds, prune, Instance, ProvenanceTrace, RlncInstance, Schedule};
use ocd_graph::generate::{classic, gnp, transit_stub, GnpConfig, TransitStubConfig};
use ocd_graph::{algo, io as gio, DiGraph};
use ocd_heuristics::{
    simulate, simulate_with, CodedLocal, CodedRandom, CodedSimConfig, CodedStrategy, Dynamic,
    Ideal, LossyCoded, Medium, NodeCapacity, SimConfig, StrategyKind,
};
use ocd_lp::MipOptions;
use ocd_net::{run_swarm, FaultPlan, NetConfig, NetPolicy};
use ocd_solver::bnb::{decide_focd, solve_focd_with_spans, BnbOptions};
use ocd_solver::ip::min_bandwidth_for_horizon_with_spans;
use ocd_solver::reduction::{dominating_set_from_schedule, focd_from_dominating_set};
use ocd_solver::steiner;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

/// Executes a parsed command, returning the text to print on stdout.
///
/// # Errors
///
/// Returns a human-readable message on any failure (I/O, malformed
/// files, solver errors, unsatisfiable instances).
pub fn execute(cmd: &Command) -> Result<String, String> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Generate {
            topology,
            nodes,
            seed,
            cap,
            out,
        } => {
            let mut rng = StdRng::seed_from_u64(*seed);
            let (lo, hi) = *cap;
            let graph = match topology.as_str() {
                "random" => gnp(
                    &GnpConfig {
                        capacity: lo..=hi,
                        ..GnpConfig::paper(*nodes)
                    },
                    &mut rng,
                ),
                "transit-stub" => {
                    let config = TransitStubConfig {
                        transit_capacity: lo..=hi,
                        stub_capacity: lo..=hi,
                        ..TransitStubConfig::paper_sized(*nodes)
                    };
                    transit_stub(&config, &mut rng)
                }
                "path" => classic::path(*nodes, lo, true),
                "cycle" => classic::cycle(*nodes, lo, true),
                "star" => classic::star(*nodes, lo, true),
                "complete" => classic::complete(*nodes, lo),
                "grid" => {
                    let side = (*nodes as f64).sqrt().ceil() as usize;
                    classic::grid(side, side, lo)
                }
                "tree" => classic::balanced_tree(2, nodes.ilog2().max(1), lo),
                other => return Err(format!("unknown topology `{other}`")),
            };
            emit(out.as_deref(), gio::to_edge_list(&graph))
        }
        Command::Instance {
            graph,
            scenario,
            tokens,
            files,
            source,
            threshold,
            seed,
            out,
        } => {
            let mut rng = StdRng::seed_from_u64(*seed);
            let instance = match scenario.as_str() {
                "figure-one" => ocd_core::scenario::figure_one(),
                name => {
                    let g = load_graph(graph)?;
                    match name {
                        "single-file" => ocd_core::scenario::single_file(g, *tokens, *source),
                        "receiver-density" => ocd_core::scenario::receiver_density(
                            g, *tokens, *source, *threshold, &mut rng,
                        ),
                        "multi-file" => ocd_core::scenario::multi_file(g, *tokens, *files, *source),
                        "multi-sender" => {
                            ocd_core::scenario::multi_sender(g, *tokens, *files, &mut rng)
                        }
                        other => return Err(format!("unknown scenario `{other}`")),
                    }
                }
            };
            let json = serde_json::to_string_pretty(&instance)
                .map_err(|e| format!("serialize instance: {e}"))?;
            emit(out.as_deref(), json + "\n")
        }
        Command::Run {
            instance,
            strategy,
            seed,
            delay,
            max_steps,
            schedule,
            prune: do_prune,
            dynamics,
            record,
            metrics,
        } => {
            let instance = load_instance(instance)?;
            let kind: StrategyKind = strategy.parse().map_err(|e| format!("{e}"))?;
            let mut s = kind.build();
            let config = SimConfig {
                max_steps: *max_steps,
                knowledge_delay: *delay,
                // Only the deterministic metric set: `--metrics`
                // snapshots must be byte-identical across equal-seed
                // invocations, so wall-clock timings stay off.
                metrics: metrics.is_some(),
                // `--record` artifacts embed the causal provenance
                // digest (RunRecord schema v3), which `certify`
                // cross-checks against a schedule replay.
                provenance: record.is_some(),
                ..SimConfig::default()
            };
            let mut rng = StdRng::seed_from_u64(*seed);
            // Instances carrying node budgets run under the
            // node-capacity medium automatically, so their `--record`
            // artifacts certify against the budget-enforcing replay.
            let budgets = instance.node_budgets().cloned();
            let (outcome, medium_name) = match (dynamics, budgets) {
                (None, None) => {
                    let outcome =
                        simulate_with(&instance, s.as_mut(), &mut Ideal, &config, &mut rng);
                    (outcome, "ideal".to_string())
                }
                (None, Some(b)) => {
                    let mut medium = NodeCapacity::new(Ideal, b);
                    let outcome =
                        simulate_with(&instance, s.as_mut(), &mut medium, &config, &mut rng);
                    (outcome, medium.name().to_string())
                }
                (Some(spec), None) => {
                    let mut model = parse_dynamics(spec)?;
                    let medium_name = model.name().to_string();
                    let mut medium = Dynamic::new(model.as_mut());
                    let outcome =
                        simulate_with(&instance, s.as_mut(), &mut medium, &config, &mut rng);
                    // Re-validate against the recorded capacity trace.
                    ocd_core::validate::replay_with_capacities(
                        &instance,
                        &outcome.report.schedule,
                        &outcome.capacity_trace,
                    )
                    .map_err(|e| format!("dynamic schedule failed validation: {e}"))?;
                    (outcome, medium_name)
                }
                (Some(spec), Some(b)) => {
                    let mut model = parse_dynamics(spec)?;
                    let medium_name = format!("node-capacity({})", model.name());
                    let mut medium = NodeCapacity::new(Dynamic::new(model.as_mut()), b);
                    let outcome =
                        simulate_with(&instance, s.as_mut(), &mut medium, &config, &mut rng);
                    ocd_core::validate::replay_with_capacities(
                        &instance,
                        &outcome.report.schedule,
                        &outcome.capacity_trace,
                    )
                    .map_err(|e| format!("dynamic schedule failed validation: {e}"))?;
                    (outcome, medium_name)
                }
            };
            let report = &outcome.report;
            let mut out = String::new();
            let _ = writeln!(out, "strategy:   {} ({})", kind.name(), s.tier());
            if let Some(spec) = dynamics {
                let _ = writeln!(out, "dynamics:   {spec}");
            }
            let _ = writeln!(out, "success:    {}", report.success);
            let _ = writeln!(out, "moves:      {} timesteps", report.steps);
            let _ = writeln!(out, "bandwidth:  {} token-transfers", report.bandwidth);
            if let Some(mean) = report.mean_completion() {
                let _ = writeln!(out, "mean completion step: {mean:.1}");
            }
            if *do_prune {
                let (pruned, stats) = prune::prune(&instance, &report.schedule);
                let _ = writeln!(
                    out,
                    "pruned bandwidth: {} ({} duplicate + {} unused moves removed)",
                    pruned.bandwidth(),
                    stats.duplicates_removed,
                    stats.unused_removed
                );
            }
            if let Some(path) = schedule {
                let json = serde_json::to_string(&report.schedule)
                    .map_err(|e| format!("serialize schedule: {e}"))?;
                std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
                let _ = writeln!(out, "schedule written to {path}");
            }
            if let Some(path) = record {
                let rec = outcome.to_record(&instance, kind.name(), &medium_name, *seed);
                rec.write_json(path.as_ref())
                    .map_err(|e| format!("write {path}: {e}"))?;
                let _ = writeln!(out, "run record written to {path}");
            }
            if let Some(path) = metrics {
                let snap = outcome
                    .metrics
                    .as_ref()
                    .expect("--metrics enables collection");
                let rendered = if path.ends_with(".csv") {
                    snap.to_csv()
                } else {
                    snap.to_json()
                };
                std::fs::write(path, rendered).map_err(|e| format!("write {path}: {e}"))?;
                let _ = writeln!(
                    out,
                    "metrics snapshot written to {path} ({} counters, {} histograms, {} series)",
                    snap.counters.len(),
                    snap.histograms.len(),
                    snap.series.len()
                );
            }
            Ok(out)
        }
        Command::Certify { record } => {
            let rec = ocd_core::RunRecord::read_json(record.as_ref())
                .map_err(|e| format!("read {record}: {e}"))?;
            let replay = rec
                .certify()
                .map_err(|e| format!("{record}: certification FAILED: {e}"))?;
            let mut out = String::new();
            let _ = writeln!(
                out,
                "{record}: certified (version {}, strategy {}, medium {}, {} steps, {} token-transfers, {})",
                rec.version,
                rec.strategy,
                rec.medium,
                rec.steps,
                rec.bandwidth,
                if replay.is_successful() {
                    "every want satisfied"
                } else {
                    "incomplete"
                }
            );
            let _ = writeln!(
                out,
                "metrics:    {}",
                match &rec.metrics {
                    Some(snap) => format!(
                        "embedded ({} counters, {} histograms, {} series)",
                        snap.counters.len(),
                        snap.histograms.len(),
                        snap.series.len()
                    ),
                    None => "none".to_string(),
                }
            );
            let _ = writeln!(
                out,
                "provenance: {}",
                match &rec.provenance {
                    Some(digest) =>
                        format!("embedded ({} first-acquisitions)", digest.entries.len()),
                    None => "none".to_string(),
                }
            );
            Ok(out)
        }
        Command::TraceAnalyze { record } => {
            let (rec, trace) = load_certified_trace(record)?;
            let mut out = String::new();
            let _ = writeln!(
                out,
                "record:     {record} (strategy {}, medium {}, seed {})",
                rec.strategy, rec.medium, rec.seed
            );
            let _ = writeln!(
                out,
                "provenance: {}",
                if rec.provenance.is_some() {
                    "embedded digest"
                } else {
                    "derived from schedule replay"
                }
            );
            out.push_str(&trace.analyze(&rec.instance).render(&rec.instance));
            if let Some(budgets) = rec.instance.node_budgets() {
                out.push_str(&render_uplink_utilization(
                    &rec.instance,
                    budgets,
                    &rec.schedule,
                ));
            }
            Ok(out)
        }
        Command::TraceExport {
            record,
            format,
            spans,
            out,
        } => {
            let (rec, trace) = load_certified_trace(record)?;
            if rec.provenance.is_none() && !*spans {
                // One-line notice on stderr so piped exports stay clean.
                eprintln!(
                    "note: {record} has no embedded provenance; \
                     derived it from the certified schedule replay"
                );
            }
            let rendered = if *spans {
                // `--spans` switches the source from the provenance
                // event stream to the schedule-derived span timeline.
                let mut fr = FlightRecorder::logical();
                record_schedule_spans(&rec, &mut fr);
                match format.as_str() {
                    "chrome" => fr.to_chrome_json("ocd trace export --spans"),
                    "json" => fr.to_json(),
                    "csv" => fr.to_csv(),
                    other => {
                        return Err(format!(
                            "unknown trace format `{other}` — valid --format values are \
                             chrome | json | csv (with or without --spans)"
                        ))
                    }
                }
            } else {
                match format.as_str() {
                    "chrome" => trace.to_chrome_json(&rec.instance),
                    "json" => trace.to_json(),
                    "csv" => trace.to_csv(),
                    other => {
                        return Err(format!(
                            "unknown trace format `{other}` — valid --format values are \
                             chrome | json | csv; add --spans for the schedule-derived \
                             span timeline"
                        ))
                    }
                }
            };
            emit(out.as_deref(), rendered)
        }
        Command::NetRun {
            instance,
            policy,
            seed,
            latency,
            jitter,
            loss,
            control_latency,
            control_loss,
            max_ticks,
            crash,
            trace,
            schedule,
        } => {
            let inst = load_instance(instance)?;
            let policy: NetPolicy = policy.parse()?;
            if *latency == 0 {
                return Err("--latency must be at least 1 tick".to_string());
            }
            let config = NetConfig {
                policy,
                latency: *latency,
                jitter: *jitter,
                loss: *loss,
                control_latency: *control_latency,
                control_loss: *control_loss,
                max_ticks: *max_ticks,
                ..NetConfig::default()
            };
            let faults = match crash {
                None => FaultPlan::none(),
                Some((v, down, up)) => {
                    if *v >= inst.num_vertices() {
                        return Err(format!("--crash vertex {v} is out of range"));
                    }
                    FaultPlan::none().crash_between(inst.graph().node(*v), *down, *up)
                }
            };
            let mut rng = StdRng::seed_from_u64(*seed);
            let report = run_swarm(&inst, &config, &faults, &mut rng);

            let mut out = String::new();
            let _ = writeln!(out, "policy:     {policy}");
            let _ = writeln!(out, "success:    {}", report.success);
            let _ = writeln!(out, "ticks:      {}", report.ticks);
            let _ = writeln!(out, "makespan:   {} timesteps", report.makespan());
            let _ = writeln!(out, "bandwidth:  {} token-transfers", report.bandwidth());
            let _ = writeln!(
                out,
                "delivered:  {} ({} duplicate)",
                report.tokens_delivered, report.duplicate_deliveries
            );
            let _ = writeln!(
                out,
                "lost:       {} (+{} dropped at crashed vertices)",
                report.tokens_lost, report.tokens_dropped_crashed
            );
            let _ = writeln!(out, "retransmits: {}", report.retransmits);
            let done: Vec<u64> = report.completion_ticks.iter().filter_map(|c| *c).collect();
            if !done.is_empty() {
                let mean = done.iter().sum::<u64>() as f64 / done.len() as f64;
                let _ = writeln!(out, "mean completion tick: {mean:.1}");
            }
            // The extracted schedule must replay as legal §3.1 moves.
            let replay = ocd_core::validate::replay(&inst, &report.schedule)
                .map_err(|e| format!("extracted schedule failed validation: {e}"))?;
            let _ = writeln!(
                out,
                "schedule:   certified ({})",
                if replay.is_successful() {
                    "every want satisfied"
                } else {
                    "incomplete"
                }
            );
            if report.trace.truncated() {
                let _ = writeln!(
                    out,
                    "warning: event trace ring buffer wrapped; {} oldest events dropped",
                    report.trace.events_dropped()
                );
            }
            if let Some(path) = trace {
                let rendered = if path.ends_with(".csv") {
                    report.trace.to_csv()
                } else {
                    report.trace.to_json()
                };
                std::fs::write(path, rendered).map_err(|e| format!("write {path}: {e}"))?;
                let _ = writeln!(
                    out,
                    "trace written to {path} ({} events{})",
                    report.trace.len(),
                    if report.trace.truncated() {
                        ", oldest evicted"
                    } else {
                        ""
                    }
                );
            }
            if let Some(path) = schedule {
                let json = serde_json::to_string(&report.schedule)
                    .map_err(|e| format!("serialize schedule: {e}"))?;
                std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
                let _ = writeln!(out, "schedule written to {path}");
            }
            Ok(out)
        }
        Command::Coded {
            graph,
            strategy,
            tokens,
            payload,
            source,
            redundancy,
            loss,
            seed,
            max_steps,
            provenance,
            metrics,
        } => {
            let g = load_graph(graph)?;
            if *source >= g.node_count() {
                return Err(format!(
                    "source vertex {source} out of range (graph has {} vertices)",
                    g.node_count()
                ));
            }
            let inst = RlncInstance::single_source(g, *tokens, *payload, *source);
            let mut strat: Box<dyn CodedStrategy> = match strategy.as_str() {
                "random" | "rnd" => Box::new(CodedRandom::new(*redundancy)),
                "local" | "rarest" => Box::new(CodedLocal::new(*redundancy)),
                other => {
                    return Err(format!(
                        "unknown coded strategy `{other}` (use random | local)"
                    ))
                }
            };
            if !(0.0..1.0).contains(loss) {
                return Err(format!("loss must be in [0, 1), got {loss}"));
            }
            if *redundancy < 1.0 {
                return Err(format!("redundancy must be >= 1, got {redundancy}"));
            }
            let config = CodedSimConfig {
                max_steps: *max_steps,
                // Like `ocd run --metrics`: the coded recorder only
                // books deterministic counters, so equal seeds produce
                // byte-identical snapshots.
                metrics: metrics.is_some(),
                provenance: *provenance,
            };
            let mut rng = StdRng::seed_from_u64(*seed);
            let outcome = if *loss > 0.0 {
                ocd_heuristics::simulate_coded_with(
                    &inst,
                    strat.as_mut(),
                    &mut LossyCoded::new(*loss),
                    &config,
                    &mut rng,
                )
            } else {
                ocd_heuristics::simulate_coded(&inst, strat.as_mut(), &config, &mut rng)
            };
            let r = &outcome.report;
            let mut out = String::new();
            let _ = writeln!(
                out,
                "coded run: {} over GF(2^8), k = {}, payload = {} B, packet = {} B",
                strat.name(),
                inst.generation(),
                inst.payload_len(),
                inst.packet_bytes()
            );
            let _ = writeln!(
                out,
                "result: {} in {} steps",
                if r.success { "complete" } else { "INCOMPLETE" },
                r.steps
            );
            let _ = writeln!(
                out,
                "packets: {} sent ({} innovative, {} redundant, {} lost), {} bytes on the wire",
                r.packets_sent,
                r.innovative_deliveries,
                r.redundant_deliveries,
                r.packets_lost,
                r.bytes_sent
            );
            if r.success {
                let _ = writeln!(
                    out,
                    "decode: {}",
                    if r.decode_ok {
                        "every receiver reproduced the generation byte-for-byte"
                    } else {
                        "FAILED (field arithmetic is inconsistent)"
                    }
                );
            }
            if let Some(trace) = &outcome.provenance {
                // Slot-indexed coded provenance: token r of the slot
                // instance is the r-th innovative packet a vertex
                // absorbed, so the standard critical-path/bottleneck
                // analysis applies unchanged.
                let slots = inst.slot_instance();
                let analysis = trace.analyze(&slots);
                let _ = writeln!(out);
                let _ = write!(out, "{}", analysis.render(&slots));
                let _ = writeln!(out, "decoded-generation lineage (contributing arcs):");
                for v in inst.graph().nodes() {
                    if !inst.is_receiver(v) {
                        continue;
                    }
                    let arcs = trace.contributing_arcs(v);
                    let rendered = arcs
                        .iter()
                        .map(|&e| {
                            let arc = inst.graph().edge(e);
                            format!("{}->{}", arc.src, arc.dst)
                        })
                        .collect::<Vec<_>>()
                        .join(", ");
                    let _ = writeln!(out, "  vertex {v}: {} arcs {{{rendered}}}", arcs.len());
                }
            }
            if let Some(path) = metrics {
                let snap = outcome
                    .metrics
                    .as_ref()
                    .expect("--metrics enables collection");
                let rendered = if path.ends_with(".csv") {
                    snap.to_csv()
                } else {
                    snap.to_json()
                };
                std::fs::write(path, rendered).map_err(|e| format!("write {path}: {e}"))?;
                let _ = writeln!(
                    out,
                    "metrics snapshot written to {path} ({} counters, {} histograms, {} series)",
                    snap.counters.len(),
                    snap.histograms.len(),
                    snap.series.len()
                );
            }
            Ok(out)
        }
        Command::Solve {
            instance,
            objective,
            horizon,
            threads,
            profile,
        } => {
            let inst = load_instance(instance)?;
            let mip = MipOptions {
                threads: (*threads).max(1),
                ..MipOptions::default()
            };
            // The flight recorder stamps spans with the logical
            // sequence clock only, and the span stream is emitted by
            // the deterministic sequential part of the search, so
            // equal inputs give byte-identical profiles at any
            // --threads. Recording unconditionally keeps one code
            // path; the cost is nanoseconds per search node.
            let mut flight = FlightRecorder::logical();
            let mut out = String::new();
            match objective.as_str() {
                "time" => {
                    let r = solve_focd_with_spans(&inst, &BnbOptions::default(), &mut flight)
                        .map_err(|e| format!("FOCD: {e}"))?;
                    let _ = writeln!(out, "optimal makespan: {} timesteps", r.makespan);
                    let _ = writeln!(out, "witness bandwidth: {}", r.schedule.bandwidth());
                    let _ = writeln!(out, "search nodes: {}", r.nodes);
                    let _ = write!(out, "{}", r.schedule);
                }
                "bandwidth" => {
                    let h = if *horizon == 0 {
                        // Auto horizon: fastest completion plus slack.
                        let fast =
                            solve_focd_with_spans(&inst, &BnbOptions::default(), &mut flight)
                                .map_err(|e| format!("FOCD for auto-horizon: {e}"))?;
                        fast.makespan + 3
                    } else {
                        *horizon
                    };
                    let r = min_bandwidth_for_horizon_with_spans(&inst, h, &mip, &mut flight)
                        .map_err(|e| format!("EOCD IP: {e}"))?
                        .ok_or(format!("no successful schedule within {h} timesteps"))?;
                    let _ = writeln!(out, "optimal bandwidth within {h} steps: {}", r.bandwidth);
                    let _ = writeln!(out, "MILP nodes: {}", r.mip_nodes);
                    let _ = write!(out, "{}", r.schedule);
                }
                other => return Err(format!("unknown objective `{other}` (use time|bandwidth)")),
            }
            if let Some(path) = profile {
                let json = flight.to_chrome_json("ocd solve");
                std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
                let _ = writeln!(
                    out,
                    "search profile written to {path} ({} spans, {} incumbent events)",
                    flight.spans().len(),
                    flight.events().len()
                );
            }
            Ok(out)
        }
        Command::BenchCompare {
            old,
            new,
            tolerance,
        } => {
            let (table, regressed) = ocd_bench::compare::compare_files(old, new, *tolerance)?;
            if regressed {
                // Nonzero exit: the table rides in the error message.
                return Err(format!("performance regression detected\n{table}"));
            }
            Ok(table)
        }
        Command::Bounds { instance } => {
            let inst = load_instance(instance)?;
            let mut out = String::new();
            let _ = writeln!(out, "{:?}", inst.stats());
            let _ = writeln!(out, "satisfiable:           {}", inst.is_satisfiable());
            let _ = writeln!(
                out,
                "bandwidth lower bound: {}",
                bounds::bandwidth_lower_bound(&inst)
            );
            let ms = bounds::makespan_lower_bound(&inst);
            if ms == usize::MAX {
                let _ = writeln!(out, "makespan lower bound:  unbounded (unsatisfiable)");
            } else {
                let _ = writeln!(out, "makespan lower bound:  {ms}");
            }
            match steiner::bandwidth_upper_bound(&inst) {
                Ok(ub) => {
                    let _ = writeln!(out, "Steiner upper bound:   {ub}");
                }
                Err(e) => {
                    let _ = writeln!(out, "Steiner upper bound:   n/a ({e})");
                }
            }
            Ok(out)
        }
        Command::Validate { instance, schedule } => {
            let inst = load_instance(instance)?;
            let text =
                std::fs::read_to_string(schedule).map_err(|e| format!("read {schedule}: {e}"))?;
            let sched: Schedule =
                serde_json::from_str(&text).map_err(|e| format!("parse {schedule}: {e}"))?;
            let replay = ocd_core::validate::replay(&inst, &sched)
                .map_err(|e| format!("invalid schedule: {e}"))?;
            let mut out = String::new();
            let _ = writeln!(out, "valid:     yes");
            let _ = writeln!(out, "makespan:  {}", sched.makespan());
            let _ = writeln!(out, "bandwidth: {}", sched.bandwidth());
            if replay.is_successful() {
                let _ = writeln!(out, "successful: every want satisfied");
            } else {
                let _ = writeln!(out, "successful: NO");
                for (v, missing) in replay.unsatisfied() {
                    let _ = writeln!(out, "  vertex {v} still missing {missing:?}");
                }
            }
            Ok(out)
        }
        Command::ReduceDs { graph, k } => {
            let g = load_graph(graph)?;
            let (instance, layout) = focd_from_dominating_set(&g, *k);
            let mut out = String::new();
            let _ = writeln!(
                out,
                "reduced FOCD instance: {} vertices, {} tokens",
                instance.num_vertices(),
                instance.num_tokens()
            );
            let schedule = decide_focd(&instance, 2, &BnbOptions::default())
                .map_err(|e| format!("decision search: {e}"))?;
            match schedule {
                Some(s) => {
                    let ds = dominating_set_from_schedule(&layout, &instance, &s);
                    let _ = writeln!(out, "2-step schedule exists → dominating set of size ≤ {k}");
                    let _ = writeln!(
                        out,
                        "witness: {{{}}}",
                        ds.iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    debug_assert!(algo::is_dominating_set(&g, &ds));
                }
                None => {
                    let _ = writeln!(out, "no 2-step schedule → no dominating set of size ≤ {k}");
                }
            }
            Ok(out)
        }
        Command::Compare {
            instance,
            runs,
            seed,
        } => {
            let inst = load_instance(instance)?;
            let mut out = String::new();
            let _ = writeln!(
                out,
                "{:>16}  {:>7}  {:>12}  {:>10}",
                "strategy", "moves", "bandwidth", "pruned_bw"
            );
            for kind in StrategyKind::paper_five() {
                let mut moves = Vec::new();
                let mut bw = Vec::new();
                let mut pruned_bw = Vec::new();
                for r in 0..*runs {
                    let mut s = kind.build();
                    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(r as u64));
                    let report = simulate(&inst, s.as_mut(), &SimConfig::default(), &mut rng);
                    if !report.success {
                        return Err(format!("{kind} failed within the step cap"));
                    }
                    moves.push(report.steps as f64);
                    bw.push(report.bandwidth as f64);
                    let (p, _) = prune::prune(&inst, &report.schedule);
                    pruned_bw.push(p.bandwidth() as f64);
                }
                let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
                let _ = writeln!(
                    out,
                    "{:>16}  {:>7.1}  {:>12.1}  {:>10.1}",
                    kind.name(),
                    mean(&moves),
                    mean(&bw),
                    mean(&pruned_bw)
                );
            }
            let _ = writeln!(
                out,
                "{:>16}  {:>7}  {:>12}  {:>10}",
                "lower bounds",
                bounds::makespan_lower_bound(&inst),
                bounds::bandwidth_lower_bound(&inst),
                "-"
            );
            Ok(out)
        }
    }
}

/// Parses a dynamics spec: `static`, `cross:F`, `outages:P:Q`,
/// `churn:P:Q` (source vertex 0 pinned), `adversary:B[:C]`.
fn parse_dynamics(spec: &str) -> Result<Box<dyn ocd_heuristics::NetworkDynamics>, String> {
    use ocd_heuristics::dynamics::{
        AdversarialCuts, Churn, CrossTraffic, LinkOutages, StaticNetwork,
    };
    let parts: Vec<&str> = spec.split(':').collect();
    let num = |raw: &str| -> Result<f64, String> {
        raw.parse()
            .map_err(|_| format!("invalid number `{raw}` in dynamics `{spec}`"))
    };
    match parts.as_slice() {
        ["static"] => Ok(Box::new(StaticNetwork)),
        ["cross", f] => Ok(Box::new(CrossTraffic::new(num(f)?))),
        ["outages", p, q] => Ok(Box::new(LinkOutages::new(num(p)?, num(q)?))),
        ["churn", p, q] => Ok(Box::new(Churn::new(num(p)?, num(q)?, vec![0]))),
        ["adversary", b] => Ok(Box::new(AdversarialCuts::new(
            b.parse().map_err(|_| format!("invalid budget `{b}`"))?,
        ))),
        ["adversary", b, c] => Ok(Box::new(AdversarialCuts::with_cooldown(
            b.parse().map_err(|_| format!("invalid budget `{b}`"))?,
            c.parse().map_err(|_| format!("invalid cooldown `{c}`"))?,
        ))),
        _ => Err(format!(
            "unknown dynamics `{spec}` (use static | cross:F | outages:P:Q | churn:P:Q | adversary:B[:C])"
        )),
    }
}

/// Renders the per-vertex uplink-utilization section of
/// `trace analyze` for budgeted records: total tokens uplinked, the
/// busiest step against the budget, and how many steps ran saturated.
fn render_uplink_utilization(
    instance: &ocd_core::Instance,
    budgets: &ocd_core::NodeBudgets,
    schedule: &ocd_core::Schedule,
) -> String {
    let n = instance.num_vertices();
    let g = instance.graph();
    let steps = schedule.makespan();
    let mut total = vec![0u64; n];
    let mut peak = vec![0u64; n];
    let mut saturated = vec![0u64; n];
    let mut this_step = vec![0u64; n];
    for step in schedule.steps() {
        this_step.fill(0);
        for (e, tokens) in step.sends() {
            this_step[g.edge(e).src.index()] += tokens.len() as u64;
        }
        for v in 0..n {
            total[v] += this_step[v];
            peak[v] = peak[v].max(this_step[v]);
            let budget = budgets.uplink(v);
            if budget != ocd_core::NodeBudgets::UNLIMITED
                && this_step[v] == u64::from(budget)
                && this_step[v] > 0
            {
                saturated[v] += 1;
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "uplink utilization ({steps} steps, budgeted):");
    const SHOWN: usize = 16;
    for v in 0..n.min(SHOWN) {
        let budget = budgets.uplink(v);
        let budget_str = if budget == ocd_core::NodeBudgets::UNLIMITED {
            "∞".to_string()
        } else {
            budget.to_string()
        };
        let _ = writeln!(
            out,
            "  v{v}: {} tokens uplinked, peak {}/{} per step, saturated {}/{} steps",
            total[v], peak[v], budget_str, saturated[v], steps
        );
    }
    if n > SHOWN {
        let rest_total: u64 = total[SHOWN..].iter().sum();
        let _ = writeln!(
            out,
            "  … {} more vertices ({} tokens uplinked)",
            n - SHOWN,
            rest_total
        );
    }
    out
}

/// Derives the span timeline `trace export --spans` renders: one
/// `sched.step` span per timestep (counters `step`, `transfers`,
/// `tokens`) holding a zero-width `sched.transfer` child per move
/// (counters `src`, `dst`, `tokens`). Everything rides the logical
/// sequence clock, so equal records export byte-identically.
fn record_schedule_spans(rec: &ocd_core::RunRecord, spans: &mut FlightRecorder) {
    let g = rec.instance.graph();
    for (t, step) in rec.schedule.steps().iter().enumerate() {
        let step_span = spans.open("sched.step");
        spans.attach(step_span, "step", t as u64);
        let mut transfers = 0u64;
        let mut tokens_moved = 0u64;
        for (e, tokens) in step.sends() {
            let arc = g.edge(e);
            let t_span = spans.open("sched.transfer");
            spans.attach(t_span, "src", arc.src.index() as u64);
            spans.attach(t_span, "dst", arc.dst.index() as u64);
            spans.attach(t_span, "tokens", tokens.len() as u64);
            spans.close(t_span);
            transfers += 1;
            tokens_moved += tokens.len() as u64;
        }
        spans.attach(step_span, "transfers", transfers);
        spans.attach(step_span, "tokens", tokens_moved);
        spans.close(step_span);
    }
}

fn emit(path: Option<&str>, content: String) -> Result<String, String> {
    match path {
        Some(p) => {
            std::fs::write(p, &content).map_err(|e| format!("write {p}: {e}"))?;
            Ok(format!("written to {p}\n"))
        }
        None => Ok(content),
    }
}

/// Loads a graph from either the edge-list text format or JSON
/// (auto-detected: JSON starts with `{`).
fn load_graph(path: &str) -> Result<DiGraph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    if text.trim_start().starts_with('{') {
        serde_json::from_str(&text).map_err(|e| format!("parse {path} as JSON: {e}"))
    } else {
        gio::from_edge_list(&text).map_err(|e| format!("parse {path}: {e}"))
    }
}

/// Loads a `RunRecord`, certifies it, and produces its provenance
/// trace: the embedded digest when present, otherwise derived post hoc
/// by replaying the certified schedule (both agree by construction —
/// `certify` cross-checks any embedded digest against the replay).
fn load_certified_trace(path: &str) -> Result<(ocd_core::RunRecord, ProvenanceTrace), String> {
    let rec =
        ocd_core::RunRecord::read_json(path.as_ref()).map_err(|e| format!("read {path}: {e}"))?;
    rec.certify()
        .map_err(|e| format!("{path}: certification FAILED: {e}"))?;
    let trace = match &rec.provenance {
        Some(digest) => ProvenanceTrace::from_record(digest),
        None => ProvenanceTrace::from_schedule(&rec.instance, &rec.schedule),
    };
    Ok((rec, trace))
}

fn load_instance(path: &str) -> Result<Instance, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn run(parts: &[&str]) -> Result<String, String> {
        execute(&parse(parts.iter().map(|s| s.to_string()).collect())?)
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("ocd_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_prints_usage() {
        assert!(run(&["help"]).unwrap().contains("USAGE"));
    }

    #[test]
    fn coded_run_reports_and_renders_lineage() {
        let topo = tmp("coded_topo.txt");
        run(&[
            "generate",
            "--topology",
            "cycle",
            "--nodes",
            "6",
            "--cap",
            "2..2",
            "--out",
            &topo,
        ])
        .unwrap();
        let out = run(&[
            "coded",
            "--graph",
            &topo,
            "--tokens",
            "8",
            "--payload",
            "16",
            "--seed",
            "7",
            "--provenance",
        ])
        .unwrap();
        assert!(out.contains("coded-random"), "{out}");
        assert!(out.contains("complete in"), "{out}");
        assert!(out.contains("byte-for-byte"), "{out}");
        assert!(out.contains("critical path"), "{out}");
        assert!(out.contains("contributing arcs"), "{out}");
        assert!(out.contains("vertex 1:"), "{out}");

        // The lossy local variant also completes and is deterministic.
        let lossy = run(&[
            "coded",
            "--graph",
            &topo,
            "--strategy",
            "local",
            "--tokens",
            "6",
            "--loss",
            "0.2",
            "--redundancy",
            "1.5",
            "--seed",
            "3",
        ])
        .unwrap();
        assert!(lossy.contains("coded-local"), "{lossy}");
        let again = run(&[
            "coded",
            "--graph",
            &topo,
            "--strategy",
            "local",
            "--tokens",
            "6",
            "--loss",
            "0.2",
            "--redundancy",
            "1.5",
            "--seed",
            "3",
        ])
        .unwrap();
        assert_eq!(lossy, again, "equal seeds render identically");

        assert!(run(&["coded", "--graph", &topo, "--strategy", "bogus"])
            .unwrap_err()
            .contains("unknown coded strategy"));
        assert!(run(&["coded", "--graph", &topo, "--loss", "1.5"])
            .unwrap_err()
            .contains("loss"));
        assert!(run(&["coded", "--graph", &topo, "--source", "99"])
            .unwrap_err()
            .contains("out of range"));
    }

    #[test]
    fn generate_then_instance_then_run_pipeline() {
        let topo = tmp("pipeline_topo.txt");
        let inst = tmp("pipeline_inst.json");
        let sched = tmp("pipeline_sched.json");
        let record = tmp("pipeline_record.json");
        let out = run(&[
            "generate",
            "--topology",
            "random",
            "--nodes",
            "12",
            "--seed",
            "3",
            "--out",
            &topo,
        ])
        .unwrap();
        assert!(out.contains("written to"));
        run(&[
            "instance",
            "--graph",
            &topo,
            "--scenario",
            "single-file",
            "--tokens",
            "8",
            "--out",
            &inst,
        ])
        .unwrap();
        let report = run(&[
            "run",
            "--instance",
            &inst,
            "--strategy",
            "global",
            "--seed",
            "5",
            "--prune",
            "--schedule",
            &sched,
            "--record",
            &record,
        ])
        .unwrap();
        assert!(report.contains("success:    true"));
        assert!(report.contains("pruned bandwidth"));
        assert!(report.contains("run record written to"));
        // And the written schedule validates.
        let validation = run(&["validate", "--instance", &inst, "--schedule", &sched]).unwrap();
        assert!(validation.contains("valid:     yes"));
        assert!(validation.contains("successful: every want satisfied"));
        // The run record re-certifies from the artifact alone.
        let rec = ocd_core::RunRecord::read_json(record.as_ref()).unwrap();
        assert_eq!(rec.strategy, "global");
        assert_eq!(rec.medium, "ideal");
        assert_eq!(rec.seed, 5);
        let replay = rec.certify().unwrap();
        assert!(replay.is_successful());
    }

    #[test]
    fn run_metrics_snapshot_and_certify_subcommand() {
        let inst = tmp("metrics_inst.json");
        run(&[
            "instance",
            "--graph",
            "unused",
            "--scenario",
            "figure-one",
            "--out",
            &inst,
        ])
        .unwrap();
        let record = tmp("metrics_record.json");
        let snap_a = tmp("metrics_a.json");
        let snap_b = tmp("metrics_b.json");
        let run_once = |snap: &str| {
            let out = run(&[
                "run",
                "--instance",
                &inst,
                "--strategy",
                "random",
                "--seed",
                "9",
                "--record",
                &record,
                "--metrics",
                snap,
            ])
            .unwrap();
            assert!(out.contains("metrics snapshot written to"));
        };
        run_once(&snap_a);
        run_once(&snap_b);
        // Same seed ⇒ byte-identical snapshot files.
        let a = std::fs::read_to_string(&snap_a).unwrap();
        assert_eq!(a, std::fs::read_to_string(&snap_b).unwrap());
        let snap = ocd_core::MetricsSnapshot::from_json(&a).unwrap();
        assert!(snap.counter("engine.steps").unwrap() > 0);
        // The CSV rendering is also supported, keyed off the extension.
        let csv = tmp("metrics.csv");
        run(&[
            "run",
            "--instance",
            &inst,
            "--strategy",
            "random",
            "--seed",
            "9",
            "--metrics",
            &csv,
        ])
        .unwrap();
        let csv_text = std::fs::read_to_string(&csv).unwrap();
        assert!(csv_text.starts_with("kind,name,key,value"));
        assert!(csv_text.contains("counter,engine.steps"));
        // `certify` accepts the metrics- and provenance-embedding
        // current-version record...
        let certified = run(&["certify", "--record", &record]).unwrap();
        assert!(certified.contains("certified (version 4"), "{certified}");
        assert!(certified.contains("metrics:    embedded ("), "{certified}");
        assert!(certified.contains("provenance: embedded ("), "{certified}");
        // ...and a record without metrics reports `none`.
        let plain_record = tmp("metrics_plain_record.json");
        run(&[
            "run",
            "--instance",
            &inst,
            "--strategy",
            "random",
            "--seed",
            "9",
            "--record",
            &plain_record,
        ])
        .unwrap();
        let plain = run(&["certify", "--record", &plain_record]).unwrap();
        assert!(plain.contains("metrics:    none"), "{plain}");
        // A tampered record fails certification with a clear error.
        let mut rec = ocd_core::RunRecord::read_json(record.as_ref()).unwrap();
        rec.bandwidth += 1;
        rec.write_json(record.as_ref()).unwrap();
        let err = run(&["certify", "--record", &record]).unwrap_err();
        assert!(err.contains("certification FAILED"), "{err}");
    }

    #[test]
    fn trace_analyze_and_export_artifacts() {
        let inst = tmp("trace_inst.json");
        run(&[
            "instance",
            "--graph",
            "unused",
            "--scenario",
            "figure-one",
            "--out",
            &inst,
        ])
        .unwrap();
        let record = tmp("trace_record.json");
        let make_record = || {
            run(&[
                "run",
                "--instance",
                &inst,
                "--strategy",
                "random",
                "--seed",
                "11",
                "--record",
                &record,
            ])
            .unwrap();
        };
        make_record();
        // Analysis certifies the record, then prints the critical path
        // and the per-arc bottleneck table.
        let analysis = run(&["trace", "analyze", "--record", &record]).unwrap();
        assert!(
            analysis.contains("provenance: embedded digest"),
            "{analysis}"
        );
        assert!(analysis.contains("critical path:"), "{analysis}");
        assert!(
            analysis.contains("per-arc bottleneck attribution"),
            "{analysis}"
        );
        assert!(
            analysis.contains("token dissemination trees:"),
            "{analysis}"
        );
        // All three export formats write, and equal seeds give
        // byte-identical artifact *files*.
        let chrome_a = tmp("trace_a.chrome.json");
        let chrome_b = tmp("trace_b.chrome.json");
        run(&["trace", "export", "--record", &record, "--out", &chrome_a]).unwrap();
        make_record();
        run(&[
            "trace", "export", "--record", &record, "--format", "chrome", "--out", &chrome_b,
        ])
        .unwrap();
        let a = std::fs::read(&chrome_a).unwrap();
        assert_eq!(a, std::fs::read(&chrome_b).unwrap());
        assert!(std::str::from_utf8(&a)
            .unwrap()
            .starts_with("{\"traceEvents\":["));
        let csv = run(&["trace", "export", "--record", &record, "--format", "csv"]).unwrap();
        assert!(csv.starts_with("vertex,token,src,edge,step\n"), "{csv}");
        let json = run(&["trace", "export", "--record", &record, "--format", "json"]).unwrap();
        assert!(json.contains("\"entries\""), "{json}");
        assert!(
            run(&["trace", "export", "--record", &record, "--format", "dot"])
                .unwrap_err()
                .contains("unknown trace format")
        );
        // A record without an embedded digest still analyzes: the trace
        // is derived by replaying the certified schedule.
        let text = std::fs::read_to_string(&record).unwrap();
        let mut rec: ocd_core::RunRecord = serde_json::from_str(&text).unwrap();
        rec.provenance = None;
        rec.write_json(record.as_ref()).unwrap();
        let derived = run(&["trace", "analyze", "--record", &record]).unwrap();
        assert!(
            derived.contains("provenance: derived from schedule replay"),
            "{derived}"
        );
        assert!(derived.contains("critical path:"), "{derived}");
        // A tampered record is rejected before any analysis.
        rec.bandwidth += 1;
        rec.write_json(record.as_ref()).unwrap();
        let err = run(&["trace", "analyze", "--record", &record]).unwrap_err();
        assert!(err.contains("certification FAILED"), "{err}");
    }

    #[test]
    fn budgeted_instance_runs_under_node_capacity_and_analyzes_uplinks() {
        // A budgeted instance auto-wraps the medium: the record claims
        // "node-capacity", re-certifies under the budget-enforcing
        // replay, and `trace analyze` gains the uplink section.
        let inst = tmp("budgeted_inst.json");
        let instance = ocd_heuristics::optimal::broadcast_instance(2, 3, 1, 1);
        std::fs::write(&inst, serde_json::to_string(&instance).unwrap()).unwrap();
        let record = tmp("budgeted_record.json");
        let out = run(&[
            "run",
            "--instance",
            &inst,
            "--strategy",
            "per-neighbor-queue",
            "--seed",
            "1",
            "--record",
            &record,
        ])
        .unwrap();
        assert!(out.contains("success:    true"), "{out}");
        assert!(
            out.contains("moves:      3 timesteps"),
            "per-neighbor-queue must hit the MWW optimum: {out}"
        );
        let rec = ocd_core::RunRecord::read_json(record.as_ref()).unwrap();
        assert_eq!(rec.medium, "node-capacity");
        assert!(rec.instance.node_budgets().is_some());
        rec.certify().unwrap();
        let analysis = run(&["trace", "analyze", "--record", &record]).unwrap();
        assert!(analysis.contains("uplink utilization"), "{analysis}");
        assert!(
            analysis.contains("peak 1/1 per step"),
            "unit uplinks saturate: {analysis}"
        );
    }

    #[test]
    fn solve_profile_emits_deterministic_search_timeline() {
        let topo = tmp("profile_topo.txt");
        let inst = tmp("profile_inst.json");
        run(&[
            "generate",
            "--topology",
            "random",
            "--nodes",
            "16",
            "--seed",
            "2",
            "--out",
            &topo,
        ])
        .unwrap();
        run(&[
            "instance",
            "--graph",
            &topo,
            "--scenario",
            "single-file",
            "--tokens",
            "4",
            "--out",
            &inst,
        ])
        .unwrap();
        let profile_a = tmp("profile_a.json");
        let profile_b = tmp("profile_b.json");
        let solve = |profile: &str, threads: &str| {
            // Auto horizon (FOCD makespan + slack) is feasible by
            // construction; its deepening spans land in the profile
            // ahead of the MILP's.
            run(&[
                "solve",
                "--instance",
                &inst,
                "--objective",
                "bandwidth",
                "--threads",
                threads,
                "--profile",
                profile,
            ])
            .unwrap()
        };
        let out = solve(&profile_a, "1");
        assert!(out.contains("search profile written to"), "{out}");
        let a = std::fs::read_to_string(&profile_a).unwrap();
        assert!(a.starts_with("{\"traceEvents\":["), "{a}");
        // The MILP's search telemetry: one span per explored B&B node,
        // wrapped in the solver.ip.horizon span, plus incumbent events.
        assert!(a.contains("\"bnb.node."), "{a}");
        assert!(a.contains("\"bnb.incumbent\""), "{a}");
        assert!(a.contains("\"solver.ip.horizon\""), "{a}");
        assert!(a.contains("\"lp_iterations\""), "{a}");
        // Equal inputs ⇒ byte-identical profile artifacts, at any
        // thread count (the span stream rides the logical clock in the
        // deterministic sequential part of the search).
        let _ = solve(&profile_b, "4");
        assert_eq!(a, std::fs::read_to_string(&profile_b).unwrap());

        // The FOCD objective profiles as iterative-deepening horizons.
        let focd_profile = tmp("profile_focd.json");
        run(&[
            "solve",
            "--instance",
            &inst,
            "--objective",
            "time",
            "--profile",
            &focd_profile,
        ])
        .unwrap();
        let f = std::fs::read_to_string(&focd_profile).unwrap();
        assert!(f.contains("\"solver.focd.horizon\""), "{f}");
        assert!(f.contains("\"tau\""), "{f}");
    }

    #[test]
    fn coded_metrics_snapshot_written_and_deterministic() {
        let topo = tmp("coded_metrics_topo.txt");
        run(&[
            "generate",
            "--topology",
            "cycle",
            "--nodes",
            "6",
            "--cap",
            "2..2",
            "--out",
            &topo,
        ])
        .unwrap();
        let snap_a = tmp("coded_metrics_a.json");
        let snap_b = tmp("coded_metrics_b.json");
        let run_once = |snap: &str| {
            let out = run(&[
                "coded",
                "--graph",
                &topo,
                "--tokens",
                "8",
                "--payload",
                "16",
                "--seed",
                "7",
                "--metrics",
                snap,
            ])
            .unwrap();
            assert!(out.contains("metrics snapshot written to"), "{out}");
        };
        run_once(&snap_a);
        run_once(&snap_b);
        let a = std::fs::read_to_string(&snap_a).unwrap();
        assert_eq!(
            a,
            std::fs::read_to_string(&snap_b).unwrap(),
            "equal seeds must write byte-identical snapshots"
        );
        let snap = ocd_core::MetricsSnapshot::from_json(&a).unwrap();
        assert!(snap.counter("coded.packets_sent").unwrap() > 0);
        assert!(snap.counter("coded.innovative_deliveries").unwrap() > 0);
        // CSV rendering keys off the extension, like `ocd run`.
        let csv = tmp("coded_metrics.csv");
        run_once(&csv);
        let csv_text = std::fs::read_to_string(&csv).unwrap();
        assert!(csv_text.starts_with("kind,name,key,value"), "{csv_text}");
        assert!(
            csv_text.contains("counter,coded.packets_sent"),
            "{csv_text}"
        );
    }

    #[test]
    fn bench_compare_cli_gates_on_regressions() {
        let old = tmp("bench_old.json");
        let new = tmp("bench_new.json");
        std::fs::write(
            &old,
            r#"{"pr": 8, "benches": [{"name": "engine/step", "mean_ns": 1000.0}]}"#,
        )
        .unwrap();
        // Equal snapshots pass and render the delta table.
        std::fs::write(&new, r#"[{"name": "engine/step", "mean_ns": 1000.0}]"#).unwrap();
        let out = run(&["bench", "compare", &old, &new]).unwrap();
        assert!(out.contains("0 regressions"), "{out}");
        // A 30% inflation gates at the default 0.15 tolerance (nonzero
        // exit via the Err path) and the table rides in the message...
        std::fs::write(&new, r#"[{"name": "engine/step", "mean_ns": 1300.0}]"#).unwrap();
        let err = run(&["bench", "compare", &old, &new]).unwrap_err();
        assert!(err.contains("performance regression detected"), "{err}");
        assert!(err.contains("REGRESSION"), "{err}");
        // ...but a loose --tolerance waves the same delta through.
        let ok = run(&["bench", "compare", &old, &new, "--tolerance", "0.5"]).unwrap();
        assert!(ok.contains("0 regressions"), "{ok}");
        // Malformed and missing snapshots name the problem.
        std::fs::write(&new, "not json").unwrap();
        let err = run(&["bench", "compare", &old, &new]).unwrap_err();
        assert!(err.contains("neither a bench array"), "{err}");
        let err = run(&["bench", "compare", &old, "/nonexistent.json"]).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }

    #[test]
    fn trace_export_spans_source() {
        let inst = tmp("spans_inst.json");
        run(&[
            "instance",
            "--graph",
            "unused",
            "--scenario",
            "figure-one",
            "--out",
            &inst,
        ])
        .unwrap();
        let record = tmp("spans_record.json");
        run(&[
            "run",
            "--instance",
            &inst,
            "--strategy",
            "random",
            "--seed",
            "11",
            "--record",
            &record,
        ])
        .unwrap();
        let chrome = run(&["trace", "export", "--record", &record, "--spans"]).unwrap();
        assert!(chrome.starts_with("{\"traceEvents\":["), "{chrome}");
        assert!(chrome.contains("\"sched.step\""), "{chrome}");
        assert!(chrome.contains("\"sched.transfer\""), "{chrome}");
        // Equal records export byte-identically (logical clock only).
        let again = run(&["trace", "export", "--record", &record, "--spans"]).unwrap();
        assert_eq!(chrome, again);
        // The other formats render the same span timeline.
        let csv = run(&[
            "trace", "export", "--record", &record, "--spans", "--format", "csv",
        ])
        .unwrap();
        assert!(
            csv.starts_with("kind,name,depth,start,end,wall_ns,counters"),
            "{csv}"
        );
        assert!(csv.contains("span,sched.transfer"), "{csv}");
        let json = run(&[
            "trace", "export", "--record", &record, "--spans", "--format", "json",
        ])
        .unwrap();
        assert!(json.contains("\"spans\""), "{json}");
        // Unknown formats name the valid values for both sources.
        let err = run(&[
            "trace", "export", "--record", &record, "--spans", "--format", "dot",
        ])
        .unwrap_err();
        assert!(err.contains("chrome | json | csv"), "{err}");
        let err = run(&["trace", "export", "--record", &record, "--format", "dot"]).unwrap_err();
        assert!(err.contains("--spans"), "{err}");
    }

    #[test]
    fn solve_figure_one_both_objectives() {
        let inst = tmp("fig1.json");
        run(&[
            "instance",
            "--graph",
            "unused",
            "--scenario",
            "figure-one",
            "--out",
            &inst,
        ])
        .unwrap();
        let time = run(&["solve", "--instance", &inst, "--objective", "time"]).unwrap();
        assert!(time.contains("optimal makespan: 2"));
        let bw = run(&[
            "solve",
            "--instance",
            &inst,
            "--objective",
            "bandwidth",
            "--horizon",
            "3",
        ])
        .unwrap();
        assert!(bw.contains("optimal bandwidth within 3 steps: 4"));
    }

    #[test]
    fn bounds_output() {
        let inst = tmp("bounds.json");
        run(&[
            "instance",
            "--graph",
            "x",
            "--scenario",
            "figure-one",
            "--out",
            &inst,
        ])
        .unwrap();
        let out = run(&["bounds", "--instance", &inst]).unwrap();
        assert!(out.contains("satisfiable:           true"));
        assert!(out.contains("bandwidth lower bound: 4"));
    }

    #[test]
    fn reduce_ds_star() {
        let topo = tmp("star.txt");
        run(&[
            "generate",
            "--topology",
            "star",
            "--nodes",
            "5",
            "--cap",
            "1..1",
            "--out",
            &topo,
        ])
        .unwrap();
        let yes = run(&["reduce-ds", "--graph", &topo, "--k", "1"]).unwrap();
        assert!(yes.contains("dominating set of size ≤ 1"));
    }

    #[test]
    fn compare_table() {
        let topo = tmp("cmp_topo.txt");
        let inst = tmp("cmp_inst.json");
        run(&[
            "generate",
            "--topology",
            "cycle",
            "--nodes",
            "6",
            "--cap",
            "2..2",
            "--out",
            &topo,
        ])
        .unwrap();
        run(&[
            "instance",
            "--graph",
            &topo,
            "--scenario",
            "single-file",
            "--tokens",
            "6",
            "--out",
            &inst,
        ])
        .unwrap();
        let out = run(&["compare", "--instance", &inst, "--runs", "2"]).unwrap();
        assert!(out.contains("round-robin"));
        assert!(out.contains("lower bounds"));
    }

    #[test]
    fn run_with_dynamics_completes_and_reports() {
        let topo = tmp("dyn_topo.txt");
        let inst = tmp("dyn_inst.json");
        run(&[
            "generate",
            "--topology",
            "cycle",
            "--nodes",
            "8",
            "--cap",
            "3..3",
            "--out",
            &topo,
        ])
        .unwrap();
        run(&[
            "instance",
            "--graph",
            &topo,
            "--scenario",
            "single-file",
            "--tokens",
            "6",
            "--out",
            &inst,
        ])
        .unwrap();
        for spec in [
            "static",
            "cross:0.5",
            "outages:0.2:0.6",
            "churn:0.1:0.5",
            "adversary:1:2",
        ] {
            let out = run(&[
                "run",
                "--instance",
                &inst,
                "--strategy",
                "local",
                "--dynamics",
                spec,
                "--seed",
                "4",
            ])
            .unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert!(out.contains(&format!("dynamics:   {spec}")), "{spec}");
            assert!(out.contains("success:    true"), "{spec}: {out}");
        }
        assert!(run(&[
            "run",
            "--instance",
            &inst,
            "--strategy",
            "local",
            "--dynamics",
            "volcano"
        ])
        .unwrap_err()
        .contains("unknown dynamics"));
        // A dynamic run's record embeds the capacity trace and still
        // certifies standalone.
        let record = tmp("dyn_record.json");
        run(&[
            "run",
            "--instance",
            &inst,
            "--strategy",
            "local",
            "--dynamics",
            "outages:0.2:0.6",
            "--seed",
            "4",
            "--record",
            &record,
        ])
        .unwrap();
        let rec = ocd_core::RunRecord::read_json(record.as_ref()).unwrap();
        assert_eq!(rec.medium, "link-outages");
        assert!(!rec.capacity_trace.is_empty());
        rec.certify().unwrap();
    }

    #[test]
    fn net_run_reports_and_writes_artifacts() {
        let topo = tmp("net_topo.txt");
        let inst = tmp("net_inst.json");
        let trace = tmp("net_trace.csv");
        let sched = tmp("net_sched.json");
        run(&[
            "generate",
            "--topology",
            "cycle",
            "--nodes",
            "6",
            "--cap",
            "2..2",
            "--out",
            &topo,
        ])
        .unwrap();
        run(&[
            "instance",
            "--graph",
            &topo,
            "--scenario",
            "single-file",
            "--tokens",
            "8",
            "--out",
            &inst,
        ])
        .unwrap();
        let out = run(&[
            "net-run",
            "--instance",
            &inst,
            "--policy",
            "local",
            "--latency",
            "2",
            "--loss",
            "0.1",
            "--crash",
            "3:2:12",
            "--seed",
            "9",
            "--trace",
            &trace,
            "--schedule",
            &sched,
        ])
        .unwrap();
        assert!(out.contains("success:    true"), "{out}");
        assert!(out.contains("schedule:   certified (every want satisfied)"));
        assert!(out.contains("trace written to"));
        let csv = std::fs::read_to_string(&trace).unwrap();
        assert!(csv.starts_with("tick,kind,vertex,peer,edge,tokens"));
        assert!(csv.contains("crash"));
        // The written schedule round-trips through `ocd validate`.
        let validation = run(&["validate", "--instance", &inst, "--schedule", &sched]).unwrap();
        assert!(validation.contains("valid:     yes"));
        assert!(validation.contains("successful: every want satisfied"));
        // Bad inputs produce typed errors.
        assert!(
            run(&["net-run", "--instance", &inst, "--policy", "psychic"])
                .unwrap_err()
                .contains("unknown net policy")
        );
        assert!(run(&["net-run", "--instance", &inst, "--crash", "99:1:2"])
            .unwrap_err()
            .contains("out of range"));
        assert!(run(&["net-run", "--instance", &inst, "--latency", "0"])
            .unwrap_err()
            .contains("at least 1"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&["bounds", "--instance", "/nonexistent.json"])
            .unwrap_err()
            .contains("read"));
        assert!(
            run(&["generate", "--topology", "klein-bottle", "--nodes", "4"])
                .unwrap_err()
                .contains("unknown topology")
        );
        let inst = tmp("err_inst.json");
        run(&[
            "instance",
            "--graph",
            "x",
            "--scenario",
            "figure-one",
            "--out",
            &inst,
        ])
        .unwrap();
        assert!(run(&["run", "--instance", &inst, "--strategy", "quantum"])
            .unwrap_err()
            .contains("unknown strategy"));
    }
}
