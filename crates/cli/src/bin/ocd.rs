//! The `ocd` command-line tool: generate topologies, build scenario
//! instances, run heuristics, solve exactly, compute bounds, validate
//! schedules, and demonstrate the Dominating-Set reduction. See `ocd
//! help`.

fn main() {
    let code = ocd_cli::run_cli(std::env::args().skip(1).collect());
    std::process::exit(code);
}
