//! Argument parsing for the `ocd` tool (hand-rolled; no CLI-framework
//! dependency is available offline, and the surface is small).

use std::collections::HashMap;

/// A parsed `ocd` invocation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Command {
    /// `ocd generate`: emit a topology in edge-list format.
    Generate {
        /// Topology family name.
        topology: String,
        /// Number of nodes (approximate for transit-stub).
        nodes: usize,
        /// RNG seed.
        seed: u64,
        /// Capacity range `lo..=hi`.
        cap: (u32, u32),
        /// Output file (stdout if `None`).
        out: Option<String>,
    },
    /// `ocd instance`: build a scenario instance as JSON.
    Instance {
        /// Path to the graph (edge-list or JSON).
        graph: String,
        /// Scenario name.
        scenario: String,
        /// Token universe size.
        tokens: usize,
        /// File count (multi-file scenarios).
        files: usize,
        /// Source vertex.
        source: usize,
        /// Want threshold (receiver-density).
        threshold: f64,
        /// RNG seed.
        seed: u64,
        /// Output file (stdout if `None`).
        out: Option<String>,
    },
    /// `ocd run`: simulate one strategy.
    Run {
        /// Instance JSON path.
        instance: String,
        /// Strategy name.
        strategy: String,
        /// RNG seed.
        seed: u64,
        /// Aggregate-knowledge delay in steps.
        delay: usize,
        /// Step cap.
        max_steps: usize,
        /// Optional path to write the schedule JSON.
        schedule: Option<String>,
        /// Also report pruned bandwidth.
        prune: bool,
        /// Optional network-dynamics spec, e.g. `churn:0.05:0.3`,
        /// `outages:0.1:0.5`, `cross:0.5`, `adversary:2:1`, `static`.
        dynamics: Option<String>,
        /// Optional path to write the run as a self-certifying
        /// `RunRecord` JSON artifact.
        record: Option<String>,
        /// Optional path to write the run's metrics snapshot
        /// (`.csv` writes CSV, anything else JSON). Enables metrics
        /// collection for the run; the recorded set is deterministic,
        /// so equal seeds produce byte-identical snapshots.
        metrics: Option<String>,
    },
    /// `ocd solve`: exact optimization.
    Solve {
        /// Instance JSON path.
        instance: String,
        /// `time` (FOCD, branch and bound) or `bandwidth` (EOCD, IP).
        objective: String,
        /// Horizon for the bandwidth IP (0 = auto).
        horizon: usize,
        /// Worker threads for the IP's per-round LP solves. Any value
        /// yields byte-identical output; > 1 is only faster.
        threads: usize,
        /// Optional path for a Chrome/Perfetto search-timeline profile
        /// of the solve (one span per branch-and-bound node plus
        /// incumbent events). Spans are stamped with the logical
        /// sequence clock, so equal inputs give byte-identical
        /// profiles at any `--threads`.
        profile: Option<String>,
    },
    /// `ocd bounds`: print the §5.1 lower bounds and Steiner upper bound.
    Bounds {
        /// Instance JSON path.
        instance: String,
    },
    /// `ocd validate`: replay a schedule against an instance.
    Validate {
        /// Instance JSON path.
        instance: String,
        /// Schedule JSON path.
        schedule: String,
    },
    /// `ocd reduce-ds`: Theorem 5 reduction demo.
    ReduceDs {
        /// Graph path.
        graph: String,
        /// Dominating-set size bound.
        k: usize,
    },
    /// `ocd compare`: all five heuristics + bounds on one instance.
    Compare {
        /// Instance JSON path.
        instance: String,
        /// Runs per strategy.
        runs: usize,
        /// Master seed.
        seed: u64,
    },
    /// `ocd net-run`: simulate the asynchronous swarm runtime.
    NetRun {
        /// Instance JSON path.
        instance: String,
        /// Per-neighbor policy name (`random` or `local`).
        policy: String,
        /// RNG seed.
        seed: u64,
        /// Data-message latency in ticks (≥ 1).
        latency: u32,
        /// Maximum extra random delay per data message.
        jitter: u32,
        /// Data-message loss probability.
        loss: f64,
        /// Control-message latency in ticks (0 = same tick).
        control_latency: u32,
        /// Control-message loss probability.
        control_loss: f64,
        /// Tick cap.
        max_ticks: u64,
        /// Optional scripted fault `V:DOWN:UP` (crash vertex V at tick
        /// DOWN, restart it at tick UP).
        crash: Option<(usize, u64, u64)>,
        /// Optional path for the event trace (`.json` or `.csv`).
        trace: Option<String>,
        /// Optional path to write the extracted schedule JSON.
        schedule: Option<String>,
    },
    /// `ocd coded`: run the lockstep RLNC engine (random linear network
    /// coding over GF(2^8)) on a topology.
    Coded {
        /// Graph path (edge-list or JSON).
        graph: String,
        /// Coded strategy name (`random` or `local`).
        strategy: String,
        /// Generation size `k` (packets the source mixes over).
        tokens: usize,
        /// Payload bytes per packet.
        payload: usize,
        /// Source vertex.
        source: usize,
        /// Proactive-redundancy factor (≥ 1).
        redundancy: f64,
        /// Per-packet loss probability of the medium.
        loss: f64,
        /// RNG seed.
        seed: u64,
        /// Step cap.
        max_steps: usize,
        /// Print the slot-indexed coded provenance analysis (critical
        /// path, per-arc bottlenecks, per-receiver lineage arc sets).
        provenance: bool,
        /// Optional path to write the run's metrics snapshot
        /// (`.csv` writes CSV, anything else JSON). Enables metrics
        /// collection; equal seeds produce byte-identical snapshots.
        metrics: Option<String>,
    },
    /// `ocd certify`: re-certify a `RunRecord` artifact from the file
    /// alone.
    Certify {
        /// RunRecord JSON path.
        record: String,
    },
    /// `ocd trace analyze`: critical path + per-arc bottleneck
    /// attribution of a certified `RunRecord`.
    TraceAnalyze {
        /// RunRecord JSON path.
        record: String,
    },
    /// `ocd trace export`: render a run's causal provenance trace as
    /// Chrome/Perfetto, native JSON, or CSV.
    TraceExport {
        /// RunRecord JSON path.
        record: String,
        /// Output format: `chrome`, `json`, or `csv`.
        format: String,
        /// Export the schedule-derived span timeline (step-nested
        /// transfer spans on the logical clock) instead of the raw
        /// provenance event stream.
        spans: bool,
        /// Output file (stdout if `None`).
        out: Option<String>,
    },
    /// `ocd bench compare`: the perf-trajectory snapshot gate.
    BenchCompare {
        /// Old snapshot path (e.g. the committed `BENCH_<n>.json`).
        old: String,
        /// New snapshot path (a fresh `OCD_BENCH_JSON` capture).
        new: String,
        /// Regression threshold on `mean_ns` (`new/old - 1`).
        tolerance: f64,
    },
    /// `ocd help`.
    Help,
}

/// The subcommand names, for the unknown-subcommand diagnostic.
pub(crate) const SUBCOMMANDS: &[&str] = &[
    "generate",
    "instance",
    "run",
    "net-run",
    "coded",
    "solve",
    "bounds",
    "validate",
    "reduce-ds",
    "compare",
    "certify",
    "trace",
    "bench",
    "help",
];

pub(crate) const USAGE: &str = "\
ocd — the Overlay Network Content Distribution toolbox

USAGE:
  ocd generate  --topology <random|transit-stub|path|cycle|star|complete|grid|tree>
                --nodes <N> [--seed <S>] [--cap <LO..HI>] [--out <FILE>]
  ocd instance  --graph <FILE> --scenario <single-file|receiver-density|multi-file|multi-sender|figure-one>
                [--tokens <M>] [--files <K>] [--source <V>] [--threshold <T>] [--seed <S>] [--out <FILE>]
  ocd run       --instance <FILE> --strategy <round-robin|random|local|bandwidth|global|gather-then-plan|per-neighbor-queue>
                [--seed <S>] [--delay <K>] [--max-steps <N>] [--schedule <FILE>] [--prune]
                [--dynamics <static|cross:F|outages:P:Q|churn:P:Q|adversary:B[:C]>] [--record <FILE>]
                [--metrics <FILE.json|FILE.csv>]
  ocd net-run   --instance <FILE> [--policy <random|local|per-neighbor-queue>] [--seed <S>]
                [--latency <T>] [--jitter <J>] [--loss <P>] [--control-latency <T>] [--control-loss <P>]
                [--max-ticks <N>] [--crash <V:DOWN:UP>] [--trace <FILE.json|FILE.csv>] [--schedule <FILE>]
  ocd coded     --graph <FILE> [--strategy <random|local>] [--tokens <K>] [--payload <BYTES>]
                [--source <V>] [--redundancy <R>] [--loss <P>] [--seed <S>] [--max-steps <N>] [--provenance]
                [--metrics <FILE.json|FILE.csv>]
  ocd solve     --instance <FILE> --objective <time|bandwidth> [--horizon <H>] [--threads <T>]
                [--profile <FILE>]
  ocd bounds    --instance <FILE>
  ocd validate  --instance <FILE> --schedule <FILE>
  ocd reduce-ds --graph <FILE> --k <K>
  ocd compare   --instance <FILE> [--runs <N>] [--seed <S>]
  ocd certify   --record <FILE>
  ocd trace     analyze --record <FILE>
  ocd trace     export  --record <FILE> [--format <chrome|json|csv>] [--spans] [--out <FILE>]
  ocd bench     compare <OLD.json> <NEW.json> [--tolerance <T=0.15>]
  ocd help
";

struct Flags {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    fn parse(args: &[String], switch_names: &[&str]) -> Result<Flags, String> {
        let mut values = HashMap::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument `{arg}`"));
            };
            if switch_names.contains(&name) {
                switches.push(name.to_string());
                i += 1;
            } else {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--{name} requires a value"))?;
                values.insert(name.to_string(), value.clone());
                i += 2;
            }
        }
        Ok(Flags { values, switches })
    }

    fn req(&self, name: &str) -> Result<String, String> {
        self.values
            .get(name)
            .cloned()
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    fn opt<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value `{raw}` for --{name}")),
        }
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

fn parse_crash(raw: &str) -> Result<(usize, u64, u64), String> {
    let parts: Vec<&str> = raw.split(':').collect();
    let [v, down, up] = parts.as_slice() else {
        return Err(format!("crash spec `{raw}` must look like V:DOWN:UP"));
    };
    let v = v.parse().map_err(|_| format!("invalid vertex `{v}`"))?;
    let down = down.parse().map_err(|_| format!("invalid tick `{down}`"))?;
    let up = up.parse().map_err(|_| format!("invalid tick `{up}`"))?;
    if up <= down {
        return Err(format!("crash window {down}:{up} ends before it starts"));
    }
    Ok((v, down, up))
}

fn parse_cap(raw: &str) -> Result<(u32, u32), String> {
    let (lo, hi) = raw
        .split_once("..")
        .ok_or_else(|| format!("capacity range `{raw}` must look like LO..HI"))?;
    let lo: u32 = lo.parse().map_err(|_| format!("invalid capacity `{lo}`"))?;
    let hi: u32 = hi.parse().map_err(|_| format!("invalid capacity `{hi}`"))?;
    if lo == 0 || hi < lo {
        return Err(format!("capacity range {lo}..{hi} is empty or zero"));
    }
    Ok((lo, hi))
}

/// Parses a full argument vector (without the program name).
///
/// # Errors
///
/// Returns a usage/diagnostic message on malformed input.
pub fn parse(args: Vec<String>) -> Result<Command, String> {
    let Some((sub, rest)) = args.split_first() else {
        return Err(USAGE.to_string());
    };
    // `ocd <sub> --help` prints usage instead of tripping over a flag
    // that "requires a value".
    if rest.iter().any(|a| a == "--help" || a == "-h") {
        return Ok(Command::Help);
    }
    match sub.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "generate" => {
            let f = Flags::parse(rest, &[])?;
            Ok(Command::Generate {
                topology: f.req("topology")?,
                nodes: f.req("nodes")?.parse().map_err(|_| "invalid --nodes")?,
                seed: f.opt("seed", 0)?,
                cap: parse_cap(&f.opt("cap", "3..15".to_string())?)?,
                out: f.values.get("out").cloned(),
            })
        }
        "instance" => {
            let f = Flags::parse(rest, &[])?;
            Ok(Command::Instance {
                graph: f.req("graph")?,
                scenario: f.req("scenario")?,
                tokens: f.opt("tokens", 64)?,
                files: f.opt("files", 1)?,
                source: f.opt("source", 0)?,
                threshold: f.opt("threshold", 1.0)?,
                seed: f.opt("seed", 0)?,
                out: f.values.get("out").cloned(),
            })
        }
        "run" => {
            let f = Flags::parse(rest, &["prune"])?;
            Ok(Command::Run {
                instance: f.req("instance")?,
                strategy: f.req("strategy")?,
                seed: f.opt("seed", 0)?,
                delay: f.opt("delay", 0)?,
                max_steps: f.opt("max-steps", 10_000)?,
                schedule: f.values.get("schedule").cloned(),
                prune: f.has("prune"),
                dynamics: f.values.get("dynamics").cloned(),
                record: f.values.get("record").cloned(),
                metrics: f.values.get("metrics").cloned(),
            })
        }
        "certify" => {
            let f = Flags::parse(rest, &[])?;
            Ok(Command::Certify {
                record: f.req("record")?,
            })
        }
        "trace" => {
            let Some((mode, rest)) = rest.split_first() else {
                return Err(format!(
                    "trace requires a mode: analyze | export\n\n{USAGE}"
                ));
            };
            match mode.as_str() {
                "analyze" => {
                    let f = Flags::parse(rest, &[])?;
                    Ok(Command::TraceAnalyze {
                        record: f.req("record")?,
                    })
                }
                "export" => {
                    let f = Flags::parse(rest, &["spans"])?;
                    Ok(Command::TraceExport {
                        record: f.req("record")?,
                        format: f.opt("format", "chrome".to_string())?,
                        spans: f.has("spans"),
                        out: f.values.get("out").cloned(),
                    })
                }
                other => Err(format!(
                    "unknown trace mode `{other}` (use analyze | export)"
                )),
            }
        }
        "solve" => {
            let f = Flags::parse(rest, &[])?;
            Ok(Command::Solve {
                instance: f.req("instance")?,
                objective: f.req("objective")?,
                horizon: f.opt("horizon", 0)?,
                threads: f.opt("threads", 1)?,
                profile: f.values.get("profile").cloned(),
            })
        }
        "bench" => {
            let Some((mode, rest)) = rest.split_first() else {
                return Err(format!("bench requires a mode: compare\n\n{USAGE}"));
            };
            match mode.as_str() {
                "compare" => {
                    let mut paths = Vec::new();
                    let mut tolerance = 0.15f64;
                    let mut i = 0;
                    while i < rest.len() {
                        match rest[i].as_str() {
                            "--tolerance" => {
                                let raw = rest
                                    .get(i + 1)
                                    .ok_or("--tolerance requires a value (e.g. 0.15)")?;
                                tolerance = raw.parse().map_err(|_| {
                                    format!("invalid value `{raw}` for --tolerance")
                                })?;
                                i += 2;
                            }
                            flag if flag.starts_with("--") => {
                                return Err(format!(
                                    "unknown flag `{flag}` for bench compare (only --tolerance)"
                                ));
                            }
                            path => {
                                paths.push(path.to_string());
                                i += 1;
                            }
                        }
                    }
                    let [old, new] = paths.as_slice() else {
                        return Err(format!(
                            "bench compare takes exactly two snapshot paths \
                             (<old.json> <new.json>), got {}",
                            paths.len()
                        ));
                    };
                    Ok(Command::BenchCompare {
                        old: old.clone(),
                        new: new.clone(),
                        tolerance,
                    })
                }
                other => Err(format!("unknown bench mode `{other}` (use compare)")),
            }
        }
        "bounds" => {
            let f = Flags::parse(rest, &[])?;
            Ok(Command::Bounds {
                instance: f.req("instance")?,
            })
        }
        "validate" => {
            let f = Flags::parse(rest, &[])?;
            Ok(Command::Validate {
                instance: f.req("instance")?,
                schedule: f.req("schedule")?,
            })
        }
        "reduce-ds" => {
            let f = Flags::parse(rest, &[])?;
            Ok(Command::ReduceDs {
                graph: f.req("graph")?,
                k: f.req("k")?.parse().map_err(|_| "invalid --k")?,
            })
        }
        "compare" => {
            let f = Flags::parse(rest, &[])?;
            Ok(Command::Compare {
                instance: f.req("instance")?,
                runs: f.opt("runs", 3)?,
                seed: f.opt("seed", 0)?,
            })
        }
        "coded" => {
            let f = Flags::parse(rest, &["provenance"])?;
            Ok(Command::Coded {
                graph: f.req("graph")?,
                strategy: f.opt("strategy", "random".to_string())?,
                tokens: f.opt("tokens", 16)?,
                payload: f.opt("payload", 64)?,
                source: f.opt("source", 0)?,
                redundancy: f.opt("redundancy", 1.0)?,
                loss: f.opt("loss", 0.0)?,
                seed: f.opt("seed", 0)?,
                max_steps: f.opt("max-steps", 10_000)?,
                provenance: f.has("provenance"),
                metrics: f.values.get("metrics").cloned(),
            })
        }
        "net-run" => {
            let f = Flags::parse(rest, &[])?;
            let crash = match f.values.get("crash") {
                None => None,
                Some(raw) => Some(parse_crash(raw)?),
            };
            Ok(Command::NetRun {
                instance: f.req("instance")?,
                policy: f.opt("policy", "random".to_string())?,
                seed: f.opt("seed", 0)?,
                latency: f.opt("latency", 1)?,
                jitter: f.opt("jitter", 0)?,
                loss: f.opt("loss", 0.0)?,
                control_latency: f.opt("control-latency", 0)?,
                control_loss: f.opt("control-loss", 0.0)?,
                max_ticks: f.opt("max-ticks", 100_000)?,
                crash,
                trace: f.values.get("trace").cloned(),
                schedule: f.values.get("schedule").cloned(),
            })
        }
        other => Err(format!(
            "unknown subcommand `{other}`\navailable subcommands: {}\n\n{USAGE}",
            SUBCOMMANDS.join(", ")
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(parts: &[&str]) -> Command {
        parse(parts.iter().map(|s| s.to_string()).collect()).unwrap()
    }

    fn parse_err(parts: &[&str]) -> String {
        parse(parts.iter().map(|s| s.to_string()).collect()).unwrap_err()
    }

    #[test]
    fn generate_full() {
        let cmd = parse_ok(&[
            "generate",
            "--topology",
            "random",
            "--nodes",
            "50",
            "--seed",
            "9",
            "--cap",
            "1..4",
            "--out",
            "t.txt",
        ]);
        assert_eq!(
            cmd,
            Command::Generate {
                topology: "random".into(),
                nodes: 50,
                seed: 9,
                cap: (1, 4),
                out: Some("t.txt".into()),
            }
        );
    }

    #[test]
    fn defaults_applied() {
        let cmd = parse_ok(&["generate", "--topology", "path", "--nodes", "4"]);
        match cmd {
            Command::Generate { seed, cap, out, .. } => {
                assert_eq!(seed, 0);
                assert_eq!(cap, (3, 15));
                assert!(out.is_none());
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn run_with_switch() {
        let cmd = parse_ok(&[
            "run",
            "--instance",
            "i.json",
            "--strategy",
            "global",
            "--prune",
        ]);
        match cmd {
            Command::Run {
                prune,
                max_steps,
                dynamics,
                record,
                metrics,
                ..
            } => {
                assert!(prune);
                assert_eq!(max_steps, 10_000);
                assert!(dynamics.is_none());
                assert!(record.is_none());
                assert!(metrics.is_none());
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn run_metrics_flag_and_certify() {
        let cmd = parse_ok(&[
            "run",
            "--instance",
            "i.json",
            "--strategy",
            "random",
            "--metrics",
            "m.json",
        ]);
        match cmd {
            Command::Run { metrics, .. } => assert_eq!(metrics.as_deref(), Some("m.json")),
            other => panic!("wrong parse: {other:?}"),
        }
        assert_eq!(
            parse_ok(&["certify", "--record", "r.json"]),
            Command::Certify {
                record: "r.json".into()
            }
        );
        assert!(parse_err(&["certify"]).contains("--record"));
    }

    #[test]
    fn trace_modes_parse() {
        assert_eq!(
            parse_ok(&["trace", "analyze", "--record", "r.json"]),
            Command::TraceAnalyze {
                record: "r.json".into()
            }
        );
        assert_eq!(
            parse_ok(&["trace", "export", "--record", "r.json"]),
            Command::TraceExport {
                record: "r.json".into(),
                format: "chrome".into(),
                spans: false,
                out: None,
            }
        );
        assert_eq!(
            parse_ok(&[
                "trace", "export", "--record", "r.json", "--format", "csv", "--spans", "--out",
                "t.csv",
            ]),
            Command::TraceExport {
                record: "r.json".into(),
                format: "csv".into(),
                spans: true,
                out: Some("t.csv".into()),
            }
        );
        assert!(parse_err(&["trace"]).contains("analyze | export"));
        assert!(parse_err(&["trace", "splice"]).contains("unknown trace mode"));
        assert!(parse_err(&["trace", "analyze"]).contains("--record"));
        assert_eq!(parse_ok(&["trace", "analyze", "--help"]), Command::Help);
    }

    #[test]
    fn coded_defaults_and_flags() {
        let cmd = parse_ok(&["coded", "--graph", "g.txt"]);
        match cmd {
            Command::Coded {
                strategy,
                tokens,
                payload,
                redundancy,
                loss,
                provenance,
                ..
            } => {
                assert_eq!(strategy, "random");
                assert_eq!(tokens, 16);
                assert_eq!(payload, 64);
                assert_eq!(redundancy, 1.0);
                assert_eq!(loss, 0.0);
                assert!(!provenance);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let cmd = parse_ok(&[
            "coded",
            "--graph",
            "g.txt",
            "--strategy",
            "local",
            "--tokens",
            "8",
            "--redundancy",
            "1.5",
            "--loss",
            "0.2",
            "--provenance",
        ]);
        match cmd {
            Command::Coded {
                strategy,
                tokens,
                redundancy,
                loss,
                provenance,
                ..
            } => {
                assert_eq!(strategy, "local");
                assert_eq!(tokens, 8);
                assert_eq!(redundancy, 1.5);
                assert_eq!(loss, 0.2);
                assert!(provenance);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse_err(&["coded"]).contains("--graph"));
    }

    #[test]
    fn solve_profile_and_coded_metrics_parse() {
        let cmd = parse_ok(&[
            "solve",
            "--instance",
            "i.json",
            "--objective",
            "time",
            "--profile",
            "p.json",
        ]);
        match cmd {
            Command::Solve {
                profile, threads, ..
            } => {
                assert_eq!(profile.as_deref(), Some("p.json"));
                assert_eq!(threads, 1);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let cmd = parse_ok(&["coded", "--graph", "g.txt", "--metrics", "m.csv"]);
        match cmd {
            Command::Coded { metrics, .. } => assert_eq!(metrics.as_deref(), Some("m.csv")),
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn bench_compare_parses() {
        assert_eq!(
            parse_ok(&["bench", "compare", "old.json", "new.json"]),
            Command::BenchCompare {
                old: "old.json".into(),
                new: "new.json".into(),
                tolerance: 0.15,
            }
        );
        assert_eq!(
            parse_ok(&[
                "bench",
                "compare",
                "old.json",
                "new.json",
                "--tolerance",
                "0.5"
            ]),
            Command::BenchCompare {
                old: "old.json".into(),
                new: "new.json".into(),
                tolerance: 0.5,
            }
        );
        assert!(parse_err(&["bench"]).contains("compare"));
        assert!(parse_err(&["bench", "diff"]).contains("unknown bench mode"));
        assert!(parse_err(&["bench", "compare", "only-one.json"]).contains("exactly two"));
        assert!(parse_err(&["bench", "compare", "a", "b", "c"]).contains("exactly two"));
        assert!(parse_err(&["bench", "compare", "a", "b", "--tolerance", "x"]).contains("invalid"));
        assert!(parse_err(&["bench", "compare", "a", "b", "--frob"]).contains("unknown flag"));
    }

    #[test]
    fn errors_are_helpful() {
        assert!(parse_err(&[]).contains("USAGE"));
        assert!(parse_err(&["bogus"]).contains("unknown subcommand"));
        assert!(parse_err(&["generate", "--nodes", "3"]).contains("--topology"));
        assert!(parse_err(&["generate", "--topology", "path", "--nodes", "x"]).contains("invalid"));
        assert!(parse_err(&["run", "--instance"]).contains("requires a value"));
        assert!(parse_err(&[
            "generate",
            "--topology",
            "path",
            "--nodes",
            "3",
            "--cap",
            "5..2"
        ])
        .contains("empty"));
        assert!(parse_err(&["generate", "positional"]).contains("positional"));
    }

    #[test]
    fn help_variants() {
        assert_eq!(parse_ok(&["help"]), Command::Help);
        assert_eq!(parse_ok(&["--help"]), Command::Help);
    }

    #[test]
    fn unknown_subcommand_lists_subcommands() {
        let err = parse_err(&["frobnicate"]);
        assert!(err.contains("unknown subcommand `frobnicate`"));
        assert!(err.contains("available subcommands:"));
        for sub in SUBCOMMANDS {
            assert!(err.contains(sub), "diagnostic must list `{sub}`");
        }
        assert!(err.contains("USAGE"));
    }

    #[test]
    fn subcommand_help_parses_as_help() {
        // `--help` after a subcommand must not be mistaken for a flag
        // that requires a value.
        assert_eq!(parse_ok(&["net-run", "--help"]), Command::Help);
        assert_eq!(parse_ok(&["net-run", "-h"]), Command::Help);
        assert_eq!(
            parse_ok(&["run", "--instance", "i.json", "--help"]),
            Command::Help
        );
    }

    #[test]
    fn net_run_defaults_and_flags() {
        let cmd = parse_ok(&["net-run", "--instance", "i.json"]);
        match cmd {
            Command::NetRun {
                policy,
                latency,
                loss,
                crash,
                ..
            } => {
                assert_eq!(policy, "random");
                assert_eq!(latency, 1);
                assert_eq!(loss, 0.0);
                assert!(crash.is_none());
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let cmd = parse_ok(&[
            "net-run",
            "--instance",
            "i.json",
            "--policy",
            "local",
            "--latency",
            "3",
            "--loss",
            "0.1",
            "--crash",
            "4:10:60",
            "--trace",
            "t.csv",
        ]);
        match cmd {
            Command::NetRun {
                policy,
                latency,
                loss,
                crash,
                trace,
                ..
            } => {
                assert_eq!(policy, "local");
                assert_eq!(latency, 3);
                assert_eq!(loss, 0.1);
                assert_eq!(crash, Some((4, 10, 60)));
                assert_eq!(trace.as_deref(), Some("t.csv"));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(
            parse_err(&["net-run", "--instance", "i", "--crash", "4:10"]).contains("V:DOWN:UP")
        );
        assert!(
            parse_err(&["net-run", "--instance", "i", "--crash", "4:60:10"])
                .contains("ends before it starts")
        );
    }
}
