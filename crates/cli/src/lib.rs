//! Implementation of the `ocd` command-line tool.
//!
//! The binary (`src/bin/ocd.rs`) is a thin wrapper over [`parse`] and
//! [`execute`], which are kept in library form so the command surface is
//! unit-testable without spawning processes.
//!
//! ```text
//! ocd generate --topology random --nodes 50 --seed 1 --out topo.txt
//! ocd instance --graph topo.txt --scenario single-file --tokens 64 --out inst.json
//! ocd run --instance inst.json --strategy global --seed 7 --schedule sched.json
//! ocd net-run --instance inst.json --policy local --latency 3 --loss 0.1 --crash 4:10:60
//! ocd solve --instance small.json --objective time
//! ocd bounds --instance inst.json
//! ocd validate --instance inst.json --schedule sched.json
//! ocd reduce-ds --graph topo.txt --k 3
//! ocd compare --instance inst.json --runs 3
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod commands;
mod opts;

pub use commands::execute;
pub use opts::{parse, Command};

/// Entry point shared by the binary: parse, execute, print, exit code.
#[must_use]
pub fn run_cli(args: Vec<String>) -> i32 {
    match parse(args) {
        Ok(cmd) => match execute(&cmd) {
            Ok(output) => {
                print!("{output}");
                0
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                1
            }
        },
        Err(msg) => {
            eprintln!("{msg}");
            2
        }
    }
}
