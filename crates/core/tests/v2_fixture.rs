//! Schema-version tolerance, second rung: a committed version-2
//! `RunRecord` artifact (written when metrics embedding existed but
//! before the provenance digest, so it has a `metrics` key and no
//! `provenance` key) must keep parsing and certifying under the
//! current (v3) schema. The CI trace smoke step certifies the same
//! file through the CLI.

use ocd_core::record::{RUN_RECORD_MIN_VERSION, RUN_RECORD_VERSION};
use ocd_core::RunRecord;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/run_record_v2.json"
);

#[test]
fn committed_v2_artifact_still_certifies() {
    let text = std::fs::read_to_string(FIXTURE).expect("fixture exists");
    assert!(
        text.contains("\"metrics\""),
        "fixture must carry the v2 metrics field"
    );
    assert!(
        !text.contains("\"provenance\""),
        "fixture must predate the provenance field"
    );
    let record = RunRecord::from_json(&text).expect("v2 artifact parses");
    assert_eq!(record.version, 2);
    assert!(record.version > RUN_RECORD_MIN_VERSION);
    assert!(record.version < RUN_RECORD_VERSION, "fixture is old-schema");
    assert!(record.metrics.is_some(), "v2 fixture embeds metrics");
    assert!(record.provenance.is_none(), "absent field reads as None");
    let replay = record.certify().expect("v2 artifact certifies");
    assert!(replay.is_successful());
    // Round-tripping through the current serializer upgrades nothing
    // silently: the version field is preserved as written.
    let back = RunRecord::from_json(&record.to_json().unwrap()).unwrap();
    assert_eq!(back.version, 2);
    back.certify().unwrap();
}
