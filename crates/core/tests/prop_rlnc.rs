//! Property tests for the RLNC layer: a [`CodedBasis`] fed `k`
//! linearly independent GF(2^8) combinations must always decode back
//! to the original generation payloads, regardless of which
//! combinations arrive, in which order, or how many dependent packets
//! are mixed in along the way.

use ocd_core::gf256;
use ocd_core::{CodedBasis, CodedPacket};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic generation: `k` payloads of `len` bytes seeded from
/// the proptest case.
fn generation(k: usize, len: usize, salt: u8) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| {
            (0..len)
                .map(|j| (i.wrapping_mul(37) ^ j.wrapping_mul(11) ^ salt as usize) as u8)
                .collect()
        })
        .collect()
}

proptest! {
    /// Round trip at random k ≤ 32: random combinations drawn from the
    /// source basis are absorbed until rank k; exactly k of them are
    /// innovative, and decoding reproduces the payloads byte for byte.
    #[test]
    fn k_independent_combinations_decode_to_the_generation(
        k in 1usize..=32,
        len in 0usize..=16,
        salt in 0u8..=255,
        seed in 0u64..1_000_000,
    ) {
        let payloads = generation(k, len, salt);
        let source = CodedBasis::source(&payloads);
        let mut sink = CodedBasis::new(k, len);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut innovative = 0usize;
        let mut fed = 0usize;
        while !sink.is_complete() {
            let packet = source.random_packet(&mut rng);
            prop_assert_eq!(packet.coeffs.len(), k);
            prop_assert_eq!(packet.payload.len(), len);
            let fresh = sink.is_innovative(&packet.coeffs);
            prop_assert_eq!(sink.absorb(packet), fresh,
                "absorb must agree with the non-mutating innovation check");
            if fresh {
                innovative += 1;
            }
            fed += 1;
            prop_assert!(fed < 64 * k + 64, "rank must keep growing");
        }
        prop_assert_eq!(innovative, k, "exactly k packets were independent");
        prop_assert_eq!(sink.rank(), k);
        prop_assert_eq!(sink.deficit(), 0);
        let decoded = sink.decode().expect("complete basis decodes");
        prop_assert_eq!(decoded, payloads);
    }

    /// Every mixture of the generation payloads is consistent: a packet
    /// built by explicit scalar arithmetic from random coefficients is
    /// absorbed with the payload the coefficients dictate, and a second
    /// basis filled from *relayed* re-combinations (not source packets)
    /// still decodes to the original generation.
    #[test]
    fn relayed_recombinations_still_decode(
        k in 1usize..=16,
        len in 1usize..=8,
        seed in 0u64..1_000_000,
    ) {
        let payloads = generation(k, len, 0x9E);
        let source = CodedBasis::source(&payloads);
        let mut relay = CodedBasis::new(k, len);
        let mut sink = CodedBasis::new(k, len);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut guard = 0usize;
        while !sink.is_complete() {
            // The relay pulls from the source, the sink only ever sees
            // the relay's re-mixed packets.
            let _ = relay.absorb(source.random_packet(&mut rng));
            let _ = sink.absorb(relay.random_packet(&mut rng));
            guard += 1;
            prop_assert!(guard < 64 * k + 64, "relaying must converge");
        }
        prop_assert_eq!(sink.decode().expect("complete"), payloads);
    }

    /// Hand-mixed packets match the field arithmetic: absorbing the
    /// explicit combination `sum_i w_i · packet_i` never corrupts the
    /// decoded payloads.
    #[test]
    fn explicit_mixtures_are_honest(
        k in 1usize..=8,
        weights in proptest::collection::vec(0u8..=255, 1..9),
    ) {
        let len = 5usize;
        let payloads = generation(k, len, 0x21);
        let mut coeffs = vec![0u8; k];
        let mut payload = vec![0u8; len];
        for (i, &w) in weights.iter().take(k).enumerate() {
            coeffs[i] = w;
            gf256::mul_add_slice(&mut payload, w, &payloads[i]);
        }
        let mut sink = CodedBasis::new(k, len);
        let innovative = sink.absorb(CodedPacket {
            coeffs: coeffs.clone(),
            payload,
        });
        prop_assert_eq!(innovative, coeffs.iter().any(|&c| c != 0),
            "a nonzero mixture into an empty basis is always innovative");
    }
}
