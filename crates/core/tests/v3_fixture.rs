//! Schema-version tolerance, third rung: a committed version-3
//! `RunRecord` artifact (written when the provenance digest existed but
//! before instances could carry `NodeBudgets`, so its embedded instance
//! has no `node_budgets` key) must keep parsing and certifying under
//! the current (v4) schema. The CI metrics smoke step certifies the
//! same file through the CLI.

use ocd_core::record::{RUN_RECORD_MIN_VERSION, RUN_RECORD_VERSION};
use ocd_core::RunRecord;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/run_record_v3.json"
);

#[test]
fn committed_v3_artifact_still_certifies() {
    let text = std::fs::read_to_string(FIXTURE).expect("fixture exists");
    assert!(
        text.contains("\"provenance\""),
        "fixture must carry the v3 provenance field"
    );
    assert!(
        !text.contains("\"node_budgets\""),
        "fixture must predate node budgets"
    );
    let record = RunRecord::from_json(&text).expect("v3 artifact parses");
    assert_eq!(record.version, 3);
    assert!(record.version > RUN_RECORD_MIN_VERSION);
    assert!(record.version < RUN_RECORD_VERSION, "fixture is old-schema");
    assert!(record.provenance.is_some(), "v3 fixture embeds provenance");
    assert!(
        record.instance.node_budgets().is_none(),
        "absent budgets read as None"
    );
    let replay = record.certify().expect("v3 artifact certifies");
    assert!(replay.is_successful());
    // Round-tripping through the current serializer upgrades nothing
    // silently: the version field is preserved as written.
    let back = RunRecord::from_json(&record.to_json().unwrap()).unwrap();
    assert_eq!(back.version, 3);
    back.certify().unwrap();
}
