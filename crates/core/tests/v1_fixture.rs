//! Schema-version tolerance: a committed version-1 `RunRecord`
//! artifact (written before the metrics layer existed, so it has no
//! `metrics` key at all) must keep parsing and certifying under the
//! current schema. The CI metrics smoke step certifies the same file
//! through the CLI.

use ocd_core::record::{RUN_RECORD_MIN_VERSION, RUN_RECORD_VERSION};
use ocd_core::RunRecord;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/run_record_v1.json"
);

#[test]
fn committed_v1_artifact_still_certifies() {
    let text = std::fs::read_to_string(FIXTURE).expect("fixture exists");
    assert!(
        !text.contains("\"metrics\""),
        "fixture must predate the metrics field"
    );
    let record = RunRecord::from_json(&text).expect("v1 artifact parses");
    assert_eq!(record.version, RUN_RECORD_MIN_VERSION);
    assert!(record.version < RUN_RECORD_VERSION, "fixture is old-schema");
    assert!(record.metrics.is_none(), "absent field reads as None");
    let replay = record.certify().expect("v1 artifact certifies");
    assert!(replay.is_successful());
    // Round-tripping through the current serializer upgrades nothing
    // silently: the version field is preserved as written.
    let back = RunRecord::from_json(&record.to_json().unwrap()).unwrap();
    assert_eq!(back.version, RUN_RECORD_MIN_VERSION);
    back.certify().unwrap();
}
