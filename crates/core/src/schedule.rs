//! Distribution schedules: sequences of timesteps assigning tokens to
//! arcs.

use crate::{Token, TokenSet};
use ocd_graph::EdgeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single token transfer: `token` crosses `edge` during some timestep.
/// One move consumes one unit of bandwidth (§3.1/§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Move {
    /// 0-based timestep in which the transfer happens.
    pub step: usize,
    /// The arc the token crosses.
    pub edge: EdgeId,
    /// The token transferred.
    pub token: Token,
}

/// The moves of one timestep: for each arc that carries anything, the set
/// of tokens assigned to it (`s_i(u, v)` in the paper). Arcs are kept in
/// ascending id order with at most one entry per arc.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timestep {
    sends: Vec<(EdgeId, TokenSet)>,
}

impl Timestep {
    /// Creates an empty timestep.
    #[must_use]
    pub fn new() -> Self {
        Timestep::default()
    }

    /// Creates a timestep from `(arc, tokens)` pairs. Pairs for the same
    /// arc are unioned; empty token sets are dropped; entries are sorted
    /// by arc id so equal timesteps compare equal.
    #[must_use]
    pub fn from_sends(sends: impl IntoIterator<Item = (EdgeId, TokenSet)>) -> Self {
        let mut step = Timestep::new();
        for (edge, tokens) in sends {
            step.add_send(edge, &tokens);
        }
        step
    }

    /// Unions `tokens` into the send set of `edge`.
    pub fn add_send(&mut self, edge: EdgeId, tokens: &TokenSet) {
        if tokens.is_empty() {
            return;
        }
        match self.sends.binary_search_by_key(&edge, |(e, _)| *e) {
            Ok(pos) => self.sends[pos].1.union_with(tokens),
            Err(pos) => self.sends.insert(pos, (edge, tokens.clone())),
        }
    }

    /// The token set assigned to `edge`, if any.
    #[must_use]
    pub fn sent_on(&self, edge: EdgeId) -> Option<&TokenSet> {
        self.sends
            .binary_search_by_key(&edge, |(e, _)| *e)
            .ok()
            .map(|pos| &self.sends[pos].1)
    }

    /// Iterates over `(arc, tokens)` entries in ascending arc order.
    pub fn sends(&self) -> impl Iterator<Item = (EdgeId, &TokenSet)> {
        self.sends.iter().map(|(e, t)| (*e, t))
    }

    /// Mutable iteration over the send entries (used by pruning).
    pub(crate) fn sends_mut(&mut self) -> impl Iterator<Item = (EdgeId, &mut TokenSet)> {
        self.sends.iter_mut().map(|(e, t)| (*e, t))
    }

    /// Drops arcs whose token set became empty (after pruning).
    pub(crate) fn drop_empty(&mut self) {
        self.sends.retain(|(_, t)| !t.is_empty());
    }

    /// Total tokens transferred in this timestep.
    #[must_use]
    pub fn bandwidth(&self) -> u64 {
        self.sends.iter().map(|(_, t)| t.len() as u64).sum()
    }

    /// Whether no arc carries anything.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty()
    }
}

/// A distribution schedule: the sequence `s_0, …, s_{t-1}` of timesteps
/// (§3.1). Invalid schedules can be *represented*; validity against an
/// instance is checked by [`validate::replay`](crate::validate::replay).
///
/// # Examples
///
/// ```
/// use ocd_core::{Schedule, Token, TokenSet};
/// use ocd_graph::EdgeId;
///
/// let mut s = Schedule::new();
/// s.push_step([(EdgeId::new(0), TokenSet::from_tokens(4, [Token::new(2)]))]);
/// s.push_step([]);
/// assert_eq!(s.makespan(), 2);
/// assert_eq!(s.bandwidth(), 1);
/// let trimmed = s.trimmed();
/// assert_eq!(trimmed.makespan(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    steps: Vec<Timestep>,
}

impl Schedule {
    /// Creates an empty schedule (zero timesteps).
    #[must_use]
    pub fn new() -> Self {
        Schedule::default()
    }

    /// Appends a timestep built from `(arc, tokens)` pairs.
    pub fn push_step(&mut self, sends: impl IntoIterator<Item = (EdgeId, TokenSet)>) {
        self.steps.push(Timestep::from_sends(sends));
    }

    /// Appends an already-built timestep.
    pub fn push_timestep(&mut self, step: Timestep) {
        self.steps.push(step);
    }

    /// Number of timesteps, `t`. This is the FOCD objective (§3.2), and
    /// what the paper's figures call "moves".
    #[must_use]
    pub fn makespan(&self) -> usize {
        self.steps.len()
    }

    /// Total tokens transferred over all timesteps — the EOCD objective
    /// (§3.3), the paper's "bandwidth".
    #[must_use]
    pub fn bandwidth(&self) -> u64 {
        self.steps.iter().map(Timestep::bandwidth).sum()
    }

    /// The timesteps in order.
    #[must_use]
    pub fn steps(&self) -> &[Timestep] {
        &self.steps
    }

    /// Mutable access for pruning.
    pub(crate) fn steps_mut(&mut self) -> &mut [Timestep] {
        &mut self.steps
    }

    /// Flattens the schedule into individual [`Move`]s in (step, arc,
    /// token) order.
    pub fn moves(&self) -> impl Iterator<Item = Move> + '_ {
        self.steps.iter().enumerate().flat_map(|(step, ts)| {
            ts.sends().flat_map(move |(edge, tokens)| {
                tokens.iter().map(move |token| Move { step, edge, token })
            })
        })
    }

    /// Returns a copy with trailing empty timesteps removed. Interior
    /// empty steps are kept: they represent deliberate waiting.
    #[must_use]
    pub fn trimmed(&self) -> Schedule {
        let mut steps = self.steps.clone();
        while steps.last().is_some_and(Timestep::is_empty) {
            steps.pop();
        }
        Schedule { steps }
    }
}

/// Incrementally extracts a [`Schedule`] from out-of-order transfer
/// events, e.g. the token departures of an asynchronous simulation.
///
/// Unlike [`Schedule::push_step`], events may arrive for any step in any
/// order; the recorder pads with idle timesteps as needed and unions
/// repeated `(step, arc)` events. The §3.1 restrictions are *not*
/// checked here — certify the finished schedule with
/// [`validate::replay`](crate::validate::replay).
///
/// # Examples
///
/// ```
/// use ocd_core::{ScheduleRecorder, Token, TokenSet};
/// use ocd_graph::EdgeId;
///
/// let mut rec = ScheduleRecorder::new();
/// rec.record(2, EdgeId::new(0), &TokenSet::from_tokens(4, [Token::new(1)]));
/// rec.record(0, EdgeId::new(1), &TokenSet::from_tokens(4, [Token::new(0)]));
/// let schedule = rec.finish();
/// assert_eq!(schedule.makespan(), 3);
/// assert_eq!(schedule.bandwidth(), 2);
/// assert!(schedule.steps()[1].is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScheduleRecorder {
    steps: Vec<Timestep>,
}

impl ScheduleRecorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        ScheduleRecorder::default()
    }

    /// Records that `tokens` crossed `edge` during timestep `step`.
    /// Empty token sets are ignored.
    pub fn record(&mut self, step: usize, edge: EdgeId, tokens: &TokenSet) {
        if tokens.is_empty() {
            return;
        }
        while self.steps.len() <= step {
            self.steps.push(Timestep::new());
        }
        self.steps[step].add_send(edge, tokens);
    }

    /// Total tokens recorded so far.
    #[must_use]
    pub fn bandwidth(&self) -> u64 {
        self.steps.iter().map(Timestep::bandwidth).sum()
    }

    /// Finalizes into a schedule, trailing idle steps trimmed.
    #[must_use]
    pub fn finish(self) -> Schedule {
        Schedule { steps: self.steps }.trimmed()
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "schedule: {} steps, {} token-transfers",
            self.makespan(),
            self.bandwidth()
        )?;
        for (i, step) in self.steps.iter().enumerate() {
            write!(f, "  step {i}:")?;
            if step.is_empty() {
                writeln!(f, " (idle)")?;
                continue;
            }
            writeln!(f)?;
            for (edge, tokens) in step.sends() {
                writeln!(f, "    arc {edge}: {tokens:?}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(universe: usize, edge: usize, tokens: &[usize]) -> (EdgeId, TokenSet) {
        (
            EdgeId::new(edge),
            TokenSet::from_tokens(universe, tokens.iter().map(|&i| Token::new(i))),
        )
    }

    #[test]
    fn empty_schedule() {
        let s = Schedule::new();
        assert_eq!(s.makespan(), 0);
        assert_eq!(s.bandwidth(), 0);
        assert_eq!(s.moves().count(), 0);
    }

    #[test]
    fn duplicate_edge_entries_union() {
        let step = Timestep::from_sends([ts(5, 0, &[1]), ts(5, 0, &[2]), ts(5, 1, &[3])]);
        assert_eq!(step.sent_on(EdgeId::new(0)).unwrap().len(), 2);
        assert_eq!(step.bandwidth(), 3);
        assert_eq!(step.sends().count(), 2);
    }

    #[test]
    fn empty_sends_dropped() {
        let step = Timestep::from_sends([(EdgeId::new(3), TokenSet::new(4))]);
        assert!(step.is_empty());
        assert_eq!(step.sent_on(EdgeId::new(3)), None);
    }

    #[test]
    fn sends_sorted_by_edge() {
        let step = Timestep::from_sends([ts(5, 9, &[0]), ts(5, 2, &[1]), ts(5, 4, &[2])]);
        let order: Vec<usize> = step.sends().map(|(e, _)| e.index()).collect();
        assert_eq!(order, vec![2, 4, 9]);
    }

    #[test]
    fn metrics_and_moves() {
        let mut s = Schedule::new();
        s.push_step([ts(4, 0, &[0, 1])]);
        s.push_step([ts(4, 1, &[2]), ts(4, 0, &[3])]);
        assert_eq!(s.makespan(), 2);
        assert_eq!(s.bandwidth(), 4);
        let moves: Vec<Move> = s.moves().collect();
        assert_eq!(moves.len(), 4);
        assert_eq!(
            moves[0],
            Move {
                step: 0,
                edge: EdgeId::new(0),
                token: Token::new(0)
            }
        );
        assert_eq!(moves[3].step, 1);
    }

    #[test]
    fn trimmed_removes_only_trailing_idle() {
        let mut s = Schedule::new();
        s.push_step([ts(4, 0, &[0])]);
        s.push_step([]);
        s.push_step([ts(4, 0, &[1])]);
        s.push_step([]);
        s.push_step([]);
        let t = s.trimmed();
        assert_eq!(t.makespan(), 3, "interior idle step kept");
        assert_eq!(t.bandwidth(), 2);
    }

    #[test]
    fn display_mentions_metrics() {
        let mut s = Schedule::new();
        s.push_step([ts(4, 0, &[0])]);
        s.push_step([]);
        let text = s.to_string();
        assert!(text.contains("1 token-transfers"));
        assert!(text.contains("(idle)"));
        assert!(text.contains("arc 0"));
    }

    #[test]
    fn recorder_handles_out_of_order_events() {
        let mut rec = ScheduleRecorder::new();
        let (e0, t0) = ts(4, 0, &[1]);
        let (e1, t1) = ts(4, 1, &[2]);
        rec.record(3, e0, &t0);
        rec.record(1, e1, &t1);
        rec.record(3, e0, &ts(4, 0, &[3]).1); // union into an existing cell
        rec.record(1, e1, &TokenSet::new(4)); // empty: ignored
        assert_eq!(rec.bandwidth(), 3);
        let s = rec.finish();
        assert_eq!(s.makespan(), 4);
        assert!(s.steps()[0].is_empty());
        assert_eq!(s.steps()[3].sent_on(e0).unwrap().len(), 2);
    }

    #[test]
    fn recorder_trims_trailing_idle() {
        let mut rec = ScheduleRecorder::new();
        rec.record(5, EdgeId::new(0), &TokenSet::new(4)); // empty: no padding
        assert_eq!(rec.clone().finish().makespan(), 0);
        let (e, t) = ts(4, 0, &[0]);
        rec.record(1, e, &t);
        assert_eq!(rec.finish().makespan(), 2);
    }

    #[test]
    fn serde_round_trip() {
        let mut s = Schedule::new();
        s.push_step([ts(4, 0, &[0, 2])]);
        let json = serde_json::to_string(&s).unwrap();
        let back: Schedule = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
