//! Arithmetic over the finite field GF(2^8).
//!
//! The field underlying the random-linear-network-coding layer
//! ([`crate::rlnc`]). Elements are bytes; addition is XOR (so addition
//! and subtraction coincide and vectorize trivially), and
//! multiplication works through compile-time log/exp tables for the
//! primitive polynomial `x^8 + x^4 + x^3 + x^2 + 1` (`0x11D`, the
//! classic Reed–Solomon modulus) with generator `2`.
//!
//! The slice operations are the hot path of Gaussian elimination and
//! packet mixing. They are written to be SIMD-friendly where the field
//! allows it: the `c = 0` and `c = 1` multiplier cases reduce to a
//! no-op and a plain XOR loop (which the compiler auto-vectorizes),
//! and the general case goes through a per-multiplier 256-byte product
//! row built once per call, so the inner loop is a single table lookup
//! and XOR per byte with no branches.
//!
//! # Examples
//!
//! ```
//! use ocd_core::gf256;
//!
//! let a = 0x53;
//! assert_eq!(gf256::mul(a, gf256::inv(a)), 1);
//! assert_eq!(gf256::add(a, a), 0, "characteristic 2: x + x = 0");
//! ```

/// The primitive polynomial: `x^8 + x^4 + x^3 + x^2 + 1`.
pub const POLY: u16 = 0x11D;

/// `EXP[i] = g^i` for generator `g = 2`, doubled so `EXP[log a + log b]`
/// needs no modular reduction (indices reach at most `254 + 254`).
const EXP: [u8; 512] = TABLES.0;
/// `LOG[x] = log_g x` for `x != 0`; `LOG[0]` is unused.
const LOG: [u8; 256] = TABLES.1;

const TABLES: ([u8; 512], [u8; 256]) = build_tables();

const fn build_tables() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        exp[i + 255] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
        i += 1;
    }
    (exp, log)
}

/// Field addition: XOR. Subtraction is the same operation
/// (characteristic 2).
#[inline(always)]
#[must_use]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Field multiplication via the log/exp tables.
#[inline]
#[must_use]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

/// Multiplicative inverse.
///
/// # Panics
///
/// Panics on `a == 0`, which has no inverse.
#[inline]
#[must_use]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "0 has no multiplicative inverse in GF(2^8)");
    EXP[255 - LOG[a as usize] as usize]
}

/// Field division `a / b`.
///
/// # Panics
///
/// Panics on division by zero.
#[inline]
#[must_use]
pub fn div(a: u8, b: u8) -> u8 {
    mul(a, inv(b))
}

/// The 256-entry product row for a fixed multiplier: `row[x] = c · x`.
/// Building it costs 256 table multiplications; afterwards the slice
/// kernels below are one lookup + XOR per byte.
#[inline]
fn product_row(c: u8) -> [u8; 256] {
    let mut row = [0u8; 256];
    let mut x = 1usize;
    while x < 256 {
        row[x] = mul(c, x as u8);
        x += 1;
    }
    row
}

/// `dst[i] ^= src[i]` — vector addition.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn add_slice(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}

/// `dst[i] ^= c · src[i]` — the axpy kernel of Gaussian elimination
/// and packet mixing. `c = 0` is a no-op, `c = 1` a plain XOR loop;
/// other multipliers go through a per-call product row.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mul_add_slice(dst: &mut [u8], c: u8, src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    match c {
        0 => {}
        1 => add_slice(dst, src),
        _ => {
            let row = product_row(c);
            for (d, &s) in dst.iter_mut().zip(src) {
                *d ^= row[s as usize];
            }
        }
    }
}

/// `dst[i] = c · dst[i]` — row scaling. `c = 1` is a no-op.
pub fn mul_slice(dst: &mut [u8], c: u8) {
    match c {
        0 => dst.fill(0),
        1 => {}
        _ => {
            let row = product_row(c);
            for d in dst.iter_mut() {
                *d = row[*d as usize];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_log_round_trip() {
        for x in 1..=255u8 {
            assert_eq!(EXP[LOG[x as usize] as usize], x);
        }
        // The doubled exp table agrees with itself mod 255.
        for i in 0..255usize {
            assert_eq!(EXP[i], EXP[i + 255]);
        }
    }

    #[test]
    fn multiplication_axioms() {
        // Spot-check associativity and distributivity on a stride of
        // triples (the full cube is 16M cases; the stride covers every
        // residue class of each operand).
        let samples: Vec<u8> = (0u16..256).step_by(7).map(|x| x as u8).collect();
        for &a in &samples {
            for &b in &samples {
                assert_eq!(mul(a, b), mul(b, a));
                for &c in &samples {
                    assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn units_and_inverses() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(mul(a, inv(a)), 1, "a = {a}");
            assert_eq!(div(a, a), 1);
        }
    }

    #[test]
    #[should_panic(expected = "no multiplicative inverse")]
    fn zero_has_no_inverse() {
        let _ = inv(0);
    }

    #[test]
    fn slice_kernels_match_scalar_arithmetic() {
        let src: Vec<u8> = (0..=255).collect();
        for c in [0u8, 1, 2, 0x53, 0xFF] {
            let mut dst: Vec<u8> = (0..=255).rev().collect();
            let expect: Vec<u8> = dst
                .iter()
                .zip(&src)
                .map(|(&d, &s)| add(d, mul(c, s)))
                .collect();
            mul_add_slice(&mut dst, c, &src);
            assert_eq!(dst, expect, "mul_add_slice c = {c}");

            let mut scaled = src.clone();
            mul_slice(&mut scaled, c);
            let expect: Vec<u8> = src.iter().map(|&s| mul(c, s)).collect();
            assert_eq!(scaled, expect, "mul_slice c = {c}");
        }
        let mut dst = vec![0xAA; 4];
        add_slice(&mut dst, &[0xFF, 0x00, 0xAA, 0x01]);
        assert_eq!(dst, vec![0x55, 0xAA, 0x00, 0xAB]);
    }
}
