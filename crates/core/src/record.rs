//! The shared machine-readable **run artifact**.
//!
//! A [`RunRecord`] is one simulation run, serialized as JSON: the full
//! [`Instance`], the [`Schedule`] the strategy produced, every recorded
//! metric, and — when the medium recorded them — the per-step capacity
//! trace and rejection counts. The record is *self-certifying*:
//! [`RunRecord::certify`] replays the embedded schedule against the
//! embedded instance (under the embedded capacity trace, if any) and
//! cross-checks the headline metrics, so a third party can re-validate a
//! claimed result from the artifact alone.
//!
//! Every layer of the suite speaks this one schema: the engine builds
//! records (`ocd-heuristics`' `SimOutcome::to_record`), the CLI `run
//! --record` writes them, and `ocd-bench` consumes them for its tables.

use crate::metrics::MetricsSnapshot;
use crate::provenance::{ProvenanceRecord, ProvenanceTrace};
use crate::validate::{self, ScheduleError};
use crate::{Instance, Schedule};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::path::Path;

/// Current schema version; bump when a field changes meaning.
///
/// Version history: **1** — original schema; **2** — adds the optional
/// embedded [`MetricsSnapshot`]; **3** — adds the optional embedded
/// provenance digest ([`ProvenanceRecord`]), which [`RunRecord::certify`]
/// cross-checks against the digest derived from replaying the embedded
/// schedule; **4** — the embedded [`Instance`] may carry
/// [`NodeBudgets`](crate::NodeBudgets) (the node-capacity regime), which
/// certification enforces during replay. The bump exists because older
/// parsers ignore unknown fields: a budget-ignorant reader would
/// otherwise silently certify a budgeted record *without* the budget
/// checks. Versions 1–3 remain readable and certifiable (see
/// [`RUN_RECORD_MIN_VERSION`]).
pub const RUN_RECORD_VERSION: u32 = 4;

/// Oldest schema version [`RunRecord::certify`] still accepts.
pub const RUN_RECORD_MIN_VERSION: u32 = 1;

/// Per-step counters, the serialized form of the engine's step trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepTrace {
    /// 0-based step index.
    pub step: usize,
    /// Tokens transferred this step.
    pub moves: u64,
    /// Outstanding (vertex, token) needs after the step.
    pub remaining_need: u64,
    /// Wall-clock nanoseconds the step took.
    pub nanos: u64,
}

/// One simulation run as a self-contained, self-certifying artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunRecord {
    /// Schema version ([`RUN_RECORD_VERSION`]).
    pub version: u32,
    /// Strategy name (e.g. `local-rarest`).
    pub strategy: String,
    /// Medium name (e.g. `ideal`, `cross-traffic`, `physical-underlay`).
    pub medium: String,
    /// RNG seed the run used.
    pub seed: u64,
    /// The full problem instance the run solved.
    pub instance: Instance,
    /// The schedule the strategy produced.
    pub schedule: Schedule,
    /// Whether every want was satisfied within the step budget.
    pub success: bool,
    /// Steps executed (= `schedule.makespan()`).
    pub steps: usize,
    /// Tokens transferred (= `schedule.bandwidth()`).
    pub bandwidth: u64,
    /// Tokens delivered to vertices that already held them.
    pub duplicate_deliveries: u64,
    /// Wall-clock nanoseconds for the whole run.
    pub wall_nanos: u64,
    /// Per-vertex completion step (`None` = never satisfied).
    pub completion_steps: Vec<Option<usize>>,
    /// Per-step counters.
    pub trace: Vec<StepTrace>,
    /// `capacity_trace[i][e]` = effective capacity of arc `e` at step
    /// `i`; empty for media with static capacities.
    pub capacity_trace: Vec<Vec<u32>>,
    /// Token-moves rejected by admission control, per step; empty for
    /// media without admission control.
    pub rejected_per_step: Vec<u64>,
    /// Metrics snapshot of the run, when metrics were enabled
    /// (schema version ≥ 2; `None` when absent or on version-1
    /// artifacts).
    pub metrics: Option<MetricsSnapshot>,
    /// Token-provenance digest of the run, when provenance was enabled
    /// (schema version ≥ 3; `None` when absent or on older artifacts).
    /// [`RunRecord::certify`] checks it against the embedded schedule.
    #[serde(default)]
    pub provenance: Option<ProvenanceRecord>,
}

/// Why a [`RunRecord`] failed certification or (de)serialization.
#[derive(Debug)]
#[non_exhaustive]
pub enum RecordError {
    /// The record's schema version is not one this build understands.
    Version {
        /// The version found in the record.
        found: u32,
    },
    /// The embedded capacity trace is too short to replay the schedule.
    TraceTooShort {
        /// Steps covered by the capacity trace.
        trace_steps: usize,
        /// Steps in the schedule.
        schedule_steps: usize,
    },
    /// The embedded schedule is invalid for the embedded instance.
    Schedule(ScheduleError),
    /// A headline metric disagrees with the replayed schedule.
    Mismatch {
        /// Which metric disagreed.
        field: &'static str,
        /// The value claimed by the record.
        claimed: String,
        /// The value derived from the embedded schedule.
        derived: String,
    },
    /// The record could not be parsed or written as JSON.
    Json(serde_json::Error),
    /// The record file could not be read or written.
    Io(std::io::Error),
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::Version { found } => write!(
                f,
                "unsupported run record version {found} (this build understands \
                 {RUN_RECORD_MIN_VERSION}..={RUN_RECORD_VERSION})"
            ),
            RecordError::TraceTooShort {
                trace_steps,
                schedule_steps,
            } => write!(
                f,
                "capacity trace covers {trace_steps} steps but the schedule has {schedule_steps}"
            ),
            RecordError::Schedule(e) => write!(f, "embedded schedule is invalid: {e}"),
            RecordError::Mismatch {
                field,
                claimed,
                derived,
            } => write!(
                f,
                "record claims {field} = {claimed} but the embedded schedule gives {derived}"
            ),
            RecordError::Json(e) => write!(f, "run record JSON error: {e}"),
            RecordError::Io(e) => write!(f, "run record I/O error: {e}"),
        }
    }
}

impl Error for RecordError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RecordError::Schedule(e) => Some(e),
            RecordError::Json(e) => Some(e),
            RecordError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScheduleError> for RecordError {
    fn from(e: ScheduleError) -> Self {
        RecordError::Schedule(e)
    }
}

impl From<serde_json::Error> for RecordError {
    fn from(e: serde_json::Error) -> Self {
        RecordError::Json(e)
    }
}

impl From<std::io::Error> for RecordError {
    fn from(e: std::io::Error) -> Self {
        RecordError::Io(e)
    }
}

impl RunRecord {
    /// Total token-moves rejected by admission control.
    #[must_use]
    pub fn total_rejected(&self) -> u64 {
        self.rejected_per_step.iter().sum()
    }

    /// Wall-clock milliseconds for the whole run.
    #[must_use]
    pub fn run_ms(&self) -> f64 {
        self.wall_nanos as f64 / 1e6
    }

    /// Re-certifies the run from the artifact alone: replays the
    /// embedded schedule against the embedded instance (under the
    /// embedded capacity trace, when present) and cross-checks the
    /// headline metrics against the replay.
    ///
    /// # Errors
    ///
    /// [`RecordError::Version`] for an unknown schema version,
    /// [`RecordError::TraceTooShort`] / [`RecordError::Schedule`] when
    /// the schedule does not replay, and [`RecordError::Mismatch`] when
    /// a claimed metric disagrees with the replay.
    pub fn certify(&self) -> Result<validate::Replay, RecordError> {
        if !(RUN_RECORD_MIN_VERSION..=RUN_RECORD_VERSION).contains(&self.version) {
            return Err(RecordError::Version {
                found: self.version,
            });
        }
        let replay = if self.capacity_trace.is_empty() {
            validate::replay(&self.instance, &self.schedule)?
        } else {
            if self.capacity_trace.len() < self.schedule.makespan() {
                return Err(RecordError::TraceTooShort {
                    trace_steps: self.capacity_trace.len(),
                    schedule_steps: self.schedule.makespan(),
                });
            }
            validate::replay_with_capacities(&self.instance, &self.schedule, &self.capacity_trace)?
        };
        let checks: [(&'static str, u64, u64); 3] = [
            ("steps", self.steps as u64, self.schedule.makespan() as u64),
            ("bandwidth", self.bandwidth, self.schedule.bandwidth()),
            (
                "success",
                u64::from(self.success),
                u64::from(replay.is_successful()),
            ),
        ];
        for (field, claimed, derived) in checks {
            if claimed != derived {
                return Err(RecordError::Mismatch {
                    field,
                    claimed: claimed.to_string(),
                    derived: derived.to_string(),
                });
            }
        }
        if let Some(claimed) = &self.provenance {
            let derived =
                ProvenanceTrace::from_schedule(&self.instance, &self.schedule).to_record();
            if *claimed != derived {
                return Err(RecordError::Mismatch {
                    field: "provenance",
                    claimed: format!("digest with {} entries", claimed.entries.len()),
                    derived: format!("digest with {} entries", derived.entries.len()),
                });
            }
        }
        Ok(replay)
    }

    /// Serializes to pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// [`RecordError::Json`] if serialization fails.
    pub fn to_json(&self) -> Result<String, RecordError> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Parses a record from JSON.
    ///
    /// # Errors
    ///
    /// [`RecordError::Json`] on malformed input.
    pub fn from_json(json: &str) -> Result<Self, RecordError> {
        Ok(serde_json::from_str(json)?)
    }

    /// Writes the record to `path` as JSON.
    ///
    /// # Errors
    ///
    /// [`RecordError::Json`] or [`RecordError::Io`].
    pub fn write_json(&self, path: &Path) -> Result<(), RecordError> {
        std::fs::write(path, self.to_json()?)?;
        Ok(())
    }

    /// Reads a record from a JSON file.
    ///
    /// # Errors
    ///
    /// [`RecordError::Json`] or [`RecordError::Io`].
    pub fn read_json(path: &Path) -> Result<Self, RecordError> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Token, TokenSet};
    use ocd_graph::generate::classic;
    use ocd_graph::EdgeId;

    /// 0 → 1 relay: one token, two steps.
    fn sample_record() -> RunRecord {
        let g = classic::path(3, 1, false);
        let instance = Instance::builder(g, 1)
            .have(0, [Token::new(0)])
            .want(2, [Token::new(0)])
            .build()
            .unwrap();
        let mut schedule = Schedule::new();
        schedule.push_step([(EdgeId::new(0), TokenSet::from_tokens(1, [Token::new(0)]))]);
        schedule.push_step([(EdgeId::new(1), TokenSet::from_tokens(1, [Token::new(0)]))]);
        RunRecord {
            version: RUN_RECORD_VERSION,
            strategy: "test".into(),
            medium: "ideal".into(),
            seed: 7,
            instance,
            steps: schedule.makespan(),
            bandwidth: schedule.bandwidth(),
            schedule,
            success: true,
            duplicate_deliveries: 0,
            wall_nanos: 1_500_000,
            completion_steps: vec![Some(0), Some(1), Some(2)],
            trace: vec![
                StepTrace {
                    step: 0,
                    moves: 1,
                    remaining_need: 1,
                    nanos: 10,
                },
                StepTrace {
                    step: 1,
                    moves: 1,
                    remaining_need: 0,
                    nanos: 10,
                },
            ],
            capacity_trace: Vec::new(),
            rejected_per_step: Vec::new(),
            metrics: None,
            provenance: None,
        }
    }

    #[test]
    fn certify_accepts_a_faithful_record() {
        let record = sample_record();
        let replay = record.certify().unwrap();
        assert!(replay.is_successful());
        assert_eq!(record.total_rejected(), 0);
        assert!((record.run_ms() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn json_round_trip_preserves_certifiability() {
        let record = sample_record();
        let json = record.to_json().unwrap();
        let back = RunRecord::from_json(&json).unwrap();
        assert_eq!(back.schedule, record.schedule);
        assert_eq!(back.seed, 7);
        back.certify().unwrap();
        // The medium extras are always present (empty = not recorded).
        assert!(json.contains("capacity_trace"));
        assert!(json.contains("rejected_per_step"));
    }

    #[test]
    fn certify_rejects_tampered_metrics() {
        let mut record = sample_record();
        record.bandwidth += 5;
        assert!(matches!(
            record.certify().unwrap_err(),
            RecordError::Mismatch {
                field: "bandwidth",
                ..
            }
        ));
    }

    #[test]
    fn certify_rejects_unknown_version() {
        let mut record = sample_record();
        record.version = 99;
        assert!(matches!(
            record.certify().unwrap_err(),
            RecordError::Version { found: 99 }
        ));
        record.version = 0;
        assert!(matches!(
            record.certify().unwrap_err(),
            RecordError::Version { found: 0 }
        ));
    }

    #[test]
    fn certify_accepts_all_schema_versions() {
        // A version-1 artifact has neither a `metrics` nor a
        // `provenance` key; it must still parse (both = None) and
        // certify.
        let mut record = sample_record();
        record.version = 1;
        let v1_json = record
            .to_json()
            .unwrap()
            .replace(",\n  \"metrics\": null", "")
            .replace(",\n  \"provenance\": null", "");
        assert!(
            !v1_json.contains("metrics") && !v1_json.contains("provenance"),
            "v1 fixture must omit both optional fields"
        );
        let v1 = RunRecord::from_json(&v1_json).unwrap();
        assert_eq!(v1.version, 1);
        assert!(v1.metrics.is_none());
        assert!(v1.provenance.is_none());
        v1.certify().unwrap();
        // A version-2 artifact carries metrics but no `provenance` key.
        let mut record = sample_record();
        record.version = 2;
        let mut reg = crate::metrics::MetricsRegistry::new();
        let c = crate::metrics::Recorder::counter(&mut reg, "engine.moves");
        crate::metrics::Recorder::add(&mut reg, c, 2);
        record.metrics = Some(reg.snapshot());
        let v2_json = record
            .to_json()
            .unwrap()
            .replace(",\n  \"provenance\": null", "");
        assert!(!v2_json.contains("provenance"));
        let v2 = RunRecord::from_json(&v2_json).unwrap();
        assert_eq!(v2.version, 2);
        assert!(v2.provenance.is_none());
        assert_eq!(v2.metrics, record.metrics);
        v2.certify().unwrap();
        // A version-3 artifact is the current shape minus node budgets
        // (its embedded instance never carries them).
        let mut v3 = sample_record();
        v3.version = 3;
        v3.metrics = record.metrics.clone();
        v3.provenance =
            Some(ProvenanceTrace::from_schedule(&v3.instance, &v3.schedule).to_record());
        let v3_json = v3.to_json().unwrap();
        assert!(!v3_json.contains("node_budgets"));
        let v3_back = RunRecord::from_json(&v3_json).unwrap();
        assert_eq!(v3_back.version, 3);
        v3_back.certify().unwrap();
        // And a current-version record with both embedded extras
        // certifies and round-trips them.
        let mut v4 = sample_record();
        v4.metrics = record.metrics.clone();
        v4.provenance =
            Some(ProvenanceTrace::from_schedule(&v4.instance, &v4.schedule).to_record());
        v4.certify().unwrap();
        let back = RunRecord::from_json(&v4.to_json().unwrap()).unwrap();
        assert_eq!(back.metrics, v4.metrics);
        assert_eq!(back.provenance, v4.provenance);
    }

    /// 0 → 1 and 0 → 2 star under an uplink budget of 1: the server
    /// relays one copy per step through vertex 1.
    fn budgeted_record() -> RunRecord {
        let g = classic::star(3, 1, false);
        let instance = Instance::builder(g, 1)
            .have(0, [Token::new(0)])
            .want(1, [Token::new(0)])
            .want(2, [Token::new(0)])
            .node_budgets(crate::NodeBudgets::uplink_only(3, 1))
            .build()
            .unwrap();
        let mut schedule = Schedule::new();
        schedule.push_step([(EdgeId::new(0), TokenSet::from_tokens(1, [Token::new(0)]))]);
        schedule.push_step([(EdgeId::new(1), TokenSet::from_tokens(1, [Token::new(0)]))]);
        RunRecord {
            version: RUN_RECORD_VERSION,
            strategy: "test".into(),
            medium: "node-capacity".into(),
            seed: 7,
            steps: schedule.makespan(),
            bandwidth: schedule.bandwidth(),
            instance,
            schedule,
            success: true,
            duplicate_deliveries: 0,
            wall_nanos: 1_000_000,
            completion_steps: vec![Some(0), Some(1), Some(2)],
            trace: Vec::new(),
            capacity_trace: Vec::new(),
            rejected_per_step: Vec::new(),
            metrics: None,
            provenance: None,
        }
    }

    #[test]
    fn budgeted_record_round_trips_and_certifies() {
        let record = budgeted_record();
        record.certify().unwrap();
        let json = record.to_json().unwrap();
        assert!(json.contains("node_budgets"));
        assert!(json.contains("node-capacity"));
        let back = RunRecord::from_json(&json).unwrap();
        assert_eq!(back.medium, "node-capacity");
        assert_eq!(back.instance.node_budgets(), record.instance.node_budgets());
        back.certify().unwrap();
    }

    #[test]
    fn certify_enforces_embedded_node_budgets() {
        // Forge a schedule that sends on both server arcs in one step:
        // per-arc capacities allow it, the embedded uplink budget of 1
        // does not — certification must reject it.
        let mut record = budgeted_record();
        let mut s = Schedule::new();
        s.push_step([
            (EdgeId::new(0), TokenSet::from_tokens(1, [Token::new(0)])),
            (EdgeId::new(1), TokenSet::from_tokens(1, [Token::new(0)])),
        ]);
        record.steps = s.makespan();
        record.bandwidth = s.bandwidth();
        record.schedule = s;
        assert!(matches!(
            record.certify().unwrap_err(),
            RecordError::Schedule(ScheduleError::UplinkBudgetExceeded { step: 0, .. })
        ));
    }

    #[test]
    fn certify_rejects_tampered_provenance() {
        let mut record = sample_record();
        let mut digest =
            ProvenanceTrace::from_schedule(&record.instance, &record.schedule).to_record();
        digest.entries[0].step += 1; // forge a later acquisition
        record.provenance = Some(digest);
        assert!(matches!(
            record.certify().unwrap_err(),
            RecordError::Mismatch {
                field: "provenance",
                ..
            }
        ));
    }

    #[test]
    fn certify_rejects_invalid_embedded_schedule() {
        let mut record = sample_record();
        // Swap the steps: the relay now sends before possessing.
        record.schedule = {
            let mut s = Schedule::new();
            s.push_step([(EdgeId::new(1), TokenSet::from_tokens(1, [Token::new(0)]))]);
            s.push_step([(EdgeId::new(0), TokenSet::from_tokens(1, [Token::new(0)]))]);
            s
        };
        record.success = false;
        assert!(matches!(
            record.certify().unwrap_err(),
            RecordError::Schedule(ScheduleError::TokenNotPossessed { .. })
        ));
    }

    #[test]
    fn certify_uses_the_capacity_trace_when_present() {
        let mut record = sample_record();
        record.capacity_trace = vec![vec![1, 1], vec![1, 0]]; // arc 1 down at step 1
        assert!(matches!(
            record.certify().unwrap_err(),
            RecordError::Schedule(ScheduleError::CapacityExceeded { step: 1, .. })
        ));
        record.capacity_trace = vec![vec![1, 1]]; // shorter than the schedule
        assert!(matches!(
            record.certify().unwrap_err(),
            RecordError::TraceTooShort {
                trace_steps: 1,
                schedule_steps: 2,
            }
        ));
    }
}
