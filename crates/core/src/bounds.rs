//! Lower bounds on remaining makespan and bandwidth (§5.1).
//!
//! The paper computes performance bounds for large graphs with two
//! efficient approximations:
//!
//! - **Remaining bandwidth**: "counting every token that is wanted but
//!   not known at each vertex" — each such (vertex, token) pair costs at
//!   least one move.
//! - **Remaining makespan**: the radius bound
//!   `M_i(v) = i + ⌈|T^{c_i(v)}| / in-capacity(v)⌉`, where `T^{c_i(v)}`
//!   are the needed tokens *not* available within the in-radius-`i`
//!   closure around `v`: those tokens cannot begin arriving before step
//!   `i + 1` and then trickle through `v`'s total in-capacity. The paper
//!   also notes a one-step lookahead special case, since the tokens
//!   retrievable in a single step are exactly computable.
//!
//! All bounds are *admissible* (never exceed the true optimum), which the
//! exact solver's tests verify; they are also phrased against an
//! arbitrary current possession so the branch-and-bound search can reuse
//! them mid-schedule.

use crate::{Instance, TokenSet};
use ocd_graph::{DiGraph, NodeId};
use std::collections::VecDeque;

/// Remaining-bandwidth lower bound from an arbitrary possession state:
/// `Σ_v |w(v) \ p(v)|`.
///
/// # Panics
///
/// Panics if the slices have different lengths or mismatched universes.
#[must_use]
pub fn remaining_bandwidth(want: &[TokenSet], possession: &[TokenSet]) -> u64 {
    assert_eq!(want.len(), possession.len(), "vertex count mismatch");
    want.iter()
        .zip(possession)
        .map(|(w, p)| w.difference_len(p) as u64)
        .sum()
}

/// Remaining-bandwidth lower bound of a fresh instance.
#[must_use]
pub fn bandwidth_lower_bound(instance: &Instance) -> u64 {
    remaining_bandwidth(instance.want_all(), instance.have_all())
}

/// Remaining-makespan lower bound from an arbitrary possession state:
/// the maximum over all vertices of the radius bound `M_i(v)` (maximized
/// over `i`) and the one-step lookahead bound.
///
/// Returns 0 iff every want is already satisfied. If some needed token is
/// unreachable, returns `usize::MAX` (no finite schedule succeeds).
///
/// # Panics
///
/// Panics if slice lengths don't match the graph.
#[must_use]
pub fn remaining_makespan(g: &DiGraph, possession: &[TokenSet], want: &[TokenSet]) -> usize {
    assert_eq!(
        g.node_count(),
        possession.len(),
        "possession length mismatch"
    );
    assert_eq!(g.node_count(), want.len(), "want length mismatch");
    let mut best = 0usize;
    for v in g.nodes() {
        let deficiency = want[v.index()].difference(&possession[v.index()]);
        if deficiency.is_empty() {
            continue;
        }
        let radius = radius_bound(g, possession, v, &deficiency);
        best = best.max(radius);
        if best == usize::MAX {
            return best;
        }
        best = best.max(one_step_lookahead(g, possession, v, &deficiency));
    }
    best
}

/// Remaining-makespan lower bound of a fresh instance.
#[must_use]
pub fn makespan_lower_bound(instance: &Instance) -> usize {
    remaining_makespan(instance.graph(), instance.have_all(), instance.want_all())
}

/// Budget-aware counting lower bound on makespan (growth bound).
///
/// Let *copies* be the total number of (vertex, token) possession
/// pairs. Each step, every transfer creates exactly one new copy, a
/// vertex `v` can send at most `min(uplink(v), out-capacity(v))`
/// copies, and only vertices already holding a token can send at all.
/// With `h` holders the per-step growth is therefore at most the sum of
/// the `h` largest per-vertex send rates (and never more than the
/// global receive ceiling `Σ_v min(downlink(v), in-capacity(v))`), and
/// the holder count itself grows by at most the number of transfers.
/// Iterating this recurrence until copies reach `Σ_v |have(v) ∪ w(v)|`
/// counts a number of steps no feasible schedule can beat.
///
/// In the unit-uplink regime this is the classic doubling bound
/// (`⌈log₂⌉`-shaped), which the radius bound of [`makespan_lower_bound`]
/// is blind to; without budgets it degenerates to an arc-capacity
/// counting bound. Returns `usize::MAX` when growth stalls short of the
/// target (no finite schedule exists).
#[must_use]
pub fn counting_makespan_lower_bound(instance: &Instance) -> usize {
    let g = instance.graph();
    let n = g.node_count();
    let budgets = instance.node_budgets();
    let mut send_rate: Vec<u64> = g
        .nodes()
        .map(|v| {
            let up = budgets.map_or(u64::MAX, |b| u64::from(b.uplink_of(v)));
            g.out_capacity(v).min(up)
        })
        .collect();
    send_rate.sort_unstable_by(|a, b| b.cmp(a));
    let top_rates: Vec<u64> = send_rate
        .iter()
        .scan(0u64, |acc, &r| {
            *acc = acc.saturating_add(r);
            Some(*acc)
        })
        .collect();
    let receive_ceiling = g
        .nodes()
        .map(|v| {
            let down = budgets.map_or(u64::MAX, |b| u64::from(b.downlink_of(v)));
            g.in_capacity(v).min(down)
        })
        .fold(0u64, u64::saturating_add);

    let mut copies: u64 = instance.have_all().iter().map(|h| h.len() as u64).sum();
    let target = copies + remaining_bandwidth(instance.want_all(), instance.have_all());
    let mut holders = instance.have_all().iter().filter(|h| !h.is_empty()).count();
    let mut steps = 0usize;
    while copies < target {
        let growth = match holders {
            0 => 0,
            h => top_rates[h.min(n) - 1].min(receive_ceiling),
        };
        if growth == 0 {
            return usize::MAX;
        }
        copies = copies.saturating_add(growth);
        holders = n.min(holders.saturating_add(growth.min(n as u64) as usize));
        steps += 1;
    }
    steps
}

/// `max_i M_i(v)` for one vertex: expand the in-closure around `v` one
/// BFS layer at a time; at radius `i`, the needed tokens not possessed
/// anywhere inside cost at least `i + ⌈outside / in_capacity(v)⌉` steps.
fn radius_bound(g: &DiGraph, possession: &[TokenSet], v: NodeId, deficiency: &TokenSet) -> usize {
    let in_cap = g.in_capacity(v);
    if in_cap == 0 {
        return usize::MAX; // v needs tokens but nothing can ever arrive
    }
    let mut outside = deficiency.clone();
    outside.subtract(&possession[v.index()]);
    let mut best = 0usize;
    // Incremental reverse BFS from v.
    let mut dist = vec![u32::MAX; g.node_count()];
    dist[v.index()] = 0;
    let mut frontier = VecDeque::from([v]);
    let mut i = 0usize;
    loop {
        // `outside` currently holds the needed tokens not available in
        // the closure of radius `i`.
        let count = outside.len() as u64;
        if count == 0 {
            break;
        }
        best = best.max(i + count.div_ceil(in_cap) as usize);
        // Expand to radius i + 1.
        let mut next = VecDeque::new();
        while let Some(u) = frontier.pop_front() {
            for w in g.in_neighbors(u) {
                if dist[w.index()] == u32::MAX {
                    dist[w.index()] = dist[u.index()] + 1;
                    outside.subtract(&possession[w.index()]);
                    next.push_back(w);
                }
            }
        }
        if next.is_empty() {
            // Whole in-component explored; leftover tokens are unreachable.
            if !outside.is_empty() {
                return usize::MAX;
            }
            break;
        }
        frontier = next;
        i += 1;
    }
    best
}

/// One-step lookahead (§5.1): tokens retrievable by `v` in the next step
/// are bounded per in-arc by `min(capacity, |needed ∩ p(src)|)`; whatever
/// remains needs at least `⌈remaining / in_capacity⌉` further steps.
fn one_step_lookahead(
    g: &DiGraph,
    possession: &[TokenSet],
    v: NodeId,
    deficiency: &TokenSet,
) -> usize {
    let in_cap = g.in_capacity(v);
    if in_cap == 0 {
        return usize::MAX;
    }
    let retrievable: u64 = g
        .in_edges(v)
        .map(|e| {
            let arc = g.edge(e);
            let available = deficiency.intersection(&possession[arc.src.index()]).len() as u64;
            available.min(u64::from(arc.capacity))
        })
        .sum();
    let total = deficiency.len() as u64;
    if total <= retrievable {
        1
    } else {
        1 + ((total - retrievable).div_ceil(in_cap)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Instance, Token};
    use ocd_graph::generate::classic;

    fn tok(i: usize) -> Token {
        Token::new(i)
    }

    #[test]
    fn trivial_instance_has_zero_bounds() {
        let g = classic::path(2, 1, true);
        let inst = Instance::builder(g, 1).have(0, [tok(0)]).build().unwrap();
        assert_eq!(bandwidth_lower_bound(&inst), 0);
        assert_eq!(makespan_lower_bound(&inst), 0);
    }

    #[test]
    fn bandwidth_bound_counts_deficiencies() {
        let g = classic::star(4, 1, true);
        let inst = Instance::builder(g, 2)
            .have(0, [tok(0), tok(1)])
            .want_all_everywhere()
            .build()
            .unwrap();
        assert_eq!(bandwidth_lower_bound(&inst), 6);
    }

    #[test]
    fn distance_dominates_makespan_bound() {
        // Path of 5, token at one end wanted at the other: ≥ 4 steps.
        let g = classic::path(5, 10, true);
        let inst = Instance::builder(g, 1)
            .have(0, [tok(0)])
            .want(4, [tok(0)])
            .build()
            .unwrap();
        assert_eq!(makespan_lower_bound(&inst), 4);
    }

    #[test]
    fn capacity_dominates_makespan_bound() {
        // 10 tokens through a single capacity-2 arc: ≥ 5 steps.
        let g = classic::path(2, 2, false);
        let inst = Instance::builder(g, 10)
            .have_set(0, TokenSet::full(10))
            .want_set(1, TokenSet::full(10))
            .build()
            .unwrap();
        assert_eq!(makespan_lower_bound(&inst), 5);
    }

    #[test]
    fn radius_and_capacity_combine() {
        // 0 -(cap 8)-> 1 -(cap 2)-> 2, all 6 tokens at 0, wanted at 2.
        // M_0(2) = ceil(6/2) = 3; M_1(2) = 1 + ceil(6/2) = 4.
        let mut g = ocd_graph::DiGraph::with_nodes(3);
        g.add_edge(g.node(0), g.node(1), 8).unwrap();
        g.add_edge(g.node(1), g.node(2), 2).unwrap();
        let inst = Instance::builder(g, 6)
            .have_set(0, TokenSet::full(6))
            .want_set(2, TokenSet::full(6))
            .build()
            .unwrap();
        assert_eq!(makespan_lower_bound(&inst), 4);
    }

    #[test]
    fn lookahead_sharpens_sparse_neighbors() {
        // v (=2) has in-arcs from 0 and 1 with huge capacity, but only
        // vertex 0 currently holds any of the 6 needed tokens (just 1 of
        // them). Lookahead: retrievable now = 1, so ≥ 1 + ceil(5/20) = 2.
        // Plain M_i: the radius-1 closure {0,1,2} holds ALL tokens only
        // once 1's emptiness is irrelevant... M_0 = ceil(6/20) = 1. The
        // radius-1 tokens outside: token set minus holdings of {0,1,2}.
        let mut g = ocd_graph::DiGraph::with_nodes(4);
        g.add_edge(g.node(0), g.node(2), 10).unwrap();
        g.add_edge(g.node(1), g.node(2), 10).unwrap();
        g.add_edge(g.node(3), g.node(0), 10).unwrap();
        g.add_edge(g.node(3), g.node(1), 10).unwrap();
        let inst = Instance::builder(g, 6)
            .have(0, [tok(0)])
            .have_set(3, TokenSet::full(6))
            .want_set(2, TokenSet::full(6))
            .build()
            .unwrap();
        // Radius bound: outside radius 1 (closure {0,1,2}) are tokens
        // 1..5 → M_1 = 1 + ceil(5/20) = 2. Lookahead also gives 2.
        assert_eq!(makespan_lower_bound(&inst), 2);
    }

    #[test]
    fn unreachable_need_is_infinite() {
        let mut g = ocd_graph::DiGraph::with_nodes(2);
        g.add_edge(g.node(1), g.node(0), 1).unwrap();
        // Build instance manually (builder would catch orphan tokens, but
        // reachability is not its job): 0 has token, 1 wants it, only arc
        // is 1 -> 0.
        let inst = Instance::builder(g, 1)
            .have(0, [tok(0)])
            .want(1, [tok(0)])
            .build()
            .unwrap();
        assert!(!inst.is_satisfiable());
        assert_eq!(makespan_lower_bound(&inst), usize::MAX);
    }

    #[test]
    fn isolated_needy_vertex_is_infinite() {
        let mut g = ocd_graph::DiGraph::with_nodes(2);
        g.add_edge(g.node(1), g.node(0), 1).unwrap(); // 1 has out-arc only
        let inst = Instance::builder(g, 1)
            .have(0, [tok(0)])
            .want(1, [tok(0)])
            .build()
            .unwrap();
        assert_eq!(
            remaining_makespan(inst.graph(), inst.have_all(), inst.want_all()),
            usize::MAX
        );
    }

    #[test]
    fn midway_possession_lowers_bound() {
        let g = classic::path(5, 1, true);
        let inst = Instance::builder(g, 1)
            .have(0, [tok(0)])
            .want(4, [tok(0)])
            .build()
            .unwrap();
        // Pretend the token already advanced to vertex 2.
        let mut possession = inst.have_all().to_vec();
        possession[2].insert(tok(0));
        assert_eq!(
            remaining_makespan(inst.graph(), &possession, inst.want_all()),
            2
        );
    }

    #[test]
    fn counting_bound_is_exact_on_uplink_limited_star() {
        // Asymmetric star, center holds the one token, unit uplinks:
        // only the center can ever send, one copy per step, three leaves
        // to fill -> exactly 3 steps.
        let g = classic::star(4, 5, false);
        let inst = Instance::builder(g, 1)
            .have(0, [tok(0)])
            .want_all_everywhere()
            .node_budgets(crate::NodeBudgets::uplink_only(4, 1))
            .build()
            .unwrap();
        assert_eq!(counting_makespan_lower_bound(&inst), 3);
        // The radius bound is budget-blind and sees only distance 1.
        assert_eq!(makespan_lower_bound(&inst), 1);
    }

    #[test]
    fn counting_bound_doubles_under_unit_uplinks() {
        // Complete graph, unit uplinks, single token: copies can at best
        // double each step, so broadcasting to 8 vertices needs log2 8.
        let g = classic::complete(8, 1);
        let inst = Instance::builder(g, 1)
            .have(0, [tok(0)])
            .want_all_everywhere()
            .node_budgets(crate::NodeBudgets::uplink_only(8, 1))
            .build()
            .unwrap();
        assert_eq!(counting_makespan_lower_bound(&inst), 3);
    }

    #[test]
    fn counting_bound_without_budgets_matches_arc_capacity() {
        // 10 tokens through one capacity-2 arc: 5 steps even unbudgeted.
        let g = classic::path(2, 2, false);
        let inst = Instance::builder(g, 10)
            .have_set(0, TokenSet::full(10))
            .want_set(1, TokenSet::full(10))
            .build()
            .unwrap();
        assert_eq!(counting_makespan_lower_bound(&inst), 5);
    }

    #[test]
    fn counting_bound_detects_stalled_growth() {
        // Zero uplink everywhere: nothing can ever be sent.
        let g = classic::path(2, 1, true);
        let inst = Instance::builder(g, 1)
            .have(0, [tok(0)])
            .want(1, [tok(0)])
            .node_budgets(crate::NodeBudgets::uplink_only(2, 0))
            .build()
            .unwrap();
        assert_eq!(counting_makespan_lower_bound(&inst), usize::MAX);
    }

    #[test]
    fn counting_bound_is_zero_when_satisfied() {
        let g = classic::path(2, 1, true);
        let inst = Instance::builder(g, 1).have(0, [tok(0)]).build().unwrap();
        assert_eq!(counting_makespan_lower_bound(&inst), 0);
    }

    #[test]
    fn one_step_needed_when_everything_is_adjacent() {
        let g = classic::star(3, 5, true);
        let inst = Instance::builder(g, 2)
            .have(0, [tok(0), tok(1)])
            .want(1, [tok(0), tok(1)])
            .build()
            .unwrap();
        assert_eq!(makespan_lower_bound(&inst), 1);
    }
}
