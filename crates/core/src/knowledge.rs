//! The LOCD aggregate-knowledge model (§4.1, §5.1).
//!
//! The paper's Local heuristic assumes "at every time step, the step's
//! initial aggregate need and knowledge are distributed to all vertices"
//! — i.e. two per-token counters: how many vertices *have* each token and
//! how many still *need* it (want it but lack it). Because the general
//! problem has per-vertex want sets, "we distribute both aggregates of
//! what vertices want and what they do not have."
//!
//! The paper also notes the aggregates could arrive stale ("the potential
//! need to support a delay in the aggregate knowledge");
//! [`DelayedAggregates`] models a fixed propagation delay of `k` steps.

use crate::{Token, TokenSet};
use std::collections::VecDeque;

/// Per-token population counts across all vertices at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregateKnowledge {
    /// `have_counts[t]` = number of vertices possessing token `t`.
    pub have_counts: Vec<u32>,
    /// `need_counts[t]` = number of vertices wanting token `t` without
    /// possessing it.
    pub need_counts: Vec<u32>,
}

impl AggregateKnowledge {
    /// Computes the aggregates from the current possession and the want
    /// function.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or a set's universe
    /// differs from `num_tokens`.
    #[must_use]
    pub fn compute(num_tokens: usize, possession: &[TokenSet], want: &[TokenSet]) -> Self {
        assert_eq!(possession.len(), want.len(), "vertex count mismatch");
        let mut have_counts = vec![0u32; num_tokens];
        let mut need_counts = vec![0u32; num_tokens];
        for (p, w) in possession.iter().zip(want) {
            assert_eq!(p.universe(), num_tokens, "possession universe mismatch");
            assert_eq!(w.universe(), num_tokens, "want universe mismatch");
            for t in p {
                have_counts[t.index()] += 1;
            }
            for t in w.difference(p).iter() {
                need_counts[t.index()] += 1;
            }
        }
        AggregateKnowledge {
            have_counts,
            need_counts,
        }
    }

    /// Number of tokens in the universe.
    #[must_use]
    pub fn num_tokens(&self) -> usize {
        self.have_counts.len()
    }

    /// How many vertices currently hold `token`. Lower = rarer; this is
    /// the key the rarest-random heuristic sorts by.
    #[must_use]
    pub fn rarity(&self, token: Token) -> u32 {
        self.have_counts[token.index()]
    }

    /// Whether anyone still needs `token`.
    #[must_use]
    pub fn is_needed(&self, token: Token) -> bool {
        self.need_counts[token.index()] > 0
    }

    /// Total outstanding (vertex, token) needs — the remaining-bandwidth
    /// lower bound, as visible through the aggregates.
    #[must_use]
    pub fn total_need(&self) -> u64 {
        self.need_counts.iter().map(|&c| u64::from(c)).sum()
    }

    /// Incrementally applies one vertex's deliveries: deliveries are the
    /// *only* events that change the aggregates, so bumping counters for
    /// each newly-received token keeps this equal to re-running
    /// [`AggregateKnowledge::compute`] (the reference implementation)
    /// at a cost proportional to the tokens actually moved, not `n·m`.
    ///
    /// `delivered` must contain only tokens the vertex did **not**
    /// possess before this delivery (the engine subtracts the prior
    /// possession first); `want` is that vertex's want set. Returns how
    /// many of the delivered tokens were wanted, i.e. how much the
    /// vertex's outstanding need shrank.
    ///
    /// # Panics
    ///
    /// Panics (in debug, via indexing) if a token is outside the
    /// universe, and if a delivered-but-wanted token's need count is
    /// already zero — which means `delivered` violated the
    /// not-previously-possessed contract.
    pub fn apply_delivery(&mut self, delivered: &TokenSet, want: &TokenSet) -> u64 {
        let mut satisfied = 0u64;
        for t in delivered {
            self.have_counts[t.index()] += 1;
            if want.contains(t) {
                let need = &mut self.need_counts[t.index()];
                assert!(
                    *need > 0,
                    "delivery of wanted token {t} with zero need count: \
                     was it already possessed?"
                );
                *need -= 1;
                satisfied += 1;
            }
        }
        satisfied
    }

    /// Overwrites `self` with `other` without allocating (both counter
    /// vectors keep their storage).
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn copy_from(&mut self, other: &AggregateKnowledge) {
        self.have_counts.copy_from_slice(&other.have_counts);
        self.need_counts.copy_from_slice(&other.need_counts);
    }
}

/// A fixed-delay pipeline of [`AggregateKnowledge`] snapshots: vertices
/// acting at step `i` see the aggregates of step `i - delay` (clamped to
/// the initial snapshot while the pipeline warms up).
///
/// # Examples
///
/// ```
/// use ocd_core::knowledge::{AggregateKnowledge, DelayedAggregates};
/// use ocd_core::TokenSet;
///
/// let t0 = AggregateKnowledge::compute(1, &[TokenSet::new(1)], &[TokenSet::new(1)]);
/// let mut delayed = DelayedAggregates::new(1, t0.clone());
/// let t1 = AggregateKnowledge::compute(1, &[TokenSet::full(1)], &[TokenSet::new(1)]);
/// // With delay 1, pushing t1 still yields the older t0 view.
/// assert_eq!(delayed.advance(t1), &t0);
/// ```
#[derive(Debug, Clone)]
pub struct DelayedAggregates {
    delay: usize,
    history: VecDeque<AggregateKnowledge>,
}

impl DelayedAggregates {
    /// Creates a pipeline with the given delay, seeded with the initial
    /// aggregates (visible until fresher data ages through).
    #[must_use]
    pub fn new(delay: usize, initial: AggregateKnowledge) -> Self {
        let mut history = VecDeque::with_capacity(delay + 1);
        history.push_back(initial);
        DelayedAggregates { delay, history }
    }

    /// Pushes this step's fresh aggregates and returns the view the
    /// vertices are allowed to see (the snapshot from `delay` steps ago).
    pub fn advance(&mut self, fresh: AggregateKnowledge) -> &AggregateKnowledge {
        self.history.push_back(fresh);
        while self.history.len() > self.delay + 1 {
            self.history.pop_front();
        }
        self.history.front().expect("history is never empty")
    }

    /// Like [`DelayedAggregates::advance`], but copies `fresh` into the
    /// pipeline by recycling the snapshot that ages out — once the
    /// pipeline is full (after `delay + 1` pushes) this allocates
    /// nothing, which is what the simulation engine's steady-state loop
    /// relies on.
    pub fn advance_from(&mut self, fresh: &AggregateKnowledge) -> &AggregateKnowledge {
        if self.history.len() > self.delay {
            let mut recycled = self.history.pop_front().expect("history is never empty");
            recycled.copy_from(fresh);
            self.history.push_back(recycled);
        } else {
            self.history.push_back(fresh.clone());
        }
        self.history.front().expect("history is never empty")
    }

    /// The currently visible (possibly stale) aggregates.
    #[must_use]
    pub fn visible(&self) -> &AggregateKnowledge {
        self.history.front().expect("history is never empty")
    }

    /// The configured delay in steps.
    #[must_use]
    pub fn delay(&self) -> usize {
        self.delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(universe: usize, tokens: &[usize]) -> TokenSet {
        TokenSet::from_tokens(universe, tokens.iter().map(|&i| Token::new(i)))
    }

    #[test]
    fn compute_counts() {
        // 3 vertices, 3 tokens.
        let possession = [set(3, &[0, 1]), set(3, &[0]), set(3, &[])];
        let want = [set(3, &[0, 1]), set(3, &[1, 2]), set(3, &[0])];
        let agg = AggregateKnowledge::compute(3, &possession, &want);
        assert_eq!(agg.have_counts, vec![2, 1, 0]);
        assert_eq!(agg.need_counts, vec![1, 1, 1]);
        assert_eq!(agg.total_need(), 3);
        assert_eq!(agg.rarity(Token::new(0)), 2);
        assert!(agg.is_needed(Token::new(2)));
        assert_eq!(agg.num_tokens(), 3);
    }

    #[test]
    fn satisfied_wants_do_not_count_as_need() {
        let possession = [set(2, &[0, 1])];
        let want = [set(2, &[0, 1])];
        let agg = AggregateKnowledge::compute(2, &possession, &want);
        assert_eq!(agg.need_counts, vec![0, 0]);
        assert_eq!(agg.total_need(), 0);
    }

    #[test]
    fn zero_delay_sees_fresh_data() {
        let a0 = AggregateKnowledge::compute(1, &[set(1, &[])], &[set(1, &[0])]);
        let a1 = AggregateKnowledge::compute(1, &[set(1, &[0])], &[set(1, &[0])]);
        let mut d = DelayedAggregates::new(0, a0);
        assert_eq!(d.advance(a1.clone()), &a1);
        assert_eq!(d.visible(), &a1);
    }

    #[test]
    fn delay_two_serves_stale_then_catches_up() {
        let snap =
            |have: &[usize]| AggregateKnowledge::compute(1, &[set(1, have)], &[set(1, &[0])]);
        let (s0, s1, s2, s3) = (snap(&[]), snap(&[]), snap(&[0]), snap(&[0]));
        let mut d = DelayedAggregates::new(2, s0.clone());
        assert_eq!(d.delay(), 2);
        assert_eq!(d.advance(s1.clone()), &s0);
        assert_eq!(d.advance(s2.clone()), &s0);
        assert_eq!(d.advance(s3), &s1);
        // After another push the s2 snapshot (first with the token) shows.
        let visible = d.advance(snap(&[0])).clone();
        assert_eq!(visible, s2);
    }

    #[test]
    #[should_panic(expected = "vertex count mismatch")]
    fn mismatched_lengths_panic() {
        let _ = AggregateKnowledge::compute(1, &[set(1, &[])], &[]);
    }

    #[test]
    fn apply_delivery_tracks_compute() {
        // Start: vertex 0 has {0}, vertex 1 has {}; both want {0, 1}.
        let mut possession = [set(2, &[0]), set(2, &[])];
        let want = [set(2, &[0, 1]), set(2, &[0, 1])];
        let mut agg = AggregateKnowledge::compute(2, &possession, &want);

        // Deliver token 0 to vertex 1 (wanted, new).
        let delivered = set(2, &[0]);
        let satisfied = agg.apply_delivery(&delivered, &want[1]);
        possession[1].union_with(&delivered);
        assert_eq!(satisfied, 1);
        assert_eq!(agg, AggregateKnowledge::compute(2, &possession, &want));

        // Deliver token 1 to vertex 0 (wanted, new).
        let delivered = set(2, &[1]);
        assert_eq!(agg.apply_delivery(&delivered, &want[0]), 1);
        possession[0].union_with(&delivered);
        assert_eq!(agg, AggregateKnowledge::compute(2, &possession, &want));
    }

    #[test]
    fn apply_delivery_of_unwanted_token_satisfies_nothing() {
        let possession = [set(2, &[0, 1]), set(2, &[])];
        let want = [set(2, &[]), set(2, &[0])];
        let mut agg = AggregateKnowledge::compute(2, &possession, &want);
        // Vertex 1 receives token 1, which it never wanted.
        let satisfied = agg.apply_delivery(&set(2, &[1]), &want[1]);
        assert_eq!(satisfied, 0);
        assert_eq!(agg.rarity(Token::new(1)), 2);
        assert!(agg.is_needed(Token::new(0)), "token 0 still needed");
    }

    #[test]
    #[should_panic(expected = "zero need count")]
    fn apply_delivery_rejects_redelivery_of_wanted_token() {
        let possession = [set(1, &[0])];
        let want = [set(1, &[0])];
        let mut agg = AggregateKnowledge::compute(1, &possession, &want);
        // Token 0 is already possessed: a second "delivery" breaks the
        // not-previously-possessed contract and must be caught.
        let _ = agg.apply_delivery(&set(1, &[0]), &want[0]);
    }

    #[test]
    fn advance_from_matches_advance() {
        let snap =
            |have: &[usize]| AggregateKnowledge::compute(1, &[set(1, have)], &[set(1, &[0])]);
        let frames = [snap(&[]), snap(&[]), snap(&[0]), snap(&[0]), snap(&[0])];
        for delay in 0..3 {
            let mut by_value = DelayedAggregates::new(delay, frames[0].clone());
            let mut by_copy = DelayedAggregates::new(delay, frames[0].clone());
            for frame in &frames[1..] {
                let a = by_value.advance(frame.clone()).clone();
                let b = by_copy.advance_from(frame).clone();
                assert_eq!(a, b, "delay {delay}");
                assert_eq!(by_value.visible(), by_copy.visible());
            }
        }
    }
}
