//! Tokens and dense token sets.
//!
//! The paper assumes "all content is in the form of unit-sized tokens;
//! files can be represented as sets of tokens" (§3). Token universes in
//! the paper's experiments are small (≤ 512), while set operations
//! (union, difference, counting) dominate the simulator's inner loop —
//! hence a dense bitset with word-parallel operations.

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;

/// A unit-sized piece of content, identified by a dense index within its
/// instance's token universe.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Token(u32);

impl Token {
    /// Creates a token with the given index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        Token(u32::try_from(index).expect("token index exceeds u32::MAX"))
    }

    /// Returns the raw index of this token.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

const BITS: usize = 64;

/// A set of [`Token`]s drawn from a fixed universe `0..universe`,
/// represented as a dense bitset.
///
/// All sets participating in one operation must share the same universe
/// size; binary operations panic otherwise, catching instance mix-ups
/// early.
///
/// # Examples
///
/// ```
/// use ocd_core::{Token, TokenSet};
///
/// let mut a = TokenSet::new(10);
/// a.insert(Token::new(3));
/// a.insert(Token::new(7));
/// let b = TokenSet::from_tokens(10, [Token::new(7), Token::new(9)]);
/// assert_eq!(a.union(&b).len(), 3);
/// assert_eq!(a.difference(&b).iter().collect::<Vec<_>>(), vec![Token::new(3)]);
/// assert!(a.intersects(&b));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TokenSet {
    universe: u32,
    blocks: Vec<u64>,
}

impl TokenSet {
    /// Creates an empty set over `0..universe`.
    #[must_use]
    pub fn new(universe: usize) -> Self {
        TokenSet {
            universe: u32::try_from(universe).expect("universe exceeds u32::MAX"),
            blocks: vec![0; universe.div_ceil(BITS)],
        }
    }

    /// Creates the full set `{0, …, universe-1}`.
    #[must_use]
    pub fn full(universe: usize) -> Self {
        let mut set = TokenSet::new(universe);
        for block in &mut set.blocks {
            *block = u64::MAX;
        }
        set.clear_excess();
        set
    }

    /// Creates a set over `0..universe` containing the given tokens.
    ///
    /// # Panics
    ///
    /// Panics if a token is outside the universe.
    #[must_use]
    pub fn from_tokens(universe: usize, tokens: impl IntoIterator<Item = Token>) -> Self {
        let mut set = TokenSet::new(universe);
        for t in tokens {
            set.insert(t);
        }
        set
    }

    /// Creates the contiguous range `lo..hi` as a set (used for files:
    /// "files can be represented as sets of tokens").
    ///
    /// # Panics
    ///
    /// Panics if `hi > universe` or `lo > hi`.
    #[must_use]
    pub fn from_range(universe: usize, range: std::ops::Range<usize>) -> Self {
        assert!(
            range.start <= range.end && range.end <= universe,
            "range {range:?} invalid for universe {universe}"
        );
        let mut set = TokenSet::new(universe);
        for i in range {
            set.insert(Token::new(i));
        }
        set
    }

    fn clear_excess(&mut self) {
        let u = self.universe as usize;
        if !u.is_multiple_of(BITS) {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << (u % BITS)) - 1;
            }
        }
    }

    /// Size of the universe this set draws from.
    #[must_use]
    pub fn universe(&self) -> usize {
        self.universe as usize
    }

    /// Number of tokens in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Whether the set equals the whole universe.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.len() == self.universe()
    }

    /// Whether `token` is in the set.
    ///
    /// # Panics
    ///
    /// Panics if `token` is outside the universe.
    #[must_use]
    pub fn contains(&self, token: Token) -> bool {
        self.check(token);
        self.blocks[token.index() / BITS] & (1 << (token.index() % BITS)) != 0
    }

    fn check(&self, token: Token) {
        assert!(
            token.index() < self.universe(),
            "token {token} outside universe of size {}",
            self.universe
        );
    }

    /// Inserts `token`. Returns `true` if it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `token` is outside the universe.
    pub fn insert(&mut self, token: Token) -> bool {
        self.check(token);
        let (block, bit) = (token.index() / BITS, 1u64 << (token.index() % BITS));
        let added = self.blocks[block] & bit == 0;
        self.blocks[block] |= bit;
        added
    }

    /// Removes `token`. Returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `token` is outside the universe.
    pub fn remove(&mut self, token: Token) -> bool {
        self.check(token);
        let (block, bit) = (token.index() / BITS, 1u64 << (token.index() % BITS));
        let removed = self.blocks[block] & bit != 0;
        self.blocks[block] &= !bit;
        removed
    }

    fn check_same_universe(&self, other: &TokenSet) {
        assert_eq!(
            self.universe, other.universe,
            "token sets from different universes ({} vs {})",
            self.universe, other.universe
        );
    }

    /// In-place union: `self ∪= other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union_with(&mut self, other: &TokenSet) {
        self.check_same_universe(other);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// In-place intersection: `self ∩= other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersect_with(&mut self, other: &TokenSet) {
        self.check_same_universe(other);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// In-place difference: `self \= other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn subtract(&mut self, other: &TokenSet) {
        self.check_same_universe(other);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !b;
        }
    }

    /// Returns `self ∪ other`.
    #[must_use]
    pub fn union(&self, other: &TokenSet) -> TokenSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Returns `self ∩ other`.
    #[must_use]
    pub fn intersection(&self, other: &TokenSet) -> TokenSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Returns `self \ other`.
    #[must_use]
    pub fn difference(&self, other: &TokenSet) -> TokenSet {
        let mut out = self.clone();
        out.subtract(other);
        out
    }

    /// Whether every token of `self` is in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[must_use]
    pub fn is_subset(&self, other: &TokenSet) -> bool {
        self.check_same_universe(other);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// Whether the sets share at least one token.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[must_use]
    pub fn intersects(&self, other: &TokenSet) -> bool {
        self.check_same_universe(other);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .any(|(a, b)| a & b != 0)
    }

    /// Number of tokens in `self \ other` without materializing it.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[must_use]
    pub fn difference_len(&self, other: &TokenSet) -> usize {
        self.check_same_universe(other);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// Removes all tokens.
    pub fn clear(&mut self) {
        for b in &mut self.blocks {
            *b = 0;
        }
    }

    /// Overwrites `self` with the contents of `other` without
    /// allocating — the backbone of scratch-buffer reuse in the
    /// simulation hot path (a derived `clone_from` would still allocate
    /// through `Vec`'s generic path).
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn copy_from(&mut self, other: &TokenSet) {
        self.check_same_universe(other);
        self.blocks.copy_from_slice(&other.blocks);
    }

    /// Iterates over the tokens in ascending index order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            block: 0,
            bits: self.blocks.first().copied().unwrap_or(0),
        }
    }

    /// The smallest token in the set, if any.
    #[must_use]
    pub fn first(&self) -> Option<Token> {
        self.iter().next()
    }

    /// The smallest token with index ≥ `from.index()`, wrapping around to
    /// the start of the universe if none — the lookup a circular
    /// round-robin queue needs. Returns `None` on the empty set.
    #[must_use]
    pub fn next_cyclic(&self, from: Token) -> Option<Token> {
        let start = from.index().min(self.universe());
        // Word-level scan from `start` to the end: mask off the bits
        // below `start` in its block, then let `trailing_zeros` find
        // the next member 64 tokens at a time.
        if start < self.universe() {
            let first_block = start / BITS;
            let mut masked = self.blocks[first_block] & (!0u64 << (start % BITS));
            let mut block = first_block;
            loop {
                if masked != 0 {
                    return Some(Token::new(block * BITS + masked.trailing_zeros() as usize));
                }
                block += 1;
                if block >= self.blocks.len() {
                    break;
                }
                masked = self.blocks[block];
            }
        }
        // Wrap to the smallest member (None on the empty set).
        self.first()
    }

    /// Keeps only the first `n` tokens (ascending), dropping the rest.
    /// Used to clip a candidate send down to arc capacity.
    pub fn truncate(&mut self, n: usize) {
        let mut seen = 0usize;
        for block in &mut self.blocks {
            let ones = block.count_ones() as usize;
            if seen + ones <= n {
                seen += ones;
                continue;
            }
            // Keep only the first (n - seen) ones in this block.
            let mut keep = n.saturating_sub(seen);
            let mut new_block = 0u64;
            let mut bits = *block;
            while keep > 0 && bits != 0 {
                let low = bits & bits.wrapping_neg();
                new_block |= low;
                bits ^= low;
                keep -= 1;
            }
            *block = new_block;
            seen = n;
        }
    }
}

/// Iterator over the tokens of a [`TokenSet`] in ascending order.
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a TokenSet,
    block: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = Token;

    fn next(&mut self) -> Option<Token> {
        loop {
            if self.bits != 0 {
                let bit = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(Token::new(self.block * BITS + bit));
            }
            self.block += 1;
            if self.block >= self.set.blocks.len() {
                return None;
            }
            self.bits = self.set.blocks[self.block];
        }
    }
}

impl<'a> IntoIterator for &'a TokenSet {
    type Item = Token;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl fmt::Debug for TokenSet {
    /// Renders as `{t0, t3, t7}/10` (members / universe size).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t:?}")?;
        }
        write!(f, "}}/{}", self.universe)
    }
}

impl Serialize for TokenSet {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        #[derive(Serialize)]
        struct Repr {
            universe: u32,
            tokens: Vec<u32>,
        }
        Repr {
            universe: self.universe,
            tokens: self.iter().map(|t| t.0).collect(),
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for TokenSet {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        #[derive(Deserialize)]
        struct Repr {
            universe: u32,
            tokens: Vec<u32>,
        }
        let repr = Repr::deserialize(deserializer)?;
        let mut set = TokenSet::new(repr.universe as usize);
        for t in repr.tokens {
            if t >= repr.universe {
                return Err(D::Error::custom(format!(
                    "token {t} outside universe of size {}",
                    repr.universe
                )));
            }
            set.insert(Token(t));
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = TokenSet::new(70);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let f = TokenSet::full(70);
        assert!(f.is_full());
        assert_eq!(f.len(), 70);
        assert!(f.contains(Token::new(69)));
        // Excess bits beyond the universe must be clear.
        assert_eq!(f.iter().count(), 70);
    }

    #[test]
    fn zero_universe() {
        let s = TokenSet::new(0);
        assert!(s.is_empty());
        assert!(s.is_full(), "the empty universe's empty set is also full");
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.next_cyclic(Token::new(0)), None);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = TokenSet::new(100);
        assert!(s.insert(Token::new(64)));
        assert!(!s.insert(Token::new(64)), "second insert reports not-new");
        assert!(s.contains(Token::new(64)));
        assert!(!s.contains(Token::new(63)));
        assert!(s.remove(Token::new(64)));
        assert!(!s.remove(Token::new(64)));
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_universe_panics() {
        let s = TokenSet::new(5);
        let _ = s.contains(Token::new(5));
    }

    #[test]
    #[should_panic(expected = "different universes")]
    fn mixed_universe_panics() {
        let a = TokenSet::new(5);
        let b = TokenSet::new(6);
        let _ = a.is_subset(&b);
    }

    #[test]
    fn set_algebra() {
        let a = TokenSet::from_tokens(10, [Token::new(1), Token::new(3), Token::new(5)]);
        let b = TokenSet::from_tokens(10, [Token::new(3), Token::new(6)]);
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.intersection(&b).len(), 1);
        assert_eq!(a.difference(&b).len(), 2);
        assert_eq!(a.difference_len(&b), 2);
        assert_eq!(b.difference_len(&a), 1);
        assert!(a.intersects(&b));
        assert!(a.intersection(&b).is_subset(&a));
        assert!(a.intersection(&b).is_subset(&b));
        assert!(!a.is_subset(&b));
        assert!(a.difference(&b).is_subset(&a));
    }

    #[test]
    fn from_range_builds_files() {
        let f = TokenSet::from_range(512, 256..384);
        assert_eq!(f.len(), 128);
        assert!(f.contains(Token::new(256)));
        assert!(f.contains(Token::new(383)));
        assert!(!f.contains(Token::new(255)));
        assert!(!f.contains(Token::new(384)));
        let empty = TokenSet::from_range(10, 4..4);
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid for universe")]
    fn bad_range_panics() {
        let _ = TokenSet::from_range(10, 5..11);
    }

    #[test]
    fn iteration_is_sorted_and_complete() {
        let tokens = [0usize, 1, 63, 64, 65, 127, 128, 199];
        let s = TokenSet::from_tokens(200, tokens.iter().map(|&i| Token::new(i)));
        let got: Vec<usize> = s.iter().map(Token::index).collect();
        assert_eq!(got, tokens);
        assert_eq!(s.first(), Some(Token::new(0)));
    }

    #[test]
    fn next_cyclic_wraps() {
        let s = TokenSet::from_tokens(10, [Token::new(2), Token::new(7)]);
        assert_eq!(s.next_cyclic(Token::new(0)), Some(Token::new(2)));
        assert_eq!(s.next_cyclic(Token::new(2)), Some(Token::new(2)));
        assert_eq!(s.next_cyclic(Token::new(3)), Some(Token::new(7)));
        assert_eq!(s.next_cyclic(Token::new(8)), Some(Token::new(2)), "wraps");
    }

    #[test]
    fn next_cyclic_matches_linear_scan_on_512_universe() {
        // Regression for the word-level rewrite: sparse members spread
        // across all 8 blocks of a 512-token universe, probed from
        // every position including block boundaries and the wrap.
        let members = [0usize, 63, 64, 127, 200, 311, 448, 511];
        let s = TokenSet::from_tokens(512, members.iter().map(|&i| Token::new(i)));
        let oracle = |from: usize| {
            (from..512)
                .chain(0..512)
                .map(Token::new)
                .find(|&t| s.contains(t))
        };
        for from in 0..512 {
            assert_eq!(s.next_cyclic(Token::new(from)), oracle(from), "from {from}");
        }
        // `from == universe` is allowed and wraps to the first member.
        assert_eq!(s.next_cyclic(Token::new(512)), Some(Token::new(0)));
        // Empty and singleton sets.
        assert_eq!(TokenSet::new(512).next_cyclic(Token::new(17)), None);
        let single = TokenSet::from_tokens(512, [Token::new(300)]);
        assert_eq!(single.next_cyclic(Token::new(301)), Some(Token::new(300)));
        assert_eq!(single.next_cyclic(Token::new(300)), Some(Token::new(300)));
    }

    #[test]
    fn copy_from_overwrites_in_place() {
        let src = TokenSet::from_tokens(130, [Token::new(1), Token::new(64), Token::new(129)]);
        let mut dst = TokenSet::from_tokens(130, [Token::new(0), Token::new(99)]);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    #[should_panic(expected = "different universes")]
    fn copy_from_rejects_universe_mismatch() {
        let src = TokenSet::new(10);
        let mut dst = TokenSet::new(11);
        dst.copy_from(&src);
    }

    #[test]
    fn truncate_keeps_lowest() {
        let mut s = TokenSet::from_tokens(200, (0..150).map(Token::new));
        s.truncate(70);
        assert_eq!(s.len(), 70);
        assert_eq!(
            s.iter().map(Token::index).collect::<Vec<_>>(),
            (0..70).collect::<Vec<_>>()
        );
        let mut t = TokenSet::from_tokens(10, [Token::new(9)]);
        t.truncate(5);
        assert_eq!(t.len(), 1);
        t.truncate(0);
        assert!(t.is_empty());
    }

    #[test]
    fn debug_format() {
        let s = TokenSet::from_tokens(5, [Token::new(0), Token::new(4)]);
        assert_eq!(format!("{s:?}"), "{t0, t4}/5");
    }

    #[test]
    fn serde_round_trip() {
        let s = TokenSet::from_tokens(100, [Token::new(0), Token::new(64), Token::new(99)]);
        let json = serde_json::to_string(&s).unwrap();
        let back: TokenSet = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn serde_rejects_out_of_universe() {
        let bad = r#"{"universe": 5, "tokens": [7]}"#;
        assert!(serde_json::from_str::<TokenSet>(bad).is_err());
    }
}
