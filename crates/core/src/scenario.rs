//! Generators for the paper's experimental scenarios (§5.2–§5.3).
//!
//! Each function turns a topology into a concrete [`Instance`]:
//!
//! - [`single_file`]: one source holds a file of `m` tokens, every vertex
//!   wants all of it (§5.2 "graph size" experiments, Figures 2–3).
//! - [`receiver_density`]: one source, one file, and each vertex joins
//!   the want set iff its uniform random score falls below a threshold
//!   (§5.2 "receiver density", Figure 4).
//! - [`multi_file`]: the §5.3 subdivision scenario — `total_tokens`
//!   tokens at a single source are split into `num_files` equal files,
//!   and the vertex set is partitioned so each group wants exactly one
//!   file (Figure 5).
//! - [`multi_sender`]: like [`multi_file`], but each file's source is a
//!   random vertex that does *not* want it (§5.3, Figure 6).

use crate::{Instance, TokenSet};
use ocd_graph::DiGraph;
use rand::Rng;

/// Single source, single file, all vertices want everything.
///
/// # Panics
///
/// Panics if `source` is out of bounds or the graph is empty.
#[must_use]
pub fn single_file(graph: DiGraph, num_tokens: usize, source: usize) -> Instance {
    let _ = graph.node(source); // bounds check with a clear panic
    Instance::builder(graph, num_tokens)
        .have_set(source, TokenSet::full(num_tokens))
        .want_all_everywhere()
        .build()
        .expect("source holds every token, so no orphan is possible")
}

/// Single source, single file; every vertex draws a uniform score in
/// `[0, 1)` and wants the file iff `score < threshold`. The source always
/// keeps the file. With `threshold >= 1.0` this degenerates to
/// [`single_file`]; with `threshold = 0.0` nobody (except possibly the
/// source, trivially) wants anything.
///
/// # Panics
///
/// Panics if `source` is out of bounds or `threshold` is not in
/// `[0.0, 1.0]`.
#[must_use]
pub fn receiver_density<R: Rng + ?Sized>(
    graph: DiGraph,
    num_tokens: usize,
    source: usize,
    threshold: f64,
    rng: &mut R,
) -> Instance {
    assert!(
        (0.0..=1.0).contains(&threshold),
        "threshold {threshold} outside [0, 1]"
    );
    let _ = graph.node(source);
    let n = graph.node_count();
    let mut builder =
        Instance::builder(graph, num_tokens).have_set(source, TokenSet::full(num_tokens));
    for v in 0..n {
        let score: f64 = rng.random();
        if score < threshold {
            builder = builder.want_set(v, TokenSet::full(num_tokens));
        }
    }
    builder
        .build()
        .expect("source holds every token, so no orphan is possible")
}

/// Splits `total_tokens` into `num_files` equal contiguous files and
/// returns each file's token set.
///
/// # Panics
///
/// Panics if `num_files` is zero or does not divide `total_tokens`.
#[must_use]
pub fn file_partition(total_tokens: usize, num_files: usize) -> Vec<TokenSet> {
    assert!(num_files > 0, "need at least one file");
    assert_eq!(
        total_tokens % num_files,
        0,
        "{num_files} files must evenly divide {total_tokens} tokens"
    );
    let per = total_tokens / num_files;
    (0..num_files)
        .map(|f| TokenSet::from_range(total_tokens, f * per..(f + 1) * per))
        .collect()
}

/// Assigns vertices to `num_files` contiguous balanced groups; group `f`
/// wants file `f`. Returns `group[v] = f`.
///
/// # Panics
///
/// Panics if there are fewer vertices than files.
#[must_use]
pub fn vertex_partition(num_vertices: usize, num_files: usize) -> Vec<usize> {
    assert!(
        num_vertices >= num_files,
        "cannot split {num_vertices} vertices into {num_files} groups"
    );
    (0..num_vertices)
        .map(|v| v * num_files / num_vertices)
        .collect()
}

/// The §5.3 subdivision scenario: a single source holds all
/// `total_tokens`; the file is split into `num_files` equal parts; the
/// vertex set is partitioned into `num_files` balanced groups, each
/// wanting exactly its own file. "What remains constant across this
/// graph is the number of tokens that need to be distributed from the
/// single source" — the per-vertex deficiency shrinks as files multiply.
///
/// # Panics
///
/// Panics under the conditions of [`file_partition`],
/// [`vertex_partition`], or if `source` is out of bounds.
#[must_use]
pub fn multi_file(
    graph: DiGraph,
    total_tokens: usize,
    num_files: usize,
    source: usize,
) -> Instance {
    let _ = graph.node(source);
    let files = file_partition(total_tokens, num_files);
    let groups = vertex_partition(graph.node_count(), num_files);
    let n = graph.node_count();
    let mut builder =
        Instance::builder(graph, total_tokens).have_set(source, TokenSet::full(total_tokens));
    for v in 0..n {
        builder = builder.want_set(v, files[groups[v]].clone());
    }
    builder
        .build()
        .expect("source holds every token, so no orphan is possible")
}

/// The §5.3 multiple-senders scenario: files and vertex groups as in
/// [`multi_file`], but "the source of each file was randomly chosen from
/// the set of vertices which did not want it". A vertex can source
/// several files; their token sets union.
///
/// # Panics
///
/// Panics under the conditions of [`file_partition`] /
/// [`vertex_partition`], or if some file is wanted by every vertex
/// (leaving no eligible source).
#[must_use]
pub fn multi_sender<R: Rng + ?Sized>(
    graph: DiGraph,
    total_tokens: usize,
    num_files: usize,
    rng: &mut R,
) -> Instance {
    let files = file_partition(total_tokens, num_files);
    let groups = vertex_partition(graph.node_count(), num_files);
    let n = graph.node_count();
    let mut builder = Instance::builder(graph, total_tokens);
    for v in 0..n {
        builder = builder.want_set(v, files[groups[v]].clone());
    }
    for (f, file) in files.iter().enumerate() {
        let eligible: Vec<usize> = (0..n).filter(|&v| groups[v] != f).collect();
        assert!(
            !eligible.is_empty(),
            "file {f} is wanted by every vertex; no eligible source"
        );
        let source = eligible[rng.random_range(0..eligible.len())];
        builder = builder.have(source, file.iter());
    }
    builder
        .build()
        .expect("every file has a source, so no orphan is possible")
}

/// The paper's Figure 1 phenomenon: a graph where minimizing time and
/// minimizing bandwidth are at odds. As in the paper's caption, the
/// minimum-time schedule takes 2 timesteps and uses 6 units of
/// bandwidth, while a minimum-bandwidth schedule uses 4 units of
/// bandwidth but takes 3 timesteps. (The paper's figure graphic is not
/// reproduced in the available text; this instance is constructed to
/// realize the caption's exact numbers, verified by the exact solvers.)
///
/// Construction — one token, source `s=0`, wanters `a=1, b=2, c=3, d=4`,
/// pure relays `r1=5, r2=6`, all arcs capacity 1:
///
/// ```text
/// s → a → b → c        s → r1 → c
///         b → d        s → r2 → d
/// ```
///
/// Minimum bandwidth (4 = the deficiency): the relay-free chain
/// `s→a; a→b; b→c, b→d` — but `c`/`d` are 3 hops deep, so it takes 3
/// steps. Finishing in 2 steps requires `c` and `d` to receive from
/// step-1 holders, and their only in-neighbors besides the too-late `b`
/// are the relays — both detours are forced, giving 4 + 2 = 6 moves.
#[must_use]
pub fn figure_one() -> Instance {
    let mut g = DiGraph::with_nodes(7);
    g.add_edge(g.node(0), g.node(1), 1).expect("s -> a");
    g.add_edge(g.node(1), g.node(2), 1).expect("a -> b");
    g.add_edge(g.node(2), g.node(3), 1).expect("b -> c");
    g.add_edge(g.node(2), g.node(4), 1).expect("b -> d");
    g.add_edge(g.node(0), g.node(5), 1).expect("s -> r1");
    g.add_edge(g.node(5), g.node(3), 1).expect("r1 -> c");
    g.add_edge(g.node(0), g.node(6), 1).expect("s -> r2");
    g.add_edge(g.node(6), g.node(4), 1).expect("r2 -> d");
    Instance::builder(g, 1)
        .have_set(0, TokenSet::full(1))
        .want_set(1, TokenSet::full(1))
        .want_set(2, TokenSet::full(1))
        .want_set(3, TokenSet::full(1))
        .want_set(4, TokenSet::full(1))
        .build()
        .expect("source holds every token")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocd_graph::generate::classic;
    use rand::prelude::*;

    #[test]
    fn figure_one_shape() {
        let inst = figure_one();
        assert_eq!(inst.num_vertices(), 7);
        assert_eq!(inst.num_tokens(), 1);
        assert_eq!(inst.total_deficiency(), 4);
        assert!(inst.is_satisfiable());
        assert!(
            inst.want(inst.graph().node(5)).is_empty(),
            "r1 is a pure relay"
        );
    }

    #[test]
    fn single_file_shape() {
        let inst = single_file(classic::cycle(5, 2, true), 7, 2);
        assert!(inst.is_satisfiable());
        assert_eq!(inst.num_tokens(), 7);
        assert!(inst.have(inst.graph().node(2)).is_full());
        assert!(inst.have(inst.graph().node(0)).is_empty());
        // Everyone wants everything; the source's want is pre-satisfied.
        assert_eq!(inst.total_deficiency(), 4 * 7);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn single_file_bad_source_panics() {
        let _ = single_file(classic::path(2, 1, true), 1, 9);
    }

    #[test]
    fn receiver_density_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let all = receiver_density(classic::cycle(20, 2, true), 5, 0, 1.0, &mut rng);
        assert_eq!(
            all.total_deficiency(),
            19 * 5,
            "threshold 1 = everyone wants"
        );
        let none = receiver_density(classic::cycle(20, 2, true), 5, 0, 0.0, &mut rng);
        assert_eq!(none.total_deficiency(), 0);
    }

    #[test]
    fn receiver_density_scales_with_threshold() {
        let mut rng = StdRng::seed_from_u64(2);
        let inst = receiver_density(classic::cycle(400, 2, true), 3, 0, 0.25, &mut rng);
        let receivers = inst.stats().receivers;
        assert!(
            (60..140).contains(&receivers),
            "~25% of 400 vertices expected, got {receivers}"
        );
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn receiver_density_bad_threshold_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = receiver_density(classic::path(2, 1, true), 1, 0, 1.5, &mut rng);
    }

    #[test]
    fn file_partition_is_disjoint_and_covering() {
        let files = file_partition(512, 8);
        assert_eq!(files.len(), 8);
        let mut union = TokenSet::new(512);
        for (i, f) in files.iter().enumerate() {
            assert_eq!(f.len(), 64);
            for (j, g) in files.iter().enumerate() {
                if i != j {
                    assert!(!f.intersects(g), "files {i} and {j} overlap");
                }
            }
            union.union_with(f);
        }
        assert!(union.is_full());
    }

    #[test]
    #[should_panic(expected = "evenly divide")]
    fn uneven_partition_panics() {
        let _ = file_partition(10, 3);
    }

    #[test]
    fn vertex_partition_is_balanced() {
        let groups = vertex_partition(200, 8);
        let mut counts = [0usize; 8];
        for g in groups {
            counts[g] += 1;
        }
        assert!(counts.iter().all(|&c| c == 25));
        // Uneven case: sizes differ by at most 1.
        let groups = vertex_partition(10, 3);
        let mut counts = [0usize; 3];
        for g in groups {
            counts[g] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert!(counts.iter().all(|&c| c == 3 || c == 4));
    }

    #[test]
    fn multi_file_preserves_total_demand() {
        // The paper's invariant: total tokens to distribute from the
        // source is constant across subdivisions (modulo the source's own
        // group being pre-satisfied).
        let mut last = None;
        for k in [1usize, 2, 4, 8] {
            let inst = multi_file(classic::cycle(16, 3, true), 64, k, 0);
            assert!(inst.is_satisfiable());
            let deficiency = inst.total_deficiency();
            // Each non-source vertex wants exactly 64/k tokens; the
            // source belongs to group 0 and is pre-satisfied.
            assert_eq!(
                deficiency,
                (16 - 16 / k.min(16)) as u64 * (64 / k) as u64
                    + (16 / k as u64 - 1) * (64 / k) as u64
            );
            if let Some(prev) = last {
                assert!(deficiency <= prev, "deficiency shrinks as files split");
            }
            last = Some(deficiency);
        }
    }

    #[test]
    fn multi_sender_sources_do_not_want_their_file() {
        let mut rng = StdRng::seed_from_u64(5);
        let inst = multi_sender(classic::cycle(16, 3, true), 64, 4, &mut rng);
        assert!(inst.is_satisfiable());
        let files = file_partition(64, 4);
        for (f, file) in files.iter().enumerate() {
            // Some vertex has the file...
            let havers: Vec<_> = inst
                .graph()
                .nodes()
                .filter(|&v| file.is_subset(inst.have(v)))
                .collect();
            assert!(!havers.is_empty(), "file {f} has a source");
            // ...and no haver wants it.
            for h in havers {
                assert!(
                    !inst.want(h).intersects(file),
                    "source of file {f} wants it"
                );
            }
        }
    }

    #[test]
    fn multi_sender_deterministic_under_seed() {
        let a = multi_sender(
            classic::cycle(12, 3, true),
            24,
            4,
            &mut StdRng::seed_from_u64(9),
        );
        let b = multi_sender(
            classic::cycle(12, 3, true),
            24,
            4,
            &mut StdRng::seed_from_u64(9),
        );
        assert_eq!(a, b);
    }
}
