//! Causal **token-provenance** tracing: who gave each vertex each token,
//! and over which arc, at which timestep.
//!
//! The metrics layer ([`crate::metrics`]) aggregates causality away; this
//! module keeps it. For every `(vertex, token)` pair it records the
//! *first acquisition* — the arc, source vertex, and timestep of the
//! delivery that first gave the vertex the token. Because each pair has
//! at most one parent and every parent acquired the token strictly
//! earlier, the acquisitions form a **forest rooted at the seed vertices
//! of `h`** (§3.1's have function). On top of the forest sit the
//! analyses the FOCD objective begs for:
//!
//! - per-token **dissemination trees** with depth/latency statistics,
//! - the **critical path** of the makespan: the chain of dependent moves
//!   ending at the last-completing want, with a per-hop
//!   wait-vs-transfer breakdown (`Σ wait + hops = completion step`),
//! - per-arc **bottleneck attribution**: how many first deliveries and
//!   critical-path hops each arc carried,
//! - export to Chrome/Perfetto `trace_event` JSON (one track per
//!   vertex, one slice per transfer, flow arrows along token lineage)
//!   and to deterministic native JSON/CSV.
//!
//! # Zero-cost hook
//!
//! Instrumented code records through the [`ProvenanceHook`] trait,
//! mirroring the metrics layer's [`Recorder`](crate::metrics::Recorder)
//! pattern: [`NoopProvenance`] is a constant-`false`, empty-body
//! implementation that monomorphizes away (the `engine_step_loop`
//! microbench guards this), while [`ProvenanceTrace`] is the real store.
//!
//! # Determinism
//!
//! A trace is a pure function of the delivery sequence: no clocks, no
//! iteration-order dependence, fixed serialization order (slots ascend
//! by `(vertex, token)`; Chrome events ascend by `(step, vertex,
//! token)`). Equal-seed runs therefore serialize to **byte-identical**
//! artifacts in every export format.
//!
//! # Examples
//!
//! ```
//! use ocd_core::provenance::ProvenanceTrace;
//! use ocd_core::{Instance, Schedule, Token, TokenSet};
//! use ocd_graph::{DiGraph, EdgeId};
//!
//! // 0 → 1 → 2 relay of one token.
//! let mut g = DiGraph::with_nodes(3);
//! g.add_edge(g.node(0), g.node(1), 1).unwrap();
//! g.add_edge(g.node(1), g.node(2), 1).unwrap();
//! let instance = Instance::builder(g, 1)
//!     .have(0, [Token::new(0)])
//!     .want(2, [Token::new(0)])
//!     .build()
//!     .unwrap();
//! let mut schedule = Schedule::new();
//! schedule.push_step([(EdgeId::new(0), TokenSet::from_tokens(1, [Token::new(0)]))]);
//! schedule.push_step([(EdgeId::new(1), TokenSet::from_tokens(1, [Token::new(0)]))]);
//!
//! let trace = ProvenanceTrace::from_schedule(&instance, &schedule);
//! let analysis = trace.analyze(&instance);
//! let path = analysis.critical_path.as_ref().unwrap();
//! assert_eq!(path.hops.len(), 2);
//! assert_eq!(path.completion, 2); // 2 transfers + 0 wait
//! ```

use crate::{Instance, Schedule, Token, TokenSet};
use ocd_graph::{EdgeId, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// The first acquisition of a `(vertex, token)` pair: the delivery that
/// first gave the vertex the token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Acquisition {
    /// The arc the token arrived over.
    pub edge: EdgeId,
    /// The sending vertex (the arc's source).
    pub src: NodeId,
    /// The timestep (engine) or departure tick (ocd-net) of the
    /// delivering send. Under the §3.1 store-and-forward rule the token
    /// becomes usable at the receiver from `step + 1`.
    pub step: u64,
}

/// The recording interface provenance-instrumented code is generic
/// over, mirroring the metrics layer's `Recorder` pattern.
///
/// [`NoopProvenance`] implements both methods as constant/empty inline
/// bodies, so monomorphizing over it erases the instrumentation
/// entirely; [`ProvenanceTrace`] is the real store.
pub trait ProvenanceHook {
    /// Whether recordings are kept. Constant `false` for
    /// [`NoopProvenance`], and constant-foldable after monomorphization.
    fn enabled(&self) -> bool;

    /// Records that `delta` (tokens the receiver did **not** already
    /// hold) was delivered to `dst` over `edge` from `src` during
    /// timestep `step`. First write per `(dst, token)` wins.
    fn record_delivery(
        &mut self,
        step: u64,
        edge: EdgeId,
        src: NodeId,
        dst: NodeId,
        delta: &TokenSet,
    );
}

/// The do-nothing hook: disabled provenance at zero cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopProvenance;

impl ProvenanceHook for NoopProvenance {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
    #[inline(always)]
    fn record_delivery(
        &mut self,
        _step: u64,
        _edge: EdgeId,
        _src: NodeId,
        _dst: NodeId,
        _delta: &TokenSet,
    ) {
    }
}

/// The live provenance store: one optional [`Acquisition`] per
/// `(vertex, token)` slot, densely indexed by `vertex * tokens + token`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvenanceTrace {
    vertices: usize,
    tokens: usize,
    parents: Vec<Option<Acquisition>>,
}

impl ProvenanceHook for ProvenanceTrace {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn record_delivery(
        &mut self,
        step: u64,
        edge: EdgeId,
        src: NodeId,
        dst: NodeId,
        delta: &TokenSet,
    ) {
        let base = dst.index() * self.tokens;
        for token in delta.iter() {
            let slot = &mut self.parents[base + token.index()];
            if slot.is_none() {
                *slot = Some(Acquisition { edge, src, step });
            }
        }
    }
}

impl ProvenanceTrace {
    /// Creates an empty trace for `vertices × tokens` slots.
    #[must_use]
    pub fn new(vertices: usize, tokens: usize) -> Self {
        ProvenanceTrace {
            vertices,
            tokens,
            parents: vec![None; vertices * tokens],
        }
    }

    /// Number of vertices the trace covers.
    #[must_use]
    pub fn vertices(&self) -> usize {
        self.vertices
    }

    /// Number of tokens the trace covers.
    #[must_use]
    pub fn tokens(&self) -> usize {
        self.tokens
    }

    /// The recorded first acquisition of `(vertex, token)`, if any.
    /// `None` means the vertex either seeded the token (`t ∈ h(v)`) or
    /// never obtained it.
    #[must_use]
    pub fn parent(&self, vertex: NodeId, token: Token) -> Option<Acquisition> {
        self.parents[vertex.index() * self.tokens + token.index()]
    }

    /// Number of recorded acquisitions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parents.iter().filter(|p| p.is_some()).count()
    }

    /// Whether no acquisition has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parents.iter().all(Option::is_none)
    }

    /// The set of arcs that contributed to `vertex`'s acquisitions:
    /// every distinct edge appearing among its per-token parents,
    /// ascending and deduplicated.
    ///
    /// For uncoded runs this is "which in-arcs this vertex actually
    /// used". For coded runs — where the trace is slot-indexed and
    /// token `r` stands for the `r`-th innovative packet — it is the
    /// *coded lineage* of the decoded generation: the arcs whose
    /// packets entered the vertex's decoding basis. A decoded token has
    /// no single parent arc under network coding; this set is its
    /// honest provenance.
    #[must_use]
    pub fn contributing_arcs(&self, vertex: NodeId) -> Vec<EdgeId> {
        let base = vertex.index() * self.tokens;
        let mut arcs: Vec<EdgeId> = self.parents[base..base + self.tokens]
            .iter()
            .flatten()
            .map(|a| a.edge)
            .collect();
        arcs.sort_unstable();
        arcs.dedup();
        arcs
    }

    /// Derives the provenance forest by replaying `schedule` against
    /// `instance` — the post-hoc path for any certified
    /// [`RunRecord`](crate::RunRecord), no re-run needed.
    ///
    /// The replay mirrors the engine's apply semantics exactly
    /// (deliveries applied in ascending arc order within a step,
    /// possession updated immediately), so a trace recorded live by the
    /// engine equals the trace derived here from the same schedule.
    #[must_use]
    pub fn from_schedule(instance: &Instance, schedule: &Schedule) -> Self {
        let g = instance.graph();
        let mut trace = ProvenanceTrace::new(g.node_count(), instance.num_tokens());
        let mut possession: Vec<TokenSet> = instance.have_all().to_vec();
        let mut delta = TokenSet::new(instance.num_tokens());
        for (step, timestep) in schedule.steps().iter().enumerate() {
            for (edge, tokens) in timestep.sends() {
                let arc = g.edge(edge);
                delta.copy_from(tokens);
                delta.subtract(&possession[arc.dst.index()]);
                if delta.is_empty() {
                    continue;
                }
                possession[arc.dst.index()].union_with(&delta);
                trace.record_delivery(step as u64, edge, arc.src, arc.dst, &delta);
            }
        }
        trace
    }

    /// Freezes the trace into its serializable digest form.
    #[must_use]
    pub fn to_record(&self) -> ProvenanceRecord {
        let mut entries = Vec::with_capacity(self.len());
        for v in 0..self.vertices {
            for t in 0..self.tokens {
                if let Some(acq) = self.parents[v * self.tokens + t] {
                    // Lossless by construction: the digest fields are u64
                    // and every id domain in the system is at most that
                    // wide, so no index is ever silently truncated.
                    entries.push(ProvEntry {
                        vertex: v as u64,
                        token: t as u64,
                        src: acq.src.index() as u64,
                        edge: acq.edge.index() as u64,
                        step: acq.step,
                    });
                }
            }
        }
        ProvenanceRecord {
            vertices: self.vertices,
            tokens: self.tokens,
            entries,
        }
    }

    /// Rebuilds a trace from its digest form. Entries out of range —
    /// including ids that exceed the in-memory id domains, which a forged
    /// or corrupted digest can carry now that the schema is u64-wide —
    /// are ignored; for duplicate `(vertex, token)` entries the first
    /// wins.
    #[must_use]
    pub fn from_record(record: &ProvenanceRecord) -> Self {
        let mut trace = ProvenanceTrace::new(record.vertices, record.tokens);
        for e in &record.entries {
            let (Ok(v), Ok(t)) = (usize::try_from(e.vertex), usize::try_from(e.token)) else {
                continue;
            };
            if v >= record.vertices || t >= record.tokens {
                continue;
            }
            // NodeId/EdgeId are u32-indexed; wider values cannot name any
            // in-memory object and would otherwise panic in the ctors.
            let (Ok(src), Ok(edge)) = (u32::try_from(e.src), u32::try_from(e.edge)) else {
                continue;
            };
            let slot = &mut trace.parents[v * record.tokens + t];
            if slot.is_none() {
                *slot = Some(Acquisition {
                    edge: EdgeId::new(edge as usize),
                    src: NodeId::new(src as usize),
                    step: e.step,
                });
            }
        }
        trace
    }

    /// Runs the full analysis: critical path, per-arc bottleneck
    /// attribution, and per-token dissemination-tree statistics.
    #[must_use]
    pub fn analyze(&self, instance: &Instance) -> ProvenanceAnalysis {
        let g = instance.graph();
        let mut arcs = vec![ArcStats::default(); g.edge_count()];

        // Depth/latency per dissemination tree: process acquisitions in
        // ascending step order; every parent is either a seed (depth 0)
        // or an earlier-step acquisition, so depths resolve in one pass.
        let mut order: Vec<usize> = (0..self.parents.len())
            .filter(|&slot| self.parents[slot].is_some())
            .collect();
        order.sort_by_key(|&slot| {
            let acq = self.parents[slot].unwrap();
            (acq.step, slot)
        });
        let mut depth = vec![0u64; self.parents.len()];
        let mut trees: Vec<TokenTreeStats> = (0..self.tokens)
            .map(|t| TokenTreeStats {
                token: Token::new(t),
                deliveries: 0,
                max_depth: 0,
                depth_sum: 0,
                last_step: 0,
            })
            .collect();
        for &slot in &order {
            let acq = self.parents[slot].unwrap();
            let t = slot % self.tokens;
            if acq.edge.index() < arcs.len() {
                arcs[acq.edge.index()].first_deliveries += 1;
            }
            let parent_slot = acq.src.index() * self.tokens + t;
            let d = if parent_slot < self.parents.len() && self.parents[parent_slot].is_some() {
                depth[parent_slot] + 1
            } else {
                1 // parent is a seed vertex of h
            };
            depth[slot] = d;
            let tree = &mut trees[t];
            tree.deliveries += 1;
            tree.max_depth = tree.max_depth.max(d);
            tree.depth_sum += d;
            tree.last_step = tree.last_step.max(acq.step);
        }
        trees.retain(|t| t.deliveries > 0);

        let critical_path = self.critical_path(instance);
        if let Some(path) = &critical_path {
            for hop in &path.hops {
                if hop.edge.index() < arcs.len() {
                    arcs[hop.edge.index()].crit_hops += 1;
                }
            }
        }
        ProvenanceAnalysis {
            critical_path,
            arcs,
            trees,
        }
    }

    /// The makespan's critical path: the chain of dependent first
    /// deliveries ending at the **last-completing want** (ties broken
    /// toward the smallest `(vertex, token)`), walked back through
    /// same-token parents to a seed vertex. `None` when no wanted token
    /// was acquired over an arc (trivially satisfied or empty runs).
    #[must_use]
    pub fn critical_path(&self, instance: &Instance) -> Option<CriticalPath> {
        let g = instance.graph();
        let mut sink: Option<(NodeId, Token, u64)> = None;
        for v in 0..self.vertices.min(g.node_count()) {
            let vertex = NodeId::new(v);
            for token in instance.want(vertex).iter() {
                if token.index() >= self.tokens {
                    continue;
                }
                if let Some(acq) = self.parent(vertex, token) {
                    if sink.is_none_or(|(_, _, best)| acq.step > best) {
                        sink = Some((vertex, token, acq.step));
                    }
                }
            }
        }
        let (sink_vertex, token, last_step) = sink?;
        let mut hops = Vec::new();
        let mut cursor = sink_vertex;
        let mut prev_step = u64::MAX;
        while let Some(acq) = self.parent(cursor, token) {
            // Strict monotonicity (parent departs before the child can):
            // a violation means a tampered digest, so stop the walk.
            if acq.step >= prev_step {
                break;
            }
            prev_step = acq.step;
            hops.push(CriticalHop {
                edge: acq.edge,
                src: acq.src,
                dst: cursor,
                token,
                step: acq.step,
                wait: 0,
            });
            cursor = acq.src;
        }
        hops.reverse();
        // The seed holds the token from step 0; each later hop can
        // depart one step after its predecessor's delivery (§3.1
        // store-and-forward), so any extra steps are waiting.
        let mut usable_at = 0u64;
        for hop in &mut hops {
            hop.wait = hop.step - usable_at;
            usable_at = hop.step + 1;
        }
        Some(CriticalPath {
            sink: sink_vertex,
            token,
            completion: last_step + 1,
            hops,
        })
    }

    /// Serializes the digest form as deterministic pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_record())
            .expect("provenance record serialization cannot fail")
    }

    /// Serializes the acquisitions as deterministic CSV, one row per
    /// `(vertex, token)` first acquisition in ascending slot order.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("vertex,token,src,edge,step\n");
        for e in self.to_record().entries {
            let _ = writeln!(
                out,
                "{},{},{},{},{}",
                e.vertex, e.token, e.src, e.edge, e.step
            );
        }
        out
    }

    /// Exports the trace as Chrome/Perfetto `trace_event` JSON: one
    /// track (thread) per vertex, one 1-ms slice per first delivery
    /// (1 timestep = 1000 µs), and a flow arrow from each delivery's
    /// parent slice along the token lineage. Seed slices at `ts = 0`
    /// anchor lineages that start at a have-set vertex.
    ///
    /// Event order is fixed (metadata, seeds by `(vertex, token)`,
    /// deliveries by `(step, vertex, token)`), so equal traces export
    /// byte-identically.
    #[must_use]
    pub fn to_chrome_json(&self, instance: &Instance) -> String {
        let mut events: Vec<String> = Vec::new();
        events.push(
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"ocd token provenance\"}}"
                .to_string(),
        );
        for v in 0..self.vertices {
            events.push(format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{v},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"vertex {v}\"}}}}"
            ));
        }

        // Seed slices: only for (vertex, token) seeds that actually
        // parent at least one acquisition, so idle seeds add no noise.
        let mut seed_used = vec![false; self.parents.len()];
        for slot in 0..self.parents.len() {
            if let Some(acq) = self.parents[slot] {
                let t = slot % self.tokens;
                let parent_slot = acq.src.index() * self.tokens + t;
                if parent_slot < self.parents.len() && self.parents[parent_slot].is_none() {
                    seed_used[parent_slot] = true;
                }
            }
        }
        let have = instance.have_all();
        for (slot, used) in seed_used.iter().enumerate() {
            let (v, t) = (slot / self.tokens, slot % self.tokens);
            if *used && v < have.len() && have[v].contains(Token::new(t)) {
                events.push(format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{v},\"ts\":0,\"dur\":500,\
                     \"name\":\"seed token {t}\",\"cat\":\"seed\",\
                     \"args\":{{\"token\":{t}}}}}"
                ));
            }
        }

        let mut order: Vec<usize> = (0..self.parents.len())
            .filter(|&slot| self.parents[slot].is_some())
            .collect();
        order.sort_by_key(|&slot| (self.parents[slot].unwrap().step, slot));
        for slot in order {
            let acq = self.parents[slot].unwrap();
            let (v, t) = (slot / self.tokens, slot % self.tokens);
            let ts = acq.step * 1000;
            events.push(format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{v},\"ts\":{ts},\"dur\":1000,\
                 \"name\":\"token {t} via arc {e}\",\"cat\":\"transfer\",\
                 \"args\":{{\"token\":{t},\"edge\":{e},\"src\":{s}}}}}",
                e = acq.edge.index(),
                s = acq.src.index(),
            ));
            // Flow arrow from the parent slice (or the seed slice) to
            // this delivery; the flow id is the child's slot index.
            let parent_slot = acq.src.index() * self.tokens + t;
            let start_ts = match self.parents.get(parent_slot).copied().flatten() {
                Some(parent) => parent.step * 1000 + 500,
                None => 250,
            };
            events.push(format!(
                "{{\"ph\":\"s\",\"pid\":1,\"tid\":{src},\"ts\":{start_ts},\
                 \"id\":{slot},\"name\":\"token {t}\",\"cat\":\"lineage\"}}",
                src = acq.src.index(),
            ));
            events.push(format!(
                "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":{v},\"ts\":{fts},\
                 \"id\":{slot},\"name\":\"token {t}\",\"cat\":\"lineage\"}}",
                fts = ts + 500,
            ));
        }

        let mut out = String::from("{\"traceEvents\":[\n");
        out.push_str(&events.join(",\n"));
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

/// One entry of a [`ProvenanceRecord`]: a `(vertex, token)` first
/// acquisition in serializable form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvEntry {
    /// The acquiring vertex. u64-wide so indices above 2³² export
    /// losslessly — the previous u32 schema truncated them silently,
    /// producing a wrong-but-certifiable digest.
    pub vertex: u64,
    /// The acquired token.
    pub token: u64,
    /// The sending vertex.
    pub src: u64,
    /// The arc the token arrived over.
    pub edge: u64,
    /// The timestep/tick of the delivering send.
    pub step: u64,
}

/// The serializable digest of a [`ProvenanceTrace`]: entries sorted by
/// `(vertex, token)`. Embedded in schema-v3
/// [`RunRecord`](crate::RunRecord)s.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvenanceRecord {
    /// Number of vertices the trace covers.
    pub vertices: usize,
    /// Number of tokens the trace covers.
    pub tokens: usize,
    /// First acquisitions, ascending by `(vertex, token)`.
    pub entries: Vec<ProvEntry>,
}

/// One hop of the makespan critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CriticalHop {
    /// The arc the hop crossed.
    pub edge: EdgeId,
    /// Sending vertex.
    pub src: NodeId,
    /// Receiving vertex.
    pub dst: NodeId,
    /// The token carried.
    pub token: Token,
    /// The timestep the hop departed.
    pub step: u64,
    /// Timesteps the token sat usable at `src` before this hop departed
    /// (0 = the hop left as early as §3.1 store-and-forward allows).
    pub wait: u64,
}

/// The makespan critical path: the dependency chain of first deliveries
/// ending at the last-completing want.
///
/// The wait-vs-transfer decomposition is exact:
/// `total_wait() + hops.len() == completion`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// The last-completing wanting vertex.
    pub sink: NodeId,
    /// The token whose delivery completed last.
    pub token: Token,
    /// The step from which the sink holds the token
    /// (= last hop's step + 1).
    pub completion: u64,
    /// The hops in chronological order, seed first.
    pub hops: Vec<CriticalHop>,
}

impl CriticalPath {
    /// Total timesteps spent waiting (not transferring) along the path.
    #[must_use]
    pub fn total_wait(&self) -> u64 {
        self.hops.iter().map(|h| h.wait).sum()
    }
}

/// Per-arc bottleneck attribution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArcStats {
    /// First deliveries (acquisitions) the arc carried.
    pub first_deliveries: u64,
    /// Critical-path hops the arc carried.
    pub crit_hops: u64,
}

/// Depth/latency statistics of one token's dissemination tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenTreeStats {
    /// The token.
    pub token: Token,
    /// First deliveries of this token (tree edges).
    pub deliveries: u64,
    /// Longest root-to-leaf hop count.
    pub max_depth: u64,
    /// Sum of per-delivery depths (for [`TokenTreeStats::mean_depth`]).
    pub depth_sum: u64,
    /// Latest delivery step of the token.
    pub last_step: u64,
}

impl TokenTreeStats {
    /// Mean hop depth over the token's first deliveries.
    #[must_use]
    pub fn mean_depth(&self) -> f64 {
        if self.deliveries == 0 {
            0.0
        } else {
            self.depth_sum as f64 / self.deliveries as f64
        }
    }
}

/// The full analysis of a [`ProvenanceTrace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvenanceAnalysis {
    /// The makespan critical path, when one exists.
    pub critical_path: Option<CriticalPath>,
    /// Per-arc attribution, indexed by arc id.
    pub arcs: Vec<ArcStats>,
    /// Per-token dissemination-tree statistics, tokens with at least
    /// one delivery, ascending by token id.
    pub trees: Vec<TokenTreeStats>,
}

impl ProvenanceAnalysis {
    /// Critical-path length in hops (0 when no path exists) — the
    /// `crit_len` table column.
    #[must_use]
    pub fn crit_len(&self) -> usize {
        self.critical_path.as_ref().map_or(0, |p| p.hops.len())
    }

    /// The arc carrying the most critical-path hops (ties toward the
    /// smallest arc id; `None` when no path exists) — the `crit_arc`
    /// table column.
    #[must_use]
    pub fn crit_arc(&self) -> Option<EdgeId> {
        let best = self
            .arcs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.crit_hops > 0)
            .max_by(|(i, a), (j, b)| a.crit_hops.cmp(&b.crit_hops).then(j.cmp(i)))?;
        Some(EdgeId::new(best.0))
    }

    /// Renders the analysis as the human-readable report the CLI
    /// `trace analyze` subcommand prints: the critical path with its
    /// per-hop wait-vs-transfer breakdown, the per-arc bottleneck
    /// table, and the per-token tree statistics.
    #[must_use]
    pub fn render(&self, instance: &Instance) -> String {
        let g = instance.graph();
        let mut out = String::new();
        match &self.critical_path {
            None => {
                out.push_str("critical path: none (no wanted token was acquired over an arc)\n");
            }
            Some(path) => {
                let _ = writeln!(
                    out,
                    "critical path: vertex {} acquires token {} at step {} \
                     ({} transfer hops + {} waited steps = {})",
                    path.sink.index(),
                    path.token.index(),
                    path.completion,
                    path.hops.len(),
                    path.total_wait(),
                    path.completion,
                );
                for (i, hop) in path.hops.iter().enumerate() {
                    let _ = writeln!(
                        out,
                        "  hop {:>2}: step {:>4}  arc {:>4} ({} -> {})  token {:>3}  wait {}",
                        i + 1,
                        hop.step,
                        hop.edge.index(),
                        hop.src.index(),
                        hop.dst.index(),
                        hop.token.index(),
                        hop.wait,
                    );
                }
            }
        }
        out.push_str("\nper-arc bottleneck attribution (arcs with deliveries):\n");
        out.push_str("  arc   src->dst   first_deliveries  crit_hops\n");
        for (i, stats) in self.arcs.iter().enumerate() {
            if stats.first_deliveries == 0 && stats.crit_hops == 0 {
                continue;
            }
            let arc = g.edge(EdgeId::new(i));
            let _ = writeln!(
                out,
                "  {:>3}   {:>3}->{:<3}   {:>16}  {:>9}",
                i,
                arc.src.index(),
                arc.dst.index(),
                stats.first_deliveries,
                stats.crit_hops,
            );
        }
        out.push_str("\ntoken dissemination trees:\n");
        out.push_str("  token  deliveries  max_depth  mean_depth  last_step\n");
        for tree in &self.trees {
            let _ = writeln!(
                out,
                "  {:>5}  {:>10}  {:>9}  {:>10.2}  {:>9}",
                tree.token.index(),
                tree.deliveries,
                tree.max_depth,
                tree.mean_depth(),
                tree.last_step,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocd_graph::generate::classic;

    /// 0 → 1 → 2 → 3 path, token 0 seeded at 0, wanted at 3; token 1
    /// seeded at 1, wanted at 2.
    fn relay_instance() -> Instance {
        let g = classic::path(4, 1, false);
        Instance::builder(g, 2)
            .have(0, [Token::new(0)])
            .have(1, [Token::new(1)])
            .want(3, [Token::new(0)])
            .want(2, [Token::new(1)])
            .build()
            .unwrap()
    }

    fn relay_schedule() -> Schedule {
        let mut s = Schedule::new();
        // step 0: t0 crosses 0→1, t1 crosses 1→2.
        s.push_step([
            (EdgeId::new(0), TokenSet::from_tokens(2, [Token::new(0)])),
            (EdgeId::new(1), TokenSet::from_tokens(2, [Token::new(1)])),
        ]);
        // step 1: idle for t0 (wait), then step 2-3 relay it onward.
        s.push_step([]);
        s.push_step([(EdgeId::new(1), TokenSet::from_tokens(2, [Token::new(0)]))]);
        s.push_step([(EdgeId::new(2), TokenSet::from_tokens(2, [Token::new(0)]))]);
        s
    }

    #[test]
    fn from_schedule_builds_the_forest() {
        let instance = relay_instance();
        let trace = ProvenanceTrace::from_schedule(&instance, &relay_schedule());
        assert_eq!(trace.len(), 4);
        let acq = trace.parent(NodeId::new(3), Token::new(0)).unwrap();
        assert_eq!(acq.step, 3);
        assert_eq!(acq.edge, EdgeId::new(2));
        assert_eq!(acq.src, NodeId::new(2));
        assert!(
            trace.parent(NodeId::new(0), Token::new(0)).is_none(),
            "seed"
        );
        assert!(trace.parent(NodeId::new(3), Token::new(1)).is_none());
    }

    #[test]
    fn critical_path_decomposes_wait_and_transfer() {
        let instance = relay_instance();
        let trace = ProvenanceTrace::from_schedule(&instance, &relay_schedule());
        let path = trace.critical_path(&instance).unwrap();
        assert_eq!(path.sink, NodeId::new(3));
        assert_eq!(path.token, Token::new(0));
        assert_eq!(path.completion, 4);
        assert_eq!(path.hops.len(), 3);
        // Hop 2 departs at step 2 though the token was usable at 1.
        assert_eq!(path.hops[1].wait, 1);
        assert_eq!(path.total_wait() + path.hops.len() as u64, path.completion);
    }

    #[test]
    fn analysis_attributes_arcs_and_trees() {
        let instance = relay_instance();
        let trace = ProvenanceTrace::from_schedule(&instance, &relay_schedule());
        let analysis = trace.analyze(&instance);
        assert_eq!(analysis.crit_len(), 3);
        // Every arc carries exactly one critical hop; ties break low.
        assert_eq!(analysis.crit_arc(), Some(EdgeId::new(0)));
        assert_eq!(analysis.arcs[1].first_deliveries, 2);
        assert_eq!(analysis.arcs[1].crit_hops, 1);
        let t0 = &analysis.trees[0];
        assert_eq!(t0.deliveries, 3);
        assert_eq!(t0.max_depth, 3);
        assert_eq!(t0.last_step, 3);
        assert!((t0.mean_depth() - 2.0).abs() < 1e-9);
        let rendered = analysis.render(&instance);
        assert!(rendered.contains("critical path: vertex 3"));
        assert!(rendered.contains("bottleneck"));
    }

    #[test]
    fn record_round_trips_and_exports_are_deterministic() {
        let instance = relay_instance();
        let trace = ProvenanceTrace::from_schedule(&instance, &relay_schedule());
        let record = trace.to_record();
        assert_eq!(ProvenanceTrace::from_record(&record), trace);
        let json: ProvenanceRecord =
            serde_json::from_str(&serde_json::to_string(&record).unwrap()).unwrap();
        assert_eq!(json, record);
        assert_eq!(trace.to_json(), trace.to_json());
        assert_eq!(trace.to_csv(), trace.to_csv());
        assert!(trace.to_csv().starts_with("vertex,token,src,edge,step\n"));
        assert_eq!(
            trace.to_chrome_json(&instance),
            trace.to_chrome_json(&instance)
        );
    }

    #[test]
    fn chrome_export_has_tracks_slices_and_flows() {
        let instance = relay_instance();
        let trace = ProvenanceTrace::from_schedule(&instance, &relay_schedule());
        let chrome = trace.to_chrome_json(&instance);
        let count = |ph: &str| chrome.matches(&format!("{{\"ph\":\"{ph}\"")).count();
        assert!(chrome.starts_with("{\"traceEvents\":[\n"));
        assert!(chrome.ends_with("],\"displayTimeUnit\":\"ms\"}\n"));
        assert_eq!(count("M"), 1 + 4, "process + one thread per vertex");
        assert_eq!(count("s"), 4, "one flow start per acquisition");
        assert_eq!(count("f"), 4, "one flow finish per acquisition");
        // 4 transfer slices + 2 seed slices (both seeds parent a hop).
        assert_eq!(count("X"), 6);
    }

    #[test]
    fn cyclic_tampered_record_terminates_the_walk() {
        let g = classic::path(2, 1, true); // 0→1 and 1→0
        let instance = Instance::builder(g, 1)
            .have(0, [Token::new(0)])
            .want(1, [Token::new(0)])
            .build()
            .unwrap();
        // A forged record claiming 0 got the token from 1 and 1 from 0,
        // with non-decreasing steps: the walk must not loop.
        let record = ProvenanceRecord {
            vertices: 2,
            tokens: 1,
            entries: vec![
                ProvEntry {
                    vertex: 0,
                    token: 0,
                    src: 1,
                    edge: 1,
                    step: 1,
                },
                ProvEntry {
                    vertex: 1,
                    token: 0,
                    src: 0,
                    edge: 0,
                    step: 1,
                },
            ],
        };
        let trace = ProvenanceTrace::from_record(&record);
        let path = trace.critical_path(&instance).unwrap();
        assert_eq!(path.hops.len(), 1, "cycle cut at the monotonicity guard");
    }

    #[test]
    fn digest_ids_above_u32_are_not_truncated() {
        // Regression: the export schema used `as u32` casts, so an index
        // of 2³² + 5 silently became 5 — a wrong but internally
        // consistent digest. The u64 schema must round-trip such values
        // exactly through serde.
        let big = (1u64 << 32) + 5;
        let entry = ProvEntry {
            vertex: big,
            token: big + 1,
            src: big + 2,
            edge: big + 3,
            step: u64::MAX,
        };
        let json = serde_json::to_string(&entry).unwrap();
        let back: ProvEntry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, entry);
        assert!(
            json.contains(&big.to_string()),
            "value must appear unmodified in the wire form: {json}"
        );
    }

    #[test]
    fn from_record_ignores_unrepresentable_ids_without_panicking() {
        // Ids wider than the u32 NodeId/EdgeId domain cannot name any
        // in-memory object; a digest carrying them (corrupt or forged)
        // must be skipped, not truncated into a *different* valid id and
        // not panic in the id constructors.
        let record = ProvenanceRecord {
            vertices: 2,
            tokens: 1,
            entries: vec![
                ProvEntry {
                    vertex: (1 << 33) + 1, // out of range: ignored
                    token: 0,
                    src: 0,
                    edge: 0,
                    step: 0,
                },
                ProvEntry {
                    vertex: 1,
                    token: 0,
                    src: 1 << 40, // unrepresentable src: ignored
                    edge: 0,
                    step: 0,
                },
                ProvEntry {
                    vertex: 1,
                    token: 0,
                    src: 0,
                    edge: 1 << 40, // unrepresentable edge: ignored
                    step: 0,
                },
                ProvEntry {
                    vertex: 1,
                    token: 0,
                    src: 0,
                    edge: 0,
                    step: 7,
                },
            ],
        };
        let trace = ProvenanceTrace::from_record(&record);
        assert_eq!(trace.len(), 1, "only the representable entry survives");
        let acq = trace.parent(NodeId::new(1), Token::new(0)).unwrap();
        assert_eq!(acq.step, 7);
        assert_eq!(acq.src, NodeId::new(0));
    }

    #[test]
    fn empty_trace_has_no_critical_path() {
        let instance = relay_instance();
        let trace = ProvenanceTrace::new(4, 2);
        assert!(trace.is_empty());
        assert!(trace.critical_path(&instance).is_none());
        let analysis = trace.analyze(&instance);
        assert_eq!(analysis.crit_len(), 0);
        assert_eq!(analysis.crit_arc(), None);
        assert!(analysis.trees.is_empty());
        assert!(analysis.render(&instance).contains("critical path: none"));
    }
}
