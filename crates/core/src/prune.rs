//! Schedule pruning (§5.1).
//!
//! "Once a satisfying schedule is found, we can go back and prune any
//! unnecessary moves, reducing the bandwidth consumption. Pruning first
//! removes all moves that deliver a token repeatedly to the same vertex,
//! and then works back from the last move to the first, removing moves
//! that deliver tokens which were never used by the destination vertex."
//!
//! Pruning never changes the makespan and never invalidates a schedule:
//! the forward pass only removes deliveries that do not change possession
//! sets, and the backward pass only removes deliveries whose token the
//! destination neither wants nor ever forwards.

use crate::{Instance, Schedule, TokenSet};

/// Outcome counters from [`prune`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PruneStats {
    /// Moves dropped by the forward duplicate-delivery pass.
    pub duplicates_removed: u64,
    /// Moves dropped by the backward liveness pass.
    pub unused_removed: u64,
}

impl PruneStats {
    /// Total moves removed.
    #[must_use]
    pub fn total_removed(&self) -> u64 {
        self.duplicates_removed + self.unused_removed
    }
}

/// Returns a pruned copy of `schedule` together with removal counters.
///
/// The input must be a *valid* schedule for `instance` (not necessarily
/// successful); the output is then also valid, has the same makespan and
/// final possession of all wanted tokens, and bandwidth less than or
/// equal to the input's. If the input was successful the output is too.
///
/// # Panics
///
/// Panics if the schedule references arcs outside the graph or token sets
/// of the wrong universe (validate first if unsure).
#[must_use]
pub fn prune(instance: &Instance, schedule: &Schedule) -> (Schedule, PruneStats) {
    let mut pruned = schedule.clone();
    let stats = PruneStats {
        duplicates_removed: forward_pass(instance, &mut pruned),
        unused_removed: backward_pass(instance, &mut pruned),
    };
    for step in pruned.steps_mut() {
        step.drop_empty();
    }
    (pruned, stats)
}

/// Removes deliveries of tokens the destination already possesses at the
/// start of the step, keeping only the first of simultaneous duplicate
/// deliveries (arcs scan in ascending id order). Returns moves removed.
fn forward_pass(instance: &Instance, schedule: &mut Schedule) -> u64 {
    let g = instance.graph();
    let mut possession: Vec<TokenSet> = instance.have_all().to_vec();
    let mut removed = 0u64;
    // Tokens delivered to each vertex during the current step (for
    // first-wins deduplication of simultaneous duplicates). One buffer
    // for the whole schedule: only the vertices touched in a step are
    // folded into possession and cleared afterwards.
    let mut arriving: Vec<TokenSet> = vec![TokenSet::new(instance.num_tokens()); g.node_count()];
    let mut touched: Vec<usize> = Vec::with_capacity(g.node_count());
    for step in schedule.steps_mut() {
        for (edge, tokens) in step.sends_mut() {
            let dst = g.edge(edge).dst.index();
            let before = tokens.len() as u64;
            tokens.subtract(&possession[dst]);
            tokens.subtract(&arriving[dst]);
            removed += before - tokens.len() as u64;
            arriving[dst].union_with(tokens);
            touched.push(dst);
        }
        for &v in &touched {
            possession[v].union_with(&arriving[v]);
            arriving[v].clear();
        }
        touched.clear();
    }
    removed
}

/// Works back from the last step: a delivery `(u → v, t)` is kept only if
/// `v` wants `t` or forwards `t` at some later step. Returns moves
/// removed. Assumes the forward pass already ran (each `(v, t)` delivery
/// occurs at most once), so "used" can be tracked with one set per
/// vertex.
fn backward_pass(instance: &Instance, schedule: &mut Schedule) -> u64 {
    let g = instance.graph();
    // need[v] = tokens v must possess (wants, or sends at a later step).
    let mut need: Vec<TokenSet> = instance.want_all().to_vec();
    let mut removed = 0u64;
    for step in schedule.steps_mut().iter_mut().rev() {
        // First decide keeps against `need` as of later steps; then fold
        // this step's kept sends into `need` (a send at step i requires
        // possession at the start of step i, i.e. delivery strictly
        // earlier). Two passes over the same step keep the fold from
        // seeing this step's own sends — and need no clones.
        for (edge, tokens) in step.sends_mut() {
            let dst = g.edge(edge).dst.index();
            let before = tokens.len() as u64;
            tokens.intersect_with(&need[dst]);
            removed += before - tokens.len() as u64;
        }
        for (edge, tokens) in step.sends() {
            let src = g.edge(edge).src.index();
            need[src].union_with(tokens);
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::replay;
    use crate::{Instance, Token};
    use ocd_graph::generate::classic;
    use ocd_graph::{DiGraph, EdgeId};

    fn tok(i: usize) -> Token {
        Token::new(i)
    }

    fn send(universe: usize, edge: usize, tokens: &[usize]) -> (EdgeId, TokenSet) {
        (
            EdgeId::new(edge),
            TokenSet::from_tokens(universe, tokens.iter().map(|&i| Token::new(i))),
        )
    }

    #[test]
    fn removes_redelivery_across_steps() {
        let g = classic::path(2, 5, false);
        let inst = Instance::builder(g, 1)
            .have(0, [tok(0)])
            .want(1, [tok(0)])
            .build()
            .unwrap();
        let mut s = Schedule::new();
        s.push_step([send(1, 0, &[0])]);
        s.push_step([send(1, 0, &[0])]); // redundant redelivery
        let (pruned, stats) = prune(&inst, &s);
        assert_eq!(stats.duplicates_removed, 1);
        assert_eq!(pruned.bandwidth(), 1);
        assert_eq!(pruned.makespan(), 2, "pruning never shortens makespan");
        assert!(replay(&inst, &pruned).unwrap().is_successful());
    }

    #[test]
    fn keeps_one_of_simultaneous_duplicates() {
        // Both 0 -> 2 and 1 -> 2 deliver token 0 in the same step.
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(g.node(0), g.node(2), 1).unwrap(); // edge 0
        g.add_edge(g.node(1), g.node(2), 1).unwrap(); // edge 1
        let inst = Instance::builder(g, 1)
            .have(0, [tok(0)])
            .have(1, [tok(0)])
            .want(2, [tok(0)])
            .build()
            .unwrap();
        let mut s = Schedule::new();
        s.push_step([send(1, 0, &[0]), send(1, 1, &[0])]);
        let (pruned, stats) = prune(&inst, &s);
        assert_eq!(stats.duplicates_removed, 1);
        assert_eq!(pruned.bandwidth(), 1);
        assert!(replay(&inst, &pruned).unwrap().is_successful());
    }

    #[test]
    fn removes_unused_delivery() {
        // Token flooded to vertex 1 although only vertex 2 wants it and
        // vertex 1 is not on the delivery path actually used.
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(g.node(0), g.node(1), 1).unwrap(); // edge 0 (useless)
        g.add_edge(g.node(0), g.node(2), 1).unwrap(); // edge 1 (useful)
        let inst = Instance::builder(g, 1)
            .have(0, [tok(0)])
            .want(2, [tok(0)])
            .build()
            .unwrap();
        let mut s = Schedule::new();
        s.push_step([send(1, 0, &[0]), send(1, 1, &[0])]);
        let (pruned, stats) = prune(&inst, &s);
        assert_eq!(stats.unused_removed, 1);
        assert_eq!(pruned.bandwidth(), 1);
        assert!(replay(&inst, &pruned).unwrap().is_successful());
    }

    #[test]
    fn keeps_relay_deliveries() {
        // 0 -> 1 -> 2: vertex 1 does not want the token but forwards it,
        // so its delivery must be kept.
        let g = classic::path(3, 1, false);
        let inst = Instance::builder(g, 1)
            .have(0, [tok(0)])
            .want(2, [tok(0)])
            .build()
            .unwrap();
        let mut s = Schedule::new();
        s.push_step([send(1, 0, &[0])]);
        s.push_step([send(1, 1, &[0])]);
        let (pruned, stats) = prune(&inst, &s);
        assert_eq!(stats.total_removed(), 0);
        assert_eq!(pruned.bandwidth(), 2);
        assert!(replay(&inst, &pruned).unwrap().is_successful());
    }

    #[test]
    fn drops_relay_chain_whose_tip_is_unused() {
        // 0 -> 1 -> 2 where NOBODY wants the token: the entire chain is
        // dead and the backward pass removes both moves (the forward move
        // 0 -> 1 only existed to feed the dead 1 -> 2 move).
        let g = classic::path(3, 1, false);
        let inst = Instance::builder(g, 1).have(0, [tok(0)]).build().unwrap();
        let mut s = Schedule::new();
        s.push_step([send(1, 0, &[0])]);
        s.push_step([send(1, 1, &[0])]);
        let (pruned, stats) = prune(&inst, &s);
        assert_eq!(stats.unused_removed, 2);
        assert_eq!(pruned.bandwidth(), 0);
    }

    #[test]
    fn pruned_schedule_of_flood_is_steiner_like() {
        // Star: source floods its token to all 4 leaves every step for 3
        // steps; only leaf 3 wants it. Pruning should keep exactly 1 move.
        let g = classic::star(5, 4, false);
        let inst = Instance::builder(g, 1)
            .have(0, [tok(0)])
            .want(3, [tok(0)])
            .build()
            .unwrap();
        let mut s = Schedule::new();
        for _ in 0..3 {
            s.push_step((0..4).map(|e| send(1, e, &[0])));
        }
        assert_eq!(s.bandwidth(), 12);
        let (pruned, stats) = prune(&inst, &s);
        assert_eq!(pruned.bandwidth(), 1);
        assert_eq!(stats.total_removed(), 11);
        assert!(replay(&inst, &pruned).unwrap().is_successful());
    }

    #[test]
    fn prune_preserves_validity_even_when_unsuccessful() {
        let g = classic::path(3, 1, false);
        let inst = Instance::builder(g, 1)
            .have(0, [tok(0)])
            .want(2, [tok(0)])
            .build()
            .unwrap();
        let mut s = Schedule::new();
        s.push_step([send(1, 0, &[0])]); // never reaches 2
        let (pruned, _) = prune(&inst, &s);
        // Delivery to 1 is kept? No: 1 neither wants nor forwards it.
        assert_eq!(pruned.bandwidth(), 0);
        assert!(replay(&inst, &pruned).is_ok());
    }

    #[test]
    fn empty_schedule_prunes_to_empty() {
        let g = classic::path(2, 1, true);
        let inst = Instance::builder(g, 1).have(0, [tok(0)]).build().unwrap();
        let (pruned, stats) = prune(&inst, &Schedule::new());
        assert_eq!(pruned.makespan(), 0);
        assert_eq!(stats.total_removed(), 0);
    }
}
