//! Replay-based schedule validation.
//!
//! A schedule is *valid* for an instance when every timestep respects the
//! §3.1 restrictions (capacity, possession) and references only arcs of
//! the graph; it is *successful* when the final possession covers every
//! want. [`replay`] checks validity while reconstructing the possession
//! functions `p_0, …, p_t`, which the caller can then inspect.
//!
//! Instances carrying [`NodeBudgets`](crate::NodeBudgets) are in the
//! node-capacity regime: replay additionally enforces that each vertex's
//! total transfers out of (into) it per step stay within its uplink
//! (downlink) budget.

use crate::{Instance, Schedule, Token, TokenSet};
use ocd_graph::{EdgeId, NodeId};
use std::error::Error;
use std::fmt;

/// A violation of the schedule restrictions (§3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// A timestep references an arc that is not in the graph.
    UnknownEdge {
        /// The offending timestep.
        step: usize,
        /// The unknown arc id.
        edge: EdgeId,
    },
    /// More tokens were assigned to an arc than its capacity allows.
    CapacityExceeded {
        /// The offending timestep.
        step: usize,
        /// The overloaded arc.
        edge: EdgeId,
        /// Tokens assigned.
        sent: usize,
        /// The arc's capacity.
        capacity: u32,
    },
    /// A vertex sent a token it did not possess at the start of the step.
    TokenNotPossessed {
        /// The offending timestep.
        step: usize,
        /// The arc the token was assigned to.
        edge: EdgeId,
        /// The sending vertex.
        sender: NodeId,
        /// The token the sender lacked.
        token: Token,
    },
    /// A vertex sent more tokens across all its out-arcs in one step
    /// than its uplink budget allows (node-capacity regime only).
    UplinkBudgetExceeded {
        /// The offending timestep.
        step: usize,
        /// The over-budget sender.
        vertex: NodeId,
        /// Tokens sent by the vertex this step (up to the violation).
        sent: u64,
        /// The vertex's uplink budget.
        budget: u32,
    },
    /// A vertex received more tokens across all its in-arcs in one step
    /// than its downlink budget allows (node-capacity regime only).
    DownlinkBudgetExceeded {
        /// The offending timestep.
        step: usize,
        /// The over-budget receiver.
        vertex: NodeId,
        /// Tokens received by the vertex this step (up to the violation).
        received: u64,
        /// The vertex's downlink budget.
        budget: u32,
    },
    /// A token set was built over the wrong universe size.
    UniverseMismatch {
        /// The offending timestep.
        step: usize,
        /// The arc whose token set is malformed.
        edge: EdgeId,
        /// Universe size found.
        found: usize,
        /// Universe size of the instance.
        expected: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::UnknownEdge { step, edge } => {
                write!(f, "step {step}: arc {edge} does not exist in the graph")
            }
            ScheduleError::CapacityExceeded {
                step,
                edge,
                sent,
                capacity,
            } => write!(
                f,
                "step {step}: arc {edge} carries {sent} tokens but has capacity {capacity}"
            ),
            ScheduleError::TokenNotPossessed {
                step,
                edge,
                sender,
                token,
            } => write!(
                f,
                "step {step}: vertex {sender} sent token {token} on arc {edge} without possessing it"
            ),
            ScheduleError::UplinkBudgetExceeded {
                step,
                vertex,
                sent,
                budget,
            } => write!(
                f,
                "step {step}: vertex {vertex} sent {sent} tokens but has uplink budget {budget}"
            ),
            ScheduleError::DownlinkBudgetExceeded {
                step,
                vertex,
                received,
                budget,
            } => write!(
                f,
                "step {step}: vertex {vertex} received {received} tokens but has downlink budget {budget}"
            ),
            ScheduleError::UniverseMismatch {
                step,
                edge,
                found,
                expected,
            } => write!(
                f,
                "step {step}: arc {edge} token set has universe {found}, instance has {expected}"
            ),
        }
    }
}

impl Error for ScheduleError {}

/// The reconstructed possession timeline of a valid schedule: possession
/// sets `p_0, …, p_t` for every vertex.
#[derive(Debug, Clone)]
pub struct Replay {
    /// `possession[i][v]` = tokens vertex `v` holds at the start of
    /// timestep `i`; index `t` (= makespan) is the final state.
    possession: Vec<Vec<TokenSet>>,
    /// Per-vertex sets still missing at the end: `w(v) \ p_t(v)`.
    missing: Vec<TokenSet>,
}

impl Replay {
    /// Tokens vertex `v` holds at the start of timestep `step`
    /// (`step == makespan` gives the final state).
    ///
    /// # Panics
    ///
    /// Panics if `step` or `v` is out of bounds.
    #[must_use]
    pub fn possession(&self, step: usize, v: NodeId) -> &TokenSet {
        &self.possession[step][v.index()]
    }

    /// Final possession of every vertex.
    #[must_use]
    pub fn final_possession(&self) -> &[TokenSet] {
        self.possession.last().expect("replay has at least p_0")
    }

    /// Whether every vertex ended with its want set satisfied
    /// (`w(v) ⊆ p_t(v)` for all `v`, the paper's success criterion).
    #[must_use]
    pub fn is_successful(&self) -> bool {
        self.missing.iter().all(TokenSet::is_empty)
    }

    /// Vertices that did not receive everything they want, with the
    /// missing tokens.
    #[must_use]
    pub fn unsatisfied(&self) -> Vec<(NodeId, &TokenSet)> {
        self.missing
            .iter()
            .enumerate()
            .filter(|(_, m)| !m.is_empty())
            .map(|(v, m)| (NodeId::new(v), m))
            .collect()
    }

    /// Number of timesteps replayed.
    #[must_use]
    pub fn makespan(&self) -> usize {
        self.possession.len() - 1
    }
}

/// Replays `schedule` against `instance`, checking every §3.1 restriction
/// and reconstructing the possession timeline.
///
/// # Errors
///
/// Returns the first [`ScheduleError`] encountered, scanning timesteps in
/// order and arcs in ascending id order within a timestep.
pub fn replay(instance: &Instance, schedule: &Schedule) -> Result<Replay, ScheduleError> {
    let g = instance.graph();
    replay_impl(instance, schedule, |_, e| g.capacity(e))
}

/// Replays a schedule produced under *dynamic* network conditions:
/// capacity checks use `capacities[step][edge]` (the trace recorded by
/// `ocd-heuristics`' dynamic simulation) instead of the graph's static
/// capacities. A capacity of 0 forbids the arc entirely for that step.
///
/// # Errors
///
/// As [`replay`], against the per-step capacities.
///
/// # Panics
///
/// Panics if `capacities` has fewer entries than the schedule has steps
/// or a row is shorter than the edge list.
pub fn replay_with_capacities(
    instance: &Instance,
    schedule: &Schedule,
    capacities: &[Vec<u32>],
) -> Result<Replay, ScheduleError> {
    assert!(
        capacities.len() >= schedule.makespan(),
        "capacity trace ({} steps) shorter than schedule ({} steps)",
        capacities.len(),
        schedule.makespan()
    );
    replay_impl(instance, schedule, |step, e| capacities[step][e.index()])
}

fn replay_impl(
    instance: &Instance,
    schedule: &Schedule,
    capacity_at: impl Fn(usize, EdgeId) -> u32,
) -> Result<Replay, ScheduleError> {
    let g = instance.graph();
    let n = g.node_count();
    let m = instance.num_tokens();
    let mut current: Vec<TokenSet> = instance.have_all().to_vec();
    let mut possession = Vec::with_capacity(schedule.makespan() + 1);
    possession.push(current.clone());

    // Node-capacity regime: per-step uplink/downlink usage accumulators
    // (duplicates count — the budget caps *transfers*, not distinct
    // tokens). Empty when the instance carries no budgets.
    let budgets = instance.node_budgets();
    let mut out_used = vec![0u64; if budgets.is_some() { n } else { 0 }];
    let mut in_used = vec![0u64; if budgets.is_some() { n } else { 0 }];

    for (step, ts) in schedule.steps().iter().enumerate() {
        let mut next = current.clone();
        out_used.fill(0);
        in_used.fill(0);
        for (edge, tokens) in ts.sends() {
            if edge.index() >= g.edge_count() {
                return Err(ScheduleError::UnknownEdge { step, edge });
            }
            if tokens.universe() != m {
                return Err(ScheduleError::UniverseMismatch {
                    step,
                    edge,
                    found: tokens.universe(),
                    expected: m,
                });
            }
            let arc = g.edge(edge);
            let capacity = capacity_at(step, edge);
            if tokens.len() > capacity as usize {
                return Err(ScheduleError::CapacityExceeded {
                    step,
                    edge,
                    sent: tokens.len(),
                    capacity,
                });
            }
            // Possession: s_i(u, v) ⊆ p_i(u).
            if !tokens.is_subset(&current[arc.src.index()]) {
                let token = tokens
                    .difference(&current[arc.src.index()])
                    .first()
                    .expect("non-subset has a witness");
                return Err(ScheduleError::TokenNotPossessed {
                    step,
                    edge,
                    sender: arc.src,
                    token,
                });
            }
            if let Some(b) = budgets {
                let (src, dst) = (arc.src.index(), arc.dst.index());
                out_used[src] += tokens.len() as u64;
                if out_used[src] > u64::from(b.uplink(src)) {
                    return Err(ScheduleError::UplinkBudgetExceeded {
                        step,
                        vertex: arc.src,
                        sent: out_used[src],
                        budget: b.uplink(src),
                    });
                }
                in_used[dst] += tokens.len() as u64;
                if in_used[dst] > u64::from(b.downlink(dst)) {
                    return Err(ScheduleError::DownlinkBudgetExceeded {
                        step,
                        vertex: arc.dst,
                        received: in_used[dst],
                        budget: b.downlink(dst),
                    });
                }
            }
            next[arc.dst.index()].union_with(tokens);
        }
        current = next;
        possession.push(current.clone());
    }

    let missing = (0..n)
        .map(|v| instance.want(NodeId::new(v)).difference(&current[v]))
        .collect();
    Ok(Replay {
        possession,
        missing,
    })
}

/// Convenience: replay and additionally require success.
///
/// # Errors
///
/// Returns a [`ScheduleError`] if the schedule is invalid; returns
/// `Ok(None)` if valid but unsuccessful, `Ok(Some(replay))` if valid and
/// successful.
pub fn replay_successful(
    instance: &Instance,
    schedule: &Schedule,
) -> Result<Option<Replay>, ScheduleError> {
    let r = replay(instance, schedule)?;
    Ok(if r.is_successful() { Some(r) } else { None })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocd_graph::generate::classic;
    use ocd_graph::DiGraph;

    fn tok(i: usize) -> Token {
        Token::new(i)
    }

    /// 0 → 1 → 2 path, capacity 1, token 0 at vertex 0, wanted by vertex 2.
    fn relay_instance() -> Instance {
        let g = classic::path(3, 1, false);
        Instance::builder(g, 1)
            .have(0, [tok(0)])
            .want(2, [tok(0)])
            .build()
            .unwrap()
    }

    fn send(universe: usize, edge: usize, tokens: &[usize]) -> (EdgeId, TokenSet) {
        (
            EdgeId::new(edge),
            TokenSet::from_tokens(universe, tokens.iter().map(|&i| Token::new(i))),
        )
    }

    #[test]
    fn successful_relay() {
        let inst = relay_instance();
        let mut s = Schedule::new();
        s.push_step([send(1, 0, &[0])]); // 0 -> 1
        s.push_step([send(1, 1, &[0])]); // 1 -> 2
        let replay = replay(&inst, &s).unwrap();
        assert!(replay.is_successful());
        assert_eq!(replay.makespan(), 2);
        assert!(replay.possession(0, inst.graph().node(1)).is_empty());
        assert!(replay.possession(1, inst.graph().node(1)).contains(tok(0)));
        assert!(replay.possession(2, inst.graph().node(2)).contains(tok(0)));
        assert!(replay_successful(&inst, &s).unwrap().is_some());
    }

    #[test]
    fn store_and_forward_enforced() {
        // Sending on arc 1 -> 2 in the same step the token arrives at 1
        // violates possession: s_i(u,v) ⊆ p_i(u).
        let inst = relay_instance();
        let mut s = Schedule::new();
        s.push_step([send(1, 0, &[0]), send(1, 1, &[0])]);
        let err = replay(&inst, &s).unwrap_err();
        assert_eq!(
            err,
            ScheduleError::TokenNotPossessed {
                step: 0,
                edge: EdgeId::new(1),
                sender: inst.graph().node(1),
                token: tok(0),
            }
        );
    }

    #[test]
    fn capacity_enforced() {
        let g = classic::path(2, 1, false);
        let inst = Instance::builder(g, 2)
            .have(0, [tok(0), tok(1)])
            .want(1, [tok(0), tok(1)])
            .build()
            .unwrap();
        let mut s = Schedule::new();
        s.push_step([send(2, 0, &[0, 1])]);
        let err = replay(&inst, &s).unwrap_err();
        assert!(matches!(
            err,
            ScheduleError::CapacityExceeded {
                step: 0,
                sent: 2,
                capacity: 1,
                ..
            }
        ));
        assert!(err.to_string().contains("capacity 1"));
    }

    #[test]
    fn unknown_edge_rejected() {
        let inst = relay_instance();
        let mut s = Schedule::new();
        s.push_step([send(1, 99, &[0])]);
        assert_eq!(
            replay(&inst, &s).unwrap_err(),
            ScheduleError::UnknownEdge {
                step: 0,
                edge: EdgeId::new(99)
            }
        );
    }

    #[test]
    fn universe_mismatch_rejected() {
        let inst = relay_instance();
        let mut s = Schedule::new();
        s.push_step([send(5, 0, &[0])]); // universe 5, instance has 1
        assert!(matches!(
            replay(&inst, &s).unwrap_err(),
            ScheduleError::UniverseMismatch {
                found: 5,
                expected: 1,
                ..
            }
        ));
    }

    #[test]
    fn valid_but_unsuccessful() {
        let inst = relay_instance();
        let mut s = Schedule::new();
        s.push_step([send(1, 0, &[0])]); // token only reaches vertex 1
        let replay = replay(&inst, &s).unwrap();
        assert!(!replay.is_successful());
        let unsat = replay.unsatisfied();
        assert_eq!(unsat.len(), 1);
        assert_eq!(unsat[0].0, inst.graph().node(2));
        assert!(unsat[0].1.contains(tok(0)));
        assert!(replay_successful(&inst, &s).unwrap().is_none());
    }

    #[test]
    fn dynamic_replay_zero_capacity_step_rejects_used_arc() {
        // The static capacity would allow the send; the recorded dynamic
        // trace says the link was down (capacity 0) that step, so the
        // replay must reject it with a typed error.
        let inst = relay_instance();
        let mut s = Schedule::new();
        s.push_step([send(1, 0, &[0])]);
        s.push_step([send(1, 1, &[0])]);
        let caps_ok = vec![vec![1, 1], vec![1, 1]];
        assert!(replay_with_capacities(&inst, &s, &caps_ok).is_ok());
        let caps_down = vec![vec![1, 1], vec![1, 0]]; // arc 1 down at step 1
        assert_eq!(
            replay_with_capacities(&inst, &s, &caps_down).unwrap_err(),
            ScheduleError::CapacityExceeded {
                step: 1,
                edge: EdgeId::new(1),
                sent: 1,
                capacity: 0,
            }
        );
    }

    #[test]
    fn dynamic_replay_rejects_nonexistent_arc() {
        // The graph has arcs 0 and 1; the schedule sends on arc 7. The
        // unknown-arc check must fire before any capacity lookup indexes
        // the (shorter) capacity row.
        let inst = relay_instance();
        let mut s = Schedule::new();
        s.push_step([send(1, 7, &[0])]);
        let caps = vec![vec![1, 1]];
        assert_eq!(
            replay_with_capacities(&inst, &s, &caps).unwrap_err(),
            ScheduleError::UnknownEdge {
                step: 0,
                edge: EdgeId::new(7)
            }
        );
    }

    #[test]
    fn empty_schedule_on_trivial_instance() {
        let g = classic::path(2, 1, true);
        let inst = Instance::builder(g, 1).have(0, [tok(0)]).build().unwrap();
        let replay = replay(&inst, &Schedule::new()).unwrap();
        assert!(replay.is_successful());
        assert_eq!(replay.makespan(), 0);
    }

    #[test]
    fn duplication_to_multiple_receivers_in_one_step() {
        // Vertex 0 duplicates its token to 1 and 2 simultaneously — the
        // defining capability that distinguishes OCD from network flow.
        let g = classic::star(3, 1, false);
        let inst = Instance::builder(g, 1)
            .have(0, [tok(0)])
            .want(1, [tok(0)])
            .want(2, [tok(0)])
            .build()
            .unwrap();
        let mut s = Schedule::new();
        s.push_step([send(1, 0, &[0]), send(1, 1, &[0])]);
        let replay = replay(&inst, &s).unwrap();
        assert!(replay.is_successful());
        assert_eq!(s.bandwidth(), 2);
    }

    #[test]
    fn uplink_budget_enforced_across_arcs() {
        // Star center has per-arc capacity for both sends, but an uplink
        // budget of 1 shared across its out-arcs.
        let g = classic::star(3, 1, false);
        let inst = Instance::builder(g, 1)
            .have(0, [tok(0)])
            .want(1, [tok(0)])
            .want(2, [tok(0)])
            .node_budgets(crate::NodeBudgets::uplink_only(3, 1))
            .build()
            .unwrap();
        let mut s = Schedule::new();
        s.push_step([send(1, 0, &[0]), send(1, 1, &[0])]);
        let err = replay(&inst, &s).unwrap_err();
        assert_eq!(
            err,
            ScheduleError::UplinkBudgetExceeded {
                step: 0,
                vertex: inst.graph().node(0),
                sent: 2,
                budget: 1,
            }
        );
        assert!(err.to_string().contains("uplink budget 1"));

        // One send per step respects the budget.
        let mut s = Schedule::new();
        s.push_step([send(1, 0, &[0])]);
        s.push_step([send(1, 1, &[0])]);
        assert!(replay(&inst, &s).unwrap().is_successful());
    }

    #[test]
    fn downlink_budget_enforced_across_arcs() {
        // Two sources feed vertex 2; its downlink budget of 1 forbids
        // receiving from both in the same step.
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(g.node(0), g.node(2), 1).unwrap();
        g.add_edge(g.node(1), g.node(2), 1).unwrap();
        let inst = Instance::builder(g, 2)
            .have(0, [tok(0)])
            .have(1, [tok(1)])
            .want(2, [tok(0), tok(1)])
            .node_budgets(crate::NodeBudgets::uniform(3, 1, 1))
            .build()
            .unwrap();
        let mut s = Schedule::new();
        s.push_step([send(2, 0, &[0]), send(2, 1, &[1])]);
        let err = replay(&inst, &s).unwrap_err();
        assert_eq!(
            err,
            ScheduleError::DownlinkBudgetExceeded {
                step: 0,
                vertex: inst.graph().node(2),
                received: 2,
                budget: 1,
            }
        );
        assert!(err.to_string().contains("downlink budget 1"));
    }

    #[test]
    fn budget_usage_resets_between_steps() {
        // Uplink 1 per step allows one send per step indefinitely; the
        // accumulator must not leak across steps.
        let g = classic::path(2, 3, false);
        let inst = Instance::builder(g, 3)
            .have(0, [tok(0), tok(1), tok(2)])
            .want(1, [tok(0), tok(1), tok(2)])
            .node_budgets(crate::NodeBudgets::uplink_only(2, 1))
            .build()
            .unwrap();
        let mut s = Schedule::new();
        s.push_step([send(3, 0, &[0])]);
        s.push_step([send(3, 0, &[1])]);
        s.push_step([send(3, 0, &[2])]);
        assert!(replay(&inst, &s).unwrap().is_successful());
    }

    #[test]
    fn received_token_usable_next_step_for_return() {
        // 0 <-> 1; token travels 0 -> 1 then BACK 1 -> 0 (delivered to a
        // vertex that already has it — legal, merely useless).
        let mut g = DiGraph::with_nodes(2);
        g.add_edge_symmetric(g.node(0), g.node(1), 1).unwrap();
        let inst = Instance::builder(g, 1)
            .have(0, [tok(0)])
            .want(1, [tok(0)])
            .build()
            .unwrap();
        let mut s = Schedule::new();
        s.push_step([send(1, 0, &[0])]);
        s.push_step([send(1, 1, &[0])]);
        let replay = replay(&inst, &s).unwrap();
        assert!(replay.is_successful());
    }
}
