//! Per-vertex node-capacity budgets: the uplink-constrained regime.
//!
//! The paper's §3.1 model budgets bandwidth per overlay *arc*. Real
//! swarms (BitTorrent, streaming CDNs) are constrained per *node*: one
//! uplink shared across all out-neighbors, and sometimes a downlink
//! shared across all in-neighbors. [`NodeBudgets`] attaches those
//! per-vertex limits to an [`Instance`](crate::Instance): at every
//! timestep, vertex `v` may send at most `uplink(v)` token transfers
//! summed over *all* of its out-arcs, and receive at most `downlink(v)`
//! summed over all of its in-arcs — on top of (not instead of) the
//! per-arc capacities.
//!
//! This is exactly the regime of Mundinger–Weber–Weiss ("Optimal
//! Scheduling of Peer-to-Peer File Dissemination"), whose closed-form
//! optimal makespan serves as the analytic oracle for competitive-ratio
//! scoring of the paper's heuristics.
//!
//! A budget of [`NodeBudgets::UNLIMITED`] never binds; budgets at or
//! above a vertex's degree-capacity sum are equivalent to no budget at
//! all (see [`NodeBudgets::never_binds`]), which the simulation layer
//! exploits to skip admission entirely.

use ocd_graph::{DiGraph, NodeId};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Per-vertex uplink/downlink token budgets (tokens per timestep).
///
/// Budgets are *shared* across a vertex's arcs: they cap the total
/// number of token transfers leaving (uplink) or entering (downlink)
/// the vertex in one step, counting duplicates.
///
/// # Examples
///
/// ```
/// use ocd_core::NodeBudgets;
///
/// // Classic swarm shape: server (vertex 0) uploads 2 tokens/step,
/// // every peer uploads 1; downloads unconstrained.
/// let b = NodeBudgets::server_peers(5, 2, 1);
/// assert_eq!(b.uplink(0), 2);
/// assert_eq!(b.uplink(4), 1);
/// assert_eq!(b.downlink(3), NodeBudgets::UNLIMITED);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeBudgets {
    uplink: Vec<u32>,
    downlink: Vec<u32>,
}

/// Error from [`NodeBudgets::new`]: the two budget vectors must cover
/// the same vertex set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetLengthMismatch {
    /// Length of the uplink vector.
    pub uplinks: usize,
    /// Length of the downlink vector.
    pub downlinks: usize,
}

impl fmt::Display for BudgetLengthMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "uplink budgets cover {} vertices but downlink budgets cover {}",
            self.uplinks, self.downlinks
        )
    }
}

impl Error for BudgetLengthMismatch {}

impl NodeBudgets {
    /// Sentinel meaning "this direction is not constrained at `v`".
    pub const UNLIMITED: u32 = u32::MAX;

    /// Builds budgets from explicit per-vertex vectors.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetLengthMismatch`] if the vectors differ in length.
    pub fn new(uplink: Vec<u32>, downlink: Vec<u32>) -> Result<Self, BudgetLengthMismatch> {
        if uplink.len() != downlink.len() {
            return Err(BudgetLengthMismatch {
                uplinks: uplink.len(),
                downlinks: downlink.len(),
            });
        }
        Ok(NodeBudgets { uplink, downlink })
    }

    /// Uniform budgets: every vertex gets the same uplink and downlink.
    #[must_use]
    pub fn uniform(n: usize, uplink: u32, downlink: u32) -> Self {
        NodeBudgets {
            uplink: vec![uplink; n],
            downlink: vec![downlink; n],
        }
    }

    /// Uniform uplink-only budgets: downlinks are [`Self::UNLIMITED`].
    /// This is the Mundinger–Weber–Weiss regime.
    #[must_use]
    pub fn uplink_only(n: usize, uplink: u32) -> Self {
        Self::uniform(n, uplink, Self::UNLIMITED)
    }

    /// Server/peer uplink-only budgets: vertex 0 (the server) uploads
    /// `server_up` tokens per step, every other vertex `peer_up`;
    /// downlinks are unconstrained.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn server_peers(n: usize, server_up: u32, peer_up: u32) -> Self {
        assert!(n > 0, "server_peers needs at least the server vertex");
        let mut uplink = vec![peer_up; n];
        uplink[0] = server_up;
        NodeBudgets {
            uplink,
            downlink: vec![Self::UNLIMITED; n],
        }
    }

    /// Number of vertices covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.uplink.len()
    }

    /// Whether the budget vectors are empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.uplink.is_empty()
    }

    /// Uplink budget of vertex `v` (tokens per step across all out-arcs).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[must_use]
    pub fn uplink(&self, v: usize) -> u32 {
        self.uplink[v]
    }

    /// Downlink budget of vertex `v` (tokens per step across all in-arcs).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[must_use]
    pub fn downlink(&self, v: usize) -> u32 {
        self.downlink[v]
    }

    /// All uplink budgets, indexed by vertex.
    #[must_use]
    pub fn uplinks(&self) -> &[u32] {
        &self.uplink
    }

    /// All downlink budgets, indexed by vertex.
    #[must_use]
    pub fn downlinks(&self) -> &[u32] {
        &self.downlink
    }

    /// Whether these budgets can never constrain a schedule on `graph`:
    /// every vertex's uplink is at least the sum of its out-arc
    /// capacities and its downlink at least the sum of its in-arc
    /// capacities. Per-arc capacity then always binds first, so
    /// admission against the budgets is the identity.
    ///
    /// The simulation medium uses this to fall back to the wrapped
    /// medium's exact behaviour (including rejection accounting).
    #[must_use]
    pub fn never_binds(&self, graph: &DiGraph) -> bool {
        debug_assert_eq!(self.len(), graph.node_count());
        graph.nodes().all(|v| {
            let i = v.index();
            let out_cap: u64 = graph
                .out_edges(v)
                .map(|e| u64::from(graph.capacity(e)))
                .sum();
            let in_cap: u64 = graph
                .in_edges(v)
                .map(|e| u64::from(graph.capacity(e)))
                .sum();
            u64::from(self.uplink[i]) >= out_cap && u64::from(self.downlink[i]) >= in_cap
        })
    }

    /// Uplink budget of `v` as a [`NodeId`]-keyed convenience.
    #[must_use]
    pub fn uplink_of(&self, v: NodeId) -> u32 {
        self.uplink[v.index()]
    }

    /// Downlink budget of `v` as a [`NodeId`]-keyed convenience.
    #[must_use]
    pub fn downlink_of(&self, v: NodeId) -> u32 {
        self.downlink[v.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocd_graph::generate::classic;

    #[test]
    fn constructors_and_accessors() {
        let b = NodeBudgets::uniform(3, 2, 4);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.uplink(1), 2);
        assert_eq!(b.downlink(2), 4);
        assert_eq!(b.uplinks(), &[2, 2, 2]);
        assert_eq!(b.downlinks(), &[4, 4, 4]);

        let b = NodeBudgets::uplink_only(2, 7);
        assert_eq!(b.uplink(0), 7);
        assert_eq!(b.downlink(0), NodeBudgets::UNLIMITED);

        let b = NodeBudgets::server_peers(4, 3, 1);
        assert_eq!(b.uplink(0), 3);
        assert_eq!(b.uplink(3), 1);
    }

    #[test]
    fn new_rejects_length_mismatch() {
        let err = NodeBudgets::new(vec![1, 2], vec![1]).unwrap_err();
        assert_eq!(
            err,
            BudgetLengthMismatch {
                uplinks: 2,
                downlinks: 1
            }
        );
        assert!(err.to_string().contains("2 vertices"));
        assert!(NodeBudgets::new(vec![1], vec![1]).is_ok());
    }

    #[test]
    fn never_binds_threshold() {
        // Symmetric cycle, capacity 2: every vertex has out-capacity 4
        // and in-capacity 4.
        let g = classic::cycle(5, 2, true);
        assert!(NodeBudgets::uniform(5, 4, 4).never_binds(&g));
        assert!(NodeBudgets::uplink_only(5, 4).never_binds(&g));
        assert!(!NodeBudgets::uniform(5, 3, 4).never_binds(&g));
        assert!(!NodeBudgets::uniform(5, 4, 3).never_binds(&g));
        assert!(
            NodeBudgets::uniform(5, NodeBudgets::UNLIMITED, NodeBudgets::UNLIMITED).never_binds(&g)
        );
    }

    #[test]
    fn serde_round_trip() {
        let b = NodeBudgets::server_peers(4, 3, 1);
        let json = serde_json::to_string(&b).unwrap();
        let back: NodeBudgets = serde_json::from_str(&json).unwrap();
        assert_eq!(b, back);
    }
}
