//! Content encoding (paper §6, "open problems").
//!
//! "In the face of lossy channels, it may be useful to introduce
//! redundancy into the system by generating multiple sub-tokens, only a
//! subset of which are necessary to reconstruct the original token."
//!
//! This module models an idealized rateless/MDS code: the content of
//! `source_tokens = k` tokens is expanded into `coded_tokens = n ≥ k`
//! interchangeable coded tokens, and a receiver reconstructs as soon as
//! it holds **any** `k` distinct coded tokens. The success criterion is
//! therefore a *threshold* on possession rather than a fixed want set —
//! which is exactly why coding helps: the "which block am I missing"
//! coupon-collector end-game of uncoded distribution disappears, and
//! duplicate deliveries of the *same* coded token are the only waste
//! left.
//!
//! [`simulate_coded_random`] runs the coded analogue of the paper's
//! Random heuristic (random useful flooding); the `table_coding`
//! experiment compares it against uncoded Random at several redundancy
//! ratios.

use crate::{Token, TokenSet};
use ocd_graph::{algo, DiGraph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Code parameters: reconstruct from any `source_tokens` of
/// `coded_tokens`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodedSpec {
    /// `k`: tokens of actual content.
    pub source_tokens: usize,
    /// `n ≥ k`: coded tokens in circulation.
    pub coded_tokens: usize,
}

impl CodedSpec {
    /// Creates a spec with a redundancy ratio `n / k`.
    ///
    /// # Panics
    ///
    /// Panics if `coded_tokens < source_tokens` or `source_tokens == 0`.
    #[must_use]
    pub fn new(source_tokens: usize, coded_tokens: usize) -> Self {
        assert!(source_tokens > 0, "need at least one source token");
        assert!(
            coded_tokens >= source_tokens,
            "coding cannot shrink the universe ({coded_tokens} < {source_tokens})"
        );
        CodedSpec {
            source_tokens,
            coded_tokens,
        }
    }

    /// Redundancy ratio `n / k`.
    #[must_use]
    pub fn redundancy(&self) -> f64 {
        self.coded_tokens as f64 / self.source_tokens as f64
    }
}

/// A coded distribution problem: one or more seeds hold coded tokens;
/// receivers must accumulate any `k` distinct ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodedInstance {
    graph: DiGraph,
    spec: CodedSpec,
    have: Vec<TokenSet>,
    receiver: Vec<bool>,
}

impl CodedInstance {
    /// Single seed holding the full coded universe; every other vertex
    /// is a receiver.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of bounds.
    #[must_use]
    pub fn single_source(graph: DiGraph, spec: CodedSpec, source: usize) -> Self {
        let _ = graph.node(source);
        let n = graph.node_count();
        let mut have = vec![TokenSet::new(spec.coded_tokens); n];
        have[source] = TokenSet::full(spec.coded_tokens);
        let mut receiver = vec![true; n];
        receiver[source] = false;
        CodedInstance {
            graph,
            spec,
            have,
            receiver,
        }
    }

    /// The overlay graph.
    #[must_use]
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The code parameters.
    #[must_use]
    pub fn spec(&self) -> CodedSpec {
        self.spec
    }

    /// Whether `v` must reconstruct the content.
    #[must_use]
    pub fn is_receiver(&self, v: NodeId) -> bool {
        self.receiver[v.index()]
    }

    /// Whether possession state `p` satisfies every receiver.
    #[must_use]
    pub fn is_satisfied(&self, possession: &[TokenSet]) -> bool {
        self.graph.nodes().all(|v| {
            !self.receiver[v.index()] || possession[v.index()].len() >= self.spec.source_tokens
        })
    }

    /// A makespan lower bound mirroring §5.1's radius bound: receiver
    /// `v` needs `k - |p(v)|` more coded tokens through its in-capacity,
    /// and tokens outside radius `i` cannot arrive before step `i + 1`.
    ///
    /// Returns `None` when some receiver can never be satisfied (zero
    /// in-capacity, or unreachable from every vertex holding content) —
    /// the instance has no finite makespan at all, which callers must
    /// render as DNF rather than a numeric sentinel.
    #[must_use]
    pub fn makespan_lower_bound(&self) -> Option<usize> {
        // Hop distance from the nearest vertex holding anything
        // (instance-wide, so computed once, not per receiver).
        let holders: Vec<NodeId> = self
            .graph
            .nodes()
            .filter(|&u| !self.have[u.index()].is_empty())
            .collect();
        let dist = algo::bfs_distances_multi(&self.graph, holders);
        let mut best = 0usize;
        for v in self.graph.nodes() {
            if !self.receiver[v.index()] {
                continue;
            }
            let missing = self
                .spec
                .source_tokens
                .saturating_sub(self.have[v.index()].len());
            if missing == 0 {
                continue;
            }
            let in_cap = self.graph.in_capacity(v);
            if in_cap == 0 {
                return None;
            }
            let d = dist[v.index()];
            if d == algo::UNREACHABLE {
                return None;
            }
            let capacity_steps = (missing as u64).div_ceil(in_cap) as usize;
            best = best.max((d as usize).max(1).saturating_sub(1) + capacity_steps);
        }
        Some(best)
    }
}

/// Outcome of a coded simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodedReport {
    /// Whether every receiver reconstructed within the step cap.
    pub success: bool,
    /// Timesteps used.
    pub steps: usize,
    /// *Useful* coded-token transfers: deliveries that entered the
    /// receiver's possession.
    pub transfers: u64,
    /// Deliveries of a coded token the receiver already held when the
    /// token arrived — two in-arcs racing the same token in one step
    /// land here, not in [`CodedReport::transfers`].
    pub duplicate_deliveries: u64,
}

/// Random useful flooding over coded tokens: each step, each arc carries
/// a uniform random subset (≤ capacity) of the coded tokens the sender
/// holds and the receiver lacks; receivers stop *pulling* once satisfied
/// but keep relaying (they are still useful as sources). Runs until all
/// receivers are satisfied or `max_steps` elapses.
pub fn simulate_coded_random<R: Rng + ?Sized>(
    instance: &CodedInstance,
    max_steps: usize,
    rng: &mut R,
) -> CodedReport {
    let g = instance.graph();
    let mut possession = instance.have.clone();
    let mut steps = 0usize;
    let mut transfers = 0u64;
    let mut duplicate_deliveries = 0u64;
    while !instance.is_satisfied(&possession) && steps < max_steps {
        let mut arriving: Vec<TokenSet> = possession.clone();
        let mut moved = false;
        for e in g.edge_ids() {
            let arc = g.edge(e);
            // Senders choose against start-of-step possession — §3.1
            // store-and-forward gives them no view of what parallel
            // in-arcs deliver to `dst` within the same step.
            let candidates = possession[arc.src.index()].difference(&possession[arc.dst.index()]);
            if candidates.is_empty() {
                continue;
            }
            // A satisfied receiver (or any vertex already holding k
            // tokens) still accepts tokens only up to what keeps it a
            // useful relay; flooding everything is the Random baseline.
            let cap = g.capacity(e) as usize;
            let mut pool: Vec<Token> = candidates.iter().collect();
            let take = cap.min(pool.len());
            let (chosen, _) = pool.partial_shuffle(rng, take);
            // Accounting runs against what has *already arrived* this
            // step: a token a parallel in-arc delivered moments earlier
            // is a duplicate, not a useful transfer, and contributes no
            // progress.
            for &t in chosen.iter() {
                if arriving[arc.dst.index()].contains(t) {
                    duplicate_deliveries += 1;
                } else {
                    arriving[arc.dst.index()].insert(t);
                    transfers += 1;
                    moved = true;
                }
            }
        }
        if !moved {
            break;
        }
        possession = arriving;
        steps += 1;
    }
    CodedReport {
        success: instance.is_satisfied(&possession),
        steps,
        transfers,
        duplicate_deliveries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocd_graph::generate::classic;
    use rand::prelude::*;

    #[test]
    fn spec_validation() {
        let s = CodedSpec::new(4, 6);
        assert!((s.redundancy() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn shrinking_spec_panics() {
        let _ = CodedSpec::new(4, 3);
    }

    #[test]
    fn single_source_shape() {
        let inst =
            CodedInstance::single_source(classic::cycle(5, 2, true), CodedSpec::new(3, 6), 0);
        assert!(!inst.is_receiver(inst.graph().node(0)));
        assert!(inst.is_receiver(inst.graph().node(3)));
        assert!(!inst.is_satisfied(&inst.have));
    }

    #[test]
    fn threshold_satisfaction() {
        let inst =
            CodedInstance::single_source(classic::path(2, 5, false), CodedSpec::new(2, 4), 0);
        let mut possession = inst.have.clone();
        possession[1].insert(Token::new(1));
        assert!(!inst.is_satisfied(&possession), "1 of 2 needed");
        possession[1].insert(Token::new(3));
        assert!(inst.is_satisfied(&possession), "any 2 distinct reconstruct");
    }

    #[test]
    fn coded_random_completes_and_respects_bound() {
        let inst =
            CodedInstance::single_source(classic::cycle(8, 2, true), CodedSpec::new(6, 9), 0);
        let lb = inst
            .makespan_lower_bound()
            .expect("every receiver reachable");
        let mut rng = StdRng::seed_from_u64(1);
        let r = simulate_coded_random(&inst, 10_000, &mut rng);
        assert!(r.success);
        assert!(r.steps >= lb, "steps {} below bound {lb}", r.steps);
        assert!(r.transfers >= 6, "each receiver needs ≥ k arrivals");
    }

    #[test]
    fn redundancy_speeds_the_end_game_on_a_bottleneck() {
        // Two feeders each hold a (possibly overlapping) half of the
        // universe... simplest demonstration: unit-capacity star where
        // receivers draw from the same source; with n = k the last
        // tokens must be exactly the missing ones, with n > k any
        // arrivals count. Compare average completion on a line.
        let steps_at = |coded: usize, seed: u64| {
            let inst = CodedInstance::single_source(
                classic::path(4, 2, false),
                CodedSpec::new(8, coded),
                0,
            );
            let mut rng = StdRng::seed_from_u64(seed);
            let r = simulate_coded_random(&inst, 10_000, &mut rng);
            assert!(r.success);
            r.steps
        };
        let plain: usize = (0..10).map(|s| steps_at(8, s)).sum();
        let coded: usize = (0..10).map(|s| steps_at(16, s)).sum();
        assert!(
            coded <= plain,
            "redundancy can only help the threshold end-game: {coded} > {plain}"
        );
    }

    #[test]
    fn isolated_receiver_has_no_lower_bound() {
        // Regression: this used to return a bare `usize::MAX` sentinel,
        // which flowed into experiment tables and printed as
        // 18446744073709551615 instead of an honest DNF.
        let mut g = ocd_graph::DiGraph::with_nodes(2);
        g.add_edge(g.node(1), g.node(0), 1).unwrap();
        let inst = CodedInstance::single_source(g, CodedSpec::new(1, 2), 0);
        assert_eq!(inst.makespan_lower_bound(), None);
        let mut rng = StdRng::seed_from_u64(0);
        let r = simulate_coded_random(&inst, 50, &mut rng);
        assert!(!r.success);
    }

    /// `s → {a, b} → r`, unit capacities, one coded token: both in-arcs
    /// of `r` race the same token in the second step.
    fn diamond(extra_isolated_receiver: bool) -> CodedInstance {
        let mut g = ocd_graph::DiGraph::with_nodes(if extra_isolated_receiver { 5 } else { 4 });
        let (s, a, b, r) = (g.node(0), g.node(1), g.node(2), g.node(3));
        g.add_edge(s, a, 1).unwrap();
        g.add_edge(s, b, 1).unwrap();
        g.add_edge(a, r, 1).unwrap();
        g.add_edge(b, r, 1).unwrap();
        CodedInstance::single_source(g, CodedSpec::new(1, 1), 0)
    }

    #[test]
    fn diamond_race_counts_the_duplicate_not_a_transfer() {
        // Step 1: s → a and s → b (both useful). Step 2: a → r and
        // b → r race the same token; exactly one delivery is useful.
        // The pre-fix accounting diffed candidates against the stale
        // start-of-step possession and booked all four deliveries as
        // useful transfers.
        let inst = diamond(false);
        let mut rng = StdRng::seed_from_u64(7);
        let r = simulate_coded_random(&inst, 100, &mut rng);
        assert!(r.success);
        assert_eq!(r.steps, 2);
        assert_eq!(r.transfers, 3, "only three deliveries were useful");
        assert_eq!(r.duplicate_deliveries, 1, "the race loser is a duplicate");
    }

    #[test]
    fn fully_redundant_activity_does_not_stall_forever() {
        // An unsatisfiable variant (one receiver with no in-arcs): once
        // the diamond saturates, every remaining candidate delivery is
        // redundant, so the run must exit at its fixpoint instead of
        // spinning `moved = true` until max_steps. Progress is derived
        // from actual possession change, not from tokens having been
        // chosen.
        let inst = diamond(true);
        let mut rng = StdRng::seed_from_u64(7);
        let r = simulate_coded_random(&inst, 10_000, &mut rng);
        assert!(!r.success, "the isolated receiver can never reconstruct");
        assert_eq!(r.steps, 2, "exit at the fixpoint, not at max_steps");
        assert_eq!(r.duplicate_deliveries, 1);
    }
}
