//! Core model of the **Overlay Network Content Distribution** (OCD)
//! problem (Killian, Vrable, Snoeren, Vahdat, Pasquale; PODC 2005).
//!
//! The paper's §3.1 model: content is a set of unit-sized [`Token`]s over
//! a weighted digraph whose arc capacities bound how many tokens cross an
//! arc per timestep. Each vertex starts with a *have* set `h(v)` and must
//! end with its *want* set `w(v)`. A [`Schedule`] is a sequence of
//! timesteps, each assigning token sets to arcs, subject to capacity and
//! to possession (a vertex can only send tokens it held at the start of
//! the step). Successful schedules are measured by **makespan** (number
//! of timesteps — FOCD, §3.2) and **bandwidth** (number of token
//! transfers — EOCD, §3.3).
//!
//! This crate provides the model and everything that follows directly
//! from it:
//!
//! - [`Token`] / [`TokenSet`]: dense bitset token algebra.
//! - [`Instance`]: graph + have/want functions, with satisfiability
//!   analysis.
//! - [`budgets`]: optional per-vertex uplink/downlink token budgets
//!   ([`NodeBudgets`]) — the node-capacity regime of Mundinger–Weber–
//!   Weiss, enforced by [`validate`] when an instance carries them.
//! - [`Schedule`] and [`validate`]: replay-based validation with precise
//!   error reporting.
//! - [`prune`]: the paper's §5.1 post-processing that removes duplicate
//!   and never-used deliveries.
//! - [`bounds`]: the paper's §5.1 lower bounds (remaining bandwidth,
//!   radius/capacity makespan bound `M_i(v)`, one-step lookahead).
//! - [`knowledge`]: the LOCD (§4.1) aggregate-knowledge model.
//! - [`gf256`] and [`rlnc`]: the §6 redundancy story made real —
//!   GF(2^8) arithmetic and random linear network coding with a
//!   rank-tracked [`CodedBasis`] (the coded analogue of [`TokenSet`]),
//!   next to the idealized k-of-n threshold model in [`coding`].
//! - [`metrics`]: the suite-wide observability layer — a dependency-free
//!   registry of counters/gauges/log2-histograms behind a [`Recorder`]
//!   trait whose no-op impl monomorphizes away.
//! - [`span`]: the flight-recorder layer — named, nested, timed spans
//!   with attached counters and an instantaneous event stream behind a
//!   zero-cost [`SpanRecorder`], exported as Chrome/Perfetto
//!   timelines.
//! - [`provenance`]: the causal token-provenance layer — who delivered
//!   each token to each vertex, with critical-path/bottleneck analysis
//!   and Chrome/Perfetto export, behind a zero-cost [`ProvenanceHook`].
//! - [`record`]: the self-certifying JSON run artifact ([`RunRecord`])
//!   shared by the engine, the CLI, and the bench pipeline.
//! - [`scenario`]: generators for every experimental scenario in §5.
//!
//! # Examples
//!
//! ```
//! use ocd_core::{Instance, Schedule, Token, TokenSet};
//! use ocd_graph::DiGraph;
//!
//! // Two nodes, one token, one arc.
//! let mut g = DiGraph::with_nodes(2);
//! let e = g.add_edge(g.node(0), g.node(1), 1).unwrap();
//! let instance = Instance::builder(g, 1)
//!     .have(0, [Token::new(0)])
//!     .want(1, [Token::new(0)])
//!     .build()
//!     .unwrap();
//!
//! let mut schedule = Schedule::new();
//! schedule.push_step([(e, TokenSet::from_tokens(1, [Token::new(0)]))]);
//! let replay = ocd_core::validate::replay(&instance, &schedule).unwrap();
//! assert!(replay.is_successful());
//! assert_eq!(schedule.makespan(), 1);
//! assert_eq!(schedule.bandwidth(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod bounds;
pub mod budgets;
pub mod coding;
pub mod gf256;
mod instance;
pub mod knowledge;
pub mod metrics;
pub mod provenance;
pub mod prune;
pub mod record;
pub mod rlnc;
pub mod scenario;
mod schedule;
pub mod span;
mod token;
pub mod validate;

pub use budgets::NodeBudgets;
pub use instance::{Instance, InstanceBuilder, InstanceError, InstanceStats};
pub use metrics::{MetricsRegistry, MetricsSnapshot, NoopRecorder, Recorder};
pub use provenance::{NoopProvenance, ProvenanceHook, ProvenanceRecord, ProvenanceTrace};
pub use record::{RecordError, RunRecord, StepTrace};
pub use rlnc::{CodedBasis, CodedPacket, RlncInstance};
pub use schedule::{Move, Schedule, ScheduleRecorder, Timestep};
pub use span::{FlightRecorder, NoopSpans, SpanRecorder};
pub use token::{Token, TokenSet};
pub use validate::{Replay, ScheduleError};
