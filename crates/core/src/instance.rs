//! OCD problem instances: a graph plus the *have* and *want* functions.

use crate::{NodeBudgets, Token, TokenSet};
use ocd_graph::{algo, DiGraph, NodeId};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// A complete OCD problem instance (§3.1): the weighted digraph
/// `G = (V, E)`, the token universe `T = {0, …, m-1}`, and per-vertex
/// have/want sets.
///
/// Construct with [`Instance::builder`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instance {
    graph: DiGraph,
    num_tokens: usize,
    have: Vec<TokenSet>,
    want: Vec<TokenSet>,
    /// Optional per-vertex uplink/downlink budgets (the node-capacity
    /// regime). Omitted from JSON when absent so unbudgeted instances
    /// serialize exactly as before the field existed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    node_budgets: Option<NodeBudgets>,
}

/// Builder for [`Instance`].
///
/// # Examples
///
/// ```
/// use ocd_core::{Instance, Token};
/// use ocd_graph::generate::classic;
///
/// let g = classic::path(3, 1, true);
/// let instance = Instance::builder(g, 2)
///     .have(0, [Token::new(0), Token::new(1)])
///     .want_all_everywhere()
///     .build()
///     .unwrap();
/// assert!(instance.is_satisfiable());
/// assert_eq!(instance.total_deficiency(), 4); // vertices 1 and 2 × 2 tokens
/// ```
#[derive(Debug, Clone)]
pub struct InstanceBuilder {
    graph: DiGraph,
    num_tokens: usize,
    have: Vec<TokenSet>,
    want: Vec<TokenSet>,
    node_budgets: Option<NodeBudgets>,
    /// Vertices referenced by have/want calls that are not in the graph;
    /// reported at build() time so the fluent chain stays ergonomic.
    out_of_bounds: Vec<usize>,
}

/// Errors from [`InstanceBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum InstanceError {
    /// A have/want assignment referenced a vertex not in the graph.
    VertexOutOfBounds {
        /// The offending vertex index.
        vertex: usize,
        /// Number of vertices in the graph.
        node_count: usize,
    },
    /// A token is wanted somewhere but initially possessed nowhere, so no
    /// schedule can ever deliver it.
    OrphanToken {
        /// The token nobody has.
        token: Token,
    },
    /// Attached [`NodeBudgets`] cover a different number of vertices
    /// than the graph has.
    BudgetsLengthMismatch {
        /// Vertices covered by the budgets.
        budgets: usize,
        /// Number of vertices in the graph.
        node_count: usize,
    },
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::VertexOutOfBounds { vertex, node_count } => {
                write!(
                    f,
                    "vertex {vertex} out of bounds for a graph with {node_count} nodes"
                )
            }
            InstanceError::OrphanToken { token } => {
                write!(f, "token {token} is wanted but no vertex initially has it")
            }
            InstanceError::BudgetsLengthMismatch {
                budgets,
                node_count,
            } => {
                write!(
                    f,
                    "node budgets cover {budgets} vertices but the graph has {node_count}"
                )
            }
        }
    }
}

impl Error for InstanceError {}

impl InstanceBuilder {
    /// Assigns `tokens` to vertex `vertex`'s initial *have* set
    /// (accumulative across calls).
    ///
    /// # Panics
    ///
    /// Panics if a token is outside the universe. Vertex bounds are
    /// checked at [`build`](Self::build) time.
    #[must_use]
    pub fn have(mut self, vertex: usize, tokens: impl IntoIterator<Item = Token>) -> Self {
        if vertex < self.have.len() {
            for t in tokens {
                self.have[vertex].insert(t);
            }
        } else {
            self.out_of_bounds.push(vertex);
        }
        self
    }

    /// Assigns `tokens` to vertex `vertex`'s *want* set (accumulative).
    #[must_use]
    pub fn want(mut self, vertex: usize, tokens: impl IntoIterator<Item = Token>) -> Self {
        if vertex < self.want.len() {
            for t in tokens {
                self.want[vertex].insert(t);
            }
        } else {
            self.out_of_bounds.push(vertex);
        }
        self
    }

    /// Replaces vertex `vertex`'s have set with an explicit [`TokenSet`].
    #[must_use]
    pub fn have_set(mut self, vertex: usize, tokens: TokenSet) -> Self {
        if vertex < self.have.len() {
            self.have[vertex] = tokens;
        } else {
            self.out_of_bounds.push(vertex);
        }
        self
    }

    /// Replaces vertex `vertex`'s want set with an explicit [`TokenSet`].
    #[must_use]
    pub fn want_set(mut self, vertex: usize, tokens: TokenSet) -> Self {
        if vertex < self.want.len() {
            self.want[vertex] = tokens;
        } else {
            self.out_of_bounds.push(vertex);
        }
        self
    }

    /// Makes every vertex want the entire token universe — the paper's
    /// baseline "single source distributes a file to all vertices".
    #[must_use]
    pub fn want_all_everywhere(mut self) -> Self {
        for w in &mut self.want {
            *w = TokenSet::full(self.num_tokens);
        }
        self
    }

    /// Attaches per-vertex uplink/downlink budgets (the node-capacity
    /// regime). Length is checked against the graph at
    /// [`build`](Self::build) time.
    #[must_use]
    pub fn node_budgets(mut self, budgets: NodeBudgets) -> Self {
        self.node_budgets = Some(budgets);
        self
    }

    /// Finalizes the instance.
    ///
    /// # Errors
    ///
    /// Returns [`InstanceError::VertexOutOfBounds`] if any assignment
    /// referenced a missing vertex, [`InstanceError::OrphanToken`] if
    /// some wanted token is possessed by no vertex (such an instance can
    /// never be satisfied, cf. §3.2 satisfiability), and
    /// [`InstanceError::BudgetsLengthMismatch`] if attached
    /// [`NodeBudgets`] do not cover exactly the graph's vertex set.
    pub fn build(self) -> Result<Instance, InstanceError> {
        if let Some(&vertex) = self.out_of_bounds.first() {
            return Err(InstanceError::VertexOutOfBounds {
                vertex,
                node_count: self.graph.node_count(),
            });
        }
        let mut all_have = TokenSet::new(self.num_tokens);
        let mut all_want = TokenSet::new(self.num_tokens);
        for h in &self.have {
            all_have.union_with(h);
        }
        for w in &self.want {
            all_want.union_with(w);
        }
        if let Some(token) = all_want.difference(&all_have).first() {
            return Err(InstanceError::OrphanToken { token });
        }
        if let Some(b) = &self.node_budgets {
            if b.len() != self.graph.node_count() {
                return Err(InstanceError::BudgetsLengthMismatch {
                    budgets: b.len(),
                    node_count: self.graph.node_count(),
                });
            }
        }
        Ok(Instance {
            graph: self.graph,
            num_tokens: self.num_tokens,
            have: self.have,
            want: self.want,
            node_budgets: self.node_budgets,
        })
    }
}

impl Instance {
    /// Starts building an instance over `graph` with tokens
    /// `{0, …, num_tokens-1}`. All have/want sets start empty.
    #[must_use]
    pub fn builder(graph: DiGraph, num_tokens: usize) -> InstanceBuilder {
        let n = graph.node_count();
        InstanceBuilder {
            graph,
            num_tokens,
            have: vec![TokenSet::new(num_tokens); n],
            want: vec![TokenSet::new(num_tokens); n],
            node_budgets: None,
            out_of_bounds: Vec::new(),
        }
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Size of the token universe, `m = |T|`.
    #[must_use]
    pub fn num_tokens(&self) -> usize {
        self.num_tokens
    }

    /// Per-vertex uplink/downlink budgets, if this instance is in the
    /// node-capacity regime. `None` means the pure §3.1 arc-capacitated
    /// model.
    #[must_use]
    pub fn node_budgets(&self) -> Option<&NodeBudgets> {
        self.node_budgets.as_ref()
    }

    /// Number of vertices, `n = |V|`.
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.graph.node_count()
    }

    /// Initial possession `h(v)`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[must_use]
    pub fn have(&self, v: NodeId) -> &TokenSet {
        &self.have[v.index()]
    }

    /// Target set `w(v)`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[must_use]
    pub fn want(&self, v: NodeId) -> &TokenSet {
        &self.want[v.index()]
    }

    /// All initial possession sets, indexed by vertex.
    #[must_use]
    pub fn have_all(&self) -> &[TokenSet] {
        &self.have
    }

    /// All want sets, indexed by vertex.
    #[must_use]
    pub fn want_all(&self) -> &[TokenSet] {
        &self.want
    }

    /// Vertices that initially possess `token`.
    #[must_use]
    pub fn havers_of(&self, token: Token) -> Vec<NodeId> {
        self.graph
            .nodes()
            .filter(|&v| self.have[v.index()].contains(token))
            .collect()
    }

    /// Vertices that want `token` but do not initially possess it.
    #[must_use]
    pub fn needers_of(&self, token: Token) -> Vec<NodeId> {
        self.graph
            .nodes()
            .filter(|&v| {
                self.want[v.index()].contains(token) && !self.have[v.index()].contains(token)
            })
            .collect()
    }

    /// Tokens vertex `v` still needs: `w(v) \ h(v)`.
    #[must_use]
    pub fn deficiency(&self, v: NodeId) -> TokenSet {
        self.want[v.index()].difference(&self.have[v.index()])
    }

    /// Total number of (vertex, token) deliveries any successful schedule
    /// must make: `Σ_v |w(v) \ h(v)|`. This is the paper's simple
    /// remaining-bandwidth lower bound (§5.1).
    #[must_use]
    pub fn total_deficiency(&self) -> u64 {
        self.graph
            .nodes()
            .map(|v| self.want[v.index()].difference_len(&self.have[v.index()]) as u64)
            .sum()
    }

    /// Whether every want is already satisfied by the initial possession.
    #[must_use]
    pub fn is_trivially_satisfied(&self) -> bool {
        self.total_deficiency() == 0
    }

    /// Whether a successful schedule exists at all: every token must be
    /// able to *reach* every vertex that wants it, i.e. each needy vertex
    /// is reachable from some haver of the token (§3.2).
    #[must_use]
    pub fn is_satisfiable(&self) -> bool {
        for t in 0..self.num_tokens {
            let token = Token::new(t);
            let havers = self.havers_of(token);
            let needers = self.needers_of(token);
            if needers.is_empty() {
                continue;
            }
            if havers.is_empty() {
                return false;
            }
            let dist = algo::bfs_distances_multi(&self.graph, havers);
            if needers.iter().any(|v| dist[v.index()] == algo::UNREACHABLE) {
                return false;
            }
        }
        true
    }

    /// Summary statistics, useful for experiment logs.
    #[must_use]
    pub fn stats(&self) -> InstanceStats {
        InstanceStats {
            vertices: self.num_vertices(),
            arcs: self.graph.edge_count(),
            tokens: self.num_tokens,
            total_capacity: self.graph.total_capacity(),
            total_deficiency: self.total_deficiency(),
            receivers: self
                .graph
                .nodes()
                .filter(|&v| !self.deficiency(v).is_empty())
                .count(),
        }
    }
}

/// Summary counters describing an [`Instance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceStats {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of arcs.
    pub arcs: usize,
    /// Token universe size.
    pub tokens: usize,
    /// Sum of all arc capacities.
    pub total_capacity: u64,
    /// `Σ_v |w(v) \ h(v)|`.
    pub total_deficiency: u64,
    /// Vertices with non-empty deficiency.
    pub receivers: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocd_graph::generate::classic;

    fn tok(i: usize) -> Token {
        Token::new(i)
    }

    #[test]
    fn builder_happy_path() {
        let g = classic::path(3, 2, true);
        let inst = Instance::builder(g, 3)
            .have(0, [tok(0), tok(1)])
            .have(2, [tok(2)])
            .want(1, [tok(0), tok(2)])
            .build()
            .unwrap();
        assert_eq!(inst.num_tokens(), 3);
        assert_eq!(inst.num_vertices(), 3);
        assert_eq!(inst.have(inst.graph().node(0)).len(), 2);
        assert_eq!(inst.deficiency(inst.graph().node(1)).len(), 2);
        assert_eq!(inst.total_deficiency(), 2);
        assert!(inst.is_satisfiable());
        assert!(!inst.is_trivially_satisfied());
    }

    #[test]
    fn builder_rejects_out_of_bounds_vertex() {
        let g = classic::path(2, 1, true);
        let err = Instance::builder(g, 1)
            .have(5, [tok(0)])
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            InstanceError::VertexOutOfBounds {
                vertex: 5,
                node_count: 2
            }
        );
    }

    #[test]
    fn builder_rejects_orphan_token() {
        let g = classic::path(2, 1, true);
        let err = Instance::builder(g, 2)
            .have(0, [tok(0)])
            .want(1, [tok(0), tok(1)])
            .build()
            .unwrap_err();
        assert_eq!(err, InstanceError::OrphanToken { token: tok(1) });
        assert!(err.to_string().contains("wanted but no vertex"));
    }

    #[test]
    fn unwanted_orphan_tokens_are_fine() {
        // Token 1 exists in the universe but nobody wants or has it.
        let g = classic::path(2, 1, true);
        let inst = Instance::builder(g, 2)
            .have(0, [tok(0)])
            .want(1, [tok(0)])
            .build()
            .unwrap();
        assert!(inst.is_satisfiable());
    }

    #[test]
    fn unreachable_wanter_is_unsatisfiable() {
        // 0 -> 1 only; 1 has the token, 0 wants it, but no arc 1 -> 0.
        let mut g = ocd_graph::DiGraph::with_nodes(2);
        g.add_edge(g.node(0), g.node(1), 1).unwrap();
        let inst = Instance::builder(g, 1)
            .have(1, [tok(0)])
            .want(0, [tok(0)])
            .build()
            .unwrap();
        assert!(!inst.is_satisfiable());
    }

    #[test]
    fn haver_wanting_its_own_token_is_satisfied() {
        let g = classic::path(2, 1, true);
        let inst = Instance::builder(g, 1)
            .have(0, [tok(0)])
            .want(0, [tok(0)])
            .build()
            .unwrap();
        assert!(inst.is_trivially_satisfied());
        assert!(inst.is_satisfiable());
        assert_eq!(inst.needers_of(tok(0)), vec![]);
    }

    #[test]
    fn want_all_everywhere_covers_all_vertices() {
        let g = classic::star(4, 1, true);
        let inst = Instance::builder(g, 2)
            .have(0, [tok(0), tok(1)])
            .want_all_everywhere()
            .build()
            .unwrap();
        assert_eq!(inst.total_deficiency(), 6);
        let s = inst.stats();
        assert_eq!(s.receivers, 3);
        assert_eq!(s.tokens, 2);
        assert_eq!(s.vertices, 4);
    }

    #[test]
    fn havers_and_needers() {
        let g = classic::path(3, 1, true);
        let inst = Instance::builder(g, 1)
            .have(0, [tok(0)])
            .have(1, [tok(0)])
            .want(2, [tok(0)])
            .build()
            .unwrap();
        assert_eq!(inst.havers_of(tok(0)).len(), 2);
        assert_eq!(inst.needers_of(tok(0)), vec![inst.graph().node(2)]);
    }

    #[test]
    fn have_set_and_want_set_replace() {
        let g = classic::path(2, 1, true);
        let inst = Instance::builder(g, 4)
            .have(0, [tok(0)])
            .have_set(0, TokenSet::from_range(4, 2..4))
            .want_set(1, TokenSet::from_range(4, 2..3))
            .build()
            .unwrap();
        // have_set replaced the earlier accumulation.
        assert!(!inst.have(inst.graph().node(0)).contains(tok(0)));
        assert!(inst.have(inst.graph().node(0)).contains(tok(2)));
        assert_eq!(inst.want(inst.graph().node(1)).len(), 1);
    }

    #[test]
    fn serde_round_trip() {
        let g = classic::cycle(3, 2, true);
        let inst = Instance::builder(g, 2)
            .have(0, [tok(0), tok(1)])
            .want_all_everywhere()
            .build()
            .unwrap();
        let json = serde_json::to_string(&inst).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn unbudgeted_json_has_no_budget_field_and_old_json_still_parses() {
        let g = classic::path(2, 1, true);
        let inst = Instance::builder(g, 1)
            .have(0, [tok(0)])
            .want(1, [tok(0)])
            .build()
            .unwrap();
        let json = serde_json::to_string(&inst).unwrap();
        // Pre-budget serialization is preserved byte-for-byte: the
        // optional field is skipped when absent, so JSON written by
        // older versions parses and re-serializes identically.
        assert!(!json.contains("node_budgets"));
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(inst, back);
        assert!(back.node_budgets().is_none());
    }

    #[test]
    fn budgeted_instance_round_trips() {
        let g = classic::path(3, 2, true);
        let budgets = crate::NodeBudgets::server_peers(3, 2, 1);
        let inst = Instance::builder(g, 2)
            .have(0, [tok(0), tok(1)])
            .want_all_everywhere()
            .node_budgets(budgets.clone())
            .build()
            .unwrap();
        assert_eq!(inst.node_budgets(), Some(&budgets));
        let json = serde_json::to_string(&inst).unwrap();
        assert!(json.contains("node_budgets"));
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(inst, back);
        assert_eq!(back.node_budgets(), Some(&budgets));
    }

    #[test]
    fn builder_rejects_budget_length_mismatch() {
        let g = classic::path(3, 1, true);
        let err = Instance::builder(g, 1)
            .have(0, [tok(0)])
            .want(2, [tok(0)])
            .node_budgets(crate::NodeBudgets::uplink_only(2, 1))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            InstanceError::BudgetsLengthMismatch {
                budgets: 2,
                node_count: 3
            }
        );
        assert!(err.to_string().contains("cover 2 vertices"));
    }
}
