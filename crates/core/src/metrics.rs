//! The suite-wide **metrics/observability layer**: a lightweight,
//! dependency-free registry of named counters, gauges, fixed-boundary
//! log2 histograms, and per-index counter series, shared by the
//! lockstep engine (`ocd-heuristics`), the asynchronous swarm runtime
//! (`ocd-net`), and the experiment harness (`ocd-bench`).
//!
//! # Design
//!
//! Instrumented code records through the [`Recorder`] trait, which has
//! two implementations:
//!
//! - [`NoopRecorder`]: every method is an empty `#[inline]` body and
//!   [`Recorder::enabled`] is a constant `false`. Code monomorphized
//!   over it compiles down to the uninstrumented loop — metrics cost
//!   **nothing when disabled** (the `engine_step_loop` microbench is
//!   the regression guard).
//! - [`MetricsRegistry`]: the real store. Metric *handles* are interned
//!   once per run (string lookup at registration, index arithmetic on
//!   the hot path), and [`MetricsRegistry::snapshot`] freezes the state
//!   into a [`MetricsSnapshot`].
//!
//! # Determinism
//!
//! A [`MetricsSnapshot`] is canonical: metrics are sorted by name, a
//! histogram's bucket boundaries are fixed powers of two, and nothing
//! in the registry depends on wall-clock time or iteration order — so
//! two equal-seed runs of a deterministic system serialize to
//! **byte-identical** snapshots. Wall-clock phase timings are opt-in at
//! the recording site (e.g. `SimConfig::metric_timings` in the engine)
//! precisely because they break that guarantee.
//!
//! # Histogram bucket convention
//!
//! Histograms use [`HISTOGRAM_BUCKETS`] = 65 fixed log2 buckets over
//! the full `u64` domain, with half-open boundaries `[2^(i-1), 2^i)`:
//!
//! - **bucket 0** holds exactly the value `0`;
//! - **bucket `i` for `1 ≤ i ≤ 64`** holds `[2^(i-1), 2^i)` — value
//!   `v ≥ 1` lands in bucket `floor(log2 v) + 1` (see [`bucket_of`]);
//! - **bucket 64**, the top bucket, therefore holds `[2^63, u64::MAX]`
//!   — `u64::MAX` included, since `2^64` is not representable.
//!
//! Every `u64` has a well-defined bucket; nothing is clamped or
//! dropped. The running `sum` saturates at `u64::MAX` instead of
//! wrapping, both when observing and when merging snapshots.
//!
//! # Examples
//!
//! ```
//! use ocd_core::metrics::{MetricsRegistry, Recorder};
//!
//! let mut reg = MetricsRegistry::new();
//! let sends = reg.counter("net.sends");
//! let sizes = reg.histogram("net.payload_tokens");
//! reg.add(sends, 3);
//! reg.observe(sizes, 4); // falls in the [4, 8) bucket
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("net.sends"), Some(3));
//! let json = snap.to_json();
//! assert_eq!(ocd_core::metrics::MetricsSnapshot::from_json(&json).unwrap(), snap);
//! ```

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Number of log2 histogram buckets: bucket 0 holds the value 0 and
/// bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`, so bucket 64
/// catches everything from `2^63` up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index of a value under the fixed log2 boundaries.
#[must_use]
pub fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Handle to a registered counter series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(usize);

/// The recording interface instrumented code is generic over.
///
/// Registration methods (`counter`, `gauge`, `histogram`, `series`)
/// intern a name into a handle — call them once per run, outside hot
/// loops. Recording methods (`add`, `set`, `observe`, `series_add`)
/// are the per-event hot path.
///
/// [`NoopRecorder`] implements everything as empty inline bodies;
/// monomorphizing over it erases the instrumentation entirely. Hot
/// paths that must *compute* something before recording it (e.g. read
/// a clock) should guard on [`Recorder::enabled`], which is a constant
/// after monomorphization.
pub trait Recorder {
    /// Whether recordings are kept. `false` for [`NoopRecorder`], and
    /// constant-foldable after monomorphization.
    fn enabled(&self) -> bool;

    /// Interns (or retrieves) the counter `name`.
    fn counter(&mut self, name: &str) -> CounterId;
    /// Interns (or retrieves) the gauge `name`.
    fn gauge(&mut self, name: &str) -> GaugeId;
    /// Interns (or retrieves) the histogram `name`.
    fn histogram(&mut self, name: &str) -> HistogramId;
    /// Interns (or retrieves) the counter series `name`, growing it to
    /// at least `len` slots.
    fn series(&mut self, name: &str, len: usize) -> SeriesId;

    /// Adds `delta` to a counter.
    fn add(&mut self, id: CounterId, delta: u64);
    /// Sets a gauge (last write wins).
    fn set(&mut self, id: GaugeId, value: i64);
    /// Records `value` into a histogram's log2 bucket.
    fn observe(&mut self, id: HistogramId, value: u64);
    /// Adds `delta` to slot `index` of a counter series.
    fn series_add(&mut self, id: SeriesId, index: usize, delta: u64);
}

/// The do-nothing recorder: disabled metrics at zero cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
    #[inline(always)]
    fn counter(&mut self, _name: &str) -> CounterId {
        CounterId(0)
    }
    #[inline(always)]
    fn gauge(&mut self, _name: &str) -> GaugeId {
        GaugeId(0)
    }
    #[inline(always)]
    fn histogram(&mut self, _name: &str) -> HistogramId {
        HistogramId(0)
    }
    #[inline(always)]
    fn series(&mut self, _name: &str, _len: usize) -> SeriesId {
        SeriesId(0)
    }
    #[inline(always)]
    fn add(&mut self, _id: CounterId, _delta: u64) {}
    #[inline(always)]
    fn set(&mut self, _id: GaugeId, _value: i64) {}
    #[inline(always)]
    fn observe(&mut self, _id: HistogramId, _value: u64) {}
    #[inline(always)]
    fn series_add(&mut self, _id: SeriesId, _index: usize, _delta: u64) {}
}

#[derive(Debug, Clone)]
struct Histogram {
    count: u64,
    sum: u64,
    buckets: Vec<u64>,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            buckets: vec![0; HISTOGRAM_BUCKETS],
        }
    }
}

/// The live metrics store.
///
/// Interning is a linear name scan (registration is once-per-run);
/// recording is index arithmetic. [`MetricsRegistry::snapshot`]
/// produces the canonical serialized form.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, i64)>,
    histograms: Vec<(String, Histogram)>,
    series: Vec<(String, Vec<u64>)>,
}

fn intern<T>(items: &mut Vec<(String, T)>, name: &str, make: impl FnOnce() -> T) -> usize {
    match items.iter().position(|(n, _)| n == name) {
        Some(i) => i,
        None => {
            items.push((name.to_string(), make()));
            items.len() - 1
        }
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Freezes the current state into a canonical (name-sorted)
    /// snapshot.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<CounterSnapshot> = self
            .counters
            .iter()
            .map(|(name, value)| CounterSnapshot {
                name: name.clone(),
                value: *value,
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut gauges: Vec<GaugeSnapshot> = self
            .gauges
            .iter()
            .map(|(name, value)| GaugeSnapshot {
                name: name.clone(),
                value: *value,
            })
            .collect();
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        let mut histograms: Vec<HistogramSnapshot> = self
            .histograms
            .iter()
            .map(|(name, h)| HistogramSnapshot {
                name: name.clone(),
                count: h.count,
                sum: h.sum,
                buckets: h.buckets.clone(),
            })
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        let mut series: Vec<SeriesSnapshot> = self
            .series
            .iter()
            .map(|(name, values)| SeriesSnapshot {
                name: name.clone(),
                values: values.clone(),
            })
            .collect();
        series.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            series,
        }
    }

    /// Merges a snapshot back in: counters, histogram buckets, and
    /// series slots add; gauges overwrite. The rollup primitive the
    /// bench runner uses to aggregate per-run snapshots.
    pub fn absorb(&mut self, snap: &MetricsSnapshot) {
        for c in &snap.counters {
            let id = self.counter(&c.name);
            self.add(id, c.value);
        }
        for g in &snap.gauges {
            let id = self.gauge(&g.name);
            self.set(id, g.value);
        }
        for h in &snap.histograms {
            let id = self.histogram(&h.name);
            let slot = &mut self.histograms[id.0].1;
            slot.count += h.count;
            // Saturating like `observe`, so merging snapshots that
            // recorded near-u64::MAX observations cannot wrap.
            slot.sum = slot.sum.saturating_add(h.sum);
            for (mine, theirs) in slot.buckets.iter_mut().zip(&h.buckets) {
                *mine += theirs;
            }
        }
        for s in &snap.series {
            let id = self.series(&s.name, s.values.len());
            for (i, v) in s.values.iter().enumerate() {
                self.series_add(id, i, *v);
            }
        }
    }
}

impl Recorder for MetricsRegistry {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }
    fn counter(&mut self, name: &str) -> CounterId {
        CounterId(intern(&mut self.counters, name, || 0))
    }
    fn gauge(&mut self, name: &str) -> GaugeId {
        GaugeId(intern(&mut self.gauges, name, || 0))
    }
    fn histogram(&mut self, name: &str) -> HistogramId {
        HistogramId(intern(&mut self.histograms, name, Histogram::new))
    }
    fn series(&mut self, name: &str, len: usize) -> SeriesId {
        let idx = intern(&mut self.series, name, Vec::new);
        let values = &mut self.series[idx].1;
        if values.len() < len {
            values.resize(len, 0);
        }
        SeriesId(idx)
    }
    #[inline]
    fn add(&mut self, id: CounterId, delta: u64) {
        self.counters[id.0].1 += delta;
    }
    #[inline]
    fn set(&mut self, id: GaugeId, value: i64) {
        self.gauges[id.0].1 = value;
    }
    #[inline]
    fn observe(&mut self, id: HistogramId, value: u64) {
        let h = &mut self.histograms[id.0].1;
        h.count += 1;
        h.sum = h.sum.saturating_add(value);
        h.buckets[bucket_of(value)] += 1;
    }
    #[inline]
    fn series_add(&mut self, id: SeriesId, index: usize, delta: u64) {
        self.series[id.0].1[index] += delta;
    }
}

/// One counter in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// One gauge in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Last written value.
    pub value: i64,
}

/// One log2 histogram in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations (saturating).
    pub sum: u64,
    /// [`HISTOGRAM_BUCKETS`] fixed log2 buckets (see [`bucket_of`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observation (`None` when empty).
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

/// One counter series (per-arc / per-vertex values) in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeriesSnapshot {
    /// Metric name.
    pub name: String,
    /// Per-index accumulated values.
    pub values: Vec<u64>,
}

/// A frozen, canonical view of a [`MetricsRegistry`]: every metric
/// sorted by name, serializable to JSON and CSV, embeddable in a
/// [`RunRecord`](crate::RunRecord).
///
/// Snapshots of deterministic same-seed runs are byte-identical when
/// serialized (wall-clock timing metrics are opt-in at the recording
/// site for exactly this reason).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Counter series, sorted by name.
    pub series: Vec<SeriesSnapshot>,
}

impl MetricsSnapshot {
    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.series.is_empty()
    }

    /// Looks up a counter by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a gauge by name.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a histogram by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Looks up a counter series by name.
    #[must_use]
    pub fn series(&self, name: &str) -> Option<&[u64]> {
        self.series
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.values.as_slice())
    }

    /// Serializes to pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialization is infallible")
    }

    /// Parses a snapshot from JSON.
    ///
    /// # Errors
    ///
    /// A human-readable message on malformed input.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| format!("metrics snapshot: {e}"))
    }

    /// Serializes as CSV: one `kind,name,key,value` row per datum.
    /// Counters and gauges use an empty `key`; histograms emit `count`,
    /// `sum`, and one `bucket_<i>` row per non-empty bucket; series
    /// emit one row per non-zero slot (the slot index as `key`).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,key,value\n");
        for c in &self.counters {
            let _ = writeln!(out, "counter,{},,{}", c.name, c.value);
        }
        for g in &self.gauges {
            let _ = writeln!(out, "gauge,{},,{}", g.name, g.value);
        }
        for h in &self.histograms {
            let _ = writeln!(out, "histogram,{},count,{}", h.name, h.count);
            let _ = writeln!(out, "histogram,{},sum,{}", h.name, h.sum);
            for (i, b) in h.buckets.iter().enumerate() {
                if *b > 0 {
                    let _ = writeln!(out, "histogram,{},bucket_{i},{b}", h.name);
                }
            }
        }
        for s in &self.series {
            for (i, v) in s.values.iter().enumerate() {
                if *v > 0 {
                    let _ = writeln!(out, "series,{},{i},{v}", s.name);
                }
            }
        }
        out
    }

    /// Merges `other` into `self` (counters/histograms/series add,
    /// gauges overwrite) — the per-strategy rollup operation.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        let mut reg = MetricsRegistry::new();
        reg.absorb(self);
        reg.absorb(other);
        *self = reg.snapshot();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_fixed_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert!(bucket_of(u64::MAX) < HISTOGRAM_BUCKETS);
    }

    #[test]
    fn registry_records_and_snapshots() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("b.counter");
        let c2 = reg.counter("a.counter");
        let g = reg.gauge("x.gauge");
        let h = reg.histogram("m.hist");
        let s = reg.series("arcs", 3);
        reg.add(c, 5);
        reg.add(c2, 1);
        reg.add(c, 2);
        reg.set(g, -4);
        reg.set(g, 9);
        reg.observe(h, 0);
        reg.observe(h, 6);
        reg.series_add(s, 2, 11);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("b.counter"), Some(7));
        assert_eq!(snap.counter("a.counter"), Some(1));
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.gauge("x.gauge"), Some(9));
        let hist = snap.histogram("m.hist").unwrap();
        assert_eq!(hist.count, 2);
        assert_eq!(hist.sum, 6);
        assert_eq!(hist.buckets[0], 1, "value 0 lands in bucket 0");
        assert_eq!(hist.buckets[3], 1, "value 6 lands in [4, 8)");
        assert_eq!(hist.mean(), Some(3.0));
        assert_eq!(snap.series("arcs"), Some([0, 0, 11].as_slice()));
        // Snapshots are name-sorted regardless of registration order.
        assert_eq!(snap.counters[0].name, "a.counter");
        assert_eq!(snap.counters[1].name, "b.counter");
    }

    #[test]
    fn interning_is_idempotent_and_series_grow() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("same");
        let b = reg.counter("same");
        assert_eq!(a, b);
        let s1 = reg.series("s", 2);
        let s2 = reg.series("s", 5);
        assert_eq!(s1, s2);
        reg.series_add(s2, 4, 1);
        assert_eq!(reg.snapshot().series("s").unwrap().len(), 5);
    }

    #[test]
    fn noop_recorder_is_disabled_and_inert() {
        let mut noop = NoopRecorder;
        assert!(!noop.enabled());
        let c = noop.counter("anything");
        noop.add(c, 1_000);
        let h = noop.histogram("h");
        noop.observe(h, 42);
        let s = noop.series("s", 10);
        noop.series_add(s, 9, 1);
        let g = noop.gauge("g");
        noop.set(g, 1);
        // Nothing to assert beyond "does not panic": Noop holds no state.
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("c");
        reg.add(c, 3);
        let h = reg.histogram("h");
        reg.observe(h, 100);
        let s = reg.series("s", 2);
        reg.series_add(s, 1, 7);
        let g = reg.gauge("g");
        reg.set(g, -12);
        let snap = reg.snapshot();
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        assert!(MetricsSnapshot::from_json("[not json").is_err());
    }

    #[test]
    fn csv_shape() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("c");
        reg.add(c, 3);
        let h = reg.histogram("h");
        reg.observe(h, 5);
        let s = reg.series("s", 3);
        reg.series_add(s, 1, 2);
        let g = reg.gauge("g");
        reg.set(g, -1);
        let csv = reg.snapshot().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "kind,name,key,value");
        assert!(lines.contains(&"counter,c,,3"));
        assert!(lines.contains(&"gauge,g,,-1"));
        assert!(lines.contains(&"histogram,h,count,1"));
        assert!(lines.contains(&"histogram,h,sum,5"));
        assert!(lines.contains(&"histogram,h,bucket_3,1"));
        assert!(lines.contains(&"series,s,1,2"));
    }

    #[test]
    fn merge_adds_counts_and_overwrites_gauges() {
        let make = |cv: u64, gv: i64, obs: u64, slot: u64| {
            let mut reg = MetricsRegistry::new();
            let c = reg.counter("c");
            reg.add(c, cv);
            let g = reg.gauge("g");
            reg.set(g, gv);
            let h = reg.histogram("h");
            reg.observe(h, obs);
            let s = reg.series("s", 2);
            reg.series_add(s, 0, slot);
            reg.snapshot()
        };
        let mut a = make(2, 1, 4, 10);
        let b = make(3, 8, 5, 20);
        a.merge(&b);
        assert_eq!(a.counter("c"), Some(5));
        assert_eq!(a.gauge("g"), Some(8), "gauges: last write wins");
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 9);
        assert_eq!(h.buckets[3], 2, "4 and 5 share the [4, 8) bucket");
        assert_eq!(a.series("s"), Some([30, 0].as_slice()));
        // Merging disjoint snapshots unions the name spaces.
        let mut lone = MetricsSnapshot::default();
        lone.merge(&a);
        assert_eq!(lone, a);
        assert!(MetricsSnapshot::default().is_empty());
        assert!(!a.is_empty());
    }

    #[test]
    fn extreme_observations_land_in_pinned_buckets() {
        // Regression pin for the domain edges: 0 and u64::MAX must
        // land in well-defined buckets (0 and 64 — the module-doc
        // convention), and the saturating sum must not wrap.
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("edges");
        reg.observe(h, 0);
        reg.observe(h, u64::MAX);
        let snap = reg.snapshot();
        let hist = snap.histogram("edges").unwrap();
        assert_eq!(hist.count, 2);
        assert_eq!(hist.buckets[0], 1, "value 0 is pinned to bucket 0");
        assert_eq!(
            hist.buckets[64], 1,
            "u64::MAX is pinned to the top bucket [2^63, u64::MAX]"
        );
        assert_eq!(hist.buckets.len(), HISTOGRAM_BUCKETS);
        assert_eq!(hist.buckets.iter().sum::<u64>(), 2, "no bucket lost it");
        assert_eq!(hist.sum, u64::MAX, "0 + MAX needs no saturation yet");
        // A second MAX observation saturates instead of wrapping...
        reg.observe(h, u64::MAX);
        assert_eq!(reg.snapshot().histogram("edges").unwrap().sum, u64::MAX);
        // ...and so does absorbing two saturated snapshots.
        let mut merged = reg.snapshot();
        merged.merge(&snap);
        assert_eq!(merged.histogram("edges").unwrap().sum, u64::MAX);
        assert_eq!(merged.histogram("edges").unwrap().buckets[64], 3);
        // The boundary neighbours of the top bucket stay distinct.
        assert_eq!(bucket_of((1 << 63) - 1), 63);
        assert_eq!(bucket_of(1 << 63), 64);
    }

    #[test]
    fn absorb_semantics_across_name_set_overlap() {
        let snap_of = |names: &[(&str, u64)], gauge: Option<i64>| {
            let mut reg = MetricsRegistry::new();
            for (name, v) in names {
                let c = reg.counter(name);
                reg.add(c, *v);
            }
            if let Some(g) = gauge {
                let id = reg.gauge("g");
                reg.set(id, g);
            }
            reg.snapshot()
        };

        // Disjoint name sets: absorb unions them, values untouched.
        let mut reg = MetricsRegistry::new();
        reg.absorb(&snap_of(&[("a", 1)], None));
        reg.absorb(&snap_of(&[("b", 2)], None));
        let disjoint = reg.snapshot();
        assert_eq!(disjoint.counter("a"), Some(1));
        assert_eq!(disjoint.counter("b"), Some(2));
        assert_eq!(disjoint.counters.len(), 2);

        // Overlapping name sets: shared counters sum, gauges take the
        // last absorbed value (last-write-wins, like `set`).
        let mut reg = MetricsRegistry::new();
        reg.absorb(&snap_of(&[("a", 1), ("shared", 10)], Some(5)));
        reg.absorb(&snap_of(&[("b", 2), ("shared", 30)], Some(-7)));
        let overlap = reg.snapshot();
        assert_eq!(overlap.counter("shared"), Some(40), "counters sum");
        assert_eq!(overlap.counter("a"), Some(1));
        assert_eq!(overlap.counter("b"), Some(2));
        assert_eq!(overlap.gauge("g"), Some(-7), "gauges last-write-win");

        // Identical snapshots absorbed twice: counters double, the
        // gauge is idempotent.
        let snap = snap_of(&[("a", 3)], Some(9));
        let mut reg = MetricsRegistry::new();
        reg.absorb(&snap);
        reg.absorb(&snap);
        let doubled = reg.snapshot();
        assert_eq!(doubled.counter("a"), Some(6));
        assert_eq!(doubled.gauge("g"), Some(9));

        // Absorbing into a non-empty registry adds onto live state.
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("a");
        reg.add(c, 100);
        reg.absorb(&snap);
        assert_eq!(reg.snapshot().counter("a"), Some(103));
    }

    #[test]
    fn snapshot_serialization_is_deterministic() {
        // Two registries fed the same data in different registration
        // orders serialize identically.
        let mut r1 = MetricsRegistry::new();
        let a1 = r1.counter("alpha");
        let b1 = r1.counter("beta");
        r1.add(a1, 1);
        r1.add(b1, 2);
        let mut r2 = MetricsRegistry::new();
        let b2 = r2.counter("beta");
        let a2 = r2.counter("alpha");
        r2.add(b2, 2);
        r2.add(a2, 1);
        assert_eq!(r1.snapshot().to_json(), r2.snapshot().to_json());
    }
}
